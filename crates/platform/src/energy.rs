//! Energy accounting.
//!
//! The paper reports both execution time and energy for every decoder version
//! (Table 6). The Badge4's energy was measured with a cycle-accurate energy
//! simulator; here energy is derived from the cycle count, the operating
//! point (power ∝ f·V²) and per-access memory energy.

use serde::{Deserialize, Serialize};

use crate::cost::OpCounts;
use crate::dvfs::OperatingPoint;
use crate::memory::MemoryModel;

/// Converts cycle counts and memory traffic into energy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Core power in milliwatts at the reference operating point.
    pub core_power_mw_at_ref: f64,
    /// The reference operating point for `core_power_mw_at_ref`.
    pub reference: OperatingPoint,
    /// Board-level static power (regulators, SA-1111, idle peripherals) in mW,
    /// charged for the duration of the computation.
    pub static_power_mw: f64,
}

impl EnergyModel {
    /// Badge4 defaults: ~400 mW core at 206 MHz / 1.55 V plus ~40 mW of board
    /// overhead attributable to the computation (the DC-DC converter and
    /// SA-1111 idle drains are excluded, as the paper's per-version energy
    /// numbers are for the decode work itself).
    pub fn badge4() -> Self {
        EnergyModel {
            core_power_mw_at_ref: 400.0,
            reference: OperatingPoint {
                frequency_mhz: 206.4,
                voltage_v: 1.55,
            },
            static_power_mw: 40.0,
        }
    }

    /// Core power in milliwatts at an arbitrary operating point
    /// (P ∝ f · V²).
    pub fn core_power_mw(&self, point: &OperatingPoint) -> f64 {
        self.core_power_mw_at_ref
            * (point.frequency_mhz / self.reference.frequency_mhz)
            * (point.voltage_v / self.reference.voltage_v).powi(2)
    }

    /// Energy in joules for executing `cycles` core cycles plus the memory
    /// traffic of `ops` at the given operating point.
    pub fn energy_j(
        &self,
        cycles: u64,
        ops: &OpCounts,
        memory: &MemoryModel,
        point: &OperatingPoint,
    ) -> f64 {
        let seconds = point.seconds_for(cycles);
        let dynamic = self.core_power_mw(point) * 1e-3 * seconds;
        let static_e = self.static_power_mw * 1e-3 * seconds;
        let mem_nj: f64 = ops
            .memory_iter()
            .map(|(region, n)| memory.access_energy_nj(region, n))
            .sum();
        dynamic + static_e + mem_nj * 1e-9
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::badge4()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::InstructionClass;
    use crate::dvfs::DvfsTable;
    use crate::memory::MemoryRegion;

    #[test]
    fn power_scales_with_frequency_and_voltage_squared() {
        let e = EnergyModel::badge4();
        let full = e.core_power_mw(&e.reference);
        let half_freq = OperatingPoint {
            frequency_mhz: e.reference.frequency_mhz / 2.0,
            voltage_v: e.reference.voltage_v,
        };
        assert!((e.core_power_mw(&half_freq) - full / 2.0).abs() < 1e-9);
        let low_v = OperatingPoint {
            frequency_mhz: e.reference.frequency_mhz,
            voltage_v: e.reference.voltage_v / 2.0,
        };
        assert!((e.core_power_mw(&low_v) - full / 4.0).abs() < 1e-9);
    }

    #[test]
    fn energy_grows_with_cycles() {
        let e = EnergyModel::badge4();
        let mem = MemoryModel::badge4();
        let point = DvfsTable::sa1110().max();
        let ops = OpCounts::new();
        let small = e.energy_j(1_000_000, &ops, &mem, &point);
        let large = e.energy_j(10_000_000, &ops, &mem, &point);
        assert!(large > 9.0 * small && large < 11.0 * small);
    }

    #[test]
    fn memory_traffic_adds_energy() {
        let e = EnergyModel::badge4();
        let mem = MemoryModel::badge4();
        let point = DvfsTable::sa1110().max();
        let mut ops = OpCounts::new();
        ops.add(InstructionClass::Load, 1_000_000);
        let without_mem = e.energy_j(1_000_000, &OpCounts::new(), &mem, &point);
        ops.add_memory(MemoryRegion::Sdram, 1_000_000);
        let with_mem = e.energy_j(1_000_000, &ops, &mem, &point);
        assert!(with_mem > without_mem);
    }

    #[test]
    fn running_slower_at_lower_voltage_saves_energy_per_work_item() {
        // Same cycle count executed at a lower operating point burns less
        // energy despite taking longer (V² dominates the static-power loss
        // in this model).
        let e = EnergyModel::badge4();
        let mem = MemoryModel::badge4();
        let table = DvfsTable::sa1110();
        let fast = e.energy_j(50_000_000, &OpCounts::new(), &mem, &table.max());
        let slow = e.energy_j(50_000_000, &OpCounts::new(), &mem, &table.min());
        assert!(slow < fast, "slow {slow} should be below fast {fast}");
    }
}
