//! Badge4 memory hierarchy: SRAM, SDRAM and FLASH.
//!
//! The Badge4 carries three memory types (Figure 1 of the paper). Their access
//! latency and per-access energy differ enough to matter for kernels that
//! stream coefficient tables: the IPP-style kernels keep tables in SRAM while
//! the reference decoder's working set spills to SDRAM.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A memory region of the Badge4 board.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MemoryRegion {
    /// On-board SRAM: fast, small, holds the OS core and hot tables.
    Sram,
    /// SDRAM: the bulk working memory.
    Sdram,
    /// FLASH: program storage, slow to read, effectively read-only at run time.
    Flash,
}

impl MemoryRegion {
    /// All regions, for iteration.
    pub const ALL: [MemoryRegion; 3] =
        [MemoryRegion::Sram, MemoryRegion::Sdram, MemoryRegion::Flash];
}

impl fmt::Display for MemoryRegion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemoryRegion::Sram => write!(f, "SRAM"),
            MemoryRegion::Sdram => write!(f, "SDRAM"),
            MemoryRegion::Flash => write!(f, "FLASH"),
        }
    }
}

/// Per-region access characteristics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RegionParams {
    /// Extra cycles per access beyond the load/store issue cost.
    pub access_cycles: u64,
    /// Energy per access in nanojoules.
    pub energy_nj: f64,
    /// Capacity in kilobytes (reported by `describe`, not enforced).
    pub capacity_kib: u32,
}

/// The memory model of the board.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryModel {
    sram: RegionParams,
    sdram: RegionParams,
    flash: RegionParams,
}

impl MemoryModel {
    /// Badge4 defaults: 1 MiB SRAM, 32 MiB SDRAM, 32 MiB FLASH.
    pub fn badge4() -> Self {
        MemoryModel {
            sram: RegionParams {
                access_cycles: 1,
                energy_nj: 0.6,
                capacity_kib: 1024,
            },
            sdram: RegionParams {
                access_cycles: 6,
                energy_nj: 2.4,
                capacity_kib: 32 * 1024,
            },
            flash: RegionParams {
                access_cycles: 18,
                energy_nj: 4.0,
                capacity_kib: 32 * 1024,
            },
        }
    }

    /// Parameters of a region.
    pub fn params(&self, region: MemoryRegion) -> RegionParams {
        match region {
            MemoryRegion::Sram => self.sram,
            MemoryRegion::Sdram => self.sdram,
            MemoryRegion::Flash => self.flash,
        }
    }

    /// Extra cycles for `n` accesses to a region.
    pub fn access_cycles(&self, region: MemoryRegion, n: u64) -> u64 {
        self.params(region).access_cycles * n
    }

    /// Energy in nanojoules for `n` accesses to a region.
    pub fn access_energy_nj(&self, region: MemoryRegion, n: u64) -> f64 {
        self.params(region).energy_nj * n as f64
    }
}

impl Default for MemoryModel {
    fn default() -> Self {
        MemoryModel::badge4()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn badge4_latency_ordering() {
        let m = MemoryModel::badge4();
        assert!(
            m.params(MemoryRegion::Sram).access_cycles
                < m.params(MemoryRegion::Sdram).access_cycles
        );
        assert!(
            m.params(MemoryRegion::Sdram).access_cycles
                < m.params(MemoryRegion::Flash).access_cycles
        );
    }

    #[test]
    fn energy_ordering_tracks_latency() {
        let m = MemoryModel::badge4();
        assert!(m.params(MemoryRegion::Sram).energy_nj < m.params(MemoryRegion::Sdram).energy_nj);
        assert!(m.params(MemoryRegion::Sdram).energy_nj < m.params(MemoryRegion::Flash).energy_nj);
    }

    #[test]
    fn accounting_is_linear() {
        let m = MemoryModel::badge4();
        assert_eq!(
            m.access_cycles(MemoryRegion::Sdram, 10),
            10 * m.params(MemoryRegion::Sdram).access_cycles
        );
        assert!(
            (m.access_energy_nj(MemoryRegion::Sram, 100)
                - 100.0 * m.params(MemoryRegion::Sram).energy_nj)
                .abs()
                < 1e-9
        );
        assert_eq!(m.access_cycles(MemoryRegion::Flash, 0), 0);
    }

    #[test]
    fn display_names() {
        assert_eq!(MemoryRegion::Sram.to_string(), "SRAM");
        assert_eq!(MemoryRegion::ALL.len(), 3);
    }
}
