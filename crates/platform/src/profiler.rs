//! Per-function profiling.
//!
//! Target-code identification (§3.2) starts by profiling the application to
//! find the performance- and energy-critical procedures; the paper's Tables
//! 3–5 are exactly such profiles. [`Profiler`] accumulates execution cost per
//! function name and renders the same table format (execution time per frame
//! and percentage of the total).

use std::collections::BTreeMap;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::cost::OpCounts;
use crate::machine::{Badge4, ExecutionCost};

/// One row of a profile: a function and its accumulated cost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileEntry {
    /// The function name (as it would appear in the decoder source).
    pub function: String,
    /// Accumulated execution time in seconds.
    pub seconds: f64,
    /// Accumulated energy in joules.
    pub energy_j: f64,
    /// Accumulated cycles.
    pub cycles: u64,
    /// Share of the total profile time, in percent.
    pub percent: f64,
}

/// A complete profile, sorted by descending execution time.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Profile {
    entries: Vec<ProfileEntry>,
}

impl Profile {
    /// The rows, sorted by descending time.
    pub fn entries(&self) -> &[ProfileEntry] {
        &self.entries
    }

    /// Total time across all rows, in seconds.
    pub fn total_seconds(&self) -> f64 {
        self.entries.iter().map(|e| e.seconds).sum()
    }

    /// Total energy across all rows, in joules.
    pub fn total_energy_j(&self) -> f64 {
        self.entries.iter().map(|e| e.energy_j).sum()
    }

    /// Total cycles across all rows.
    pub fn total_cycles(&self) -> u64 {
        self.entries.iter().map(|e| e.cycles).sum()
    }

    /// Looks up a row by function name.
    pub fn entry(&self, function: &str) -> Option<&ProfileEntry> {
        self.entries.iter().find(|e| e.function == function)
    }

    /// The functions whose cumulative share of execution time reaches
    /// `threshold_percent` — the "critical procedures" selected for mapping.
    pub fn critical_functions(&self, threshold_percent: f64) -> Vec<String> {
        let mut out = Vec::new();
        let mut acc = 0.0;
        for e in &self.entries {
            if acc >= threshold_percent {
                break;
            }
            out.push(e.function.clone());
            acc += e.percent;
        }
        out
    }

    /// Renders the profile in the format of the paper's Tables 3–5.
    pub fn render(&self, title: &str) -> String {
        let mut s = String::new();
        s.push_str(&format!("{title}\n"));
        s.push_str(&format!(
            "{:<32} {:>14} {:>8}\n",
            "Function name", "Exec time (s)", "%"
        ));
        for e in &self.entries {
            s.push_str(&format!(
                "{:<32} {:>14.6} {:>8.2}\n",
                e.function, e.seconds, e.percent
            ));
        }
        s.push_str(&format!(
            "{:<32} {:>14.6} {:>8.2}\n",
            "Total for one frame",
            self.total_seconds(),
            100.0
        ));
        s
    }
}

/// Accumulates per-function operation counts and converts them to a
/// [`Profile`] against a [`Badge4`] model.
///
/// The profiler is internally synchronized so parallel workload runs can share
/// it.
#[derive(Debug, Default)]
pub struct Profiler {
    per_function: Mutex<BTreeMap<String, OpCounts>>,
}

impl Profiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Profiler::default()
    }

    /// Records operations attributed to `function`.
    pub fn record(&self, function: &str, ops: &OpCounts) {
        let mut map = self.per_function.lock();
        map.entry(function.to_string()).or_default().merge(ops);
    }

    /// Clears all recorded data.
    pub fn reset(&self) {
        self.per_function.lock().clear();
    }

    /// Returns the accumulated operation counts per function.
    pub fn op_counts(&self) -> BTreeMap<String, OpCounts> {
        self.per_function.lock().clone()
    }

    /// Builds the profile by costing every function's operations on `badge`.
    pub fn profile(&self, badge: &Badge4) -> Profile {
        let map = self.per_function.lock();
        let costs: Vec<(String, ExecutionCost)> = map
            .iter()
            .map(|(f, ops)| (f.clone(), badge.cost_of(ops)))
            .collect();
        let total: f64 = costs.iter().map(|(_, c)| c.seconds).sum();
        let mut entries: Vec<ProfileEntry> = costs
            .into_iter()
            .map(|(function, c)| ProfileEntry {
                function,
                seconds: c.seconds,
                energy_j: c.energy_j,
                cycles: c.cycles,
                percent: if total > 0.0 {
                    100.0 * c.seconds / total
                } else {
                    0.0
                },
            })
            .collect();
        entries.sort_by(|a, b| b.seconds.partial_cmp(&a.seconds).expect("finite times"));
        Profile { entries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::InstructionClass;

    fn ops(class: InstructionClass, n: u64) -> OpCounts {
        let mut o = OpCounts::new();
        o.add(class, n);
        o
    }

    #[test]
    fn profile_sorts_by_time_and_computes_percentages() {
        let profiler = Profiler::new();
        profiler.record("cheap", &ops(InstructionClass::IntAlu, 100));
        profiler.record("expensive", &ops(InstructionClass::FloatMulSoft, 10_000));
        profiler.record("middle", &ops(InstructionClass::IntMul, 50_000));
        let profile = profiler.profile(&Badge4::new());
        let names: Vec<&str> = profile
            .entries()
            .iter()
            .map(|e| e.function.as_str())
            .collect();
        assert_eq!(names[0], "expensive");
        assert_eq!(*names.last().unwrap(), "cheap");
        let pct_sum: f64 = profile.entries().iter().map(|e| e.percent).sum();
        assert!((pct_sum - 100.0).abs() < 1e-9);
    }

    #[test]
    fn repeated_records_accumulate() {
        let profiler = Profiler::new();
        profiler.record("f", &ops(InstructionClass::IntAlu, 10));
        profiler.record("f", &ops(InstructionClass::IntAlu, 15));
        let profile = profiler.profile(&Badge4::new());
        assert_eq!(profile.entries().len(), 1);
        assert_eq!(profile.entry("f").unwrap().cycles, 25);
        assert!(profile.entry("missing").is_none());
    }

    #[test]
    fn critical_functions_cover_threshold() {
        let profiler = Profiler::new();
        profiler.record("a", &ops(InstructionClass::FloatMulSoft, 90_000));
        profiler.record("b", &ops(InstructionClass::FloatMulSoft, 9_000));
        profiler.record("c", &ops(InstructionClass::FloatMulSoft, 1_000));
        let profile = profiler.profile(&Badge4::new());
        let crit = profile.critical_functions(85.0);
        assert_eq!(crit, vec!["a".to_string()]);
        let crit95 = profile.critical_functions(95.0);
        assert_eq!(crit95.len(), 2);
    }

    #[test]
    fn reset_clears_state() {
        let profiler = Profiler::new();
        profiler.record("f", &ops(InstructionClass::IntAlu, 10));
        profiler.reset();
        assert!(profiler.profile(&Badge4::new()).entries().is_empty());
        assert_eq!(profiler.profile(&Badge4::new()).total_cycles(), 0);
    }

    #[test]
    fn render_contains_every_function_and_total() {
        let profiler = Profiler::new();
        profiler.record(
            "III_dequantize_sample",
            &ops(InstructionClass::LibmCall, 500),
        );
        profiler.record(
            "SubBandSynthesis",
            &ops(InstructionClass::FloatMulSoft, 2_000),
        );
        let profile = profiler.profile(&Badge4::new());
        let rendered = profile.render("Original MP3 Profile");
        assert!(rendered.contains("III_dequantize_sample"));
        assert!(rendered.contains("SubBandSynthesis"));
        assert!(rendered.contains("Total for one frame"));
    }

    #[test]
    fn empty_profile_is_well_behaved() {
        let profile = Profiler::new().profile(&Badge4::new());
        assert!(profile.entries().is_empty());
        assert_eq!(profile.total_seconds(), 0.0);
        assert!(profile.critical_functions(90.0).is_empty());
    }
}
