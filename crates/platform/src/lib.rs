//! # symmap-platform
//!
//! A simulated Badge4 / StrongARM SA-1110 platform.
//!
//! The paper characterizes library elements and profiles the MP3 decoder by
//! *measuring* cycle counts on the Badge4 hardware and estimating energy with a
//! cycle-accurate simulator. This crate substitutes a deterministic cost
//! model for that hardware:
//!
//! * [`cost`] — per-instruction-class cycle costs of an ARMv4 integer core
//!   without an FPU (floating point is emulated in software, which is the
//!   two-orders-of-magnitude cliff the paper's Tables 3–6 hinge on),
//! * [`memory`] — SRAM / SDRAM / FLASH access latencies and energy,
//! * [`energy`] — energy accounting per cycle and per memory access,
//! * [`dvfs`] — the SA-1110 frequency/voltage operating points used for the
//!   "faster than real time ⇒ scale voltage" argument,
//! * [`machine`] — the Badge4 board model gluing the pieces together,
//! * [`profiler`] — per-function cycle/energy attribution used to regenerate
//!   the profiling tables.
//!
//! ## Example
//!
//! ```
//! use symmap_platform::cost::{InstructionClass, OpCounts};
//! use symmap_platform::machine::Badge4;
//!
//! let badge = Badge4::new();
//! let mut ops = OpCounts::new();
//! ops.add(InstructionClass::FloatMulSoft, 1_000);
//! ops.add(InstructionClass::IntMul, 1_000);
//! let cost = badge.cost_of(&ops);
//! // Software float multiplies dwarf native integer multiplies.
//! assert!(cost.cycles > 50_000);
//! ```

#![deny(rustdoc::broken_intra_doc_links)]

pub mod cost;
pub mod dvfs;
pub mod energy;
pub mod machine;
pub mod memory;
pub mod profiler;

pub use cost::{CostModel, InstructionClass, OpCounts};
pub use dvfs::{DvfsTable, OperatingPoint};
pub use energy::EnergyModel;
pub use machine::{Badge4, ExecutionCost};
pub use memory::{MemoryModel, MemoryRegion};
pub use profiler::{Profile, ProfileEntry, Profiler};
