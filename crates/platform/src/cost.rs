//! Instruction-class cycle costs for the StrongARM SA-1110.
//!
//! The SA-1110 is a single-issue ARMv4 integer core: integer ALU operations
//! are single-cycle, multiplies take a few cycles, and there is **no floating
//! point unit** — every float operation traps into a software emulation
//! routine costing tens to hundreds of cycles. The numbers here are
//! representative (they reproduce the relative gaps the paper measures, not
//! the absolute hardware counts).

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Classes of dynamic operations the cost model distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum InstructionClass {
    /// Integer add/sub/logical/shift (single cycle).
    IntAlu,
    /// Integer multiply (early-terminating ARM MUL).
    IntMul,
    /// Integer multiply-accumulate (MLA).
    IntMac,
    /// Integer divide (no hardware divider: software routine).
    IntDiv,
    /// Load from memory (plus memory-region latency accounted separately).
    Load,
    /// Store to memory.
    Store,
    /// Taken or untaken branch.
    Branch,
    /// Function call/return overhead.
    Call,
    /// Software-emulated floating-point add/sub.
    FloatAddSoft,
    /// Software-emulated floating-point multiply.
    FloatMulSoft,
    /// Software-emulated floating-point divide.
    FloatDivSoft,
    /// Software-emulated float conversion (int ↔ float).
    FloatConvSoft,
    /// Software-emulated transcendental call (exp/log/pow) from the Linux
    /// math library.
    LibmCall,
    /// Table lookup (pre-computed coefficient or Huffman table access).
    TableLookup,
}

impl InstructionClass {
    /// Every class, for iteration.
    pub const ALL: [InstructionClass; 14] = [
        InstructionClass::IntAlu,
        InstructionClass::IntMul,
        InstructionClass::IntMac,
        InstructionClass::IntDiv,
        InstructionClass::Load,
        InstructionClass::Store,
        InstructionClass::Branch,
        InstructionClass::Call,
        InstructionClass::FloatAddSoft,
        InstructionClass::FloatMulSoft,
        InstructionClass::FloatDivSoft,
        InstructionClass::FloatConvSoft,
        InstructionClass::LibmCall,
        InstructionClass::TableLookup,
    ];
}

impl fmt::Display for InstructionClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InstructionClass::IntAlu => "int-alu",
            InstructionClass::IntMul => "int-mul",
            InstructionClass::IntMac => "int-mac",
            InstructionClass::IntDiv => "int-div",
            InstructionClass::Load => "load",
            InstructionClass::Store => "store",
            InstructionClass::Branch => "branch",
            InstructionClass::Call => "call",
            InstructionClass::FloatAddSoft => "float-add-soft",
            InstructionClass::FloatMulSoft => "float-mul-soft",
            InstructionClass::FloatDivSoft => "float-div-soft",
            InstructionClass::FloatConvSoft => "float-conv-soft",
            InstructionClass::LibmCall => "libm-call",
            InstructionClass::TableLookup => "table-lookup",
        };
        write!(f, "{s}")
    }
}

/// Cycle costs per instruction class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    cycles: BTreeMap<InstructionClass, u64>,
}

impl CostModel {
    /// The StrongARM SA-1110 model used throughout the reproduction.
    pub fn sa1110() -> Self {
        use InstructionClass::*;
        let mut cycles = BTreeMap::new();
        cycles.insert(IntAlu, 1);
        cycles.insert(IntMul, 3);
        cycles.insert(IntMac, 3);
        cycles.insert(IntDiv, 22);
        cycles.insert(Load, 2);
        cycles.insert(Store, 2);
        cycles.insert(Branch, 2);
        cycles.insert(Call, 6);
        // Software floating-point emulation on an FPU-less ARM costs roughly
        // two orders of magnitude more than the integer equivalents.
        cycles.insert(FloatAddSoft, 90);
        cycles.insert(FloatMulSoft, 110);
        cycles.insert(FloatDivSoft, 240);
        cycles.insert(FloatConvSoft, 60);
        cycles.insert(LibmCall, 4_000);
        cycles.insert(TableLookup, 3);
        CostModel { cycles }
    }

    /// A hypothetical core with a hardware FPU (used only in tests and
    /// ablations to show the float/fixed gap collapsing).
    pub fn with_hardware_fpu() -> Self {
        use InstructionClass::*;
        let mut m = CostModel::sa1110();
        m.cycles.insert(FloatAddSoft, 3);
        m.cycles.insert(FloatMulSoft, 4);
        m.cycles.insert(FloatDivSoft, 18);
        m.cycles.insert(FloatConvSoft, 3);
        m.cycles.insert(LibmCall, 200);
        m
    }

    /// Cycles charged for one operation of the given class.
    pub fn cycles_for(&self, class: InstructionClass) -> u64 {
        self.cycles.get(&class).copied().unwrap_or(1)
    }

    /// Overrides the cost of one class (returns self for chaining).
    pub fn with_cycles(mut self, class: InstructionClass, cycles: u64) -> Self {
        self.cycles.insert(class, cycles);
        self
    }

    /// Total cycles for a bag of operation counts.
    pub fn cycles(&self, ops: &OpCounts) -> u64 {
        ops.iter().map(|(c, n)| self.cycles_for(c) * n).sum()
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::sa1110()
    }
}

/// A bag of dynamic operation counts, the unit of exchange between workload
/// kernels and the platform model.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpCounts {
    counts: BTreeMap<InstructionClass, u64>,
    loads_by_region: BTreeMap<crate::memory::MemoryRegion, u64>,
}

impl OpCounts {
    /// An empty bag.
    pub fn new() -> Self {
        OpCounts::default()
    }

    /// Adds `n` operations of a class.
    pub fn add(&mut self, class: InstructionClass, n: u64) {
        if n > 0 {
            *self.counts.entry(class).or_insert(0) += n;
        }
    }

    /// Adds `n` memory accesses attributed to a specific region (in addition
    /// to the [`InstructionClass::Load`]/[`InstructionClass::Store`] issue cost).
    pub fn add_memory(&mut self, region: crate::memory::MemoryRegion, n: u64) {
        if n > 0 {
            *self.loads_by_region.entry(region).or_insert(0) += n;
        }
    }

    /// Count for one class.
    pub fn count(&self, class: InstructionClass) -> u64 {
        self.counts.get(&class).copied().unwrap_or(0)
    }

    /// Memory accesses for one region.
    pub fn memory_count(&self, region: crate::memory::MemoryRegion) -> u64 {
        self.loads_by_region.get(&region).copied().unwrap_or(0)
    }

    /// Iterates over `(class, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (InstructionClass, u64)> + '_ {
        self.counts.iter().map(|(&c, &n)| (c, n))
    }

    /// Iterates over `(region, accesses)` pairs.
    pub fn memory_iter(&self) -> impl Iterator<Item = (crate::memory::MemoryRegion, u64)> + '_ {
        self.loads_by_region.iter().map(|(&r, &n)| (r, n))
    }

    /// Total dynamic operation count (excluding region-attributed accesses).
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Returns `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty() && self.loads_by_region.is_empty()
    }

    /// Merges another bag into this one.
    pub fn merge(&mut self, other: &OpCounts) {
        for (c, n) in other.iter() {
            self.add(c, n);
        }
        for (r, n) in other.memory_iter() {
            self.add_memory(r, n);
        }
    }

    /// Returns a bag with every count divided by `k` (rounding up to at least
    /// one for non-zero counts) — used to attribute per-frame measurements to
    /// a single invocation of a library element.
    pub fn divided(&self, k: u64) -> OpCounts {
        let k = k.max(1);
        let mut out = OpCounts::new();
        for (c, n) in self.iter() {
            out.add(c, (n / k).max(1));
        }
        for (r, n) in self.memory_iter() {
            out.add_memory(r, (n / k).max(1));
        }
        out
    }

    /// Returns a bag with every count multiplied by `k` (e.g. per-granule
    /// counts scaled to a whole frame).
    pub fn scaled(&self, k: u64) -> OpCounts {
        let mut out = OpCounts::new();
        for (c, n) in self.iter() {
            out.add(c, n * k);
        }
        for (r, n) in self.memory_iter() {
            out.add_memory(r, n * k);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryRegion;

    #[test]
    fn sa1110_penalizes_software_float() {
        let m = CostModel::sa1110();
        assert!(
            m.cycles_for(InstructionClass::FloatMulSoft)
                > 30 * m.cycles_for(InstructionClass::IntMul)
        );
        assert!(
            m.cycles_for(InstructionClass::FloatDivSoft)
                > m.cycles_for(InstructionClass::FloatMulSoft)
        );
        assert!(
            m.cycles_for(InstructionClass::LibmCall) > m.cycles_for(InstructionClass::FloatDivSoft)
        );
    }

    #[test]
    fn hardware_fpu_closes_the_gap() {
        let soft = CostModel::sa1110();
        let hard = CostModel::with_hardware_fpu();
        assert!(
            hard.cycles_for(InstructionClass::FloatMulSoft)
                < soft.cycles_for(InstructionClass::FloatMulSoft) / 10
        );
        // Integer costs unchanged.
        assert_eq!(
            hard.cycles_for(InstructionClass::IntAlu),
            soft.cycles_for(InstructionClass::IntAlu)
        );
    }

    #[test]
    fn opcounts_accumulate_and_scale() {
        let mut ops = OpCounts::new();
        assert!(ops.is_empty());
        ops.add(InstructionClass::IntAlu, 10);
        ops.add(InstructionClass::IntAlu, 5);
        ops.add(InstructionClass::IntMul, 2);
        ops.add(InstructionClass::Branch, 0);
        ops.add_memory(MemoryRegion::Sdram, 7);
        assert_eq!(ops.count(InstructionClass::IntAlu), 15);
        assert_eq!(ops.count(InstructionClass::Branch), 0);
        assert_eq!(ops.memory_count(MemoryRegion::Sdram), 7);
        assert_eq!(ops.total(), 17);
        let doubled = ops.scaled(2);
        assert_eq!(doubled.count(InstructionClass::IntAlu), 30);
        assert_eq!(doubled.memory_count(MemoryRegion::Sdram), 14);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = OpCounts::new();
        a.add(InstructionClass::IntMul, 3);
        let mut b = OpCounts::new();
        b.add(InstructionClass::IntMul, 4);
        b.add_memory(MemoryRegion::Sram, 2);
        a.merge(&b);
        assert_eq!(a.count(InstructionClass::IntMul), 7);
        assert_eq!(a.memory_count(MemoryRegion::Sram), 2);
    }

    #[test]
    fn cost_model_totals() {
        let m = CostModel::sa1110();
        let mut ops = OpCounts::new();
        ops.add(InstructionClass::IntAlu, 100);
        ops.add(InstructionClass::FloatMulSoft, 10);
        assert_eq!(
            m.cycles(&ops),
            100 + 10 * m.cycles_for(InstructionClass::FloatMulSoft)
        );
    }

    #[test]
    fn with_cycles_overrides() {
        let m = CostModel::sa1110().with_cycles(InstructionClass::IntDiv, 99);
        assert_eq!(m.cycles_for(InstructionClass::IntDiv), 99);
    }

    #[test]
    fn display_names_are_kebab_case() {
        assert_eq!(InstructionClass::FloatMulSoft.to_string(), "float-mul-soft");
        assert_eq!(InstructionClass::IntAlu.to_string(), "int-alu");
    }
}
