//! Dynamic voltage and frequency scaling (DVFS) operating points.
//!
//! The paper closes with the observation that the optimized decoder runs ~3.5×
//! faster than real time, so the processor frequency and voltage can be
//! lowered while still meeting the real-time deadline, saving additional
//! energy (E ∝ V²). This module models the SA-1110 operating points and that
//! trade-off.

use serde::{Deserialize, Serialize};

/// A frequency/voltage operating point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// Core clock frequency in MHz.
    pub frequency_mhz: f64,
    /// Core supply voltage in volts.
    pub voltage_v: f64,
}

impl OperatingPoint {
    /// Relative energy per cycle compared to another point (∝ V²).
    pub fn energy_per_cycle_ratio(&self, baseline: &OperatingPoint) -> f64 {
        (self.voltage_v / baseline.voltage_v).powi(2)
    }

    /// Seconds taken to execute `cycles` at this frequency.
    pub fn seconds_for(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.frequency_mhz * 1e6)
    }
}

/// The table of supported operating points, sorted by frequency ascending.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DvfsTable {
    points: Vec<OperatingPoint>,
}

impl DvfsTable {
    /// The StrongARM SA-1110 operating points (59–206 MHz core clock range).
    pub fn sa1110() -> Self {
        DvfsTable {
            points: vec![
                OperatingPoint {
                    frequency_mhz: 59.0,
                    voltage_v: 0.90,
                },
                OperatingPoint {
                    frequency_mhz: 73.7,
                    voltage_v: 0.95,
                },
                OperatingPoint {
                    frequency_mhz: 88.5,
                    voltage_v: 1.00,
                },
                OperatingPoint {
                    frequency_mhz: 103.2,
                    voltage_v: 1.05,
                },
                OperatingPoint {
                    frequency_mhz: 118.0,
                    voltage_v: 1.10,
                },
                OperatingPoint {
                    frequency_mhz: 132.7,
                    voltage_v: 1.15,
                },
                OperatingPoint {
                    frequency_mhz: 147.5,
                    voltage_v: 1.20,
                },
                OperatingPoint {
                    frequency_mhz: 162.2,
                    voltage_v: 1.25,
                },
                OperatingPoint {
                    frequency_mhz: 176.9,
                    voltage_v: 1.35,
                },
                OperatingPoint {
                    frequency_mhz: 191.7,
                    voltage_v: 1.45,
                },
                OperatingPoint {
                    frequency_mhz: 206.4,
                    voltage_v: 1.55,
                },
            ],
        }
    }

    /// The fastest (maximum frequency, maximum voltage) point — the paper's
    /// measurement condition.
    pub fn max(&self) -> OperatingPoint {
        *self.points.last().expect("table is never empty")
    }

    /// The slowest point.
    pub fn min(&self) -> OperatingPoint {
        *self.points.first().expect("table is never empty")
    }

    /// All operating points, slowest first.
    pub fn points(&self) -> &[OperatingPoint] {
        &self.points
    }

    /// The slowest operating point that still finishes `cycles_per_deadline`
    /// cycles within `deadline_s` seconds, or `None` when even the fastest
    /// point misses the deadline.
    pub fn slowest_meeting_deadline(
        &self,
        cycles_per_deadline: u64,
        deadline_s: f64,
    ) -> Option<OperatingPoint> {
        self.points
            .iter()
            .copied()
            .find(|p| p.seconds_for(cycles_per_deadline) <= deadline_s)
    }

    /// Energy saving factor obtained by running at the slowest
    /// deadline-meeting point instead of the maximum point (1.0 when no
    /// scaling is possible).
    pub fn energy_saving_factor(&self, cycles_per_deadline: u64, deadline_s: f64) -> f64 {
        match self.slowest_meeting_deadline(cycles_per_deadline, deadline_s) {
            Some(p) => 1.0 / p.energy_per_cycle_ratio(&self.max()),
            None => 1.0,
        }
    }
}

impl Default for DvfsTable {
    fn default() -> Self {
        DvfsTable::sa1110()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_sorted_and_bounded() {
        let t = DvfsTable::sa1110();
        let pts = t.points();
        assert!(pts.len() >= 5);
        for w in pts.windows(2) {
            assert!(w[0].frequency_mhz < w[1].frequency_mhz);
            assert!(w[0].voltage_v <= w[1].voltage_v);
        }
        assert_eq!(t.max().frequency_mhz, 206.4);
        assert_eq!(t.min().frequency_mhz, 59.0);
    }

    #[test]
    fn seconds_for_cycles() {
        let p = OperatingPoint {
            frequency_mhz: 100.0,
            voltage_v: 1.0,
        };
        assert!((p.seconds_for(100_000_000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn slowest_point_meeting_deadline() {
        let t = DvfsTable::sa1110();
        // 1M cycles with a 10 ms deadline: even 59 MHz finishes in ~17 ms? No:
        // 1e6 / 59e6 = 16.9 ms > 10 ms, so the slowest feasible point is the
        // first with freq >= 100 MHz.
        let p = t.slowest_meeting_deadline(1_000_000, 0.010).unwrap();
        assert!(p.frequency_mhz >= 100.0);
        assert!(p.frequency_mhz < 120.0);
        // Impossible deadline.
        assert!(t.slowest_meeting_deadline(10_000_000_000, 0.001).is_none());
    }

    #[test]
    fn energy_saving_grows_with_headroom() {
        let t = DvfsTable::sa1110();
        // Plenty of headroom: big saving.
        let relaxed = t.energy_saving_factor(100_000, 1.0);
        // No headroom: no saving.
        let tight = t.energy_saving_factor(206_000_000, 1.0);
        assert!(relaxed > 2.0, "saving {relaxed}");
        assert!((tight - 1.0).abs() < 1e-9);
        assert!(t.energy_saving_factor(u64::MAX, 0.001) == 1.0);
    }

    #[test]
    fn energy_ratio_is_quadratic_in_voltage() {
        let a = OperatingPoint {
            frequency_mhz: 59.0,
            voltage_v: 0.9,
        };
        let b = OperatingPoint {
            frequency_mhz: 206.4,
            voltage_v: 1.8,
        };
        assert!((a.energy_per_cycle_ratio(&b) - 0.25).abs() < 1e-12);
    }
}
