//! The Badge4 board model.

use serde::{Deserialize, Serialize};

use crate::cost::{CostModel, OpCounts};
use crate::dvfs::{DvfsTable, OperatingPoint};
use crate::energy::EnergyModel;
use crate::memory::{MemoryModel, MemoryRegion};

/// The cost of executing a bag of operations on the board.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecutionCost {
    /// Core cycles including memory stall cycles.
    pub cycles: u64,
    /// Wall-clock seconds at the chosen operating point.
    pub seconds: f64,
    /// Energy in joules (core dynamic + attributable static + memory).
    pub energy_j: f64,
}

impl ExecutionCost {
    /// A zero-cost execution (used as the identity when accumulating).
    pub fn zero() -> Self {
        ExecutionCost {
            cycles: 0,
            seconds: 0.0,
            energy_j: 0.0,
        }
    }

    /// Component-wise sum.
    pub fn add(&self, other: &ExecutionCost) -> ExecutionCost {
        ExecutionCost {
            cycles: self.cycles + other.cycles,
            seconds: self.seconds + other.seconds,
            energy_j: self.energy_j + other.energy_j,
        }
    }

    /// Scales the cost by an integer repetition count.
    pub fn repeated(&self, n: u64) -> ExecutionCost {
        ExecutionCost {
            cycles: self.cycles * n,
            seconds: self.seconds * n as f64,
            energy_j: self.energy_j * n as f64,
        }
    }
}

/// The simulated Badge4: SA-1110 cost model, memory hierarchy, energy model
/// and DVFS table, evaluated at a chosen operating point.
///
/// ```
/// use symmap_platform::machine::Badge4;
/// use symmap_platform::cost::{InstructionClass, OpCounts};
///
/// let badge = Badge4::new();
/// let mut ops = OpCounts::new();
/// ops.add(InstructionClass::IntMac, 64);
/// let cost = badge.cost_of(&ops);
/// assert!(cost.cycles >= 64);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Badge4 {
    cost: CostModel,
    memory: MemoryModel,
    energy: EnergyModel,
    dvfs: DvfsTable,
    operating_point: OperatingPoint,
}

impl Badge4 {
    /// A Badge4 running at the maximum operating point (the paper's
    /// measurement condition).
    pub fn new() -> Self {
        let dvfs = DvfsTable::sa1110();
        Badge4 {
            cost: CostModel::sa1110(),
            memory: MemoryModel::badge4(),
            energy: EnergyModel::badge4(),
            operating_point: dvfs.max(),
            dvfs,
        }
    }

    /// Replaces the instruction cost model (used for the hardware-FPU ablation).
    pub fn with_cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Selects a different operating point.
    pub fn at_operating_point(mut self, point: OperatingPoint) -> Self {
        self.operating_point = point;
        self
    }

    /// The active operating point.
    pub fn operating_point(&self) -> OperatingPoint {
        self.operating_point
    }

    /// The DVFS table of the processor.
    pub fn dvfs(&self) -> &DvfsTable {
        &self.dvfs
    }

    /// The instruction cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// The memory model.
    pub fn memory_model(&self) -> &MemoryModel {
        &self.memory
    }

    /// Cycles, time and energy for executing `ops` at the active operating
    /// point.
    pub fn cost_of(&self, ops: &OpCounts) -> ExecutionCost {
        let mut cycles = self.cost.cycles(ops);
        for (region, n) in ops.memory_iter() {
            cycles += self.memory.access_cycles(region, n);
        }
        let seconds = self.operating_point.seconds_for(cycles);
        let energy_j = self
            .energy
            .energy_j(cycles, ops, &self.memory, &self.operating_point);
        ExecutionCost {
            cycles,
            seconds,
            energy_j,
        }
    }

    /// A textual description of the board (the reproduction of Figure 1's
    /// component inventory).
    pub fn describe(&self) -> String {
        let mut s = String::new();
        s.push_str("Badge4 (SmartBadge IV) embedded system\n");
        s.push_str(&format!(
            "  CPU      : StrongARM SA-1110, {:.1} MHz @ {:.2} V (no FPU; software float emulation)\n",
            self.operating_point.frequency_mhz, self.operating_point.voltage_v
        ));
        s.push_str("  Companion: SA-1111 (peripheral control)\n");
        for region in MemoryRegion::ALL {
            let p = self.memory.params(region);
            s.push_str(&format!(
                "  {:<9}: {} KiB, +{} cycles/access, {:.1} nJ/access\n",
                region.to_string(),
                p.capacity_kib,
                p.access_cycles,
                p.energy_nj
            ));
        }
        s.push_str("  Audio    : CODEC with microphone and speakers\n");
        s.push_str("  Network  : Lucent WLAN card (MP3 stream source)\n");
        s.push_str("  Power    : batteries via DC-DC converter\n");
        s.push_str("  OS       : embedded Linux (SRAM-resident core, remote filesystem)\n");
        s
    }
}

impl Default for Badge4 {
    fn default() -> Self {
        Badge4::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::InstructionClass;

    #[test]
    fn cost_includes_memory_stalls() {
        let badge = Badge4::new();
        let mut ops = OpCounts::new();
        ops.add(InstructionClass::Load, 100);
        let base = badge.cost_of(&ops);
        ops.add_memory(MemoryRegion::Sdram, 100);
        let with_mem = badge.cost_of(&ops);
        assert!(with_mem.cycles > base.cycles);
        assert!(with_mem.energy_j > base.energy_j);
    }

    #[test]
    fn seconds_track_operating_point() {
        let mut ops = OpCounts::new();
        ops.add(InstructionClass::IntAlu, 1_000_000);
        let fast = Badge4::new();
        let slow_point = fast.dvfs().min();
        let slow = Badge4::new().at_operating_point(slow_point);
        let cf = fast.cost_of(&ops);
        let cs = slow.cost_of(&ops);
        assert_eq!(cf.cycles, cs.cycles);
        assert!(cs.seconds > 3.0 * cf.seconds);
        assert!(cs.energy_j < cf.energy_j);
    }

    #[test]
    fn execution_cost_arithmetic() {
        let a = ExecutionCost {
            cycles: 10,
            seconds: 1.0,
            energy_j: 0.5,
        };
        let b = ExecutionCost {
            cycles: 5,
            seconds: 0.5,
            energy_j: 0.25,
        };
        let s = a.add(&b);
        assert_eq!(s.cycles, 15);
        assert!((s.energy_j - 0.75).abs() < 1e-12);
        let r = b.repeated(4);
        assert_eq!(r.cycles, 20);
        assert_eq!(ExecutionCost::zero().cycles, 0);
    }

    #[test]
    fn hardware_fpu_ablation_speeds_up_float() {
        let mut ops = OpCounts::new();
        ops.add(InstructionClass::FloatMulSoft, 10_000);
        let soft = Badge4::new().cost_of(&ops);
        let hard = Badge4::new()
            .with_cost_model(CostModel::with_hardware_fpu())
            .cost_of(&ops);
        assert!(soft.cycles > 10 * hard.cycles);
    }

    #[test]
    fn describe_mentions_all_components() {
        let d = Badge4::new().describe();
        for needle in [
            "SA-1110", "SA-1111", "SRAM", "SDRAM", "FLASH", "WLAN", "CODEC", "DC-DC", "Linux",
        ] {
            assert!(d.contains(needle), "description missing {needle}: {d}");
        }
    }

    #[test]
    fn empty_ops_cost_nothing() {
        let c = Badge4::new().cost_of(&OpCounts::new());
        assert_eq!(c.cycles, 0);
        assert_eq!(c.seconds, 0.0);
        assert_eq!(c.energy_j, 0.0);
    }
}
