//! Model-checker regressions: the faithful kernels must pass exhaustively
//! within the step bound, and the deliberately seeded bugs (torn adoption,
//! racy two-step steal) must be re-detected — the checker's reason to
//! exist is that these mutants cannot slip through.

use symmap_analysis::model::{cache::AdoptionModel, check, deque::DequeModel, replay, Config};

#[test]
fn faithful_kernels_pass_exhaustively() {
    for (name, report) in [
        (
            "adoption/2",
            check(&AdoptionModel::new(2), Config::default()),
        ),
        (
            "adoption/3",
            check(&AdoptionModel::new(3), Config::default()),
        ),
        (
            "deque/2w4j",
            check(&DequeModel::new(2, 4), Config::default()),
        ),
        (
            "deque/3w3j",
            check(&DequeModel::new(3, 3), Config::default()),
        ),
    ] {
        assert!(
            report.passed(),
            "{name}: violation={:?} truncated={}",
            report.violation,
            report.truncated_schedules
        );
        assert!(report.executions > 1, "{name}: explored nothing");
    }
}

#[test]
fn adoption_three_threads_explores_the_full_miss_overlap() {
    // With 3 threads and 3 atomic steps each, the all-miss interleavings
    // alone number 9!/(3!)^3 = 1680; hit-paths shorten some schedules, so
    // the total complete executions must be at least that order.
    let report = check(&AdoptionModel::new(3), Config::default());
    assert!(report.passed());
    assert!(
        report.executions >= 1000,
        "suspiciously small exploration: {} executions",
        report.executions
    );
}

#[test]
fn seeded_torn_adoption_is_redetected() {
    for threads in [2, 3] {
        let model = AdoptionModel::torn_adoption(threads);
        let violation = check(&model, Config::default())
            .violation
            .unwrap_or_else(|| panic!("torn adoption with {threads} threads not caught"));
        // The witness schedule replays to the same violation — the report
        // is a reproducible counterexample, not a heisenbug.
        let replayed = replay(&model, &violation.schedule).expect("witness must replay");
        assert_eq!(replayed.message, violation.message);
        assert_eq!(replayed.schedule, violation.schedule);
    }
}

#[test]
fn seeded_racy_steal_is_redetected() {
    for (workers, jobs) in [(2, 3), (3, 3)] {
        let model = DequeModel::racy_steal(workers, jobs);
        let violation = check(&model, Config::default())
            .violation
            .unwrap_or_else(|| {
                panic!("racy steal with {workers} workers / {jobs} jobs not caught")
            });
        assert!(
            violation.message.contains("duplicated") || violation.message.contains("lost"),
            "unexpected failure mode: {}",
            violation.message
        );
        let replayed = replay(&model, &violation.schedule).expect("witness must replay");
        assert_eq!(replayed.message, violation.message);
    }
}

#[test]
fn exploration_is_deterministic() {
    // Same model, same config → byte-identical report, including which
    // violation is found first. The checker obeys the determinism policy it
    // guards.
    let a = check(&DequeModel::racy_steal(2, 3), Config::default());
    let b = check(&DequeModel::racy_steal(2, 3), Config::default());
    assert_eq!(a.executions, b.executions);
    assert_eq!(a.steps, b.steps);
    assert_eq!(a.violation, b.violation);
}

#[test]
fn step_bound_truncation_is_reported_not_silent() {
    let report = check(&DequeModel::new(2, 4), Config { max_steps: 3 });
    assert!(report.truncated_schedules > 0);
    assert!(
        !report.passed(),
        "a truncated run must not claim exhaustiveness"
    );
}
