//! Lint self-tests over the known-bad fixture tree
//! (`crates/analysis/fixtures/`, a miniature workspace layout so the
//! path-scoped rules — D3's exact-path confinement, the bench exemption —
//! apply to fixtures exactly as they do to the real tree), plus the
//! lint-cleanliness gate for the real workspace itself.

use std::path::{Path, PathBuf};

use symmap_analysis::lint::{self, Diagnostic, Rule};

fn fixture(rel: &str) -> Vec<Diagnostic> {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let source =
        std::fs::read_to_string(root.join(rel)).unwrap_or_else(|e| panic!("fixture {rel}: {e}"));
    lint::lint_source(rel, &source)
}

fn rules(diags: &[Diagnostic]) -> Vec<Rule> {
    diags.iter().map(|d| d.rule).collect()
}

#[test]
fn d1_fixture_flags_each_iteration_site_once() {
    let diags = fixture("crates/algebra/src/unordered_iter.rs");
    assert_eq!(rules(&diags), vec![Rule::D1; 4], "{diags:?}");
    // One per construct: `.iter()`, the `for` loop, `.keys()` through the
    // type alias, `.drain()` on a let binding — and nothing on the `.get`.
    let messages: Vec<&str> = diags.iter().map(|d| d.message.as_str()).collect();
    assert!(messages.iter().any(|m| m.contains(".iter()")));
    assert!(messages.iter().any(|m| m.contains("for … in")));
    assert!(messages.iter().any(|m| m.contains(".keys()")));
    assert!(messages.iter().any(|m| m.contains(".drain()")));
}

#[test]
fn d1_fixture_catches_hash_ordered_candidate_scans_in_a_sharded_index() {
    // The failure mode the fingerprint index (crates/libchar/src/library.rs)
    // designs around: shards keyed by support in a HashMap, scanned in hash
    // order. D1 must flag every iteration over the hash maps and stay quiet
    // on the point lookups the real index restricts itself to.
    let diags = fixture("crates/libchar/src/sharded_index.rs");
    assert_eq!(rules(&diags), vec![Rule::D1; 3], "{diags:?}");
    let messages: Vec<&str> = diags.iter().map(|d| d.message.as_str()).collect();
    assert!(messages.iter().any(|m| m.contains(".values()")));
    assert!(messages.iter().any(|m| m.contains("for … in")));
    assert!(messages.iter().any(|m| m.contains(".keys()")));
}

#[test]
fn d2_fixture_flags_clock_and_thread_identity() {
    let diags = fixture("crates/engine/src/timing_leak.rs");
    assert_eq!(rules(&diags), vec![Rule::D2; 4], "{diags:?}");
}

#[test]
fn d3_fixture_flags_floats_only_under_exact_paths() {
    let diags = fixture("crates/algebra/src/float_leak.rs");
    assert_eq!(rules(&diags), vec![Rule::D3; 4], "{diags:?}");
    // The same source outside the exact paths is not D3's business.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let source = std::fs::read_to_string(root.join("crates/algebra/src/float_leak.rs")).unwrap();
    assert!(lint::lint_source("crates/engine/src/float_leak.rs", &source).is_empty());
}

#[test]
fn d4_fixture_flags_only_the_undocumented_block() {
    let diags = fixture("crates/engine/src/missing_safety.rs");
    assert_eq!(rules(&diags), vec![Rule::D4], "{diags:?}");
    assert_eq!(diags[0].line, 5);
}

#[test]
fn d5_fixture_flags_env_reads() {
    let diags = fixture("crates/engine/src/env_leak.rs");
    assert_eq!(rules(&diags), vec![Rule::D5; 2], "{diags:?}");
}

#[test]
fn d6_fixture_flags_direct_recorder_use() {
    let diags = fixture("crates/algebra/src/direct_recorder.rs");
    assert_eq!(rules(&diags), vec![Rule::D6; 5], "{diags:?}");
    // One per raw entry point; the reasoned allow at the bottom suppresses
    // its site silently.
    let messages: Vec<&str> = diags.iter().map(|d| d.message.as_str()).collect();
    for pat in [
        "TraceCollector",
        "install_job_scope",
        "install_compute_scope",
        "record_raw",
        "sched_raw",
    ] {
        assert!(
            messages.iter().any(|m| m.contains(pat)),
            "no D6 diagnostic mentions {pat}: {messages:?}"
        );
    }
}

#[test]
fn d6_exempts_the_trace_crate_and_engine_entry_points() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let source =
        std::fs::read_to_string(root.join("crates/algebra/src/direct_recorder.rs")).unwrap();
    for exempt in [
        "crates/trace/src/recorder.rs",
        "crates/engine/src/batch.rs",
        "crates/engine/src/pool.rs",
    ] {
        // (On an exempt path the fixture's reasoned D6 allow correctly goes
        // stale — A2 — so assert the absence of D6 findings, not emptiness.)
        assert!(
            lint::lint_source(exempt, &source)
                .iter()
                .all(|d| d.rule != Rule::D6),
            "{exempt} must be exempt from D6"
        );
    }
    // Everywhere else in the engine is NOT exempt.
    assert!(lint::lint_source("crates/engine/src/decompose.rs", &source)
        .iter()
        .any(|d| d.rule == Rule::D6));
}

#[test]
fn allow_meta_rules_fire_on_the_stale_allow_fixture() {
    let diags = fixture("crates/engine/src/stale_allow.rs");
    let mut got = rules(&diags);
    got.sort();
    // A reasoned allow suppresses its D2 silently; the reasonless one still
    // suppresses but earns A1; the pointless one earns A2; the typo A3.
    assert_eq!(got, vec![Rule::A1, Rule::A2, Rule::A3], "{diags:?}");
}

#[test]
fn bench_paths_are_exempt_from_timing_and_env_rules() {
    let diags = fixture("crates/bench/src/allowed_paths.rs");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn every_fixture_violation_exits_nonzero_through_the_cli_contract() {
    // The CLI maps any nonempty diagnostic list to exit 1; equivalently,
    // each bad fixture must produce at least one diagnostic and the clean
    // one none. (Exercising the real binary would need a subprocess; the
    // mapping from diagnostics to the exit code is a two-line `if`.)
    for (rel, expect_dirty) in [
        ("crates/algebra/src/unordered_iter.rs", true),
        ("crates/algebra/src/float_leak.rs", true),
        ("crates/engine/src/timing_leak.rs", true),
        ("crates/engine/src/missing_safety.rs", true),
        ("crates/engine/src/env_leak.rs", true),
        ("crates/engine/src/stale_allow.rs", true),
        ("crates/algebra/src/direct_recorder.rs", true),
        ("crates/bench/src/allowed_paths.rs", false),
    ] {
        assert_eq!(
            !fixture(rel).is_empty(),
            expect_dirty,
            "fixture {rel} dirtiness mismatch"
        );
    }
}

#[test]
fn the_workspace_itself_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root above crates/analysis")
        .to_path_buf();
    assert!(
        root.join("Cargo.toml").exists(),
        "expected workspace root at {}",
        root.display()
    );
    let report = lint::lint_tree(&root).expect("workspace scan");
    assert!(
        report.is_clean(),
        "workspace must stay determinism-lint clean (this is the CI gate):\n{}",
        report
            .diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Sanity: the scan actually visited the tree, not an empty directory.
    assert!(report.files_scanned > 50, "{} files", report.files_scanned);
}

#[test]
fn json_output_is_parseable_shape() {
    let diags = fixture("crates/engine/src/env_leak.rs");
    let json = lint::to_json_array(&diags);
    assert!(json.starts_with('[') && json.ends_with(']'));
    assert_eq!(json.matches("\"rule\":\"D5\"").count(), 2);
}
