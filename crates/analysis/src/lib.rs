//! Correctness tooling for the symmap workspace.
//!
//! The repo's load-bearing guarantee is the determinism policy (DESIGN.md):
//! mapping output is byte-identical at any worker count, cache shape, or
//! prefilter setting. That guarantee is enforced by two complementary
//! subsystems in this crate, neither of which depends on anything outside
//! the standard library (consistent with the vendored-offline build):
//!
//! * [`lint`] — `symmap-lint`, a workspace-aware source lint that mechanizes
//!   the repo-specific determinism rules (no unordered hash iteration, no
//!   timing or environment reads on algorithmic paths, no floats in the
//!   exact algebra, `// SAFETY:` on every `unsafe` block) with a
//!   mandatory-reason `lint:allow` escape hatch and stale-allow detection.
//! * [`model`] — `symmap-modelcheck`, a bounded interleaving model checker
//!   (a miniature loom on stable Rust): the two concurrency kernels — the
//!   shared Gröbner cache's compute-outside-lock/adopt-winner shard
//!   protocol and the batch pool's own-front/steal-back deque — are
//!   abstracted into small cloneable state machines and *every* interleaving
//!   of 2–3 model threads is enumerated up to a step bound, asserting the
//!   adoption race stays linearizable and the deque neither loses nor
//!   duplicates jobs. Deliberately mutated models (a torn adoption, a racy
//!   two-step steal) prove the checker actually detects the bug classes it
//!   exists for.
//!
//! See DESIGN.md §7 for the rule table, the scanner's soundness limits, and
//! the model-vs-implementation fidelity argument.

#![deny(rustdoc::broken_intra_doc_links)]

pub mod lint;
pub mod model;
