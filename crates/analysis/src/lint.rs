//! The determinism lint: a hand-rolled, workspace-aware source scanner
//! enforcing the repo-specific rules that keep mapping output byte-identical
//! (DESIGN.md "Determinism policy" and §7).
//!
//! # Rules
//!
//! | id | rule |
//! |----|------|
//! | D1 | no unordered iteration over `HashMap`/`HashSet` (`for`, `.iter()`, `.keys()`, `.values()`, `.drain()`, …) — point lookups are fine |
//! | D2 | no `Instant::now`/`SystemTime`/`thread::current().id()` on algorithmic paths (timing is confined to `crates/bench/`) |
//! | D3 | no `f32`/`f64` arithmetic inside the exact paths (`crates/algebra/src/`, `crates/numeric/src/`) |
//! | D4 | every `unsafe` block carries a `// SAFETY:` comment |
//! | D5 | no `std::env::var` outside config/CI-switch sites (`crates/bench/` is the designated bench-config reader) |
//! | D6 | no direct trace-recorder/collector construction outside `crates/trace/` and the engine's batch/pool entry points — instrumentation goes through the `trace_event!`/`trace_span!`/`trace_sched!` macros |
//!
//! Violations are suppressed with a **mandatory-reason** escape hatch:
//!
//! * `lint:allow(Dn): why` in a comment trailing the offending line (or on
//!   the comment line directly above it) suppresses rule `Dn` on that line;
//! * `lint:allow-file(Dn): why` anywhere in a file suppresses the rule for
//!   the whole file (used for the float-boundary modules whose entire job
//!   is `f64` conversion).
//!
//! The hatch is itself linted: an allow without a reason is `A1`, an allow
//! that suppresses nothing (stale) is `A2`, and an allow naming an unknown
//! rule is `A3`. Meta-diagnostics cannot be allowed away.
//!
//! # Soundness and limits
//!
//! This is a line/token scanner, not a compiler plugin — deliberately, so it
//! runs with zero dependencies and no nightly. Comments, string/char
//! literals (including raw strings) are stripped with a real state machine
//! before matching, so prose never trips a rule. The remaining limits are
//! documented in DESIGN.md §7: D1 tracks hash-typed names *per file* (a
//! `HashMap` smuggled across a file boundary behind a bare type alias is
//! missed; a non-hash field that shares a flagged field's name is
//! over-flagged — the escape hatch is the pressure valve), D2/D5 match
//! rustfmt-normalized spellings, and macro-generated code is not expanded.

use std::collections::BTreeSet;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// A determinism rule (or meta-rule) identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Unordered iteration over a hash-keyed container.
    D1,
    /// Wall-clock / thread-identity read on an algorithmic path.
    D2,
    /// Float arithmetic inside an exact-algebra module.
    D3,
    /// `unsafe` block without a `// SAFETY:` comment.
    D4,
    /// Environment read outside a config/CI-switch site.
    D5,
    /// Direct trace-recorder use outside the trace crate / engine entry
    /// points.
    D6,
    /// `lint:allow` without a reason.
    A1,
    /// Stale `lint:allow` (suppresses nothing).
    A2,
    /// `lint:allow` naming an unknown rule.
    A3,
}

impl Rule {
    /// The short id used in diagnostics and allow directives.
    pub fn id(self) -> &'static str {
        match self {
            Rule::D1 => "D1",
            Rule::D2 => "D2",
            Rule::D3 => "D3",
            Rule::D4 => "D4",
            Rule::D5 => "D5",
            Rule::D6 => "D6",
            Rule::A1 => "A1",
            Rule::A2 => "A2",
            Rule::A3 => "A3",
        }
    }

    /// Parses a *suppressible* rule id (the `Dn` rules only — the `An`
    /// meta-diagnostics cannot be allowed away).
    pub fn parse_allowable(s: &str) -> Option<Rule> {
        match s {
            "D1" => Some(Rule::D1),
            "D2" => Some(Rule::D2),
            "D3" => Some(Rule::D3),
            "D4" => Some(Rule::D4),
            "D5" => Some(Rule::D5),
            "D6" => Some(Rule::D6),
            _ => None,
        }
    }
}

/// Path prefixes (root-relative, forward slashes) a rule is confined to.
/// Empty means the rule applies to the whole tree.
fn applies_under(rule: Rule) -> &'static [&'static str] {
    match rule {
        Rule::D3 => &["crates/algebra/src/", "crates/numeric/src/"],
        _ => &[],
    }
}

/// Path prefixes exempt from a rule *without* an annotation: the bench crate
/// is the designated home of timing (`D2`) and of the `SYMMAP_QUICK` /
/// `SYMMAP_BENCH_*` CI-switch reads (`D5`).
fn allowed_under(rule: Rule) -> &'static [&'static str] {
    match rule {
        Rule::D2 | Rule::D5 => &["crates/bench/"],
        // The trace crate implements the recorder; the engine's batch module
        // owns the collector lifecycle and the pool→sched adapter, and the
        // pool defines the observer hook. Everyone else uses the macros.
        Rule::D6 => &[
            "crates/trace/",
            "crates/engine/src/batch.rs",
            "crates/engine/src/pool.rs",
        ],
        _ => &[],
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Root-relative path (forward slashes) of the offending file.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based byte column of the match.
    pub column: usize,
    /// The rule that fired.
    pub rule: Rule,
    /// Human-readable description of the finding.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "error[{}]: {}", self.rule.id(), self.message)?;
        write!(f, "  --> {}:{}:{}", self.path, self.line, self.column)
    }
}

impl Diagnostic {
    /// The diagnostic as one JSON object (hand-rolled; the lint takes no
    /// dependencies, serde included).
    pub fn to_json(&self) -> String {
        format!(
            r#"{{"path":"{}","line":{},"column":{},"rule":"{}","message":"{}"}}"#,
            json_escape(&self.path),
            self.line,
            self.column,
            self.rule.id(),
            json_escape(&self.message)
        )
    }
}

/// Renders a diagnostic list as a JSON array.
pub fn to_json_array(diags: &[Diagnostic]) -> String {
    let items: Vec<String> = diags.iter().map(Diagnostic::to_json).collect();
    format!("[{}]", items.join(","))
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Source stripping: comments and literals out, columns preserved.
// ---------------------------------------------------------------------------

/// A source file with literals and comments blanked out of the code view and
/// comment text collected per line (for `SAFETY:` and `lint:allow` parsing).
/// Stripped bytes are replaced by spaces so columns in diagnostics match the
/// original source.
#[derive(Debug)]
struct Stripped {
    /// Code with comments/strings/chars blanked, one entry per source line.
    code: Vec<String>,
    /// Concatenated comment text per line (empty when the line has none).
    comments: Vec<String>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StripState {
    Code,
    LineComment,
    /// Block comment with nesting depth.
    BlockComment(u32),
    /// String literal; the flag records a pending backslash escape.
    Str {
        escaped: bool,
    },
    /// Raw string literal closed by `"` followed by this many `#`s.
    RawStr {
        hashes: u32,
    },
    /// Char literal; the flag records a pending backslash escape.
    Char {
        escaped: bool,
    },
}

fn strip(source: &str) -> Stripped {
    let bytes = source.as_bytes();
    let mut code = Vec::new();
    let mut comments = Vec::new();
    let mut code_line = String::new();
    let mut comment_line = String::new();
    let mut state = StripState::Code;
    let mut i = 0;

    // Treats the source as bytes: every delimiter that matters is ASCII, and
    // non-ASCII bytes inside literals/comments are copied or blanked as-is.
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            code.push(std::mem::take(&mut code_line));
            comments.push(std::mem::take(&mut comment_line));
            if state == StripState::LineComment {
                state = StripState::Code;
            }
            i += 1;
            continue;
        }
        match state {
            StripState::Code => {
                if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
                    state = StripState::LineComment;
                    code_line.push_str("  ");
                    i += 2;
                } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    state = StripState::BlockComment(1);
                    code_line.push_str("  ");
                    i += 2;
                } else if b == b'"' {
                    state = StripState::Str { escaped: false };
                    code_line.push(' ');
                    i += 1;
                } else if let Some(hashes) = raw_string_open(bytes, i) {
                    // `r"`, `r#"`, `br##"` … — blank the whole opener.
                    let opener = 1 + usize::from(bytes[i] == b'b') + hashes as usize + 1;
                    state = StripState::RawStr { hashes };
                    for _ in 0..opener {
                        code_line.push(' ');
                    }
                    i += opener;
                } else if b == b'\'' && char_literal_opens(bytes, i) {
                    state = StripState::Char { escaped: false };
                    code_line.push(' ');
                    i += 1;
                } else {
                    code_line.push(b as char);
                    i += 1;
                }
            }
            StripState::LineComment => {
                comment_line.push(b as char);
                code_line.push(' ');
                i += 1;
            }
            StripState::BlockComment(depth) => {
                if b == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    state = if depth == 1 {
                        StripState::Code
                    } else {
                        StripState::BlockComment(depth - 1)
                    };
                    code_line.push_str("  ");
                    i += 2;
                } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    state = StripState::BlockComment(depth + 1);
                    code_line.push_str("  ");
                    i += 2;
                } else {
                    comment_line.push(b as char);
                    code_line.push(' ');
                    i += 1;
                }
            }
            StripState::Str { escaped } => {
                if escaped {
                    state = StripState::Str { escaped: false };
                } else if b == b'\\' {
                    state = StripState::Str { escaped: true };
                } else if b == b'"' {
                    state = StripState::Code;
                }
                code_line.push(' ');
                i += 1;
            }
            StripState::RawStr { hashes } => {
                if b == b'"' && raw_string_closes(bytes, i, hashes) {
                    state = StripState::Code;
                    for _ in 0..=hashes {
                        code_line.push(' ');
                    }
                    i += 1 + hashes as usize;
                } else {
                    code_line.push(' ');
                    i += 1;
                }
            }
            StripState::Char { escaped } => {
                if escaped {
                    state = StripState::Char { escaped: false };
                } else if b == b'\\' {
                    state = StripState::Char { escaped: true };
                } else if b == b'\'' {
                    state = StripState::Code;
                }
                code_line.push(' ');
                i += 1;
            }
        }
    }
    code.push(code_line);
    comments.push(comment_line);
    Stripped { code, comments }
}

/// Does a raw string literal (`r"`, `r#"`, `br"`, …) open at `i`? Returns
/// the number of `#`s. Guards against the `r`/`b` being the tail of an
/// identifier (`var"` is not a raw string).
fn raw_string_open(bytes: &[u8], i: usize) -> Option<u32> {
    if i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_') {
        return None;
    }
    let mut j = i;
    if bytes.get(j) == Some(&b'b') {
        j += 1;
    }
    if bytes.get(j) != Some(&b'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    (bytes.get(j) == Some(&b'"')).then_some(hashes)
}

fn raw_string_closes(bytes: &[u8], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| bytes.get(i + k) == Some(&b'#'))
}

/// Distinguishes a char literal from a lifetime: `'x'` and `'\n'` open a
/// literal; `'a` in `<'a>` does not.
fn char_literal_opens(bytes: &[u8], i: usize) -> bool {
    match bytes.get(i + 1) {
        Some(b'\\') => true,
        Some(_) => bytes.get(i + 2) == Some(&b'\''),
        None => false,
    }
}

// ---------------------------------------------------------------------------
// Tokenizer (runs on stripped code lines).
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    /// Numeric literal; `true` when it is a float literal.
    Num {
        float: bool,
    },
    /// `::`
    PathSep,
    Punct(char),
}

/// A token plus its 0-based byte column.
type SpannedTok = (usize, Tok);

fn tokenize(line: &str) -> Vec<SpannedTok> {
    let bytes = line.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b.is_ascii_whitespace() {
            i += 1;
        } else if b.is_ascii_alphabetic() || b == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            toks.push((start, Tok::Ident(line[start..i].to_string())));
        } else if b.is_ascii_digit() {
            let start = i;
            let mut float = false;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                // `0x…`/suffixes ride along; `e`/`E` exponents only count as
                // float when followed by a digit or sign (so `0xE` stays int).
                if (bytes[i] == b'e' || bytes[i] == b'E')
                    && !line[start..].starts_with("0x")
                    && matches!(bytes.get(i + 1), Some(c) if c.is_ascii_digit() || *c == b'+' || *c == b'-')
                {
                    float = true;
                    i += 2;
                    continue;
                }
                i += 1;
            }
            // A `.` continues the literal as a float only when not a range
            // (`0..n`) and not a method call (`1.max(2)`).
            if i < bytes.len() && bytes[i] == b'.' {
                match bytes.get(i + 1) {
                    Some(c) if c.is_ascii_digit() => {
                        float = true;
                        i += 1;
                        while i < bytes.len()
                            && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
                        {
                            i += 1;
                        }
                    }
                    // `0..n` range, or a method call like `1.max(2)`.
                    Some(&b'.') => {}
                    Some(c) if c.is_ascii_alphabetic() || *c == b'_' => {}
                    _ => {
                        // Trailing-dot float (`1.`).
                        float = true;
                        i += 1;
                    }
                }
            }
            toks.push((start, Tok::Num { float }));
        } else if b == b':' && bytes.get(i + 1) == Some(&b':') {
            toks.push((i, Tok::PathSep));
            i += 2;
        } else {
            toks.push((i, Tok::Punct(b as char)));
            i += 1;
        }
    }
    toks
}

fn ident_at(toks: &[SpannedTok], idx: usize) -> Option<&str> {
    match toks.get(idx) {
        Some((_, Tok::Ident(s))) => Some(s),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Allow directives.
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct AllowDirective {
    rule: Option<Rule>,
    /// Raw rule text, for the unknown-rule diagnostic.
    rule_text: String,
    has_reason: bool,
    file_level: bool,
    /// 0-based line the directive was written on.
    at_line: usize,
    /// 0-based line the directive suppresses (ignored when `file_level`).
    target_line: usize,
    /// 1-based column of the directive within its line.
    column: usize,
    used: bool,
}

/// Parses every `lint:allow(…)` / `lint:allow-file(…)` directive out of the
/// per-line comment text. A directive on a comment-only line targets the
/// next line that carries code.
fn parse_allows(stripped: &Stripped) -> Vec<AllowDirective> {
    let mut out = Vec::new();
    for (line_idx, comment) in stripped.comments.iter().enumerate() {
        let mut search_from = 0;
        while let Some(found) = comment[search_from..].find("lint:allow") {
            let at = search_from + found;
            let mut rest = &comment[at + "lint:allow".len()..];
            let file_level = rest.starts_with("-file");
            if file_level {
                rest = &rest["-file".len()..];
            }
            search_from = at + "lint:allow".len();
            let Some(inner) = rest.strip_prefix('(') else {
                continue;
            };
            let Some(close) = inner.find(')') else {
                continue;
            };
            let rule_text = inner[..close].trim().to_string();
            // Only id-shaped text (an uppercase letter plus digits) is a
            // directive; prose like "lint:allow(rule)" in documentation is
            // not. Typos within the shape (e.g. a nonexistent D-number)
            // still reach the unknown-rule diagnostic below.
            let id_shaped = {
                let mut chars = rule_text.chars();
                chars.next().is_some_and(|c| c.is_ascii_uppercase())
                    && rule_text.len() > 1
                    && chars.all(|c| c.is_ascii_digit())
            };
            if !id_shaped {
                continue;
            }
            let after = inner[close + 1..].trim_start();
            let has_reason = after
                .strip_prefix(':')
                .is_some_and(|r| !r.trim().is_empty());
            let target_line = if stripped.code[line_idx].trim().is_empty() {
                // Comment-only line: the directive covers the next code line.
                (line_idx + 1..stripped.code.len())
                    .find(|&l| !stripped.code[l].trim().is_empty())
                    .unwrap_or(line_idx)
            } else {
                line_idx
            };
            out.push(AllowDirective {
                rule: Rule::parse_allowable(&rule_text),
                rule_text,
                has_reason,
                file_level,
                at_line: line_idx,
                target_line,
                column: at + 1,
                used: false,
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// The rules.
// ---------------------------------------------------------------------------

/// Iteration methods that expose hash-container order (point lookups like
/// `.get`, `.entry`, `.contains_key`, `.remove` are deliberately absent).
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

/// Pass 1 of D1: names declared (in this file) with a hash-container type.
/// Seeds with the container names themselves and grows through `type`
/// aliases, `let` bindings, and `name: Type` field/param declarations.
fn collect_hash_names(code_lines: &[String]) -> BTreeSet<String> {
    let mut names: BTreeSet<String> = ["HashMap", "HashSet"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    // Two sweeps so a type alias declared after its first field use still
    // taints that field (file order is not declaration order in Rust).
    for _ in 0..2 {
        for line in code_lines {
            let toks = tokenize(line);
            let hash_positions: Vec<usize> = toks
                .iter()
                .enumerate()
                .filter_map(|(i, (_, t))| match t {
                    Tok::Ident(s) if names.contains(s) => Some(i),
                    _ => None,
                })
                .collect();
            if hash_positions.is_empty() {
                continue;
            }
            // `type Alias = …Hash…;`
            if ident_at(&toks, 0) == Some("type") {
                if let Some(alias) = ident_at(&toks, 1) {
                    names.insert(alias.to_string());
                    continue;
                }
            }
            for &hp in &hash_positions {
                // `let [mut] name … = …Hash…` — the binding is hash-typed.
                let let_pos = toks[..hp]
                    .iter()
                    .position(|(_, t)| matches!(t, Tok::Ident(s) if s == "let"));
                if let Some(lp) = let_pos {
                    let mut n = lp + 1;
                    if ident_at(&toks, n) == Some("mut") {
                        n += 1;
                    }
                    if let Some(name) = ident_at(&toks, n) {
                        names.insert(name.to_string());
                        continue;
                    }
                }
                // `name: …Hash…` (struct field, fn param) — scan back from
                // the container token for the nearest single `:` and take the
                // identifier before it.
                for k in (0..hp).rev() {
                    match &toks[k].1 {
                        Tok::Punct(':') => {
                            if let Some(name) = ident_at(&toks, k.wrapping_sub(1)) {
                                names.insert(name.to_string());
                            }
                            break;
                        }
                        // A statement/field boundary before any `:` means the
                        // container appears in expression position.
                        Tok::Punct(';') | Tok::Punct('{') | Tok::Punct('}') => break,
                        _ => {}
                    }
                }
            }
        }
    }
    names
}

fn check_d1(path: &str, stripped: &Stripped, out: &mut Vec<Diagnostic>) {
    let hash_names = collect_hash_names(&stripped.code);
    for (line_idx, line) in stripped.code.iter().enumerate() {
        let toks = tokenize(line);
        // `<recv>.method(` where method exposes iteration order.
        for i in 0..toks.len() {
            if let Tok::Ident(m) = &toks[i].1 {
                if ITER_METHODS.contains(&m.as_str())
                    && matches!(toks.get(i + 1), Some((_, Tok::Punct('('))))
                    && matches!(toks.get(i.wrapping_sub(1)), Some((_, Tok::Punct('.'))))
                {
                    if let Some(recv) = ident_at(&toks, i.wrapping_sub(2)) {
                        if hash_names.contains(recv) {
                            out.push(Diagnostic {
                                path: path.to_string(),
                                line: line_idx + 1,
                                column: toks[i].0 + 1,
                                rule: Rule::D1,
                                message: format!(
                                    "unordered iteration: `.{m}()` on hash-keyed `{recv}` \
                                     (use a BTreeMap/BTreeSet, sort explicitly, or justify \
                                     order-freedom with lint:allow)"
                                ),
                            });
                        }
                    }
                }
            }
        }
        // `for … in [&[mut]] <path-ending-in-hash-name> {`
        if let Some(for_pos) = toks
            .iter()
            .position(|(_, t)| matches!(t, Tok::Ident(s) if s == "for"))
        {
            if let Some(in_pos) = toks[for_pos..]
                .iter()
                .position(|(_, t)| matches!(t, Tok::Ident(s) if s == "in"))
                .map(|p| p + for_pos)
            {
                // Tokens between `in` and the loop body's `{`.
                let mut expr: Vec<&Tok> = Vec::new();
                for st in &toks[in_pos + 1..] {
                    if matches!(st.1, Tok::Punct('{')) {
                        break;
                    }
                    expr.push(&st.1);
                }
                // Strip leading `&`/`mut`/`*`, require a pure path (no
                // calls: a call's order is the callee's business, caught at
                // its `.iter()` site), and test the final segment.
                let mut start = 0;
                while start < expr.len() {
                    let skip = match expr[start] {
                        Tok::Punct('&') | Tok::Punct('*') => true,
                        Tok::Ident(s) => s == "mut",
                        _ => false,
                    };
                    if !skip {
                        break;
                    }
                    start += 1;
                }
                let expr = &expr[start..];
                let pure_path = !expr.is_empty()
                    && expr
                        .iter()
                        .all(|t| matches!(t, Tok::Ident(_) | Tok::PathSep | Tok::Punct('.')));
                if pure_path {
                    if let Some(Tok::Ident(last)) = expr.last() {
                        if hash_names.contains(last) {
                            out.push(Diagnostic {
                                path: path.to_string(),
                                line: line_idx + 1,
                                column: toks[for_pos].0 + 1,
                                rule: Rule::D1,
                                message: format!(
                                    "unordered iteration: `for … in` over hash-keyed `{last}`"
                                ),
                            });
                        }
                    }
                }
            }
        }
    }
}

/// Spellings D2 flags (rustfmt keeps these on one line; see module docs for
/// the normalization caveat).
const D2_PATTERNS: &[&str] = &["Instant::now", "SystemTime", "thread::current().id()"];

fn check_d2(path: &str, stripped: &Stripped, out: &mut Vec<Diagnostic>) {
    for (line_idx, line) in stripped.code.iter().enumerate() {
        let compact: String = line.chars().filter(|c| !c.is_whitespace()).collect();
        for pat in D2_PATTERNS {
            // Match on the whitespace-free line, report the column of the
            // pattern's head token in the original line.
            if compact.contains(pat) {
                let head = pat.split(['(', ':', '.']).next().unwrap_or(pat);
                let column = line.find(head).map_or(1, |c| c + 1);
                out.push(Diagnostic {
                    path: path.to_string(),
                    line: line_idx + 1,
                    column,
                    rule: Rule::D2,
                    message: format!(
                        "`{pat}` on a non-bench path: wall clocks and thread identity \
                         must never influence algorithmic results"
                    ),
                });
            }
        }
    }
}

fn check_d3(path: &str, stripped: &Stripped, out: &mut Vec<Diagnostic>) {
    for (line_idx, line) in stripped.code.iter().enumerate() {
        for (col, tok) in tokenize(line) {
            let hit = match &tok {
                Tok::Ident(s) => s == "f32" || s == "f64",
                Tok::Num { float } => *float,
                _ => false,
            };
            if hit {
                out.push(Diagnostic {
                    path: path.to_string(),
                    line: line_idx + 1,
                    column: col + 1,
                    rule: Rule::D3,
                    message: "float type or literal inside an exact-arithmetic module \
                              (exact paths are Rational/BigInt/Fp64 only)"
                        .to_string(),
                });
                break; // One diagnostic per line keeps float-heavy lines readable.
            }
        }
    }
}

fn check_d4(path: &str, stripped: &Stripped, out: &mut Vec<Diagnostic>) {
    for (line_idx, line) in stripped.code.iter().enumerate() {
        for (col, tok) in tokenize(line) {
            if !matches!(&tok, Tok::Ident(s) if s == "unsafe") {
                continue;
            }
            // A `// SAFETY:` comment may trail the line or sit in the
            // contiguous comment block directly above it.
            let mut documented = stripped.comments[line_idx].contains("SAFETY");
            let mut l = line_idx;
            while !documented && l > 0 {
                l -= 1;
                let comment = &stripped.comments[l];
                if stripped.code[l].trim().is_empty() && !comment.is_empty() {
                    documented = comment.contains("SAFETY");
                } else {
                    break;
                }
            }
            if !documented {
                out.push(Diagnostic {
                    path: path.to_string(),
                    line: line_idx + 1,
                    column: col + 1,
                    rule: Rule::D4,
                    message: "`unsafe` without a `// SAFETY:` comment documenting why the \
                              invariants hold"
                        .to_string(),
                });
            }
        }
    }
}

/// Spellings D6 flags: the recorder's raw entry points and the collector
/// type itself. The `trace_event!`-family macros expand to these *inside*
/// `crates/trace/` (exempt), so macro users never match.
const D6_PATTERNS: &[&str] = &[
    "TraceCollector",
    "install_job_scope",
    "install_compute_scope",
    "record_raw",
    "sched_raw",
    "sched_event",
];

fn check_d6(path: &str, stripped: &Stripped, out: &mut Vec<Diagnostic>) {
    for (line_idx, line) in stripped.code.iter().enumerate() {
        for pat in D6_PATTERNS {
            if let Some(col) = line.find(pat) {
                out.push(Diagnostic {
                    path: path.to_string(),
                    line: line_idx + 1,
                    column: col + 1,
                    rule: Rule::D6,
                    message: format!(
                        "direct trace-recorder use (`{pat}`) outside crates/trace and the \
                         engine entry points: instrument through the trace_event!/\
                         trace_span!/trace_sched! macros"
                    ),
                });
                break; // One diagnostic per line.
            }
        }
    }
}

fn check_d5(path: &str, stripped: &Stripped, out: &mut Vec<Diagnostic>) {
    for (line_idx, line) in stripped.code.iter().enumerate() {
        if let Some(col) = line.find("env::var") {
            out.push(Diagnostic {
                path: path.to_string(),
                line: line_idx + 1,
                column: col + 1,
                rule: Rule::D5,
                message: "environment read outside a config/CI-switch site: process \
                          environment must never steer algorithmic paths"
                    .to_string(),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Driver.
// ---------------------------------------------------------------------------

fn path_in(path: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| path.starts_with(p))
}

/// Lints one file's source. `rel_path` is the root-relative path with
/// forward slashes — rule scoping (`D3`'s exact-path confinement, the bench
/// exemptions for `D2`/`D5`) keys off it.
pub fn lint_source(rel_path: &str, source: &str) -> Vec<Diagnostic> {
    let stripped = strip(source);
    let mut raw = Vec::new();
    for rule in [Rule::D1, Rule::D2, Rule::D3, Rule::D4, Rule::D5, Rule::D6] {
        let scope = applies_under(rule);
        if !scope.is_empty() && !path_in(rel_path, scope) {
            continue;
        }
        if path_in(rel_path, allowed_under(rule)) {
            continue;
        }
        match rule {
            Rule::D1 => check_d1(rel_path, &stripped, &mut raw),
            Rule::D2 => check_d2(rel_path, &stripped, &mut raw),
            Rule::D3 => check_d3(rel_path, &stripped, &mut raw),
            Rule::D4 => check_d4(rel_path, &stripped, &mut raw),
            Rule::D5 => check_d5(rel_path, &stripped, &mut raw),
            Rule::D6 => check_d6(rel_path, &stripped, &mut raw),
            _ => unreachable!("meta rules are not checkers"),
        }
    }

    let mut allows = parse_allows(&stripped);
    let mut out = Vec::new();
    for diag in raw {
        let mut suppressed = false;
        for allow in allows.iter_mut() {
            if allow.rule == Some(diag.rule)
                && (allow.file_level || allow.target_line + 1 == diag.line)
            {
                allow.used = true;
                suppressed = true;
            }
        }
        if !suppressed {
            out.push(diag);
        }
    }
    for allow in &allows {
        let line = allow.at_line + 1;
        match allow.rule {
            None => out.push(Diagnostic {
                path: rel_path.to_string(),
                line,
                column: allow.column,
                rule: Rule::A3,
                message: format!(
                    "lint:allow names unknown rule `{}` (known: D1–D6)",
                    allow.rule_text
                ),
            }),
            Some(rule) => {
                if !allow.has_reason {
                    out.push(Diagnostic {
                        path: rel_path.to_string(),
                        line,
                        column: allow.column,
                        rule: Rule::A1,
                        message: format!(
                            "lint:allow({}) without a reason — write \
                             `lint:allow({}): why this site is order-free/legitimate`",
                            rule.id(),
                            rule.id()
                        ),
                    });
                }
                if !allow.used {
                    out.push(Diagnostic {
                        path: rel_path.to_string(),
                        line,
                        column: allow.column,
                        rule: Rule::A2,
                        message: format!(
                            "stale lint:allow({}): it suppresses nothing — the hazard it \
                             excused is gone, so remove the annotation",
                            rule.id()
                        ),
                    });
                }
            }
        }
    }
    out.sort_by_key(|d| (d.line, d.column, d.rule));
    out
}

/// Directories never scanned: build output, the vendored dependency shims
/// (external code simulating external crates), VCS internals, and the lint's
/// own deliberately-bad fixture tree.
const EXCLUDED_DIRS: &[&str] = &["target", "vendor", ".git"];
const EXCLUDED_PREFIXES: &[&str] = &["crates/analysis/fixtures"];

/// Recursively collects the `.rs` files under `root`, as root-relative
/// forward-slash paths, in sorted order — the scan itself must not depend on
/// the OS's directory iteration order (the lint practices what it preaches).
pub fn collect_rust_files(root: &Path) -> io::Result<Vec<String>> {
    let mut files = Vec::new();
    let mut stack = vec![PathBuf::new()];
    while let Some(rel_dir) = stack.pop() {
        let abs = root.join(&rel_dir);
        let mut entries: Vec<_> = std::fs::read_dir(&abs)?
            .collect::<io::Result<Vec<_>>>()?
            .into_iter()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        entries.sort();
        for name in entries {
            let rel = if rel_dir.as_os_str().is_empty() {
                PathBuf::from(&name)
            } else {
                rel_dir.join(&name)
            };
            let rel_str = rel.to_string_lossy().replace('\\', "/");
            let abs_child = root.join(&rel);
            if abs_child.is_dir() {
                if EXCLUDED_DIRS.contains(&name.as_str())
                    || EXCLUDED_PREFIXES.contains(&rel_str.as_str())
                {
                    continue;
                }
                stack.push(rel);
            } else if name.ends_with(".rs") {
                files.push(rel_str);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// What a full lint run found.
#[derive(Debug)]
pub struct LintReport {
    /// All diagnostics, in (path, line, column) order.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// `true` when the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Lints every `.rs` file under `root` (excluding `target/`, `vendor/`, and
/// the fixture tree).
pub fn lint_tree(root: &Path) -> io::Result<LintReport> {
    let files = collect_rust_files(root)?;
    let mut diagnostics = Vec::new();
    let files_scanned = files.len();
    for rel in files {
        let source = std::fs::read_to_string(root.join(&rel))?;
        diagnostics.extend(lint_source(&rel, &source));
    }
    Ok(LintReport {
        diagnostics,
        files_scanned,
    })
}

/// Finds the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule.id()).collect()
    }

    #[test]
    fn stripper_ignores_comments_strings_and_chars() {
        let src = "// Instant::now in a comment is fine\n\
                   fn f() -> usize {\n\
                   let s = \"Instant::now in a string is fine\";\n\
                   let raw = r#\"Instant::now in a raw string\"#;\n\
                   let c = 'i'; let lt: &'static str = s;\n\
                   /* block Instant::now */ let _ = (raw, c, lt); 1\n\
                   }\n";
        let diags = lint_source("crates/engine/src/x.rs", src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn d1_flags_iteration_not_point_lookups() {
        let src = "use std::collections::HashMap;\n\
                   struct S { entries: HashMap<u32, u32> }\n\
                   impl S {\n\
                   fn ok(&self) -> Option<&u32> { self.entries.get(&1) }\n\
                   fn bad(&self) -> usize { self.entries.iter().count() }\n\
                   fn bad2(&self) { for (_k, _v) in &self.entries {} }\n\
                   }\n";
        let diags = lint_source("crates/engine/src/x.rs", src);
        assert_eq!(rules_of(&diags), vec!["D1", "D1"]);
        assert_eq!(diags[0].line, 5);
        assert_eq!(diags[1].line, 6);
    }

    #[test]
    fn d1_tracks_type_aliases_and_let_bindings() {
        let src = "type Shard = std::collections::HashMap<u32, u32>;\n\
                   fn f(m: &Shard) { for _ in m.keys() {} }\n\
                   fn g() { let mut set = std::collections::HashSet::new();\n\
                   set.insert(1);\n\
                   let _n: usize = set.drain().count(); }\n";
        let diags = lint_source("crates/engine/src/x.rs", src);
        assert_eq!(rules_of(&diags), vec!["D1", "D1"]);
    }

    #[test]
    fn d1_leaves_btreemap_alone() {
        let src = "use std::collections::BTreeMap;\n\
                   fn f(m: &BTreeMap<u32, u32>) -> u32 { m.values().sum() }\n";
        assert!(lint_source("crates/engine/src/x.rs", src).is_empty());
    }

    #[test]
    fn d2_and_d5_exempt_the_bench_crate() {
        let src = "fn f() { let _t = std::time::Instant::now(); \
                   let _q = std::env::var(\"SYMMAP_QUICK\"); }\n";
        assert_eq!(
            rules_of(&lint_source("crates/engine/src/x.rs", src)),
            vec!["D2", "D5"]
        );
        assert!(lint_source("crates/bench/src/x.rs", src).is_empty());
    }

    #[test]
    fn d3_is_confined_to_exact_paths() {
        let src = "fn half(x: f64) -> f64 { x * 0.5 }\n";
        assert_eq!(
            rules_of(&lint_source("crates/algebra/src/x.rs", src)),
            vec!["D3"]
        );
        assert!(lint_source("crates/engine/src/x.rs", src).is_empty());
        // Integer ranges and method calls on ints are not float literals.
        let ints = "fn f() -> usize { (0..10).map(|i| i.max(2)).sum() }\n";
        assert!(lint_source("crates/numeric/src/x.rs", ints).is_empty());
    }

    #[test]
    fn d6_flags_direct_recorder_use_outside_entry_points() {
        let src = "fn f() { let c = symmap_trace::TraceCollector::new(1); drop(c); }\n";
        assert_eq!(
            rules_of(&lint_source("crates/engine/src/decompose.rs", src)),
            vec!["D6"]
        );
        // The trace crate and the engine's batch/pool entry points are exempt.
        assert!(lint_source("crates/trace/src/recorder.rs", src).is_empty());
        assert!(lint_source("crates/engine/src/batch.rs", src).is_empty());
        // Macro call sites never match: the raw entry-point names only occur
        // in the macro expansion, which lives in crates/trace.
        let macro_user = "fn f() { symmap_trace::trace_event!(\"x\"); }\n";
        assert!(lint_source("crates/engine/src/decompose.rs", macro_user).is_empty());
    }

    #[test]
    fn d4_accepts_trailing_and_preceding_safety_comments() {
        let bad = "fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
        assert_eq!(
            rules_of(&lint_source("crates/engine/src/x.rs", bad)),
            vec!["D4"]
        );
        let trailing = "fn f(p: *const u8) -> u8 { unsafe { *p } } // SAFETY: caller contract\n";
        assert!(lint_source("crates/engine/src/x.rs", trailing).is_empty());
        let above = "fn f(p: *const u8) -> u8 {\n\
                     // SAFETY: p is valid by the caller contract.\n\
                     unsafe { *p }\n\
                     }\n";
        assert!(lint_source("crates/engine/src/x.rs", above).is_empty());
    }

    #[test]
    fn allow_suppresses_and_requires_reason() {
        let ok = "fn f() { let _t = std::time::Instant::now(); } \
                  // lint:allow(D2): stats-only wall clock\n";
        assert!(lint_source("crates/engine/src/x.rs", ok).is_empty());
        let missing = "fn f() { let _t = std::time::Instant::now(); } // lint:allow(D2)\n";
        assert_eq!(
            rules_of(&lint_source("crates/engine/src/x.rs", missing)),
            vec!["A1"]
        );
    }

    #[test]
    fn allow_on_preceding_comment_line_targets_next_code_line() {
        let src = "fn f() {\n\
                   // lint:allow(D2): stats-only wall clock\n\
                   let _t = std::time::Instant::now();\n\
                   }\n";
        assert!(lint_source("crates/engine/src/x.rs", src).is_empty());
    }

    #[test]
    fn stale_and_unknown_allows_are_reported() {
        let stale = "fn f() { let _x = 1; } // lint:allow(D2): nothing here anymore\n";
        assert_eq!(
            rules_of(&lint_source("crates/engine/src/x.rs", stale)),
            vec!["A2"]
        );
        let unknown = "fn f() {} // lint:allow(D9): no such rule\n";
        assert_eq!(
            rules_of(&lint_source("crates/engine/src/x.rs", unknown)),
            vec!["A3"]
        );
    }

    #[test]
    fn file_level_allow_covers_the_file_and_goes_stale() {
        let src = "// lint:allow-file(D3): float-boundary module by design\n\
                   fn a(x: f64) -> f64 { x + 1.0 }\n\
                   fn b(y: f32) -> f32 { y * 2.0 }\n";
        assert!(lint_source("crates/numeric/src/x.rs", src).is_empty());
        let stale = "// lint:allow-file(D3): nothing floaty left\n\
                     fn a(x: u32) -> u32 { x + 1 }\n";
        assert_eq!(
            rules_of(&lint_source("crates/numeric/src/x.rs", stale)),
            vec!["A2"]
        );
    }

    #[test]
    fn json_rendering_escapes() {
        let d = Diagnostic {
            path: "a\"b.rs".to_string(),
            line: 3,
            column: 7,
            rule: Rule::D1,
            message: "x\ny".to_string(),
        };
        assert_eq!(
            d.to_json(),
            r#"{"path":"a\"b.rs","line":3,"column":7,"rule":"D1","message":"x\ny"}"#
        );
        assert_eq!(to_json_array(&[]), "[]");
    }
}
