//! `symmap-lint` — the workspace determinism lint.
//!
//! ```text
//! symmap-lint [--json] [--root DIR] [FILES...]
//! ```
//!
//! With no `FILES`, lints every `.rs` file under the workspace root
//! (excluding `target/`, `vendor/`, and the fixture tree). With `FILES`,
//! lints exactly those (root-relative) paths — used by the CI fixture
//! inversion check. `--root` overrides the root (default: walk up from the
//! current directory to the first `[workspace]` manifest). `--json` emits
//! the diagnostics as a JSON array instead of rustc-style text.
//!
//! Exit codes: `0` clean, `1` violations found, `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use symmap_analysis::lint;

struct Args {
    json: bool,
    root: Option<PathBuf>,
    files: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        json: false,
        root: None,
        files: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => args.json = true,
            "--root" => {
                let dir = it.next().ok_or("--root needs a directory argument")?;
                args.root = Some(PathBuf::from(dir));
            }
            "--help" | "-h" => {
                return Err("usage: symmap-lint [--json] [--root DIR] [FILES...]".to_string())
            }
            f if !f.starts_with('-') => args.files.push(f.to_string()),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let root = match args.root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("symmap-lint: cannot read current directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "symmap-lint: no `[workspace]` Cargo.toml above {} — pass --root",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    let report = if args.files.is_empty() {
        match lint::lint_tree(&root) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("symmap-lint: scan failed under {}: {e}", root.display());
                return ExitCode::from(2);
            }
        }
    } else {
        let mut diagnostics = Vec::new();
        for rel in &args.files {
            let source = match std::fs::read_to_string(root.join(rel)) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("symmap-lint: cannot read {rel}: {e}");
                    return ExitCode::from(2);
                }
            };
            diagnostics.extend(lint::lint_source(rel, &source));
        }
        lint::LintReport {
            diagnostics,
            files_scanned: args.files.len(),
        }
    };

    if args.json {
        println!("{}", lint::to_json_array(&report.diagnostics));
    } else {
        for diag in &report.diagnostics {
            println!("{diag}\n");
        }
        if report.is_clean() {
            println!(
                "symmap-lint: {} files scanned, determinism rules D1–D6 clean",
                report.files_scanned
            );
        } else {
            println!(
                "symmap-lint: {} violation(s) across {} files scanned",
                report.diagnostics.len(),
                report.files_scanned
            );
        }
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
