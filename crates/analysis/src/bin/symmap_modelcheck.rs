//! `symmap-modelcheck` — exhaustive bounded interleaving check of the two
//! concurrency kernels (the cache adoption protocol and the pool deque),
//! plus a self-test that the seeded-bug mutants are detected.
//!
//! ```text
//! symmap-modelcheck [--skip-mutants]
//! ```
//!
//! Exit codes: `0` every faithful model passes exhaustively *and* every
//! mutant is caught; `1` otherwise.

use std::process::ExitCode;

use symmap_analysis::model::{cache::AdoptionModel, check, deque::DequeModel, Config, Model};

/// Runs a faithful model that must pass. Returns `false` on failure.
fn expect_pass<M: Model>(name: &str, model: &M) -> bool {
    let report = check(model, Config::default());
    match (&report.violation, report.truncated_schedules) {
        (None, 0) => {
            println!(
                "PASS  {name}: {} interleavings, {} steps, all invariants hold",
                report.executions, report.steps
            );
            true
        }
        (None, truncated) => {
            println!("FAIL  {name}: {truncated} schedules hit the step bound — run not exhaustive");
            false
        }
        (Some(violation), _) => {
            println!("FAIL  {name}: {violation}");
            false
        }
    }
}

/// Runs a deliberately broken model that the checker must catch. Returns
/// `false` when the bug slips through.
fn expect_caught<M: Model>(name: &str, model: &M) -> bool {
    let report = check(model, Config::default());
    match report.violation {
        Some(violation) => {
            println!(
                "PASS  {name}: seeded bug caught after {} interleavings — {}",
                report.executions + 1,
                violation
            );
            true
        }
        None => {
            println!(
                "FAIL  {name}: seeded bug NOT detected in {} interleavings",
                report.executions
            );
            false
        }
    }
}

fn main() -> ExitCode {
    let skip_mutants = std::env::args().any(|a| a == "--skip-mutants");
    let mut ok = true;

    println!("== cache adoption protocol (groebner.rs shards) ==");
    ok &= expect_pass("adoption 2 threads", &AdoptionModel::new(2));
    ok &= expect_pass("adoption 3 threads", &AdoptionModel::new(3));

    println!("== pool deque discipline (pool.rs own-front/steal-back) ==");
    ok &= expect_pass("deque 2 workers / 4 jobs", &DequeModel::new(2, 4));
    ok &= expect_pass("deque 2 workers / 5 jobs", &DequeModel::new(2, 5));
    ok &= expect_pass("deque 3 workers / 3 jobs", &DequeModel::new(3, 3));
    ok &= expect_pass("deque 3 workers / 4 jobs", &DequeModel::new(3, 4));

    if !skip_mutants {
        println!("== seeded-bug mutants (the checker must catch these) ==");
        ok &= expect_caught("torn adoption 2 threads", &AdoptionModel::torn_adoption(2));
        ok &= expect_caught("torn adoption 3 threads", &AdoptionModel::torn_adoption(3));
        ok &= expect_caught(
            "racy steal 2 workers / 3 jobs",
            &DequeModel::racy_steal(2, 3),
        );
        ok &= expect_caught(
            "racy steal 3 workers / 3 jobs",
            &DequeModel::racy_steal(3, 3),
        );
    }

    if ok {
        println!("symmap-modelcheck: all kernels verified, all mutants detected");
        ExitCode::SUCCESS
    } else {
        println!("symmap-modelcheck: FAILURES above");
        ExitCode::from(1)
    }
}
