//! Model of the shared Gröbner cache's compute-outside-lock / adopt-winner
//! shard protocol (`crates/algebra/src/groebner.rs`, `basis` /
//! `local_basis` / `fp_basis_for`).
//!
//! The real protocol, per thread, for one cache key:
//!
//! 1. lock the shard; on hit, record the cached `Arc` and return (hit++);
//!    on miss, miss++ and unlock;
//! 2. compute the basis **outside** the lock (this is the expensive part —
//!    holding the shard lock across a Gröbner run would serialize the
//!    pool);
//! 3. re-lock; if some other thread inserted the key while we computed,
//!    **adopt** the winner's `Arc` and drop our own result; otherwise
//!    insert ours (insert++).
//!
//! The model keeps exactly that step structure — each critical section is
//! one atomic step (see the fidelity note in [`crate::model`]) — with all
//! threads racing on one key of one shard, the worst case. What must hold:
//!
//! * **linearizable adoption**: exactly one thread's result is ever
//!   published, everyone ends up holding that same result;
//! * **no torn entry**: the shard never holds two entries for the key
//!   (`len ≤ 1` in every reachable state);
//! * **counter consistency**: `hits + misses == threads`, `inserts == 1`,
//!   and at least one miss (the key starts absent).
//!
//! The [`AdoptionModel::torn_adoption`] mutant deletes the re-check in
//! step 3 — every computing thread blindly inserts. The checker must
//! catch it (duplicate entry / over-count), proving the harness detects
//! the bug class this protocol exists to prevent.

use super::Model;

/// Per-thread program counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pc {
    /// About to take the shard lock and probe the key.
    Lookup,
    /// Missed; computing the basis outside the lock.
    Compute,
    /// Computed; about to re-lock and adopt-or-insert.
    Publish,
    /// Finished, holding a result.
    Done,
}

/// The shard protocol with `n` threads racing on one absent key.
#[derive(Debug, Clone)]
pub struct AdoptionModel {
    pc: Vec<Pc>,
    /// The shard's single slot for the contended key: `Some(tid)` records
    /// which thread's computed value is published.
    entry: Option<usize>,
    /// The shard's entry count for the key — tracked separately from
    /// `entry` precisely so a torn double-insert is *observable* as
    /// `len == 2` rather than silently collapsing.
    len: usize,
    inserts: usize,
    hits: usize,
    misses: usize,
    /// Which thread's value each thread ended up holding.
    results: Vec<Option<usize>>,
    /// Mutant switch: skip the existence re-check on publish.
    torn_adoption: bool,
}

impl AdoptionModel {
    /// The faithful protocol with `threads` racing threads.
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 2, "a race needs at least two threads");
        AdoptionModel {
            pc: vec![Pc::Lookup; threads],
            entry: None,
            len: 0,
            inserts: 0,
            hits: 0,
            misses: 0,
            results: vec![None; threads],
            torn_adoption: false,
        }
    }

    /// The seeded-bug mutant: publish inserts unconditionally, without
    /// re-checking whether a winner already exists.
    pub fn torn_adoption(threads: usize) -> Self {
        AdoptionModel {
            torn_adoption: true,
            ..Self::new(threads)
        }
    }
}

impl Model for AdoptionModel {
    fn thread_count(&self) -> usize {
        self.pc.len()
    }

    fn enabled(&self, tid: usize) -> bool {
        self.pc[tid] != Pc::Done
    }

    fn step(&mut self, tid: usize) {
        match self.pc[tid] {
            // Critical section 1: probe under the shard lock.
            Pc::Lookup => match self.entry {
                Some(winner) => {
                    self.hits += 1;
                    self.results[tid] = Some(winner);
                    self.pc[tid] = Pc::Done;
                }
                None => {
                    self.misses += 1;
                    self.pc[tid] = Pc::Compute;
                }
            },
            // The Gröbner run itself: no shared state touched.
            Pc::Compute => self.pc[tid] = Pc::Publish,
            // Critical section 2: adopt the winner or insert our result.
            Pc::Publish => {
                match self.entry {
                    Some(winner) if !self.torn_adoption => {
                        // Someone beat us while we computed: adopt theirs,
                        // drop ours.
                        self.results[tid] = Some(winner);
                    }
                    _ => {
                        self.entry = Some(tid);
                        self.len += 1;
                        self.inserts += 1;
                        self.results[tid] = Some(tid);
                    }
                }
                self.pc[tid] = Pc::Done;
            }
            Pc::Done => unreachable!("stepped a terminated thread"),
        }
    }

    fn check_state(&self) -> Option<String> {
        if self.len > 1 {
            return Some(format!(
                "torn entry: shard holds {} entries for one key",
                self.len
            ));
        }
        if (self.len == 1) != self.entry.is_some() {
            return Some(format!(
                "shard accounting torn: len = {} but entry = {:?}",
                self.len, self.entry
            ));
        }
        None
    }

    fn check_final(&self) -> Option<String> {
        let n = self.thread_count();
        if self.inserts != 1 {
            return Some(format!(
                "adoption not linearizable: {} inserts for one key (want exactly 1)",
                self.inserts
            ));
        }
        if self.len != 1 {
            return Some(format!("final shard len {} (want 1)", self.len));
        }
        if self.hits + self.misses != n {
            return Some(format!(
                "counter drift: hits {} + misses {} != threads {}",
                self.hits, self.misses, n
            ));
        }
        if self.misses == 0 {
            return Some("no thread missed, yet the key started absent".to_string());
        }
        let winner = self.entry.expect("len == 1 implies a published entry");
        for (tid, result) in self.results.iter().enumerate() {
            if *result != Some(winner) {
                return Some(format!(
                    "thread {tid} holds {result:?} but the published winner is {winner} \
                     — results diverge"
                ));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{check, replay, Config};

    #[test]
    fn faithful_protocol_is_linearizable_two_threads() {
        let report = check(&AdoptionModel::new(2), Config::default());
        assert!(report.passed(), "{:?}", report.violation);
        // 2 threads × ≤3 steps each, hits shorten a path: > 1 execution,
        // bounded by C(6,3) = 20.
        assert!(report.executions > 1 && report.executions <= 20);
    }

    #[test]
    fn faithful_protocol_is_linearizable_three_threads() {
        let report = check(&AdoptionModel::new(3), Config::default());
        assert!(report.passed(), "{:?}", report.violation);
        // All-miss schedules alone contribute 9!/(3!)^3 = 1680 orderings'
        // worth of structure; hit paths prune some. Sanity-bound it.
        assert!(report.executions > 100, "got {}", report.executions);
    }

    #[test]
    fn torn_adoption_mutant_is_caught() {
        let report = check(&AdoptionModel::torn_adoption(2), Config::default());
        let violation = report.violation.expect("the torn adoption must be found");
        assert!(
            violation.message.contains("torn entry") || violation.message.contains("inserts"),
            "unexpected message: {}",
            violation.message
        );
        // The witness replays deterministically.
        let replayed =
            replay(&AdoptionModel::torn_adoption(2), &violation.schedule).expect("reproduces");
        assert_eq!(replayed.message, violation.message);
    }

    #[test]
    fn mutant_witness_is_the_compute_overlap() {
        // The classic interleaving: both threads miss, both compute, both
        // publish — the mutant double-inserts. The faithful model survives
        // the same schedule.
        let schedule = [0, 1, 0, 1, 0, 1];
        assert!(replay(&AdoptionModel::torn_adoption(2), &schedule).is_some());
        assert!(replay(&AdoptionModel::new(2), &schedule).is_none());
    }
}
