//! Model of the batch pool's own-front / steal-back deque
//! (`crates/engine/src/pool.rs`, `run_batch` / `worker_loop`).
//!
//! The real pool deals jobs round-robin into per-worker deques up front (no
//! jobs are produced later). Each worker then loops: pop the **front** of
//! its own deque and run the job; when its own deque is empty, scan the
//! other workers in ring order and steal from the **back** of the first
//! non-empty victim; when every queue it can see is empty, terminate. Each
//! pop — own or steal — is one mutex-guarded operation, so the model makes
//! each a single atomic step (fidelity note in [`crate::model`]).
//!
//! Running the job is folded into the pop that claimed it rather than
//! modeled as its own step: execution touches only the claiming worker's
//! private state (`executed` is written by exactly one thread per job and
//! only *read* by the invariant checks), so giving it a separate step
//! would multiply interleavings ~20× without making any additional
//! behavior observable — a standard partial-order reduction.
//!
//! What must hold, in every interleaving:
//!
//! * **no duplicated job**: `executed[j] ≤ 1` in every reachable state;
//! * **no lost job**: at termination every job has run exactly once and
//!   every queue is empty.
//!
//! The [`DequeModel::racy_steal`] mutant splits the steal into a *peek* of
//! the victim's back (stashing the job id) and a later *blind pop* that
//! discards whatever is at the back by then and runs the stashed id — the
//! classic TOCTOU a lock-free thief commits when it validates the wrong
//! thing. Racing against the owner (or a second thief) this both
//! duplicates the stashed job and loses the blindly-popped one; the
//! checker must catch it.

use std::collections::VecDeque;

use super::Model;

/// Per-worker program counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pc {
    /// About to pop the front of its own deque (or start scanning).
    PopOwn,
    /// Own deque empty; about to probe victim `(me + k) % n`.
    Scan { k: usize },
    /// Mutant only: peeked `job` at the back of `victim`, pop still pending.
    StealPeeked { victim: usize, job: usize },
    /// Saw every queue empty; terminated.
    Done,
}

/// The pool's deque discipline with jobs dealt round-robin, as `run_batch`
/// deals them.
#[derive(Debug, Clone)]
pub struct DequeModel {
    pc: Vec<Pc>,
    queues: Vec<VecDeque<usize>>,
    /// Times each job has run.
    executed: Vec<u32>,
    /// Mutant switch: steal via peek-then-blind-pop instead of one atomic
    /// pop.
    racy_steal: bool,
}

impl DequeModel {
    /// The faithful discipline: `jobs` jobs dealt round-robin over
    /// `workers` deques.
    pub fn new(workers: usize, jobs: usize) -> Self {
        assert!(workers >= 2, "a race needs at least two workers");
        let mut queues = vec![VecDeque::new(); workers];
        for job in 0..jobs {
            queues[job % workers].push_back(job);
        }
        DequeModel {
            pc: vec![Pc::PopOwn; workers],
            queues,
            executed: vec![0; jobs],
            racy_steal: false,
        }
    }

    /// The seeded-bug mutant with the two-step steal.
    pub fn racy_steal(workers: usize, jobs: usize) -> Self {
        DequeModel {
            racy_steal: true,
            ..Self::new(workers, jobs)
        }
    }

    /// Number of jobs in the model.
    pub fn job_count(&self) -> usize {
        self.executed.len()
    }
}

impl Model for DequeModel {
    fn thread_count(&self) -> usize {
        self.pc.len()
    }

    fn enabled(&self, tid: usize) -> bool {
        self.pc[tid] != Pc::Done
    }

    fn step(&mut self, tid: usize) {
        let n = self.thread_count();
        match self.pc[tid] {
            // One locked operation: pop own front (and run the claimed job).
            Pc::PopOwn => match self.queues[tid].pop_front() {
                Some(job) => self.executed[job] += 1,
                None => self.pc[tid] = Pc::Scan { k: 1 },
            },
            // One locked operation per victim probe.
            Pc::Scan { k } => {
                if k >= n {
                    // Scanned the whole ring and found nothing: done.
                    self.pc[tid] = Pc::Done;
                    return;
                }
                let victim = (tid + k) % n;
                if self.racy_steal {
                    // Mutant: *peek* the back now, pop later — the
                    // validate-then-act window the faithful code does not
                    // have.
                    match self.queues[victim].back().copied() {
                        Some(job) => self.pc[tid] = Pc::StealPeeked { victim, job },
                        None => self.pc[tid] = Pc::Scan { k: k + 1 },
                    }
                } else {
                    // Faithful: the steal is one atomic pop (and the
                    // stolen job runs). Stealers then return to their own
                    // loop; the next own pop finds it empty and rescans.
                    match self.queues[victim].pop_back() {
                        Some(job) => {
                            self.executed[job] += 1;
                            self.pc[tid] = Pc::PopOwn;
                        }
                        None => self.pc[tid] = Pc::Scan { k: k + 1 },
                    }
                }
            }
            // Mutant only: blindly pop whatever is at the back *now*,
            // discard it, and run the job peeked earlier.
            Pc::StealPeeked { victim, job } => {
                let _whatever_is_there_now = self.queues[victim].pop_back();
                self.executed[job] += 1;
                self.pc[tid] = Pc::PopOwn;
            }
            Pc::Done => unreachable!("stepped a terminated worker"),
        }
    }

    fn check_state(&self) -> Option<String> {
        for (job, &count) in self.executed.iter().enumerate() {
            if count > 1 {
                return Some(format!("job {job} executed {count} times (duplicated)"));
            }
        }
        None
    }

    fn check_final(&self) -> Option<String> {
        for (job, &count) in self.executed.iter().enumerate() {
            if count != 1 {
                return Some(format!(
                    "job {job} executed {count} times at termination (lost or duplicated)"
                ));
            }
        }
        for (worker, queue) in self.queues.iter().enumerate() {
            if !queue.is_empty() {
                return Some(format!(
                    "worker {worker}'s queue still holds {} jobs after every worker terminated",
                    queue.len()
                ));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{check, replay, Config};

    #[test]
    fn faithful_deque_neither_loses_nor_duplicates_two_workers() {
        let report = check(&DequeModel::new(2, 4), Config::default());
        assert!(report.passed(), "{:?}", report.violation);
        assert!(report.executions > 1);
    }

    #[test]
    fn faithful_deque_neither_loses_nor_duplicates_three_workers() {
        let report = check(&DequeModel::new(3, 3), Config::default());
        assert!(report.passed(), "{:?}", report.violation);
    }

    #[test]
    fn racy_steal_mutant_is_caught() {
        let report = check(&DequeModel::racy_steal(2, 3), Config::default());
        let violation = report.violation.expect("the racy steal must be found");
        assert!(
            violation.message.contains("duplicated") || violation.message.contains("lost"),
            "unexpected message: {}",
            violation.message
        );
        let replayed =
            replay(&DequeModel::racy_steal(2, 3), &violation.schedule).expect("reproduces");
        assert_eq!(replayed.message, violation.message);
    }

    #[test]
    fn faithful_model_survives_the_mutant_witness() {
        let violation = check(&DequeModel::racy_steal(2, 3), Config::default())
            .violation
            .expect("mutant violation");
        // Replaying the mutant's witness against the faithful model must
        // not reproduce the bug. The faithful model has no StealPeeked
        // state, so the schedule may stop fitting partway — walk it only
        // while it fits.
        let mut state = DequeModel::new(2, 3);
        for &tid in &violation.schedule {
            if !state.enabled(tid) {
                break;
            }
            state.step(tid);
            assert!(
                state.check_state().is_none(),
                "faithful model violated by the mutant's witness"
            );
        }
    }
}
