//! A bounded interleaving model checker: a miniature loom on stable Rust.
//!
//! A [`Model`] is a small, cloneable state machine standing in for one of
//! the repo's concurrency kernels. Each model thread sits at some program
//! counter; [`Model::step`] advances one thread by one *atomic* step. The
//! explorer ([`check`]) owns the scheduler: at every decision point it
//! clones the state and recursively tries **every** enabled thread, so all
//! interleavings up to [`Config::max_steps`] are enumerated — the
//! nondeterminism the OS scheduler only samples, exhaustively.
//!
//! Two invariant hooks run the assertions: [`Model::check_state`] after
//! every step (safety that must hold in all reachable states) and
//! [`Model::check_final`] once no thread is enabled (end-to-end accounting).
//! A violation carries the exact schedule that produced it; [`replay`] runs
//! that schedule deterministically for debugging.
//!
//! # Fidelity
//!
//! The models collapse each mutex critical section of the real code into a
//! single atomic step. That is sound for data-race-free lock-based code:
//! two critical sections on the same mutex never interleave, so the only
//! observable schedules are orderings *of whole sections* — exactly what
//! the models enumerate. What the models deliberately do **not** cover is
//! relaxed-memory reordering inside `unsafe` atomics (the interner's
//! `AtomicPtr` publication in `var.rs` is argued by `// SAFETY:` comment,
//! not model-checked). See DESIGN.md §7 for the full argument.

pub mod cache;
pub mod deque;

/// A concurrency kernel abstracted into an exhaustively explorable state
/// machine.
pub trait Model: Clone {
    /// Number of model threads.
    fn thread_count(&self) -> usize;

    /// Can thread `tid` take a step in the current state? Threads at their
    /// terminal program counter return `false`.
    fn enabled(&self, tid: usize) -> bool;

    /// Advances thread `tid` by one atomic step. Only called when
    /// [`Model::enabled`] returns `true` for `tid`.
    fn step(&mut self, tid: usize);

    /// Safety invariant checked after every step, in every reachable state.
    /// Returns a description of the violation, or `None` when the state is
    /// fine.
    fn check_state(&self) -> Option<String>;

    /// Liveness/accounting invariant checked once every thread has
    /// terminated.
    fn check_final(&self) -> Option<String>;
}

/// Exploration bounds and bookkeeping.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Hard cap on schedule length. A schedule that exhausts the cap while
    /// threads are still enabled is counted in
    /// [`Report::truncated_schedules`] rather than reaching the final
    /// check — if that counter is nonzero the run was not exhaustive and
    /// the bound must be raised.
    pub max_steps: usize,
}

impl Default for Config {
    fn default() -> Self {
        // Generous relative to the models here: the largest shipped
        // configuration needs well under 40 steps per schedule.
        Config { max_steps: 64 }
    }
}

/// A failed invariant plus the exact interleaving that exposed it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Thread ids in execution order.
    pub schedule: Vec<usize>,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}\n  schedule: {:?}", self.message, self.schedule)
    }
}

/// What an exhaustive run explored.
#[derive(Debug, Clone)]
pub struct Report {
    /// Number of complete executions (all threads terminated) enumerated.
    pub executions: u64,
    /// Total steps taken across all executions.
    pub steps: u64,
    /// Schedules cut off by [`Config::max_steps`] before termination.
    /// Nonzero means the run was **not** exhaustive.
    pub truncated_schedules: u64,
    /// The first violation found, if any (exploration stops at the first).
    pub violation: Option<Violation>,
}

impl Report {
    /// `true` when every interleaving terminated within bounds and every
    /// invariant held.
    pub fn passed(&self) -> bool {
        self.violation.is_none() && self.truncated_schedules == 0
    }
}

/// Exhaustively explores every interleaving of `model`'s threads, depth
/// first, stopping at the first violation. Threads are tried in ascending
/// id order at every decision point, so exploration order — and therefore
/// which violation is reported first — is deterministic.
pub fn check<M: Model>(model: &M, config: Config) -> Report {
    let mut report = Report {
        executions: 0,
        steps: 0,
        truncated_schedules: 0,
        violation: None,
    };
    let mut schedule = Vec::with_capacity(config.max_steps);
    explore(model, config, &mut schedule, &mut report);
    report
}

fn explore<M: Model>(state: &M, config: Config, schedule: &mut Vec<usize>, report: &mut Report) {
    if report.violation.is_some() {
        return;
    }
    let enabled: Vec<usize> = (0..state.thread_count())
        .filter(|&tid| state.enabled(tid))
        .collect();
    if enabled.is_empty() {
        report.executions += 1;
        if let Some(message) = state.check_final() {
            report.violation = Some(Violation {
                schedule: schedule.clone(),
                message: format!("final-state violation: {message}"),
            });
        }
        return;
    }
    if schedule.len() >= config.max_steps {
        report.truncated_schedules += 1;
        return;
    }
    for tid in enabled {
        let mut next = state.clone();
        next.step(tid);
        report.steps += 1;
        schedule.push(tid);
        if let Some(message) = next.check_state() {
            report.violation = Some(Violation {
                schedule: schedule.clone(),
                message: format!("state violation after thread {tid}: {message}"),
            });
            schedule.pop();
            return;
        }
        explore(&next, config, schedule, report);
        schedule.pop();
        if report.violation.is_some() {
            return;
        }
    }
}

/// Re-runs one exact schedule against a fresh copy of `model`, returning
/// the violation it reproduces (if any). Panics if the schedule asks a
/// disabled thread to step — that means the schedule does not belong to
/// this model.
pub fn replay<M: Model>(model: &M, schedule: &[usize]) -> Option<Violation> {
    let mut state = model.clone();
    for (i, &tid) in schedule.iter().enumerate() {
        assert!(
            state.enabled(tid),
            "replay step {i}: thread {tid} is not enabled — schedule does not fit this model"
        );
        state.step(tid);
        if let Some(message) = state.check_state() {
            return Some(Violation {
                schedule: schedule[..=i].to_vec(),
                message: format!("state violation after thread {tid}: {message}"),
            });
        }
    }
    if (0..state.thread_count()).all(|tid| !state.enabled(tid)) {
        if let Some(message) = state.check_final() {
            return Some(Violation {
                schedule: schedule.to_vec(),
                message: format!("final-state violation: {message}"),
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two threads each increment a "non-atomic" counter via read/write
    /// steps — the textbook lost-update race the explorer must find.
    #[derive(Clone)]
    struct LostUpdate {
        counter: u32,
        /// Per-thread pc: 0 = about to read, 1 = about to write, 2 = done.
        pc: Vec<u8>,
        read: Vec<u32>,
    }

    impl LostUpdate {
        fn new(threads: usize) -> Self {
            LostUpdate {
                counter: 0,
                pc: vec![0; threads],
                read: vec![0; threads],
            }
        }
    }

    impl Model for LostUpdate {
        fn thread_count(&self) -> usize {
            self.pc.len()
        }
        fn enabled(&self, tid: usize) -> bool {
            self.pc[tid] < 2
        }
        fn step(&mut self, tid: usize) {
            match self.pc[tid] {
                0 => self.read[tid] = self.counter,
                1 => self.counter = self.read[tid] + 1,
                _ => unreachable!(),
            }
            self.pc[tid] += 1;
        }
        fn check_state(&self) -> Option<String> {
            None
        }
        fn check_final(&self) -> Option<String> {
            let n = self.thread_count() as u32;
            (self.counter != n)
                .then(|| format!("expected counter {n}, got {} (lost update)", self.counter))
        }
    }

    #[test]
    fn explorer_finds_the_lost_update() {
        let report = check(&LostUpdate::new(2), Config::default());
        let violation = report.violation.expect("the race must be found");
        assert!(violation.message.contains("lost update"));
        // First witness in DFS order: t0 reads, t1 reads, both write the
        // same stale value — counter ends at 1.
        assert_eq!(violation.schedule, vec![0, 1, 0, 1]);
    }

    #[test]
    fn explorer_counts_all_interleavings() {
        // 2 threads × 2 steps: C(4,2) = 6 complete executions, but the
        // violating subtree is pruned at the first finding; checking the
        // count on a non-violating model instead.
        #[derive(Clone)]
        struct Steps(Vec<u8>);
        impl Model for Steps {
            fn thread_count(&self) -> usize {
                self.0.len()
            }
            fn enabled(&self, tid: usize) -> bool {
                self.0[tid] < 2
            }
            fn step(&mut self, tid: usize) {
                self.0[tid] += 1;
            }
            fn check_state(&self) -> Option<String> {
                None
            }
            fn check_final(&self) -> Option<String> {
                None
            }
        }
        let report = check(&Steps(vec![0, 0]), Config::default());
        assert!(report.passed());
        assert_eq!(report.executions, 6);
    }

    #[test]
    fn replay_reproduces_the_reported_violation() {
        let model = LostUpdate::new(2);
        let violation = check(&model, Config::default()).violation.unwrap();
        let replayed = replay(&model, &violation.schedule).expect("must reproduce");
        assert_eq!(replayed.message, violation.message);
    }

    #[test]
    fn step_bound_reports_truncation() {
        let report = check(&LostUpdate::new(2), Config { max_steps: 2 });
        assert!(report.truncated_schedules > 0);
        assert!(!report.passed());
    }
}
