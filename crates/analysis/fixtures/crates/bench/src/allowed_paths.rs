// Fixture: negative case — timing and env reads under `crates/bench/` are
// exempt from D2/D5 by the built-in allowlist (benchmarks are where wall
// clocks live). Expected findings: none.
use std::time::Instant;

pub fn measure<F: FnOnce()>(f: F) -> u128 {
    let start = Instant::now();
    f();
    start.elapsed().as_nanos()
}

pub fn quick_mode() -> bool {
    std::env::var("SYMMAP_QUICK").is_ok()
}
