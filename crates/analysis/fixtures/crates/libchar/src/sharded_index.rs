// Fixture: rule D1 on the library fingerprint index's failure mode. The real
// `Library` (crates/libchar/src/library.rs) keys its shards by exact
// variable support in a HashMap but answers every scan through an
// insertion-ordered directory Vec; this fixture is the tempting-but-wrong
// version that iterates the hash maps directly, so candidate order (and
// therefore mapper output) would follow the hasher. Expected findings: the
// `.values()` scan, the `for` over the shard map, and the `.keys()` dump.
// The point lookups — the only sanctioned use — must NOT be flagged.
use std::collections::HashMap;

struct Shard {
    mask: u64,
    names: Vec<String>,
}

struct ShardedIndex {
    by_support: HashMap<Vec<u32>, Shard>,
    by_name: HashMap<String, usize>,
}

impl ShardedIndex {
    fn point_lookups_are_fine(&self, support: &[u32]) -> Option<&Shard> {
        self.by_support.get(support)
    }

    fn position_of(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).copied()
    }

    fn bad_candidate_scan(&self, mask: u64) -> Vec<&str> {
        // Hash order decides candidate order — exactly what the mapper's
        // byte-identity contract forbids.
        let shards = self.by_support.values(); // D1
        shards
            .filter(|s| s.mask & mask != 0)
            .flat_map(|s| s.names.iter().map(String::as_str))
            .collect()
    }

    fn bad_shard_walk(&self, mask: u64) -> usize {
        let mut skipped = 0;
        for (_support, shard) in &self.by_support {
            // D1 (flagged on the `for` line)
            if shard.mask & mask == 0 {
                skipped += 1;
            }
        }
        skipped
    }

    fn bad_name_dump(&self) -> Vec<String> {
        self.by_name.keys().cloned().collect() // D1
    }
}
