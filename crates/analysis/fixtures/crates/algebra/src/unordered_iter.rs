// Fixture: rule D1 — unordered hash-container iteration. Expected findings:
// the `.iter()` call, the `for` loop, the `.keys()` through the type alias,
// and the `.drain()` on a let-bound set. Point lookups must NOT be flagged.
use std::collections::{HashMap, HashSet};

type Registry = HashMap<String, u32>;

struct Caches {
    entries: HashMap<u32, u32>,
}

impl Caches {
    fn point_lookups_are_fine(&self) -> Option<&u32> {
        self.entries.get(&1)
    }

    fn bad_iter(&self) -> usize {
        self.entries.iter().count() // D1
    }

    fn bad_for_loop(&self) -> u32 {
        let mut total = 0;
        for (_k, v) in &self.entries {
            // D1 (flagged on the `for` line)
            total += v;
        }
        total
    }
}

fn bad_alias_keys(reg: &Registry) -> Vec<String> {
    reg.keys().cloned().collect() // D1
}

fn bad_let_drain() -> usize {
    let mut seen = HashSet::new();
    seen.insert(7u32);
    seen.drain().count() // D1
}
