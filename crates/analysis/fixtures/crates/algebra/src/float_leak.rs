// Fixture: rule D3 — float arithmetic inside an exact-algebra module.
// Expected findings: both `f64`/`f32` signature lines, the `0.5` literal
// line, and the `as f32` cast line (one finding per offending line).
// Integer ranges and int method calls must NOT be flagged.
pub fn halve(x: f64) -> f64 {
    // D3 (f64 tokens on the signature line above; literal here)
    x * 0.5 // D3
}

pub fn narrow(x: i64) -> f32 {
    x as f32 // D3
}

pub fn ints_are_fine() -> usize {
    (0..10).map(|i| i.max(2)).sum()
}
