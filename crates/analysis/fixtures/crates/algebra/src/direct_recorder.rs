// Fixture: rule D6 — direct trace-recorder use outside crates/trace and
// the engine entry points. Expected findings: one per marked line, and a
// reasoned allow that suppresses its site without further noise.

pub fn builds_a_collector() -> usize {
    let collector = symmap_trace::TraceCollector::new(4); // D6
    collector.finalize().jobs.len()
}

pub fn installs_scopes() {
    let _job = symmap_trace::recorder::install_job_scope; // D6
    let _compute = symmap_trace::recorder::install_compute_scope; // D6
}

pub fn records_raw_events() {
    symmap_trace::recorder::record_raw("x", symmap_trace::EventKind::Instant, &[]); // D6
    symmap_trace::recorder::sched_raw("y", &[]); // D6
}

pub fn sanctioned_compute_entry() {
    // lint:allow(D6): fixture's demonstration of a reasoned, used allow.
    let _scope = symmap_trace::recorder::install_compute_scope(7, "demo");
}
