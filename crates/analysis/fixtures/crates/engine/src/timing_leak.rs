// Fixture: rule D2 — wall clocks and thread identity on algorithmic paths.
// Expected findings: one per marked line, plus one on the `use` line below
// (the scanner flags any SystemTime mention; importing it on a non-bench
// path is already a smell).
use std::time::{Instant, SystemTime};

pub fn seed_from_clock() -> u64 {
    let t = Instant::now(); // D2
    t.elapsed().as_nanos() as u64
}

pub fn seed_from_epoch() -> u64 {
    match SystemTime::now().duration_since(SystemTime::UNIX_EPOCH) {
        // D2 (one finding for the line above: per line and pattern, not per
        // occurrence)
        Ok(d) => d.as_secs(),
        Err(_) => 0,
    }
}

pub fn tie_break_by_thread() -> bool {
    format!("{:?}", std::thread::current().id()).len() % 2 == 0 // D2
}
