// Fixture: the allow escape hatch's own meta-rules. Expected findings:
// A1 (an allow with no reason), A2 (a stale allow suppressing nothing),
// A3 (an allow naming an unknown rule) — plus proof that a well-formed
// allow suppresses its violation without further noise.
use std::time::Instant;

pub fn properly_allowed() -> u64 {
    // lint:allow(D2): fixture's demonstration of a reasoned, used allow.
    Instant::now().elapsed().as_nanos() as u64
}

pub fn allowed_without_reason() -> u64 {
    Instant::now().elapsed().as_nanos() as u64 // lint:allow(D2)
}

pub fn nothing_to_allow() -> u64 {
    // lint:allow(D2): there is no timing call left on the next line.
    42
}

pub fn unknown_rule() -> u64 {
    7 // lint:allow(D9): no such rule exists
}
