// Fixture: rule D4 — `unsafe` without a `// SAFETY:` comment. Expected
// findings: exactly one (the undocumented block). The documented blocks —
// trailing comment and comment block above — must NOT be flagged.
pub fn undocumented(p: *const u8) -> u8 {
    unsafe { *p } // D4 expected: nothing documents this block
}

pub fn documented_trailing(p: *const u8) -> u8 {
    unsafe { *p } // SAFETY: caller guarantees p is valid and aligned.
}

pub fn documented_above(p: *const u8) -> u8 {
    // SAFETY: caller guarantees p is valid for reads; the deref does not
    // outlive the call.
    unsafe { *p }
}
