// Fixture: rule D5 — environment reads outside config/CI-switch sites.
// Expected findings: one per marked line.
pub fn steer_by_env() -> usize {
    match std::env::var("SYMMAP_SECRET_KNOB") {
        // D5 (line above)
        Ok(v) => v.len(),
        Err(_) => 0,
    }
}

pub fn another_read() -> bool {
    std::env::var("HOME").is_ok() // D5
}
