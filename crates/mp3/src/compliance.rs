//! MPEG-style compliance testing.
//!
//! The paper validates every optimization step against the MPEG compliance
//! test \[17\]: the RMS error between the reference decoder's output and the
//! optimized decoder's output determines the level of conformance. This module
//! reproduces that accept/reject decision so the mapper has an accuracy
//! feedback routine.

use serde::{Deserialize, Serialize};

/// Conformance levels defined by the ISO compliance procedure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ComplianceLevel {
    /// RMS error below the full-accuracy threshold.
    FullAccuracy,
    /// RMS error below the limited-accuracy threshold but above full accuracy.
    LimitedAccuracy,
    /// RMS error too large: the decoder does not conform.
    NonConforming,
}

/// Full-accuracy RMS threshold (relative to full-scale ±1.0 samples):
/// the ISO criterion of `2^-15 / sqrt(12)` for 16-bit output.
pub const FULL_ACCURACY_RMS: f64 = 8.8e-6;
/// Limited-accuracy RMS threshold (`2^-11 / sqrt(12)`).
pub const LIMITED_ACCURACY_RMS: f64 = 1.41e-4;

/// The result of comparing a decoder's output against the reference output.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComplianceReport {
    /// Root-mean-square error over all compared samples.
    pub rms_error: f64,
    /// Largest absolute single-sample error.
    pub max_error: f64,
    /// Number of samples compared.
    pub samples: usize,
    /// The resulting conformance level.
    pub level: ComplianceLevel,
}

impl ComplianceReport {
    /// Returns `true` when the decoder conforms at least at limited accuracy —
    /// the "sufficient accuracy" test used by the mapping algorithm.
    pub fn is_sufficient(&self) -> bool {
        self.level != ComplianceLevel::NonConforming
    }
}

/// Compares candidate PCM output against reference PCM output.
///
/// # Panics
///
/// Panics if the two slices have different lengths.
pub fn compare(reference: &[f64], candidate: &[f64]) -> ComplianceReport {
    assert_eq!(
        reference.len(),
        candidate.len(),
        "outputs must have equal length"
    );
    if reference.is_empty() {
        return ComplianceReport {
            rms_error: 0.0,
            max_error: 0.0,
            samples: 0,
            level: ComplianceLevel::FullAccuracy,
        };
    }
    let mut sum_sq = 0.0;
    let mut max_error: f64 = 0.0;
    for (r, c) in reference.iter().zip(candidate) {
        let e = (r - c).abs();
        sum_sq += e * e;
        max_error = max_error.max(e);
    }
    let rms_error = (sum_sq / reference.len() as f64).sqrt();
    let level = if rms_error <= FULL_ACCURACY_RMS {
        ComplianceLevel::FullAccuracy
    } else if rms_error <= LIMITED_ACCURACY_RMS {
        ComplianceLevel::LimitedAccuracy
    } else {
        ComplianceLevel::NonConforming
    };
    ComplianceReport {
        rms_error,
        max_error,
        samples: reference.len(),
        level,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_outputs_are_fully_accurate() {
        let samples: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.01).sin()).collect();
        let report = compare(&samples, &samples);
        assert_eq!(report.level, ComplianceLevel::FullAccuracy);
        assert_eq!(report.rms_error, 0.0);
        assert!(report.is_sufficient());
    }

    #[test]
    fn small_quantization_noise_is_limited_accuracy() {
        let reference: Vec<f64> = (0..10_000).map(|i| (i as f64 * 0.01).sin()).collect();
        let candidate: Vec<f64> = reference
            .iter()
            .enumerate()
            .map(|(i, &v)| v + if i % 2 == 0 { 5e-5 } else { -5e-5 })
            .collect();
        let report = compare(&reference, &candidate);
        assert_eq!(report.level, ComplianceLevel::LimitedAccuracy);
        assert!(report.is_sufficient());
        assert!(report.max_error >= 5e-5);
    }

    #[test]
    fn gross_errors_do_not_conform() {
        let reference = vec![0.0; 100];
        let candidate = vec![0.01; 100];
        let report = compare(&reference, &candidate);
        assert_eq!(report.level, ComplianceLevel::NonConforming);
        assert!(!report.is_sufficient());
    }

    #[test]
    fn empty_comparison_is_trivially_accurate() {
        let report = compare(&[], &[]);
        assert_eq!(report.samples, 0);
        assert_eq!(report.level, ComplianceLevel::FullAccuracy);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        compare(&[0.0], &[0.0, 1.0]);
    }

    #[test]
    fn thresholds_are_ordered() {
        const { assert!(FULL_ACCURACY_RMS < LIMITED_ACCURACY_RMS) }
    }
}
