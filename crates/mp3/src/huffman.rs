//! Huffman coding of quantized spectral values.
//!
//! Layer III Huffman-codes spectral values in pairs with escape codes for
//! large magnitudes. The reproduction uses one canonical code table built from
//! a fixed value-pair frequency model (rather than the 32 tables of the
//! standard); the decode loop has the same structure — bit-serial tree walk,
//! sign bits, escape linbits — so its control/ALU cost profile matches the
//! `III_hufman_decode` row of the paper's profiles.

use symmap_platform::cost::{InstructionClass, OpCounts};

use crate::bitstream::{BitReader, BitWriter};

/// Largest magnitude representable without an escape code.
pub const MAX_DIRECT: i32 = 15;
/// Number of linbits used by the escape code.
pub const LINBITS: u8 = 13;

/// A canonical Huffman code for value pairs `(|x|, |y|)` with `|x|, |y| <= 15`.
#[derive(Debug, Clone)]
pub struct HuffmanTable {
    /// `codes[x][y] = (code, length)`.
    codes: Vec<Vec<(u32, u8)>>,
    /// Reverse map `(length, code) -> (x, y)` for bit-serial decoding.
    decode_map: std::collections::BTreeMap<(u8, u32), (u32, u32)>,
}

impl HuffmanTable {
    /// The table used by the synthetic stream: code lengths grow with the sum
    /// of the pair magnitudes, which mimics the statistics of real audio
    /// (small values are overwhelmingly more common).
    pub fn standard() -> Self {
        // Assign lengths by magnitude sum, then build canonical codes.
        let mut symbols: Vec<(usize, usize, u8)> = Vec::new();
        for x in 0..=MAX_DIRECT as usize {
            for y in 0..=MAX_DIRECT as usize {
                let len = match x + y {
                    0 => 1,
                    1 => 3,
                    2 => 5,
                    3..=4 => 7,
                    5..=7 => 9,
                    8..=11 => 11,
                    12..=17 => 13,
                    _ => 15,
                };
                symbols.push((x, y, len));
            }
        }
        // Canonical code assignment: sort by (length, x, y).
        symbols.sort_by_key(|&(x, y, len)| (len, x, y));
        let mut codes = vec![vec![(0_u32, 0_u8); MAX_DIRECT as usize + 1]; MAX_DIRECT as usize + 1];
        let mut decode_map = std::collections::BTreeMap::new();
        let mut code = 0_u32;
        let mut prev_len = symbols[0].2;
        for &(x, y, len) in &symbols {
            code <<= len - prev_len;
            prev_len = len;
            codes[x][y] = (code, len);
            decode_map.insert((len, code), (x as u32, y as u32));
            code += 1;
        }
        HuffmanTable { codes, decode_map }
    }

    /// Code and length for a magnitude pair.
    ///
    /// # Panics
    ///
    /// Panics if either magnitude exceeds [`MAX_DIRECT`].
    pub fn code(&self, x: u32, y: u32) -> (u32, u8) {
        self.codes[x as usize][y as usize]
    }

    /// Decodes one magnitude pair by walking the canonical code bit by bit.
    /// Returns `None` on a truncated stream.
    pub fn decode_pair(
        &self,
        reader: &mut BitReader<'_>,
        ops: &mut OpCounts,
    ) -> Option<(u32, u32)> {
        let mut code = 0_u32;
        let mut len = 0_u8;
        loop {
            code = (code << 1) | reader.read_bit()? as u32;
            len += 1;
            ops.add(InstructionClass::IntAlu, 2);
            ops.add(InstructionClass::Branch, 1);
            // One table probe per accumulated bit, as a real table-driven
            // decoder would issue.
            ops.add(InstructionClass::TableLookup, 1);
            if let Some(&(x, y)) = self.decode_map.get(&(len, code)) {
                return Some((x, y));
            }
            if len > 20 {
                return None;
            }
        }
    }
}

/// Encodes a slice of quantized values (pairwise) into a bit stream.
pub fn encode(values: &[i32], table: &HuffmanTable) -> Vec<u8> {
    let mut w = BitWriter::new();
    for pair in values.chunks(2) {
        let x = pair[0];
        let y = if pair.len() > 1 { pair[1] } else { 0 };
        let (cx, cy) = (clamp_mag(x), clamp_mag(y));
        let (code, len) = table.code(cx, cy);
        w.write_bits(code, len);
        // Escape linbits for magnitudes above the direct range.
        if cx == MAX_DIRECT as u32 {
            w.write_bits(
                (x.unsigned_abs() - MAX_DIRECT as u32) & ((1 << LINBITS) - 1),
                LINBITS,
            );
        }
        if cy == MAX_DIRECT as u32 {
            w.write_bits(
                (y.unsigned_abs() - MAX_DIRECT as u32) & ((1 << LINBITS) - 1),
                LINBITS,
            );
        }
        // Sign bits for non-zero values.
        if x != 0 {
            w.write_bits((x < 0) as u32, 1);
        }
        if y != 0 {
            w.write_bits((y < 0) as u32, 1);
        }
    }
    w.into_bytes()
}

fn clamp_mag(v: i32) -> u32 {
    v.unsigned_abs().min(MAX_DIRECT as u32)
}

/// Decodes `count` quantized values from a bit stream, accumulating the
/// dynamic operation counts of the decode loop into `ops`.
pub fn decode(
    bytes: &[u8],
    count: usize,
    table: &HuffmanTable,
    ops: &mut OpCounts,
) -> Option<Vec<i32>> {
    let mut reader = BitReader::new(bytes);
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        let (mx, my) = table.decode_pair(&mut reader, ops)?;
        let mut vals = [mx, my];
        for v in vals.iter_mut() {
            if *v == MAX_DIRECT as u32 {
                let lin = reader.read_bits(LINBITS)?;
                *v += lin;
                ops.add(InstructionClass::IntAlu, 1);
            }
        }
        for (i, &v) in vals.iter().enumerate() {
            if out.len() >= count && i == 1 {
                break;
            }
            let signed = if v != 0 {
                let sign = reader.read_bit()?;
                ops.add(InstructionClass::Branch, 1);
                if sign == 1 {
                    -(v as i32)
                } else {
                    v as i32
                }
            } else {
                0
            };
            ops.add(InstructionClass::Store, 1);
            out.push(signed);
            if out.len() == count {
                break;
            }
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn canonical_codes_are_prefix_free() {
        let t = HuffmanTable::standard();
        let mut all: Vec<(u32, u8)> = Vec::new();
        for x in 0..=MAX_DIRECT as u32 {
            for y in 0..=MAX_DIRECT as u32 {
                all.push(t.code(x, y));
            }
        }
        for (i, &(ci, li)) in all.iter().enumerate() {
            for (j, &(cj, lj)) in all.iter().enumerate() {
                if i == j {
                    continue;
                }
                if li <= lj {
                    assert_ne!(ci, cj >> (lj - li), "code {i} is a prefix of code {j}");
                }
            }
        }
    }

    #[test]
    fn small_values_get_short_codes() {
        let t = HuffmanTable::standard();
        assert!(t.code(0, 0).1 < t.code(5, 5).1);
        assert!(t.code(1, 0).1 < t.code(15, 15).1);
    }

    #[test]
    fn encode_decode_round_trip() {
        let t = HuffmanTable::standard();
        let values: Vec<i32> = vec![0, 1, -1, 3, -7, 15, 0, 0, 2, -2, 14, -15, 9, 0, -4, 5];
        let bytes = encode(&values, &t);
        let mut ops = OpCounts::new();
        let decoded = decode(&bytes, values.len(), &t, &mut ops).unwrap();
        assert_eq!(decoded, values);
        assert!(ops.total() > 0);
    }

    #[test]
    fn escape_values_round_trip() {
        let t = HuffmanTable::standard();
        let values: Vec<i32> = vec![100, -200, 15, -15, 4095, 0];
        let bytes = encode(&values, &t);
        let mut ops = OpCounts::new();
        let decoded = decode(&bytes, values.len(), &t, &mut ops).unwrap();
        assert_eq!(decoded, values);
    }

    #[test]
    fn truncated_stream_returns_none() {
        let t = HuffmanTable::standard();
        let values: Vec<i32> = vec![3; 64];
        let mut bytes = encode(&values, &t);
        bytes.truncate(2);
        let mut ops = OpCounts::new();
        assert!(decode(&bytes, values.len(), &t, &mut ops).is_none());
    }

    #[test]
    fn odd_length_input() {
        let t = HuffmanTable::standard();
        let values: Vec<i32> = vec![1, -2, 3];
        let bytes = encode(&values, &t);
        let mut ops = OpCounts::new();
        let decoded = decode(&bytes, values.len(), &t, &mut ops).unwrap();
        assert_eq!(decoded, values);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_round_trip(values in proptest::collection::vec(-4000_i32..4000, 2..120)) {
            let t = HuffmanTable::standard();
            let bytes = encode(&values, &t);
            let mut ops = OpCounts::new();
            let decoded = decode(&bytes, values.len(), &t, &mut ops).unwrap();
            prop_assert_eq!(decoded, values);
        }
    }
}
