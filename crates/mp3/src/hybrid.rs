//! Hybrid filterbank glue (`III_hybrid`): overlap-add of IMDCT blocks.
//!
//! Each subband's 36 windowed IMDCT outputs overlap-add with the previous
//! granule's tail to produce the 18 time-domain samples per subband that feed
//! the polyphase synthesis filterbank. The stage also applies the frequency
//! inversion of odd subbands required by the analysis filterbank.

use symmap_platform::cost::{InstructionClass, OpCounts};

use crate::types::{IMDCT_SIZE, LINES_PER_SUBBAND, SUBBANDS};

/// Which variant of the hybrid stage to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HybridVariant {
    /// Double-precision adds.
    Reference,
    /// Fixed-point adds.
    Fixed,
}

/// Stateful overlap-add buffer (per subband).
#[derive(Debug, Clone)]
pub struct HybridFilter {
    variant: HybridVariant,
    overlap: Vec<Vec<f64>>,
}

impl HybridFilter {
    /// Creates the filter with zeroed overlap state.
    pub fn new(variant: HybridVariant) -> Self {
        HybridFilter {
            variant,
            overlap: vec![vec![0.0; LINES_PER_SUBBAND]; SUBBANDS],
        }
    }

    /// The configured variant.
    pub fn variant(&self) -> HybridVariant {
        self.variant
    }

    /// Consumes one granule of IMDCT blocks (32 blocks × 36 samples) and
    /// produces 18 time slots of 32 subband samples each.
    ///
    /// # Panics
    ///
    /// Panics if the block shape is not 32 × 36.
    pub fn process(&mut self, blocks: &[Vec<f64>], ops: &mut OpCounts) -> Vec<Vec<f64>> {
        assert_eq!(blocks.len(), SUBBANDS, "hybrid expects 32 IMDCT blocks");
        assert!(
            blocks.iter().all(|b| b.len() == IMDCT_SIZE),
            "hybrid expects 36-sample blocks"
        );
        let mut slots = vec![vec![0.0_f64; SUBBANDS]; LINES_PER_SUBBAND];
        for (sb, block) in blocks.iter().enumerate() {
            for t in 0..LINES_PER_SUBBAND {
                let mut sample = block[t] + self.overlap[sb][t];
                // Frequency inversion of odd subbands on odd time slots.
                if sb % 2 == 1 && t % 2 == 1 {
                    sample = -sample;
                }
                slots[t][sb] = sample;
                match self.variant {
                    HybridVariant::Reference => {
                        ops.add(InstructionClass::FloatAddSoft, 1);
                        ops.add(InstructionClass::Load, 2);
                        ops.add(InstructionClass::Store, 1);
                    }
                    HybridVariant::Fixed => {
                        ops.add(InstructionClass::IntAlu, 1);
                        ops.add(InstructionClass::Load, 2);
                        ops.add(InstructionClass::Store, 1);
                    }
                }
            }
            // Save the second half of the block as the next granule's overlap.
            self.overlap[sb].copy_from_slice(&block[LINES_PER_SUBBAND..]);
            ops.add(InstructionClass::Store, LINES_PER_SUBBAND as u64);
        }
        slots
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blocks(value: f64) -> Vec<Vec<f64>> {
        vec![vec![value; IMDCT_SIZE]; SUBBANDS]
    }

    #[test]
    fn produces_18_slots_of_32_bands() {
        let mut h = HybridFilter::new(HybridVariant::Reference);
        let out = h.process(&blocks(0.5), &mut OpCounts::new());
        assert_eq!(out.len(), LINES_PER_SUBBAND);
        assert!(out.iter().all(|slot| slot.len() == SUBBANDS));
    }

    #[test]
    fn overlap_carries_between_granules() {
        let mut h = HybridFilter::new(HybridVariant::Reference);
        let mut ops = OpCounts::new();
        let first = h.process(&blocks(1.0), &mut ops);
        let second = h.process(&blocks(0.0), &mut ops);
        // First granule has no history: slot value 1.0 for even subbands.
        assert_eq!(first[0][0], 1.0);
        // Second granule sees the first granule's tail (1.0) overlap-added to 0.
        assert_eq!(second[0][0], 1.0);
        // Third granule of silence has silent history.
        let third = h.process(&blocks(0.0), &mut ops);
        assert_eq!(third[0][0], 0.0);
    }

    #[test]
    fn odd_subband_frequency_inversion() {
        let mut h = HybridFilter::new(HybridVariant::Fixed);
        let out = h.process(&blocks(1.0), &mut OpCounts::new());
        // Subband 1, time slot 1 is inverted.
        assert_eq!(out[1][1], -1.0);
        assert_eq!(out[0][1], 1.0);
        assert_eq!(out[1][0], 1.0);
    }

    #[test]
    #[should_panic(expected = "32 IMDCT blocks")]
    fn wrong_shape_panics() {
        let mut h = HybridFilter::new(HybridVariant::Reference);
        h.process(&vec![vec![0.0; IMDCT_SIZE]; 3], &mut OpCounts::new());
    }
}
