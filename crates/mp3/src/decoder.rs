//! The decoder pipeline with pluggable kernels.
//!
//! [`Decoder`] wires the stages together in the order of the ISO reference
//! implementation and records every stage's operation counts under the same
//! function names that appear in the paper's profiling tables
//! (`III_dequantize_sample`, `SubBandSynthesis`, `inv_mdctL`, …, and the IPP
//! entry points `ippsSynthPQMF_MP3_32s16s` / `IppsMDCTInv_MP3_32s` when the
//! corresponding IPP kernels are selected).
//!
//! Which implementation runs for each stage is decided by a [`KernelSet`] —
//! in the full methodology that choice is *produced by the mapper* in
//! `symmap-core`, not written by hand.

use symmap_platform::cost::{InstructionClass, OpCounts};
use symmap_platform::profiler::Profiler;

use crate::antialias::{self, AntialiasVariant};
use crate::dequant;

use crate::huffman::{self, HuffmanTable};
use crate::hybrid::{HybridFilter, HybridVariant};
use crate::imdct;
use crate::stereo::{self, StereoVariant};
use crate::synthesis::{PolyphaseSynthesis, SynthesisVariant};
use crate::types::{Frame, Granule, LINES_PER_SUBBAND, SAMPLES_PER_GRANULE, SUBBANDS};

/// Implementation choice for one pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelVariant {
    /// Double-precision reference code (software float on the Badge4).
    Reference,
    /// In-house fixed-point library ("IH").
    Fixed,
    /// Intel IPP-style hand-optimized library.
    Ipp,
}

impl KernelVariant {
    /// Short label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            KernelVariant::Reference => "float",
            KernelVariant::Fixed => "fixed",
            KernelVariant::Ipp => "ipp",
        }
    }
}

/// The kernel selection for every stage of the decoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KernelSet {
    /// Requantization stage.
    pub dequantize: KernelVariant,
    /// Stereo processing stage.
    pub stereo: KernelVariant,
    /// Antialias butterflies.
    pub antialias: KernelVariant,
    /// IMDCT stage.
    pub imdct: KernelVariant,
    /// Hybrid overlap-add stage.
    pub hybrid: KernelVariant,
    /// Polyphase subband synthesis stage.
    pub synthesis: KernelVariant,
    /// Whether the remaining control-heavy stages (Huffman, reorder, scale
    /// factors) are hand-tuned as in Intel's complete MP3 decoder.
    pub hand_optimized_control: bool,
}

impl KernelSet {
    /// The original decoder: everything in double precision (Table 3 / Table 6
    /// row "Original").
    pub fn reference() -> Self {
        KernelSet {
            dequantize: KernelVariant::Reference,
            stereo: KernelVariant::Reference,
            antialias: KernelVariant::Reference,
            imdct: KernelVariant::Reference,
            hybrid: KernelVariant::Reference,
            synthesis: KernelVariant::Reference,
            hand_optimized_control: false,
        }
    }

    /// Mapping into the Linux-math + in-house fixed-point libraries only
    /// (Table 4 / Table 6 row "IH Library").
    pub fn in_house() -> Self {
        KernelSet {
            dequantize: KernelVariant::Fixed,
            stereo: KernelVariant::Fixed,
            antialias: KernelVariant::Fixed,
            imdct: KernelVariant::Fixed,
            hybrid: KernelVariant::Fixed,
            synthesis: KernelVariant::Fixed,
            hand_optimized_control: false,
        }
    }

    /// IH libraries plus the two IPP primitives the mapper finds (Table 5 /
    /// Table 6 row "IH + IPP SubBand & IMDCT").
    pub fn in_house_with_ipp() -> Self {
        KernelSet {
            synthesis: KernelVariant::Ipp,
            imdct: KernelVariant::Ipp,
            ..KernelSet::in_house()
        }
    }

    /// Intel's fully hand-optimized MP3 decoder (Table 6 last row).
    pub fn ipp_complete() -> Self {
        KernelSet {
            dequantize: KernelVariant::Ipp,
            stereo: KernelVariant::Fixed,
            antialias: KernelVariant::Fixed,
            imdct: KernelVariant::Ipp,
            hybrid: KernelVariant::Fixed,
            synthesis: KernelVariant::Ipp,
            hand_optimized_control: true,
        }
    }

    /// Replaces the synthesis kernel.
    pub fn with_synthesis(mut self, v: KernelVariant) -> Self {
        self.synthesis = v;
        self
    }

    /// Replaces the IMDCT kernel.
    pub fn with_imdct(mut self, v: KernelVariant) -> Self {
        self.imdct = v;
        self
    }

    /// Replaces the dequantizer kernel.
    pub fn with_dequantize(mut self, v: KernelVariant) -> Self {
        self.dequantize = v;
        self
    }

    /// The profile name used for the synthesis stage.
    pub fn synthesis_function_name(&self) -> &'static str {
        match self.synthesis {
            KernelVariant::Ipp => "ippsSynthPQMF_MP3_32s16s",
            _ => "SubBandSynthesis",
        }
    }

    /// The profile name used for the IMDCT stage.
    pub fn imdct_function_name(&self) -> &'static str {
        match self.imdct {
            KernelVariant::Ipp => "IppsMDCTInv_MP3_32s",
            _ => "inv_mdctL",
        }
    }
}

/// The MP3-style decoder.
#[derive(Debug)]
pub struct Decoder {
    kernels: KernelSet,
    huffman_table: HuffmanTable,
    pow43: Vec<f64>,
    synthesis: PolyphaseSynthesis,
    hybrid: HybridFilter,
}

impl Decoder {
    /// Creates a decoder with the given kernel selection.
    pub fn new(kernels: KernelSet) -> Self {
        let synth_variant = match kernels.synthesis {
            KernelVariant::Reference => SynthesisVariant::Reference,
            KernelVariant::Fixed => SynthesisVariant::Fixed,
            KernelVariant::Ipp => SynthesisVariant::Ipp,
        };
        let hybrid_variant = match kernels.hybrid {
            KernelVariant::Reference => HybridVariant::Reference,
            _ => HybridVariant::Fixed,
        };
        Decoder {
            kernels,
            huffman_table: HuffmanTable::standard(),
            pow43: dequant::pow43_table(),
            synthesis: PolyphaseSynthesis::new(synth_variant),
            hybrid: HybridFilter::new(hybrid_variant),
        }
    }

    /// The active kernel selection.
    pub fn kernels(&self) -> KernelSet {
        self.kernels
    }

    /// Decodes one frame to PCM, recording per-function costs in `profiler`.
    pub fn decode_frame(&mut self, frame: &Frame, profiler: &Profiler) -> Vec<f64> {
        let mut pcm = Vec::with_capacity(SAMPLES_PER_GRANULE * frame.granules.len());
        for granule in &frame.granules {
            pcm.extend(self.decode_granule(granule, profiler));
        }
        pcm
    }

    /// Decodes a whole stream of frames.
    pub fn decode_stream(&mut self, frames: &[Frame], profiler: &Profiler) -> Vec<f64> {
        let mut pcm = Vec::new();
        for frame in frames {
            pcm.extend(self.decode_frame(frame, profiler));
        }
        pcm
    }

    fn control_scale(&self) -> u64 {
        if self.kernels.hand_optimized_control {
            3
        } else {
            1
        }
    }

    fn decode_granule(&mut self, granule: &Granule, profiler: &Profiler) -> Vec<f64> {
        // 1. Huffman decoding (re-encode the synthetic granule, then decode,
        //    so the decode loop does real bit-level work).
        let encoded = huffman::encode(&granule.quantized, &self.huffman_table);
        let mut ops = OpCounts::new();
        let quantized =
            huffman::decode(&encoded, SAMPLES_PER_GRANULE, &self.huffman_table, &mut ops)
                .expect("self-generated stream is always decodable");
        profiler.record("III_hufman_decode", &scale_down(&ops, self.control_scale()));

        // 2. Scale-factor decoding (small, control dominated).
        let mut ops = OpCounts::new();
        ops.add(InstructionClass::IntAlu, 4 * SUBBANDS as u64);
        ops.add(InstructionClass::Load, 2 * SUBBANDS as u64);
        ops.add(InstructionClass::Store, SUBBANDS as u64);
        profiler.record(
            "III_get_scale_factors",
            &scale_down(&ops, self.control_scale()),
        );

        // 3. Requantization.
        let granule_for_dequant = Granule {
            quantized,
            ..granule.clone()
        };
        let mut ops = OpCounts::new();
        let mut spectrum = match self.kernels.dequantize {
            KernelVariant::Reference => {
                dequant::dequantize_reference(&granule_for_dequant, &mut ops)
            }
            KernelVariant::Fixed => {
                dequant::dequantize_fixed(&granule_for_dequant, &self.pow43, &mut ops)
            }
            KernelVariant::Ipp => {
                dequant::dequantize_ipp(&granule_for_dequant, &self.pow43, &mut ops)
            }
        };
        profiler.record("III_dequantize_sample", &ops);

        // 4. Reorder (long blocks: an index-remapping copy).
        let mut ops = OpCounts::new();
        ops.add(InstructionClass::Load, SAMPLES_PER_GRANULE as u64);
        ops.add(InstructionClass::Store, SAMPLES_PER_GRANULE as u64);
        ops.add(InstructionClass::IntAlu, SAMPLES_PER_GRANULE as u64 / 2);
        profiler.record("III_reorder", &scale_down(&ops, self.control_scale()));

        // 5. Stereo processing.
        let stereo_variant = match self.kernels.stereo {
            KernelVariant::Reference => StereoVariant::Reference,
            _ => StereoVariant::Fixed,
        };
        let mut ops = OpCounts::new();
        let mut left = stereo::process(&mut spectrum, granule.mid_side, stereo_variant, &mut ops);
        profiler.record("III_stereo", &scale_down(&ops, self.control_scale()));

        // 6. Antialias butterflies.
        let aa_variant = match self.kernels.antialias {
            KernelVariant::Reference => AntialiasVariant::Reference,
            _ => AntialiasVariant::Fixed,
        };
        let mut ops = OpCounts::new();
        antialias::process(&mut left, aa_variant, &mut ops);
        profiler.record("III_antialias", &ops);

        // 7. IMDCT per subband.
        let imdct_kernel = match self.kernels.imdct {
            KernelVariant::Reference => {
                imdct::imdct_reference as fn(&[f64], &mut OpCounts) -> Vec<f64>
            }
            KernelVariant::Fixed => imdct::imdct_fixed,
            KernelVariant::Ipp => imdct::imdct_ipp,
        };
        let mut ops = OpCounts::new();
        let blocks = imdct::imdct_granule(&left, imdct_kernel, &mut ops);
        profiler.record(self.kernels.imdct_function_name(), &ops);

        // 8. Hybrid overlap-add.
        let mut ops = OpCounts::new();
        let slots = self.hybrid.process(&blocks, &mut ops);
        profiler.record("III_hybrid", &ops);

        // 9. Polyphase synthesis, 18 time slots of 32 samples.
        let mut ops = OpCounts::new();
        let mut granule_pcm = Vec::with_capacity(SAMPLES_PER_GRANULE);
        for slot in &slots {
            granule_pcm.extend(self.synthesis.process(slot, &mut ops));
        }
        profiler.record(self.kernels.synthesis_function_name(), &ops);
        debug_assert_eq!(granule_pcm.len(), LINES_PER_SUBBAND * SUBBANDS);
        granule_pcm
    }
}

fn scale_down(ops: &OpCounts, divisor: u64) -> OpCounts {
    if divisor <= 1 {
        return ops.clone();
    }
    let mut out = OpCounts::new();
    for (c, n) in ops.iter() {
        out.add(c, (n / divisor).max(1));
    }
    for (r, n) in ops.memory_iter() {
        out.add_memory(r, (n / divisor).max(1));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compliance;
    use crate::frame::FrameGenerator;
    use symmap_platform::machine::Badge4;

    fn one_frame() -> Frame {
        FrameGenerator::new(9).frame()
    }

    #[test]
    fn decodes_to_1152_samples_per_frame() {
        let frame = one_frame();
        let profiler = Profiler::new();
        let pcm = Decoder::new(KernelSet::reference()).decode_frame(&frame, &profiler);
        assert_eq!(pcm.len(), SAMPLES_PER_GRANULE * 2);
        assert!(pcm.iter().any(|&v| v != 0.0));
    }

    #[test]
    fn profile_contains_the_paper_function_names() {
        let frame = one_frame();
        let profiler = Profiler::new();
        Decoder::new(KernelSet::reference()).decode_frame(&frame, &profiler);
        let profile = profiler.profile(&Badge4::new());
        for name in [
            "III_dequantize_sample",
            "SubBandSynthesis",
            "inv_mdctL",
            "III_hybrid",
            "III_antialias",
            "III_stereo",
            "III_hufman_decode",
            "III_reorder",
            "III_get_scale_factors",
        ] {
            assert!(profile.entry(name).is_some(), "missing profile row {name}");
        }
    }

    #[test]
    fn reference_profile_shape_matches_table_3() {
        let frame = one_frame();
        let profiler = Profiler::new();
        Decoder::new(KernelSet::reference()).decode_frame(&frame, &profiler);
        let profile = profiler.profile(&Badge4::new());
        let pct = |name: &str| profile.entry(name).map(|e| e.percent).unwrap_or(0.0);
        // Dominant three functions, in the paper's order.
        assert!(pct("III_dequantize_sample") > 30.0);
        assert!(pct("SubBandSynthesis") > 20.0);
        assert!(pct("inv_mdctL") > 8.0);
        assert!(pct("III_dequantize_sample") > pct("SubBandSynthesis"));
        assert!(pct("SubBandSynthesis") > pct("inv_mdctL"));
        // Everything else is small.
        assert!(pct("III_stereo") < 5.0);
        assert!(pct("III_hufman_decode") < 5.0);
    }

    #[test]
    fn ipp_kernels_change_profile_names() {
        let frame = one_frame();
        let profiler = Profiler::new();
        Decoder::new(KernelSet::in_house_with_ipp()).decode_frame(&frame, &profiler);
        let profile = profiler.profile(&Badge4::new());
        assert!(profile.entry("ippsSynthPQMF_MP3_32s16s").is_some());
        assert!(profile.entry("IppsMDCTInv_MP3_32s").is_some());
        assert!(profile.entry("SubBandSynthesis").is_none());
        assert!(profile.entry("inv_mdctL").is_none());
    }

    #[test]
    fn optimized_versions_are_progressively_faster() {
        let frame = one_frame();
        let badge = Badge4::new();
        let time_of = |kernels: KernelSet| {
            let profiler = Profiler::new();
            Decoder::new(kernels).decode_frame(&frame, &profiler);
            profiler.profile(&badge).total_seconds()
        };
        let original = time_of(KernelSet::reference());
        let ih = time_of(KernelSet::in_house());
        let ih_ipp = time_of(KernelSet::in_house_with_ipp());
        let ipp_full = time_of(KernelSet::ipp_complete());
        assert!(original > 50.0 * ih, "original {original} vs IH {ih}");
        assert!(ih > 2.0 * ih_ipp, "IH {ih} vs IH+IPP {ih_ipp}");
        assert!(ih_ipp > ipp_full, "IH+IPP {ih_ipp} vs IPP MP3 {ipp_full}");
    }

    #[test]
    fn optimized_decoders_remain_compliant() {
        let mut gen = FrameGenerator::new(21);
        let frames = gen.stream(3);
        let profiler = Profiler::new();
        let reference = Decoder::new(KernelSet::reference()).decode_stream(&frames, &profiler);
        for kernels in [
            KernelSet::in_house(),
            KernelSet::in_house_with_ipp(),
            KernelSet::ipp_complete(),
        ] {
            let candidate = Decoder::new(kernels).decode_stream(&frames, &profiler);
            let report = compliance::compare(&reference, &candidate);
            assert!(
                report.is_sufficient(),
                "{kernels:?} fails compliance with rms {}",
                report.rms_error
            );
        }
    }

    #[test]
    fn kernel_set_builders() {
        let ks = KernelSet::reference().with_synthesis(KernelVariant::Ipp);
        assert_eq!(ks.synthesis, KernelVariant::Ipp);
        assert_eq!(ks.dequantize, KernelVariant::Reference);
        assert_eq!(ks.synthesis_function_name(), "ippsSynthPQMF_MP3_32s16s");
        assert_eq!(KernelSet::reference().imdct_function_name(), "inv_mdctL");
        assert_eq!(KernelVariant::Fixed.label(), "fixed");
    }
}
