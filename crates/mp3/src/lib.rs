//! # symmap-mp3
//!
//! An MP3-decoder-style workload: the application the DAC 2002 paper optimizes.
//!
//! The decoder follows the structure of the ISO reference implementation the
//! paper starts from — Huffman decoding, requantization, stereo processing,
//! antialiasing, the inverse modified DCT (IMDCT) and the polyphase subband
//! synthesis filterbank — and provides each arithmetic kernel in three
//! variants matching the three libraries of the paper:
//!
//! * **reference** — straightforward double-precision code in the style of the
//!   standards-body sources (runs on the software float emulator of the
//!   FPU-less StrongARM, hence the two-orders-of-magnitude penalty),
//! * **fixed** — in-house ("IH") fixed-point kernels,
//! * **ipp** — hand-optimized fixed-point kernels standing in for Intel's
//!   Integrated Performance Primitives.
//!
//! Real MP3 bitstreams are replaced by a deterministic synthetic granule
//! generator (see `DESIGN.md` for the substitution argument); the synthetic
//! frames still pass through Huffman coding, requantization and the full
//! filterbank, so the per-function cost profile has the same shape as the
//! paper's Tables 3–5.
//!
//! ```
//! use symmap_mp3::decoder::{Decoder, KernelSet};
//! use symmap_mp3::frame::FrameGenerator;
//! use symmap_platform::profiler::Profiler;
//!
//! let frame = FrameGenerator::new(7).frame();
//! let profiler = Profiler::new();
//! let pcm = Decoder::new(KernelSet::reference()).decode_frame(&frame, &profiler);
//! assert_eq!(pcm.len(), symmap_mp3::types::SAMPLES_PER_GRANULE * symmap_mp3::types::GRANULES_PER_FRAME);
//! ```

#![deny(rustdoc::broken_intra_doc_links)]

pub mod antialias;
pub mod bitstream;
pub mod compliance;
pub mod decoder;
pub mod dequant;
pub mod frame;
pub mod huffman;
pub mod hybrid;
pub mod imdct;
pub mod stereo;
pub mod synthesis;
pub mod types;

pub use compliance::{ComplianceLevel, ComplianceReport};
pub use decoder::{Decoder, KernelSet, KernelVariant};
pub use frame::FrameGenerator;
