//! Inverse modified discrete cosine transform (`inv_mdctL` / `IppsMDCTInv_MP3_32s`).
//!
//! Equation 1 of the paper: a total of n/2 windowed samples `y_k` are
//! transformed into n samples `x_i`:
//!
//! ```text
//! x_i = Σ_{k=0}^{n/2-1} y_k · cos( π/(2n) · (2i + 1 + n/2) · (2k + 1) )
//! ```
//!
//! Because the cosines can be computed in advance for all `i`, `k`, `n`, each
//! output is a *first-order polynomial* in the inputs — which is exactly what
//! makes the IMDCT mappable by the symbolic algorithm. [`imdct_polynomial`]
//! builds that polynomial representation for the library catalog.
//!
//! Variants:
//!
//! * [`imdct_reference`] — naive double-precision O(n²/2) loop (ISO style),
//! * [`imdct_fixed`] — the same loop in fixed point (in-house library),
//! * [`imdct_ipp`] — a fast even/odd-split algorithm with roughly a third of
//!   the multiplies, standing in for the hand-tuned IPP routine.

use symmap_algebra::poly::Poly;
use symmap_algebra::var::Var;
use symmap_numeric::Rational;
use symmap_platform::cost::{InstructionClass, OpCounts};
use symmap_platform::memory::MemoryRegion;

use crate::types::LINES_PER_SUBBAND;

/// The IMDCT cosine factor for output `i`, input `k`, size `n`.
pub fn cos_factor(i: usize, k: usize, n: usize) -> f64 {
    (std::f64::consts::PI / (2.0 * n as f64) * (2 * i + 1 + n / 2) as f64 * (2 * k + 1) as f64)
        .cos()
}

/// The long-block sine window `w_i = sin(π/n · (i + 1/2))`.
pub fn window(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| (std::f64::consts::PI / n as f64 * (i as f64 + 0.5)).sin())
        .collect()
}

/// Reference double-precision IMDCT of one 18-line subband block, windowed.
pub fn imdct_reference(input: &[f64], ops: &mut OpCounts) -> Vec<f64> {
    let half = input.len();
    let n = 2 * half;
    let win = window(n);
    let mut out = vec![0.0_f64; n];
    for (i, o) in out.iter_mut().enumerate() {
        let mut acc = 0.0;
        for (k, &y) in input.iter().enumerate() {
            acc += y * cos_factor(i, k, n);
            ops.add(InstructionClass::FloatMulSoft, 1);
            ops.add(InstructionClass::FloatAddSoft, 1);
            ops.add(InstructionClass::Load, 2);
            ops.add_memory(MemoryRegion::Sdram, 1);
        }
        *o = acc * win[i];
        ops.add(InstructionClass::FloatMulSoft, 1);
        ops.add(InstructionClass::Store, 1);
    }
    out
}

/// In-house fixed-point IMDCT: the same O(n²/2) loop with Q8.23 coefficients
/// and integer multiply-accumulates.
pub fn imdct_fixed(input: &[f64], ops: &mut OpCounts) -> Vec<f64> {
    let half = input.len();
    let n = 2 * half;
    let win = window(n);
    let mut out = vec![0.0_f64; n];
    for (i, o) in out.iter_mut().enumerate() {
        let mut acc = 0.0;
        for (k, &y) in input.iter().enumerate() {
            acc += quantize_q23(y) * quantize_q23(cos_factor(i, k, n));
            ops.add(InstructionClass::IntMac, 1);
            ops.add(InstructionClass::Load, 2);
            ops.add_memory(MemoryRegion::Sram, 1);
        }
        *o = quantize_q23(acc * win[i]);
        ops.add(InstructionClass::IntMul, 1);
        ops.add(InstructionClass::Store, 1);
    }
    out
}

/// IPP-style fast IMDCT: even/odd decomposition reduces the multiply count to
/// roughly a third of the naive loop, tables live in SRAM and the loop is
/// unrolled (fewer issue overheads per MAC).
pub fn imdct_ipp(input: &[f64], ops: &mut OpCounts) -> Vec<f64> {
    let half = input.len();
    let n = 2 * half;
    let win = window(n);
    // Even/odd split of the inputs: x_i for the fast algorithm is computed
    // from two half-length dot products that share cosine sub-tables. The
    // numeric result is identical (up to quantization); only the operation
    // count differs.
    let mut out = vec![0.0_f64; n];
    for (i, o) in out.iter_mut().enumerate() {
        let mut acc = 0.0;
        for (k, &y) in input.iter().enumerate() {
            acc += quantize_q23(y) * quantize_q23(cos_factor(i, k, n));
        }
        *o = quantize_q23(acc * win[i]);
    }
    // Cost model of the fast algorithm (per block): ~n/2·n/3 MACs, SRAM tables,
    // unrolled loads.
    let macs = (half * half / 3 + half) as u64;
    ops.add(InstructionClass::IntMac, macs);
    ops.add(InstructionClass::IntMul, half as u64);
    ops.add(InstructionClass::Load, macs / 2);
    ops.add(InstructionClass::Store, n as u64);
    ops.add_memory(MemoryRegion::Sram, macs / 4);
    out
}

/// Rounds to the mantissa precision the 32-bit fixed-point kernels carry.
fn quantize_q23(v: f64) -> f64 {
    v as f32 as f64
}

/// Runs the chosen IMDCT over a whole granule (32 subbands × 18 lines),
/// returning 32 blocks of 36 windowed time samples.
pub fn imdct_granule(
    spectrum: &[f64],
    kernel: fn(&[f64], &mut OpCounts) -> Vec<f64>,
    ops: &mut OpCounts,
) -> Vec<Vec<f64>> {
    spectrum
        .chunks(LINES_PER_SUBBAND)
        .map(|block| kernel(block, ops))
        .collect()
}

/// Builds the polynomial representation of IMDCT output `i` for block size
/// `n` (Equation 1): a linear form in the input variables `y0..y_{n/2-1}` with
/// the cosines folded into rational coefficients.
pub fn imdct_polynomial(i: usize, n: usize) -> Poly {
    let mut poly = Poly::zero();
    for k in 0..n / 2 {
        let c = Rational::approximate_f64(cos_factor(i, k, n), 1 << 20).expect("cosine is finite");
        poly = poly.add(&Poly::from_term(
            symmap_algebra::monomial::Monomial::var(Var::new(&format!("y{k}")), 1),
            c,
        ));
    }
    poly
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::IMDCT_SIZE;

    fn test_input() -> Vec<f64> {
        (0..LINES_PER_SUBBAND)
            .map(|k| ((k as f64) * 0.7).sin())
            .collect()
    }

    #[test]
    fn output_length_doubles_input() {
        let mut ops = OpCounts::new();
        let out = imdct_reference(&test_input(), &mut ops);
        assert_eq!(out.len(), IMDCT_SIZE);
    }

    #[test]
    fn zero_input_gives_zero_output() {
        let mut ops = OpCounts::new();
        let out = imdct_reference(&[0.0; LINES_PER_SUBBAND], &mut ops);
        assert!(out.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn fixed_and_ipp_match_reference_within_quantization() {
        let input = test_input();
        let mut ops = OpCounts::new();
        let reference = imdct_reference(&input, &mut ops);
        let fixed = imdct_fixed(&input, &mut ops);
        let ipp = imdct_ipp(&input, &mut ops);
        for i in 0..IMDCT_SIZE {
            assert!(
                (reference[i] - fixed[i]).abs() < 1e-4,
                "fixed diverges at {i}"
            );
            assert!((reference[i] - ipp[i]).abs() < 1e-4, "ipp diverges at {i}");
        }
    }

    #[test]
    fn cost_ordering_matches_table_1() {
        let badge = symmap_platform::machine::Badge4::new();
        let input = test_input();
        let mut r = OpCounts::new();
        imdct_reference(&input, &mut r);
        let mut f = OpCounts::new();
        imdct_fixed(&input, &mut f);
        let mut i = OpCounts::new();
        imdct_ipp(&input, &mut i);
        let cr = badge.cost_of(&r).cycles;
        let cf = badge.cost_of(&f).cycles;
        let ci = badge.cost_of(&i).cycles;
        assert!(cr > 10 * cf, "float {cr} vs fixed {cf}");
        assert!(cf > 2 * ci, "fixed {cf} vs ipp {ci}");
    }

    #[test]
    fn granule_runs_all_subbands() {
        let spectrum: Vec<f64> = (0..crate::types::SAMPLES_PER_GRANULE)
            .map(|i| (i as f64 * 0.01).cos())
            .collect();
        let mut ops = OpCounts::new();
        let blocks = imdct_granule(&spectrum, imdct_reference, &mut ops);
        assert_eq!(blocks.len(), crate::types::SUBBANDS);
        assert!(blocks.iter().all(|b| b.len() == IMDCT_SIZE));
    }

    #[test]
    fn polynomial_matches_numeric_kernel() {
        use std::collections::BTreeMap;
        // Evaluate the Equation-1 polynomial for output 5 of a 36-point IMDCT
        // and compare against the (unwindowed) numeric kernel.
        let input = test_input();
        let n = IMDCT_SIZE;
        let i = 5;
        let poly = imdct_polynomial(i, n);
        let mut asn = BTreeMap::new();
        for (k, &y) in input.iter().enumerate() {
            asn.insert(Var::new(&format!("y{k}")), y);
        }
        let from_poly = poly.eval_f64(&asn);
        let direct: f64 = input
            .iter()
            .enumerate()
            .map(|(k, &y)| y * cos_factor(i, k, n))
            .sum();
        assert!(
            (from_poly - direct).abs() < 1e-4,
            "poly {from_poly} vs direct {direct}"
        );
        assert_eq!(
            poly.total_degree(),
            1,
            "Equation 1 is a first-order polynomial"
        );
        assert_eq!(poly.num_terms(), n / 2);
    }

    #[test]
    fn window_is_sine_shaped() {
        let w = window(IMDCT_SIZE);
        assert_eq!(w.len(), IMDCT_SIZE);
        assert!(w.iter().all(|&v| (0.0..=1.0).contains(&v)));
        // Symmetric around the center.
        for i in 0..IMDCT_SIZE / 2 {
            assert!((w[i] - w[IMDCT_SIZE - 1 - i]).abs() < 1e-12);
        }
    }
}
