//! Requantization (`III_dequantize_sample`).
//!
//! The dequantizer reconstructs spectral values from the Huffman-decoded
//! integers: `xr = sign(is) * |is|^(4/3) * 2^(gain/4 - scalefactor/2)`.
//! In the ISO reference code this is the single most expensive function of
//! the whole decoder (45% of the frame in Table 3) because it calls the
//! floating-point `pow` from the math library for every sample — on a
//! processor without an FPU each call costs thousands of cycles.
//!
//! Three variants are provided:
//!
//! * [`dequantize_reference`] — per-sample `pow` calls, like the ISO sources,
//! * [`dequantize_fixed`] — in-house fixed point with a precomputed
//!   `|is|^(4/3)` table and power-of-two shifts,
//! * [`dequantize_ipp`] — IPP-style fixed point with pair-at-a-time table
//!   lookups and fewer per-sample overheads.

use symmap_platform::cost::{InstructionClass, OpCounts};
use symmap_platform::memory::MemoryRegion;

use crate::types::{Granule, LINES_PER_SUBBAND, SAMPLES_PER_GRANULE};

/// Normalization applied to every reconstructed sample so that the decoder's
/// PCM output lands in the nominal ±1 full-scale range (the standard's
/// global-gain bias of 210 plays the same role).
pub const GAIN_BIAS: f64 = 4096.0;

/// Exact requantization scale for one sample.
fn scale_for(granule: &Granule, index: usize) -> f64 {
    let sb = index / LINES_PER_SUBBAND;
    let sf = granule.scalefactors[sb] as f64;
    (2.0_f64).powf(granule.global_gain as f64 / 4.0 - sf / 2.0) / GAIN_BIAS
}

/// Reference double-precision dequantizer (ISO style): recomputes the powers
/// for every sample with math-library calls.
pub fn dequantize_reference(granule: &Granule, ops: &mut OpCounts) -> Vec<f64> {
    let mut out = vec![0.0_f64; SAMPLES_PER_GRANULE];
    for (i, &q) in granule.quantized.iter().enumerate() {
        // The ISO code calls pow() several times per sample: |is|^(4/3), the
        // global-gain power of two, the scalefactor and pre-emphasis powers of
        // two are all recomputed from scratch inside the sample loop.
        ops.add(InstructionClass::LibmCall, 5);
        ops.add(InstructionClass::FloatMulSoft, 3);
        ops.add(InstructionClass::FloatConvSoft, 1);
        ops.add(InstructionClass::Load, 2);
        ops.add(InstructionClass::Store, 1);
        ops.add_memory(MemoryRegion::Sdram, 2);
        let mag = (q.abs() as f64).powf(4.0 / 3.0);
        out[i] = q.signum() as f64 * mag * scale_for(granule, i);
    }
    out
}

/// Size of the `|is|^(4/3)` lookup table used by the fixed-point variants.
pub const POW43_TABLE_SIZE: usize = 8207;

/// Builds the fixed-point `|is|^(4/3)` table (shared by the IH and IPP
/// variants; a real port stores it in SRAM).
pub fn pow43_table() -> Vec<f64> {
    (0..POW43_TABLE_SIZE)
        .map(|i| (i as f64).powf(4.0 / 3.0))
        .collect()
}

/// In-house fixed-point dequantizer: table lookup plus shift-based scaling.
pub fn dequantize_fixed(granule: &Granule, table: &[f64], ops: &mut OpCounts) -> Vec<f64> {
    let mut out = vec![0.0_f64; SAMPLES_PER_GRANULE];
    for (i, &q) in granule.quantized.iter().enumerate() {
        ops.add(InstructionClass::TableLookup, 2);
        ops.add(InstructionClass::IntAlu, 10);
        ops.add(InstructionClass::IntMul, 2);
        ops.add(InstructionClass::Load, 2);
        ops.add(InstructionClass::Store, 1);
        ops.add_memory(MemoryRegion::Sram, 1);
        let mag = table
            .get(q.unsigned_abs() as usize)
            .copied()
            .unwrap_or_else(|| (q.abs() as f64).powf(4.0 / 3.0));
        // Fixed-point scaling keeps a 32-bit mantissa of the scale constant.
        let scale = quantize_scale(scale_for(granule, i));
        out[i] = q.signum() as f64 * mag * scale;
    }
    out
}

/// IPP-style dequantizer: identical arithmetic but a tighter inner loop
/// (paired lookups, no per-sample reloads of the scale constants).
pub fn dequantize_ipp(granule: &Granule, table: &[f64], ops: &mut OpCounts) -> Vec<f64> {
    let mut out = vec![0.0_f64; SAMPLES_PER_GRANULE];
    for (i, &q) in granule.quantized.iter().enumerate() {
        if i % 2 == 0 {
            ops.add(InstructionClass::TableLookup, 2);
            ops.add(InstructionClass::IntAlu, 5);
            ops.add(InstructionClass::IntMul, 2);
            ops.add(InstructionClass::Load, 1);
            ops.add(InstructionClass::Store, 2);
            ops.add_memory(MemoryRegion::Sram, 1);
        }
        let mag = table
            .get(q.unsigned_abs() as usize)
            .copied()
            .unwrap_or_else(|| (q.abs() as f64).powf(4.0 / 3.0));
        let scale = quantize_scale(scale_for(granule, i));
        out[i] = q.signum() as f64 * mag * scale;
    }
    out
}

/// Quantizes a scale factor to the single-precision mantissa width carried by
/// the 32-bit fixed-point kernels (this is where the fixed-point variants
/// lose accuracy relative to the double-precision reference).
fn quantize_scale(scale: f64) -> f64 {
    scale as f32 as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameGenerator;

    fn test_granule() -> Granule {
        FrameGenerator::new(3).frame().granules[0].clone()
    }

    #[test]
    fn reference_applies_power_law() {
        let mut g = Granule::silent();
        g.quantized[0] = 8;
        g.quantized[1] = -8;
        let mut ops = OpCounts::new();
        let out = dequantize_reference(&g, &mut ops);
        let expected = 8.0_f64.powf(4.0 / 3.0) / GAIN_BIAS;
        assert!((out[0] - expected).abs() < 1e-12);
        assert!((out[1] + expected).abs() < 1e-12);
        assert_eq!(out[2], 0.0);
    }

    #[test]
    fn global_gain_scales_output() {
        let mut g = Granule::silent();
        g.quantized[0] = 4;
        g.global_gain = 4; // 2^(4/4) = 2x
        let mut ops = OpCounts::new();
        let boosted = dequantize_reference(&g, &mut ops)[0];
        g.global_gain = 0;
        let flat = dequantize_reference(&g, &mut ops)[0];
        assert!((boosted / flat - 2.0).abs() < 1e-9);
    }

    #[test]
    fn fixed_and_ipp_track_reference_closely() {
        let g = test_granule();
        let table = pow43_table();
        let mut ops = OpCounts::new();
        let reference = dequantize_reference(&g, &mut ops);
        let fixed = dequantize_fixed(&g, &table, &mut ops);
        let ipp = dequantize_ipp(&g, &table, &mut ops);
        let rms_fixed = rms(&reference, &fixed);
        let rms_ipp = rms(&reference, &ipp);
        let signal = rms(&reference, &vec![0.0; reference.len()]);
        assert!(
            rms_fixed < signal * 1e-3,
            "fixed rms {rms_fixed} vs signal {signal}"
        );
        assert!(rms_ipp < signal * 1e-3);
    }

    #[test]
    fn reference_costs_far_more_than_fixed() {
        let g = test_granule();
        let table = pow43_table();
        let badge = symmap_platform::machine::Badge4::new();
        let mut ops_ref = OpCounts::new();
        dequantize_reference(&g, &mut ops_ref);
        let mut ops_fixed = OpCounts::new();
        dequantize_fixed(&g, &table, &mut ops_fixed);
        let mut ops_ipp = OpCounts::new();
        dequantize_ipp(&g, &table, &mut ops_ipp);
        let c_ref = badge.cost_of(&ops_ref).cycles;
        let c_fixed = badge.cost_of(&ops_fixed).cycles;
        let c_ipp = badge.cost_of(&ops_ipp).cycles;
        assert!(c_ref > 50 * c_fixed, "reference {c_ref} vs fixed {c_fixed}");
        assert!(c_fixed > c_ipp, "fixed {c_fixed} vs ipp {c_ipp}");
    }

    #[test]
    fn pow43_table_is_monotone() {
        let t = pow43_table();
        assert_eq!(t.len(), POW43_TABLE_SIZE);
        assert!(t.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(t[0], 0.0);
        assert!((t[8] - 8.0_f64.powf(4.0 / 3.0)).abs() < 1e-12);
    }

    fn rms(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len() as f64;
        (a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>() / n).sqrt()
    }
}
