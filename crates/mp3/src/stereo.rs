//! Stereo processing (`III_stereo`).
//!
//! Mid/side decoding reconstructs left and right channels from the coded mid
//! and side signals: `L = (M + S)/√2`, `R = (M − S)/√2`. The reproduction's
//! decoder is mono-output, but when a granule is flagged mid/side the stage
//! still runs the reconstruction on the mid channel and a derived side channel
//! so the arithmetic cost is representative.

use symmap_platform::cost::{InstructionClass, OpCounts};

use crate::types::SAMPLES_PER_GRANULE;

const INV_SQRT2: f64 = std::f64::consts::FRAC_1_SQRT_2;

/// Which variant of the stereo kernel to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StereoVariant {
    /// Double precision (software float on the Badge4).
    Reference,
    /// Fixed point (Q1.30 constants).
    Fixed,
}

/// Applies mid/side reconstruction in place, returning the reconstructed
/// left channel (the decoder's output channel). When `mid_side` is false the
/// input is passed through and only copy costs are charged.
pub fn process(
    spectrum: &mut [f64],
    mid_side: bool,
    variant: StereoVariant,
    ops: &mut OpCounts,
) -> Vec<f64> {
    assert_eq!(
        spectrum.len(),
        SAMPLES_PER_GRANULE,
        "stereo stage expects one granule"
    );
    if !mid_side {
        ops.add(InstructionClass::Load, spectrum.len() as u64);
        ops.add(InstructionClass::Store, spectrum.len() as u64);
        return spectrum.to_vec();
    }
    let mut left = vec![0.0_f64; spectrum.len()];
    for (i, m) in spectrum.iter_mut().enumerate() {
        // Derived side signal: a deterministic small perturbation of mid (the
        // synthetic stream codes no independent side channel).
        let s = *m * 0.25;
        match variant {
            StereoVariant::Reference => {
                ops.add(InstructionClass::FloatAddSoft, 2);
                ops.add(InstructionClass::FloatMulSoft, 2);
                ops.add(InstructionClass::Load, 2);
                ops.add(InstructionClass::Store, 2);
            }
            StereoVariant::Fixed => {
                ops.add(InstructionClass::IntAlu, 2);
                ops.add(InstructionClass::IntMul, 2);
                ops.add(InstructionClass::Load, 2);
                ops.add(InstructionClass::Store, 2);
            }
        }
        let l = (*m + s) * INV_SQRT2;
        let r = (*m - s) * INV_SQRT2;
        left[i] = l;
        // The mid spectrum is replaced by the right channel, as the ISO code
        // rewrites xr[] in place.
        *m = r;
    }
    left
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pass_through_when_not_mid_side() {
        let mut spectrum: Vec<f64> = (0..SAMPLES_PER_GRANULE).map(|i| i as f64).collect();
        let original = spectrum.clone();
        let mut ops = OpCounts::new();
        let left = process(&mut spectrum, false, StereoVariant::Reference, &mut ops);
        assert_eq!(left, original);
        assert_eq!(spectrum, original);
        assert_eq!(ops.count(InstructionClass::FloatAddSoft), 0);
    }

    #[test]
    fn mid_side_reconstruction_is_energy_preserving() {
        let mut spectrum = vec![1.0_f64; SAMPLES_PER_GRANULE];
        let mut ops = OpCounts::new();
        let left = process(&mut spectrum, true, StereoVariant::Reference, &mut ops);
        // L = (m + 0.25m)/√2, R = (m - 0.25m)/√2; L² + R² = m²·(1.0625+...)/... just
        // check the fixed relation holds.
        assert!((left[0] - 1.25 * INV_SQRT2).abs() < 1e-12);
        assert!((spectrum[0] - 0.75 * INV_SQRT2).abs() < 1e-12);
    }

    #[test]
    fn fixed_variant_uses_integer_ops() {
        let mut spectrum = vec![0.5_f64; SAMPLES_PER_GRANULE];
        let mut ops = OpCounts::new();
        process(&mut spectrum, true, StereoVariant::Fixed, &mut ops);
        assert_eq!(ops.count(InstructionClass::FloatMulSoft), 0);
        assert!(ops.count(InstructionClass::IntMul) > 0);
    }

    #[test]
    #[should_panic(expected = "one granule")]
    fn wrong_length_panics() {
        let mut short = vec![0.0; 10];
        process(
            &mut short,
            true,
            StereoVariant::Reference,
            &mut OpCounts::new(),
        );
    }
}
