//! Antialiasing butterflies (`III_antialias`).
//!
//! Eight butterfly operations are applied across each of the 31 subband
//! boundaries to reduce aliasing introduced by the analysis filterbank. The
//! coefficient pairs `(cs_i, ca_i)` come from the standard's `c_i` constants.

use symmap_platform::cost::{InstructionClass, OpCounts};

use crate::types::{LINES_PER_SUBBAND, SAMPLES_PER_GRANULE, SUBBANDS};

/// Number of butterflies per subband boundary.
pub const BUTTERFLIES: usize = 8;

/// The standard's antialias coefficients `c_i`.
const C: [f64; BUTTERFLIES] = [
    -0.6, -0.535, -0.33, -0.185, -0.095, -0.041, -0.0142, -0.0037,
];

/// Returns the `(cs, ca)` coefficient pairs.
pub fn coefficients() -> [(f64, f64); BUTTERFLIES] {
    let mut out = [(0.0, 0.0); BUTTERFLIES];
    for (i, &c) in C.iter().enumerate() {
        let norm = (1.0 + c * c).sqrt();
        out[i] = (1.0 / norm, c / norm);
    }
    out
}

/// Which variant of the antialias kernel to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AntialiasVariant {
    /// Double precision.
    Reference,
    /// Fixed point.
    Fixed,
}

/// Applies the antialiasing butterflies in place.
pub fn process(spectrum: &mut [f64], variant: AntialiasVariant, ops: &mut OpCounts) {
    assert_eq!(
        spectrum.len(),
        SAMPLES_PER_GRANULE,
        "antialias stage expects one granule"
    );
    let coeffs = coefficients();
    for sb in 1..SUBBANDS {
        for (i, &(cs, ca)) in coeffs.iter().enumerate() {
            let lower = sb * LINES_PER_SUBBAND - 1 - i;
            let upper = sb * LINES_PER_SUBBAND + i;
            if upper >= spectrum.len() {
                continue;
            }
            let a = spectrum[lower];
            let b = spectrum[upper];
            match variant {
                AntialiasVariant::Reference => {
                    ops.add(InstructionClass::FloatMulSoft, 4);
                    ops.add(InstructionClass::FloatAddSoft, 2);
                    ops.add(InstructionClass::Load, 2);
                    ops.add(InstructionClass::Store, 2);
                }
                AntialiasVariant::Fixed => {
                    ops.add(InstructionClass::IntMac, 4);
                    ops.add(InstructionClass::Load, 2);
                    ops.add(InstructionClass::Store, 2);
                }
            }
            spectrum[lower] = a * cs - b * ca;
            spectrum[upper] = b * cs + a * ca;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coefficients_are_normalized() {
        for (cs, ca) in coefficients() {
            assert!((cs * cs + ca * ca - 1.0).abs() < 1e-12);
            assert!(cs > 0.0 && ca <= 0.0);
        }
    }

    #[test]
    fn butterflies_preserve_energy() {
        let mut spectrum: Vec<f64> = (0..SAMPLES_PER_GRANULE)
            .map(|i| ((i as f64) * 0.1).sin())
            .collect();
        let before: f64 = spectrum.iter().map(|v| v * v).sum();
        let mut ops = OpCounts::new();
        process(&mut spectrum, AntialiasVariant::Reference, &mut ops);
        let after: f64 = spectrum.iter().map(|v| v * v).sum();
        // Each butterfly is a rotation, so total energy is preserved.
        assert!((before - after).abs() / before < 1e-9);
        assert_eq!(
            ops.count(InstructionClass::FloatMulSoft),
            (31 * BUTTERFLIES * 4) as u64
        );
    }

    #[test]
    fn silence_stays_silent() {
        let mut spectrum = vec![0.0_f64; SAMPLES_PER_GRANULE];
        process(&mut spectrum, AntialiasVariant::Fixed, &mut OpCounts::new());
        assert!(spectrum.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn fixed_variant_counts_macs() {
        let mut spectrum = vec![0.25_f64; SAMPLES_PER_GRANULE];
        let mut ops = OpCounts::new();
        process(&mut spectrum, AntialiasVariant::Fixed, &mut ops);
        assert!(ops.count(InstructionClass::IntMac) > 0);
        assert_eq!(ops.count(InstructionClass::FloatMulSoft), 0);
    }
}
