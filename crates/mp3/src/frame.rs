//! Synthetic frame generation.
//!
//! The paper streams real MP3 files from a server over WLAN; the reproduction
//! substitutes a deterministic pseudo-random granule generator with a
//! realistic spectral envelope (most energy in the low subbands, sparse highs)
//! so that every arithmetic kernel sees full-range data. Frames are
//! Huffman-encoded into a byte stream and decoded back by the pipeline, so the
//! `III_hufman_decode` stage does real work.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::huffman::{self, HuffmanTable};
use crate::types::{
    Frame, Granule, GRANULES_PER_FRAME, LINES_PER_SUBBAND, SAMPLES_PER_GRANULE, SUBBANDS,
};

/// Deterministic generator of synthetic frames.
#[derive(Debug)]
pub struct FrameGenerator {
    rng: StdRng,
    table: HuffmanTable,
    next_index: u32,
}

impl FrameGenerator {
    /// Creates a generator with a fixed seed (same seed ⇒ same stream).
    pub fn new(seed: u64) -> Self {
        FrameGenerator {
            rng: StdRng::seed_from_u64(seed),
            table: HuffmanTable::standard(),
            next_index: 0,
        }
    }

    /// Generates the next frame.
    pub fn frame(&mut self) -> Frame {
        let index = self.next_index;
        self.next_index += 1;
        let granules = (0..GRANULES_PER_FRAME).map(|_| self.granule()).collect();
        Frame { granules, index }
    }

    /// Generates a whole stream of `frames` frames.
    pub fn stream(&mut self, frames: usize) -> Vec<Frame> {
        (0..frames).map(|_| self.frame()).collect()
    }

    /// Generates one granule with a decaying spectral envelope.
    fn granule(&mut self) -> Granule {
        let mut quantized = vec![0_i32; SAMPLES_PER_GRANULE];
        for sb in 0..SUBBANDS {
            // Low subbands carry large values, high subbands are mostly zero.
            let amplitude = (400.0 * (-(sb as f64) / 6.0).exp()).max(1.0) as i32;
            let density = if sb < 8 {
                0.9
            } else if sb < 20 {
                0.5
            } else {
                0.1
            };
            for line in 0..LINES_PER_SUBBAND {
                if self.rng.gen::<f64>() < density {
                    let mag = self.rng.gen_range(0..=amplitude);
                    let sign = if self.rng.gen::<bool>() { 1 } else { -1 };
                    quantized[sb * LINES_PER_SUBBAND + line] = sign * mag;
                }
            }
        }
        let scalefactors = (0..SUBBANDS)
            .map(|sb| self.rng.gen_range(0..4) + (sb as i32 / 8))
            .collect();
        Granule {
            quantized,
            global_gain: self.rng.gen_range(-8..=8),
            scalefactors,
            mid_side: self.rng.gen_bool(0.5),
        }
    }

    /// Huffman-encodes a granule's quantized spectrum into bytes (the payload
    /// the decoder's Huffman stage consumes).
    pub fn encode_granule(&self, granule: &Granule) -> Vec<u8> {
        huffman::encode(&granule.quantized, &self.table)
    }

    /// The Huffman table shared by generator and decoder.
    pub fn table(&self) -> &HuffmanTable {
        &self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symmap_platform::cost::OpCounts;

    #[test]
    fn frames_are_deterministic_per_seed() {
        let a = FrameGenerator::new(42).frame();
        let b = FrameGenerator::new(42).frame();
        let c = FrameGenerator::new(43).frame();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn frame_indices_increment() {
        let mut gen = FrameGenerator::new(1);
        let s = gen.stream(3);
        assert_eq!(s.len(), 3);
        assert_eq!(s[0].index, 0);
        assert_eq!(s[2].index, 2);
    }

    #[test]
    fn spectral_envelope_decays() {
        let mut gen = FrameGenerator::new(7);
        let frame = gen.frame();
        let g = &frame.granules[0];
        let low_energy: i64 = g.quantized[..144].iter().map(|&v| (v as i64).abs()).sum();
        let high_energy: i64 = g.quantized[432..].iter().map(|&v| (v as i64).abs()).sum();
        assert!(
            low_energy > 10 * high_energy.max(1),
            "low {low_energy} high {high_energy}"
        );
        assert!(g.nonzero_count() > 100);
    }

    #[test]
    fn encoded_granule_decodes_back() {
        let mut gen = FrameGenerator::new(11);
        let frame = gen.frame();
        let g = &frame.granules[1];
        let bytes = gen.encode_granule(g);
        let mut ops = OpCounts::new();
        let decoded = huffman::decode(&bytes, SAMPLES_PER_GRANULE, gen.table(), &mut ops).unwrap();
        assert_eq!(decoded, g.quantized);
    }

    #[test]
    fn scalefactors_and_gain_in_range() {
        let mut gen = FrameGenerator::new(5);
        for _ in 0..4 {
            let f = gen.frame();
            for g in &f.granules {
                assert_eq!(g.scalefactors.len(), SUBBANDS);
                assert!(g.global_gain >= -8 && g.global_gain <= 8);
                assert!(g.scalefactors.iter().all(|&s| (0..8).contains(&s)));
            }
        }
    }
}
