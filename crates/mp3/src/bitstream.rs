//! Bit-level reader and writer for the synthetic MP3-like stream.
//!
//! The synchronization/bit-unpacking front end of the decoder is not a
//! mapping target in the paper (it is control-dominated, not arithmetic), but
//! the Huffman stage needs a real bit stream to decode, so the synthetic frame
//! generator serializes quantized spectra through these.

/// Writes bits most-significant-first into a byte vector.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    bytes: Vec<u8>,
    bit_pos: u8,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// Appends the lowest `count` bits of `value`, most significant first.
    ///
    /// # Panics
    ///
    /// Panics if `count > 32`.
    pub fn write_bits(&mut self, value: u32, count: u8) {
        assert!(count <= 32, "cannot write more than 32 bits at once");
        for i in (0..count).rev() {
            let bit = (value >> i) & 1;
            if self.bit_pos == 0 {
                self.bytes.push(0);
            }
            let last = self.bytes.last_mut().expect("byte pushed above");
            *last |= (bit as u8) << (7 - self.bit_pos);
            self.bit_pos = (self.bit_pos + 1) % 8;
        }
    }

    /// Number of bits written so far.
    pub fn bit_len(&self) -> usize {
        if self.bytes.is_empty() {
            0
        } else {
            (self.bytes.len() - 1) * 8
                + if self.bit_pos == 0 {
                    8
                } else {
                    self.bit_pos as usize
                }
        }
    }

    /// Finishes writing and returns the bytes (final partial byte zero-padded).
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

/// Reads bits most-significant-first from a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0 }
    }

    /// Reads one bit; `None` at end of stream.
    pub fn read_bit(&mut self) -> Option<u8> {
        let byte = self.bytes.get(self.pos / 8)?;
        let bit = (byte >> (7 - (self.pos % 8))) & 1;
        self.pos += 1;
        Some(bit)
    }

    /// Reads `count` bits as an unsigned integer; `None` if the stream ends.
    ///
    /// # Panics
    ///
    /// Panics if `count > 32`.
    pub fn read_bits(&mut self, count: u8) -> Option<u32> {
        assert!(count <= 32, "cannot read more than 32 bits at once");
        let mut v = 0_u32;
        for _ in 0..count {
            v = (v << 1) | self.read_bit()? as u32;
        }
        Some(v)
    }

    /// Bits consumed so far.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Remaining bits.
    pub fn remaining(&self) -> usize {
        self.bytes.len() * 8 - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn write_then_read_round_trips() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0xFF, 8);
        w.write_bits(0, 1);
        w.write_bits(0b110011, 6);
        assert_eq!(w.bit_len(), 18);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3), Some(0b101));
        assert_eq!(r.read_bits(8), Some(0xFF));
        assert_eq!(r.read_bits(1), Some(0));
        assert_eq!(r.read_bits(6), Some(0b110011));
    }

    #[test]
    fn reading_past_end_returns_none() {
        let bytes = [0xAB];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(8), Some(0xAB));
        assert_eq!(r.read_bit(), None);
        assert_eq!(r.read_bits(4), None);
    }

    #[test]
    fn position_and_remaining() {
        let bytes = [0u8; 4];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.remaining(), 32);
        r.read_bits(10);
        assert_eq!(r.position(), 10);
        assert_eq!(r.remaining(), 22);
    }

    #[test]
    fn empty_writer() {
        let w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        assert!(w.into_bytes().is_empty());
    }

    proptest! {
        #[test]
        fn prop_values_round_trip(values in proptest::collection::vec((0u32..1u32<<16, 1u8..=16u8), 1..50)) {
            let mut w = BitWriter::new();
            for &(v, bits) in &values {
                let v = v & ((1u32 << bits) - 1).max(1);
                w.write_bits(v, bits);
            }
            let expected: Vec<u32> = values
                .iter()
                .map(|&(v, bits)| v & ((1u32 << bits) - 1).max(1))
                .collect();
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            for (i, &(_, bits)) in values.iter().enumerate() {
                prop_assert_eq!(r.read_bits(bits), Some(expected[i]));
            }
        }
    }
}
