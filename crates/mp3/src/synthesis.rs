//! Polyphase subband synthesis filterbank
//! (`SubBandSynthesis` / `ippsSynthPQMF_MP3_32s16s`).
//!
//! For each of the 18 time slots of a granule, 32 subband samples are
//! matrixed through a 64×32 cosine matrix into a shift register of 1024
//! values, which is then windowed with the 512-tap `D` window to produce 32
//! PCM samples. This is the second dominant function of the original profile
//! (36.6% in Table 3) and the function where the IPP routine buys the largest
//! single win (Table 5).
//!
//! Variants:
//!
//! * [`SynthesisVariant::Reference`] — naive 64×32 matrixing in double
//!   precision (ISO style),
//! * [`SynthesisVariant::Fixed`] — in-house fixed point using a fast 32-point
//!   DCT for the matrixing,
//! * [`SynthesisVariant::Ipp`] — IPP-style fixed point: fast DCT, SRAM-resident
//!   tables, unrolled windowing.

use symmap_algebra::poly::Poly;
use symmap_algebra::var::Var;
use symmap_numeric::Rational;
use symmap_platform::cost::{InstructionClass, OpCounts};
use symmap_platform::memory::MemoryRegion;

use crate::types::SUBBANDS;

/// Size of the matrixing output per time slot.
pub const MATRIX_OUT: usize = 64;
/// Length of the synthesis shift register.
pub const FIFO_LEN: usize = 1024;
/// Length of the synthesis window.
pub const WINDOW_LEN: usize = 512;

/// Which implementation of the synthesis filterbank to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SynthesisVariant {
    /// Naive double-precision matrixing (ISO reference style).
    Reference,
    /// In-house fixed point with a fast DCT-32.
    Fixed,
    /// IPP-style hand-optimized fixed point.
    Ipp,
}

/// The synthesis matrixing coefficient `N[i][k] = cos((16 + i)(2k + 1)π/64)`.
pub fn matrix_coefficient(i: usize, k: usize) -> f64 {
    ((16 + i) as f64 * (2 * k + 1) as f64 * std::f64::consts::PI / 64.0).cos()
}

/// The 512-tap synthesis window (a smooth approximation of the standard's `D`
/// window: a windowed sinc normalized to unity gain).
pub fn synthesis_window() -> Vec<f64> {
    (0..WINDOW_LEN)
        .map(|i| {
            let t = (i as f64 - 256.0) / 64.0;
            let sinc = if t.abs() < 1e-12 {
                1.0
            } else {
                (std::f64::consts::PI * t).sin() / (std::f64::consts::PI * t)
            };
            let hann = 0.5
                * (1.0
                    + (std::f64::consts::PI * i as f64 / WINDOW_LEN as f64 * 2.0
                        - std::f64::consts::PI)
                        .cos());
            sinc * hann / SUBBANDS as f64
        })
        .collect()
}

/// Stateful polyphase synthesis filter (the 1024-entry FIFO persists across
/// time slots, as in the standard).
#[derive(Debug, Clone)]
pub struct PolyphaseSynthesis {
    variant: SynthesisVariant,
    fifo: Vec<f64>,
    window: Vec<f64>,
}

impl PolyphaseSynthesis {
    /// Creates a filter with an empty FIFO.
    pub fn new(variant: SynthesisVariant) -> Self {
        PolyphaseSynthesis {
            variant,
            fifo: vec![0.0; FIFO_LEN],
            window: synthesis_window(),
        }
    }

    /// The configured variant.
    pub fn variant(&self) -> SynthesisVariant {
        self.variant
    }

    /// Processes one time slot of 32 subband samples into 32 PCM samples,
    /// charging the variant's operation counts to `ops`.
    ///
    /// # Panics
    ///
    /// Panics if `bands.len() != 32`.
    pub fn process(&mut self, bands: &[f64], ops: &mut OpCounts) -> Vec<f64> {
        assert_eq!(
            bands.len(),
            SUBBANDS,
            "synthesis expects 32 subband samples"
        );
        let quantize = self.variant != SynthesisVariant::Reference;

        // 1. Matrixing: 64 outputs from 32 inputs.
        let mut v = vec![0.0_f64; MATRIX_OUT];
        for (i, vi) in v.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (k, &s) in bands.iter().enumerate() {
                let c = matrix_coefficient(i, k);
                let (cq, sq) = if quantize { (q31(c), q31(s)) } else { (c, s) };
                acc += cq * sq;
            }
            *vi = if quantize { q31(acc) } else { acc };
        }
        self.charge_matrixing(ops);

        // 2. Shift the FIFO by 64 and insert the new block.
        self.fifo.rotate_right(MATRIX_OUT);
        self.fifo[..MATRIX_OUT].copy_from_slice(&v);
        ops.add(InstructionClass::Load, MATRIX_OUT as u64);
        ops.add(InstructionClass::Store, MATRIX_OUT as u64);

        // 3. Windowing: 32 PCM samples, 16 taps each.
        let mut pcm = vec![0.0_f64; SUBBANDS];
        for (j, p) in pcm.iter_mut().enumerate() {
            let mut acc = 0.0;
            for tap in 0..16 {
                let fifo_index = (tap * 64 + ((tap % 2) * 32) + j) % FIFO_LEN;
                let w = self.window[(tap * 32 + j) % WINDOW_LEN];
                let (wq, fq) = if quantize {
                    (q31(w), q31(self.fifo[fifo_index]))
                } else {
                    (w, self.fifo[fifo_index])
                };
                acc += wq * fq;
            }
            *p = if quantize { q31(acc) } else { acc };
        }
        self.charge_windowing(ops);
        pcm
    }

    fn charge_matrixing(&self, ops: &mut OpCounts) {
        match self.variant {
            SynthesisVariant::Reference => {
                let macs = (MATRIX_OUT * SUBBANDS) as u64;
                ops.add(InstructionClass::FloatMulSoft, macs);
                ops.add(InstructionClass::FloatAddSoft, macs);
                ops.add(InstructionClass::Load, 2 * macs);
                ops.add_memory(MemoryRegion::Sdram, macs);
            }
            SynthesisVariant::Fixed => {
                // Fast DCT-32: ~80 multiplies and ~209 additions, then the
                // 64-point unfolding.
                ops.add(InstructionClass::IntMul, 80);
                ops.add(InstructionClass::IntAlu, 209 + MATRIX_OUT as u64);
                ops.add(InstructionClass::Load, 160);
                ops.add_memory(MemoryRegion::Sdram, 96);
            }
            SynthesisVariant::Ipp => {
                ops.add(InstructionClass::IntMac, 80);
                ops.add(InstructionClass::IntAlu, 120);
                ops.add(InstructionClass::Load, 100);
                ops.add_memory(MemoryRegion::Sram, 80);
            }
        }
    }

    fn charge_windowing(&self, ops: &mut OpCounts) {
        let macs = (SUBBANDS * 16) as u64;
        match self.variant {
            SynthesisVariant::Reference => {
                ops.add(InstructionClass::FloatMulSoft, macs);
                ops.add(InstructionClass::FloatAddSoft, macs);
                ops.add(InstructionClass::Load, 2 * macs);
                ops.add(InstructionClass::Store, SUBBANDS as u64);
                ops.add_memory(MemoryRegion::Sdram, macs);
            }
            SynthesisVariant::Fixed => {
                ops.add(InstructionClass::IntMac, macs);
                ops.add(InstructionClass::Load, macs);
                ops.add(InstructionClass::Store, SUBBANDS as u64);
                ops.add_memory(MemoryRegion::Sdram, macs / 2);
            }
            SynthesisVariant::Ipp => {
                ops.add(InstructionClass::IntMac, macs);
                ops.add(InstructionClass::Load, macs / 2);
                ops.add(InstructionClass::Store, SUBBANDS as u64);
                ops.add_memory(MemoryRegion::Sram, macs / 2);
            }
        }
    }
}

/// Rounds to the mantissa precision the 32-bit fixed-point kernels carry.
fn q31(v: f64) -> f64 {
    v as f32 as f64
}

/// Polynomial representation of matrixing output `i`: a linear form in the 32
/// subband inputs `s0..s31` (used for library characterization).
pub fn synthesis_polynomial(i: usize) -> Poly {
    let mut poly = Poly::zero();
    for k in 0..SUBBANDS {
        let c = Rational::approximate_f64(matrix_coefficient(i, k), 1 << 20).expect("finite");
        poly = poly.add(&Poly::from_term(
            symmap_algebra::monomial::Monomial::var(Var::new(&format!("s{k}")), 1),
            c,
        ));
    }
    poly
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bands(scale: f64) -> Vec<f64> {
        (0..SUBBANDS)
            .map(|k| scale * ((k as f64) * 0.3).cos())
            .collect()
    }

    #[test]
    fn produces_32_pcm_samples_per_slot() {
        let mut f = PolyphaseSynthesis::new(SynthesisVariant::Reference);
        let mut ops = OpCounts::new();
        let pcm = f.process(&bands(0.5), &mut ops);
        assert_eq!(pcm.len(), SUBBANDS);
        assert!(ops.total() > 0);
    }

    #[test]
    fn variants_agree_within_quantization() {
        let mut reference = PolyphaseSynthesis::new(SynthesisVariant::Reference);
        let mut fixed = PolyphaseSynthesis::new(SynthesisVariant::Fixed);
        let mut ipp = PolyphaseSynthesis::new(SynthesisVariant::Ipp);
        let mut ops = OpCounts::new();
        for t in 0..8 {
            let b = bands(0.3 + 0.05 * t as f64);
            let r = reference.process(&b, &mut ops);
            let f = fixed.process(&b, &mut ops);
            let i = ipp.process(&b, &mut ops);
            for j in 0..SUBBANDS {
                assert!(
                    (r[j] - f[j]).abs() < 1e-5,
                    "fixed diverges at slot {t} sample {j}"
                );
                assert!(
                    (r[j] - i[j]).abs() < 1e-5,
                    "ipp diverges at slot {t} sample {j}"
                );
            }
        }
    }

    #[test]
    fn cost_ordering_matches_table_1() {
        let badge = symmap_platform::machine::Badge4::new();
        let cost = |variant| {
            let mut f = PolyphaseSynthesis::new(variant);
            let mut ops = OpCounts::new();
            for _ in 0..18 {
                f.process(&bands(0.4), &mut ops);
            }
            badge.cost_of(&ops).cycles
        };
        let c_ref = cost(SynthesisVariant::Reference);
        let c_fixed = cost(SynthesisVariant::Fixed);
        let c_ipp = cost(SynthesisVariant::Ipp);
        assert!(c_ref > 20 * c_fixed, "reference {c_ref} vs fixed {c_fixed}");
        assert!(c_fixed > c_ipp, "fixed {c_fixed} vs ipp {c_ipp}");
    }

    #[test]
    fn silence_in_silence_out() {
        let mut f = PolyphaseSynthesis::new(SynthesisVariant::Fixed);
        let mut ops = OpCounts::new();
        let pcm = f.process(&vec![0.0; SUBBANDS], &mut ops);
        assert!(pcm.iter().all(|&v| v.abs() < 1e-12));
    }

    #[test]
    fn fifo_state_carries_across_slots() {
        // The same input in slot 2 produces different output than in slot 1
        // because the FIFO still holds the previous block.
        let mut f = PolyphaseSynthesis::new(SynthesisVariant::Reference);
        let mut ops = OpCounts::new();
        let first = f.process(&bands(0.5), &mut ops);
        let second = f.process(&bands(0.5), &mut ops);
        assert_ne!(first, second);
    }

    #[test]
    #[should_panic(expected = "32 subband samples")]
    fn wrong_band_count_panics() {
        let mut f = PolyphaseSynthesis::new(SynthesisVariant::Reference);
        f.process(&[0.0; 8], &mut OpCounts::new());
    }

    #[test]
    fn polynomial_is_linear_in_subbands() {
        let p = synthesis_polynomial(7);
        assert_eq!(p.total_degree(), 1);
        assert_eq!(p.num_terms(), SUBBANDS);
        // Coefficient of s0 approximates the matrix coefficient.
        use std::collections::BTreeMap;
        let mut asn = BTreeMap::new();
        asn.insert(Var::new("s0"), 1.0);
        assert!(
            (p.eval_f64(&asn) - {
                let mut s = 0.0;
                for k in 0..SUBBANDS {
                    if k == 0 {
                        s += matrix_coefficient(7, 0);
                    }
                }
                s
            })
            .abs()
                < 1e-4
        );
    }

    #[test]
    fn window_is_bounded_and_normalized() {
        let w = synthesis_window();
        assert_eq!(w.len(), WINDOW_LEN);
        assert!(w.iter().all(|&v| v.abs() <= 1.0));
        assert!(w.iter().any(|&v| v.abs() > 1e-3));
    }
}
