//! Shared constants and data containers of the MP3 pipeline.

use serde::{Deserialize, Serialize};

/// Spectral samples per granule and channel (MPEG-1 Layer III).
pub const SAMPLES_PER_GRANULE: usize = 576;
/// Polyphase subbands.
pub const SUBBANDS: usize = 32;
/// Spectral lines per subband (576 / 32).
pub const LINES_PER_SUBBAND: usize = 18;
/// Granules per frame.
pub const GRANULES_PER_FRAME: usize = 2;
/// Long-block IMDCT size (produces 36 time samples from 18 spectral lines).
pub const IMDCT_SIZE: usize = 36;
/// PCM samples produced per granule and channel.
pub const PCM_PER_GRANULE: usize = SAMPLES_PER_GRANULE;
/// Audio sample rate assumed for real-time deadlines (Hz).
pub const SAMPLE_RATE_HZ: f64 = 44_100.0;

/// Wall-clock duration of one frame of audio (two granules of 576 samples).
pub fn frame_duration_s() -> f64 {
    (SAMPLES_PER_GRANULE * GRANULES_PER_FRAME) as f64 / SAMPLE_RATE_HZ
}

/// Quantized spectral data and scaling side information for one granule of
/// one channel, mirroring the fields the ISO decoder extracts from the
/// bitstream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Granule {
    /// Quantized (Huffman-decoded) spectral values, length 576.
    pub quantized: Vec<i32>,
    /// Global gain exponent (210-biased in the standard; stored unbiased here).
    pub global_gain: i32,
    /// Scalefactors per scalefactor band (simplified: one per subband).
    pub scalefactors: Vec<i32>,
    /// Whether this granule uses mid/side stereo coding.
    pub mid_side: bool,
}

impl Granule {
    /// A silent granule.
    pub fn silent() -> Self {
        Granule {
            quantized: vec![0; SAMPLES_PER_GRANULE],
            global_gain: 0,
            scalefactors: vec![0; SUBBANDS],
            mid_side: false,
        }
    }

    /// Number of non-zero spectral values.
    pub fn nonzero_count(&self) -> usize {
        self.quantized.iter().filter(|&&v| v != 0).count()
    }
}

/// A frame: two granules, single channel (the Badge4 decodes to mono speakers
/// in the reproduction; stereo mid/side processing still runs when the
/// granule requests it, operating on the mid channel and a derived side
/// channel).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Frame {
    /// The granules of the frame.
    pub granules: Vec<Granule>,
    /// Frame sequence number within the stream.
    pub index: u32,
}

impl Frame {
    /// A frame of silence.
    pub fn silent(index: u32) -> Self {
        Frame {
            granules: vec![Granule::silent(); GRANULES_PER_FRAME],
            index,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_consistent() {
        assert_eq!(SUBBANDS * LINES_PER_SUBBAND, SAMPLES_PER_GRANULE);
        assert_eq!(IMDCT_SIZE, 2 * LINES_PER_SUBBAND);
    }

    #[test]
    fn frame_duration_matches_sample_rate() {
        // 1152 samples at 44.1 kHz is about 26.1 ms.
        assert!((frame_duration_s() - 0.02612).abs() < 1e-4);
    }

    #[test]
    fn silent_granule_has_no_content() {
        let g = Granule::silent();
        assert_eq!(g.quantized.len(), SAMPLES_PER_GRANULE);
        assert_eq!(g.nonzero_count(), 0);
        let f = Frame::silent(3);
        assert_eq!(f.granules.len(), GRANULES_PER_FRAME);
        assert_eq!(f.index, 3);
    }
}
