//! Target code identification (§3.2).
//!
//! Profiling finds the performance/energy-critical procedures; each critical
//! procedure that computes an arithmetic function is then formulated as a
//! polynomial suitable for mapping. Procedures that are control-dominated
//! (Huffman decoding, reordering, scale-factor unpacking) have no polynomial
//! representation — exactly as in the paper, they are left to conventional
//! optimization.

use symmap_algebra::poly::Poly;
use symmap_libchar::catalog;
use symmap_mp3::{imdct, synthesis};
use symmap_platform::profiler::Profile;

use crate::error::CoreError;

/// A critical procedure selected for mapping, with its polynomial formulation.
#[derive(Debug, Clone)]
pub struct TargetFunction {
    /// The function's name as it appears in the profile.
    pub name: String,
    /// Share of execution time in the profile that selected it.
    pub percent: f64,
    /// Polynomial representation of the function's arithmetic core.
    pub polynomial: Poly,
}

/// The decoder pipeline stage a profile function name belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecoderStage {
    /// Requantization.
    Dequantize,
    /// Stereo processing.
    Stereo,
    /// Antialias butterflies.
    Antialias,
    /// IMDCT.
    Imdct,
    /// Hybrid overlap-add.
    Hybrid,
    /// Polyphase subband synthesis.
    Synthesis,
}

/// Maps a profiled function name to its decoder stage (when the function is a
/// mapping target at all).
pub fn stage_of(function: &str) -> Option<DecoderStage> {
    match function {
        "III_dequantize_sample" => Some(DecoderStage::Dequantize),
        "III_stereo" => Some(DecoderStage::Stereo),
        "III_antialias" => Some(DecoderStage::Antialias),
        "inv_mdctL" | "IppsMDCTInv_MP3_32s" => Some(DecoderStage::Imdct),
        "III_hybrid" => Some(DecoderStage::Hybrid),
        "SubBandSynthesis" | "ippsSynthPQMF_MP3_32s16s" => Some(DecoderStage::Synthesis),
        _ => None,
    }
}

/// Returns the polynomial formulation of a decoder function, or an error when
/// the function is control-dominated and has no polynomial representation.
pub fn polynomial_for(function: &str) -> Result<Poly, CoreError> {
    let stage =
        stage_of(function).ok_or_else(|| CoreError::UnknownFunction(function.to_string()))?;
    Ok(match stage {
        DecoderStage::Dequantize => catalog::dequantizer_polynomial(),
        DecoderStage::Stereo => catalog::stereo_polynomial(),
        DecoderStage::Antialias => catalog::antialias_polynomial(),
        DecoderStage::Imdct => imdct::imdct_polynomial(0, 36),
        DecoderStage::Hybrid => catalog::hybrid_polynomial(),
        DecoderStage::Synthesis => synthesis::synthesis_polynomial(0),
    })
}

/// Selects the critical procedures of a profile (those covering
/// `threshold_percent` of the execution time) and formulates each one that
/// admits a polynomial representation.
pub fn identify_targets(profile: &Profile, threshold_percent: f64) -> Vec<TargetFunction> {
    let mut out = Vec::new();
    for name in profile.critical_functions(threshold_percent) {
        let Ok(polynomial) = polynomial_for(&name) else {
            continue;
        };
        let percent = profile.entry(&name).map(|e| e.percent).unwrap_or(0.0);
        out.push(TargetFunction {
            name,
            percent,
            polynomial,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use symmap_mp3::decoder::{Decoder, KernelSet};
    use symmap_mp3::frame::FrameGenerator;
    use symmap_platform::machine::Badge4;
    use symmap_platform::profiler::Profiler;

    #[test]
    fn stage_mapping_covers_both_naming_schemes() {
        assert_eq!(stage_of("SubBandSynthesis"), Some(DecoderStage::Synthesis));
        assert_eq!(
            stage_of("ippsSynthPQMF_MP3_32s16s"),
            Some(DecoderStage::Synthesis)
        );
        assert_eq!(stage_of("inv_mdctL"), Some(DecoderStage::Imdct));
        assert_eq!(stage_of("III_hufman_decode"), None);
        assert_eq!(stage_of("unknown"), None);
    }

    #[test]
    fn control_functions_have_no_polynomial() {
        assert!(polynomial_for("III_hufman_decode").is_err());
        assert!(polynomial_for("III_reorder").is_err());
        assert!(polynomial_for("SubBandSynthesis").is_ok());
    }

    #[test]
    fn identify_targets_from_a_real_profile() {
        let frame = FrameGenerator::new(4).frame();
        let profiler = Profiler::new();
        Decoder::new(KernelSet::reference()).decode_frame(&frame, &profiler);
        let profile = profiler.profile(&Badge4::new());
        let targets = identify_targets(&profile, 95.0);
        let names: Vec<&str> = targets.iter().map(|t| t.name.as_str()).collect();
        // The three dominant arithmetic functions must all be identified.
        assert!(names.contains(&"III_dequantize_sample"));
        assert!(names.contains(&"SubBandSynthesis"));
        assert!(names.contains(&"inv_mdctL"));
        // Control functions are skipped even if they sneak into the critical set.
        assert!(!names.contains(&"III_hufman_decode"));
        for t in &targets {
            assert!(!t.polynomial.is_zero());
            assert!(t.percent > 0.0);
        }
    }

    #[test]
    fn polynomials_are_the_shared_representations() {
        assert_eq!(
            polynomial_for("SubBandSynthesis").unwrap(),
            synthesis::synthesis_polynomial(0)
        );
        assert_eq!(
            polynomial_for("inv_mdctL").unwrap(),
            imdct::imdct_polynomial(0, 36)
        );
    }
}
