//! The end-to-end optimization pipeline for the MP3 decoder workload.
//!
//! This is the driver that reproduces the paper's experiment: profile the
//! original decoder, identify the critical procedures, map each one onto the
//! allowed libraries with the symbolic mapper, translate the chosen elements
//! into a kernel selection, and measure the resulting decoder's performance,
//! energy and compliance on the simulated Badge4.

use std::sync::Arc;

use symmap_engine::{EngineStats, MapJob, MappingEngine};
use symmap_libchar::Library;
use symmap_mp3::compliance::{self, ComplianceReport};
use symmap_mp3::decoder::{Decoder, KernelSet, KernelVariant};
use symmap_mp3::frame::FrameGenerator;
use symmap_mp3::types::frame_duration_s;
use symmap_platform::machine::Badge4;
use symmap_platform::profiler::{Profile, Profiler};

use crate::decompose::MapperConfig;
use crate::identify::{self, DecoderStage, TargetFunction};
use crate::mapping::MappingSolution;

/// A measured decoder configuration — one row of Table 6.
#[derive(Debug, Clone)]
pub struct CodeVersion {
    /// Human-readable name ("Original", "IH Library", …).
    pub name: String,
    /// The kernel selection that produced it.
    pub kernels: KernelSet,
    /// Per-frame profile (Tables 3–5 format).
    pub frame_profile: Profile,
    /// Whole-stream decode time in seconds.
    pub stream_seconds: f64,
    /// Whole-stream energy in joules.
    pub stream_energy_j: f64,
    /// Compliance of the PCM output against the reference decoder.
    pub compliance: ComplianceReport,
    /// One summary line per mapped critical function.
    pub mapping_summary: Vec<String>,
}

impl CodeVersion {
    /// Performance improvement factor relative to a baseline version.
    pub fn perf_factor_vs(&self, baseline: &CodeVersion) -> f64 {
        baseline.stream_seconds / self.stream_seconds
    }

    /// Energy improvement factor relative to a baseline version.
    pub fn energy_factor_vs(&self, baseline: &CodeVersion) -> f64 {
        baseline.stream_energy_j / self.stream_energy_j
    }

    /// Ratio of available decode time to used decode time (>1 means faster
    /// than real time, the precondition for voltage/frequency scaling).
    pub fn real_time_headroom(&self, frames: usize) -> f64 {
        frames as f64 * frame_duration_s() / self.stream_seconds
    }
}

/// The three-step methodology driver.
///
/// Owns one [`MappingEngine`] whose shared Gröbner cache is reused by every
/// `map_decoder`/`run` call (and by every clone of the pipeline): the
/// side-relation bases priced while mapping one decoder version answer the
/// lookups of later ones. Mapping batches run on the engine's worker pool —
/// `workers = 1` (the default) is the historic sequential path, and any
/// other worker count produces byte-identical solutions.
#[derive(Debug, Clone)]
pub struct OptimizationPipeline {
    badge: Badge4,
    library: Arc<Library>,
    stream_frames: usize,
    seed: u64,
    mapper_config: MapperConfig,
    engine: MappingEngine,
}

impl OptimizationPipeline {
    /// Creates a pipeline that maps against `library` and measures on `badge`.
    pub fn new(badge: Badge4, library: Library) -> Self {
        let mapper_config = MapperConfig::default();
        let engine = MappingEngine::new(mapper_config.engine.clone());
        OptimizationPipeline {
            badge,
            library: Arc::new(library),
            stream_frames: 32,
            seed: 7,
            mapper_config,
            engine,
        }
    }

    /// Sets the number of frames in the measured stream (the paper's stream is
    /// roughly 194 frames: 503.92 s of original decode at 2.59 s per frame).
    pub fn with_stream_frames(mut self, frames: usize) -> Self {
        self.stream_frames = frames.max(1);
        self
    }

    /// Overrides the mapper configuration (used by the ablation benches).
    /// The batch engine is rebuilt from the configuration's
    /// [`EngineConfig`](symmap_engine::EngineConfig), with a fresh cache.
    pub fn with_mapper_config(mut self, config: MapperConfig) -> Self {
        self.engine = MappingEngine::new(config.engine.clone());
        self.mapper_config = config;
        self
    }

    /// Routes this pipeline's mapping batches through an existing engine,
    /// sharing its worker configuration and basis cache (used by the bench
    /// harness to pool bases across the Table 6 library sweep).
    pub fn with_engine(mut self, engine: MappingEngine) -> Self {
        self.engine = engine;
        self
    }

    /// The number of frames in the measured stream.
    pub fn stream_frames(&self) -> usize {
        self.stream_frames
    }

    /// The platform model.
    pub fn badge(&self) -> &Badge4 {
        &self.badge
    }

    /// The batch engine carrying this pipeline's worker pool and shared
    /// Gröbner cache.
    pub fn engine(&self) -> &MappingEngine {
        &self.engine
    }

    /// `(hits, misses)` of the shared Gröbner-basis memoization layer.
    pub fn groebner_cache_stats(&self) -> (usize, usize) {
        let cache = self.engine.cache();
        (cache.hits(), cache.misses())
    }

    /// Step 2: profile the original (reference) decoder on one frame and
    /// identify every mappable procedure (the paper maps everything that can
    /// be written as a polynomial, however small).
    pub fn identify_decoder_targets(&self) -> Vec<TargetFunction> {
        let frame = FrameGenerator::new(self.seed).frame();
        let profiler = Profiler::new();
        Decoder::new(KernelSet::reference()).decode_frame(&frame, &profiler);
        let profile = profiler.profile(&self.badge);
        identify::identify_targets(&profile, 99.99)
    }

    /// Step 2 + 3: profile the original code, identify the critical
    /// procedures, and map each one onto the allowed library. Returns the
    /// resulting kernel selection together with the individual mapping
    /// solutions.
    pub fn map_decoder(&self) -> (KernelSet, Vec<(String, MappingSolution)>) {
        let (kernels, solutions, _) = self.map_decoder_with_stats();
        (kernels, solutions)
    }

    /// Like [`map_decoder`](OptimizationPipeline::map_decoder), but also
    /// returns the engine's batch statistics (jobs, steals, per-shard cache
    /// counters, wall time) for reporting.
    pub fn map_decoder_with_stats(
        &self,
    ) -> (KernelSet, Vec<(String, MappingSolution)>, EngineStats) {
        let targets = self.identify_decoder_targets();

        // One MapJob per identified kernel; the engine preserves job order,
        // so the solution list is identical to the historic sequential loop.
        let jobs: Vec<MapJob> = targets
            .into_iter()
            .map(|t| {
                MapJob::new(
                    t.name,
                    t.polynomial,
                    Arc::clone(&self.library),
                    self.mapper_config.clone(),
                )
            })
            .collect();
        let batch = self.engine.run(&jobs);

        let mut kernels = KernelSet::reference();
        let mut solutions = Vec::new();
        for (job, outcome) in jobs.into_iter().zip(batch.outcomes) {
            let Ok(solution) = outcome else {
                continue;
            };
            if let Some(stage) = identify::stage_of(&job.label) {
                if let Some(variant) = variant_of_solution(&solution) {
                    apply_variant(&mut kernels, stage, variant);
                }
            }
            solutions.push((job.label, solution));
        }
        (kernels, solutions, batch.stats)
    }

    /// Runs the full methodology and measures the mapped decoder.
    pub fn run(&self, name: &str) -> CodeVersion {
        let (kernels, solutions) = self.map_decoder();
        let mut version = self.measure(name, kernels);
        version.mapping_summary = solutions
            .iter()
            .map(|(f, s)| format!("{f}: {}", s.summary(&self.library)))
            .collect();
        version
    }

    /// Measures an explicitly chosen kernel selection (used for the
    /// "Original" baseline and the hand-optimized "IPP MP3" reference point).
    pub fn measure(&self, name: &str, kernels: KernelSet) -> CodeVersion {
        // Per-frame profile.
        let frame = FrameGenerator::new(self.seed).frame();
        let frame_profiler = Profiler::new();
        Decoder::new(kernels).decode_frame(&frame, &frame_profiler);
        let frame_profile = frame_profiler.profile(&self.badge);

        // Whole-stream measurement and compliance.
        let frames = FrameGenerator::new(self.seed).stream(self.stream_frames);
        let stream_profiler = Profiler::new();
        let pcm = Decoder::new(kernels).decode_stream(&frames, &stream_profiler);
        let stream_profile = stream_profiler.profile(&self.badge);

        let reference_pcm =
            Decoder::new(KernelSet::reference()).decode_stream(&frames, &Profiler::new());
        let compliance = compliance::compare(&reference_pcm, &pcm);

        CodeVersion {
            name: name.to_string(),
            kernels,
            frame_profile,
            stream_seconds: stream_profile.total_seconds(),
            stream_energy_j: stream_profile.total_energy_j(),
            compliance,
            mapping_summary: Vec::new(),
        }
    }
}

/// Determines the kernel variant implied by a mapping solution: the variant of
/// the (cheapest, hence chosen) element that covers the target.
fn variant_of_solution(solution: &MappingSolution) -> Option<KernelVariant> {
    let (name, _) = solution.used_elements.first()?;
    if name.starts_with("ipp_") {
        Some(KernelVariant::Ipp)
    } else if name.starts_with("fixed_") {
        Some(KernelVariant::Fixed)
    } else if name.starts_with("float_") || name.starts_with("libm_") {
        Some(KernelVariant::Reference)
    } else {
        None
    }
}

fn apply_variant(kernels: &mut KernelSet, stage: DecoderStage, variant: KernelVariant) {
    match stage {
        DecoderStage::Dequantize => kernels.dequantize = variant,
        DecoderStage::Stereo => kernels.stereo = variant,
        DecoderStage::Antialias => kernels.antialias = variant,
        DecoderStage::Imdct => kernels.imdct = variant,
        DecoderStage::Hybrid => kernels.hybrid = variant,
        DecoderStage::Synthesis => kernels.synthesis = variant,
    }
}

/// The library subsets corresponding to the code versions of Table 6 (the
/// hand-optimized "IPP MP3" row is not a mapping product and is measured with
/// [`KernelSet::ipp_complete`] instead).
pub fn table6_libraries(badge: &Badge4) -> Vec<(String, Library)> {
    use symmap_libchar::catalog::{self, names};
    let reference = catalog::reference_library(badge);
    let lm = catalog::linux_math_library(badge);
    let ih = catalog::in_house_library(badge);
    let ipp = catalog::ipp_library(badge);

    let only = |lib: &Library, keep: &[&str]| {
        let mut out = Library::new("subset");
        for e in lib.iter() {
            if keep.contains(&e.name()) {
                out.push(e.clone());
            }
        }
        out
    };

    vec![
        ("Original".to_string(), reference.clone()),
        (
            "IPP SubBand".to_string(),
            Library::union(
                "ref+ipp-subband",
                &[&reference, &only(&ipp, &[names::IPP_SUBBAND])],
            ),
        ),
        (
            "IPP SubBand & IMDCT".to_string(),
            Library::union(
                "ref+ipp-subband-imdct",
                &[
                    &reference,
                    &only(&ipp, &[names::IPP_SUBBAND, names::IPP_IMDCT]),
                ],
            ),
        ),
        (
            "IH Library".to_string(),
            Library::union("ref+lm+ih", &[&reference, &lm, &ih]),
        ),
        (
            "IH + IPP SubBand".to_string(),
            Library::union(
                "ref+lm+ih+ipp-subband",
                &[&reference, &lm, &ih, &only(&ipp, &[names::IPP_SUBBAND])],
            ),
        ),
        (
            "IH + IPP SubBand & IMDCT".to_string(),
            Library::union("ref+lm+ih+ipp", &[&reference, &lm, &ih, &ipp]),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use symmap_libchar::catalog;

    fn small_pipeline(library: Library) -> OptimizationPipeline {
        OptimizationPipeline::new(Badge4::new(), library).with_stream_frames(2)
    }

    #[test]
    fn full_catalog_maps_to_ipp_kernels() {
        let badge = Badge4::new();
        let pipeline = small_pipeline(catalog::full_catalog(&badge));
        let (kernels, solutions) = pipeline.map_decoder();
        assert_eq!(kernels.synthesis, KernelVariant::Ipp);
        assert_eq!(kernels.imdct, KernelVariant::Ipp);
        assert_eq!(kernels.dequantize, KernelVariant::Ipp);
        assert!(!solutions.is_empty());
        for (_, s) in &solutions {
            assert!(s.verify(), "mapping must be functionally equivalent");
        }
    }

    #[test]
    fn ih_only_catalog_maps_to_fixed_kernels() {
        let badge = Badge4::new();
        let lib = Library::union(
            "ref+lm+ih",
            &[
                &catalog::reference_library(&badge),
                &catalog::linux_math_library(&badge),
                &catalog::in_house_library(&badge),
            ],
        );
        let (kernels, _) = small_pipeline(lib).map_decoder();
        assert_eq!(kernels.synthesis, KernelVariant::Fixed);
        assert_eq!(kernels.imdct, KernelVariant::Fixed);
        assert_eq!(kernels.dequantize, KernelVariant::Fixed);
    }

    #[test]
    fn reference_only_catalog_changes_nothing() {
        let badge = Badge4::new();
        let (kernels, _) = small_pipeline(catalog::reference_library(&badge)).map_decoder();
        assert_eq!(kernels, KernelSet::reference());
    }

    #[test]
    fn run_produces_compliant_and_faster_decoder() {
        let badge = Badge4::new();
        let pipeline = small_pipeline(catalog::full_catalog(&badge));
        let original = pipeline.measure("Original", KernelSet::reference());
        let optimized = pipeline.run("IH + IPP SubBand & IMDCT");
        assert!(optimized.compliance.is_sufficient());
        let factor = optimized.perf_factor_vs(&original);
        assert!(factor > 50.0, "perf factor {factor}");
        assert!(optimized.energy_factor_vs(&original) > 50.0);
        assert!(!optimized.mapping_summary.is_empty());
        assert!(
            optimized.real_time_headroom(pipeline.stream_frames())
                > original.real_time_headroom(pipeline.stream_frames())
        );
    }

    #[test]
    fn pipeline_reuses_groebner_bases_across_runs() {
        let badge = Badge4::new();
        let pipeline = small_pipeline(catalog::full_catalog(&badge));
        pipeline.map_decoder();
        let (hits_first, misses_first) = pipeline.groebner_cache_stats();
        assert!(misses_first > 0, "first run must populate the cache");
        // The second mapping pass prices the same side-relation sets and is
        // answered from the shared cache without a single new basis.
        pipeline.map_decoder();
        let (hits_second, misses_second) = pipeline.groebner_cache_stats();
        assert!(hits_second > hits_first);
        assert_eq!(
            misses_second, misses_first,
            "identical decoder mapping recomputed a basis"
        );
    }

    #[test]
    fn map_decoder_is_byte_identical_across_worker_counts() {
        let badge = Badge4::new();
        let reference = {
            let config = MapperConfig {
                engine: symmap_engine::EngineConfig {
                    workers: 1,
                    ..Default::default()
                },
                ..MapperConfig::default()
            };
            let pipeline = small_pipeline(catalog::full_catalog(&badge)).with_mapper_config(config);
            pipeline.map_decoder()
        };
        for workers in [2, 4] {
            let config = MapperConfig {
                engine: symmap_engine::EngineConfig {
                    workers,
                    ..Default::default()
                },
                ..MapperConfig::default()
            };
            let pipeline = small_pipeline(catalog::full_catalog(&badge)).with_mapper_config(config);
            let parallel = pipeline.map_decoder();
            assert_eq!(
                parallel.0, reference.0,
                "kernel set diverged at {workers} workers"
            );
            assert_eq!(
                format!("{:?}", parallel.1),
                format!("{:?}", reference.1),
                "solutions diverged at {workers} workers"
            );
        }
    }

    #[test]
    fn map_decoder_with_stats_reports_the_batch() {
        let badge = Badge4::new();
        let pipeline = small_pipeline(catalog::full_catalog(&badge));
        let (_, solutions, stats) = pipeline.map_decoder_with_stats();
        assert!(stats.jobs >= solutions.len());
        assert!(stats.jobs > 0);
        assert!(stats.workers >= 1);
        assert!(stats.cache_misses() > 0, "first batch must compute bases");
        // Stats are per batch: a repeat run reports hits only.
        let (_, _, stats_again) = pipeline.map_decoder_with_stats();
        assert_eq!(stats_again.cache_misses(), 0);
        assert!(stats_again.cache_hits() > 0);
    }

    #[test]
    fn table6_library_list_has_six_mapped_versions() {
        let badge = Badge4::new();
        let libs = table6_libraries(&badge);
        assert_eq!(libs.len(), 6);
        assert_eq!(libs[0].0, "Original");
        assert!(libs[5].1.len() > libs[1].1.len());
    }
}
