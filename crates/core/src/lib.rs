//! # symmap-core
//!
//! Automated complex-software-library mapping using symbolic algebra — the
//! primary contribution of the DAC 2002 paper, built on the substrates of the
//! other `symmap-*` crates.
//!
//! The methodology has three steps:
//!
//! 1. **Library characterization** (`symmap-libchar`): each element carries a
//!    polynomial representation, measured cycles/energy and an accuracy bound.
//! 2. **Target code identification** ([`identify`]): profiling finds the
//!    critical procedures and formulates them as polynomials.
//! 3. **Library mapping** (`symmap-engine`, re-exported here as
//!    [`decompose`]): the `Decompose` branch-and-bound of the paper's Table 2
//!    rewrites each target polynomial modulo the library elements' side
//!    relations, bounding the search with performance/energy cost and
//!    checking accuracy before accepting a solution.
//!
//! [`pipeline::OptimizationPipeline`] glues the steps together for the MP3
//! decoder workload, fanning the identified targets out as one batch over
//! the engine's worker pool (`workers = 1` reproduces the historic
//! sequential mapper exactly), and regenerates the paper's Tables 3–6;
//! [`report`] renders them (including the engine's batch statistics).
//!
//! ```
//! use symmap_algebra::poly::Poly;
//! use symmap_core::decompose::{Mapper, MapperConfig};
//! use symmap_libchar::{Library, LibraryElement};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut library = Library::new("demo");
//! library.push(
//!     LibraryElement::builder("sum_sq", "s")
//!         .polynomial(Poly::parse("x + y")?)
//!         .cycles(4)
//!         .build()?,
//! );
//! let mapper = Mapper::new(&library, MapperConfig::default());
//! let solution = mapper.map_polynomial(&Poly::parse("x^2 + 2*x*y + y^2")?)?;
//! assert!(solution.uses_element("sum_sq"));
//! # Ok(())
//! # }
//! ```

#![deny(rustdoc::broken_intra_doc_links)]

pub mod identify;
pub mod pipeline;
pub mod report;

// The mapper subsystem moved into `symmap-engine` when it became a batch
// service; the historic `symmap_core::{cost, decompose, error, mapping}`
// paths keep working through these module re-exports.
pub use symmap_engine::{batch, cost, decompose, error, mapping, pool};

pub use decompose::{Mapper, MapperConfig};
pub use error::CoreError;
pub use mapping::MappingSolution;
pub use pipeline::{CodeVersion, OptimizationPipeline};
pub use symmap_engine::{BatchResult, EngineConfig, EngineStats, MapJob, MappingEngine};
