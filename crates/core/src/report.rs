//! Renderers for the paper's tables and figures, plus the batch engine's
//! run report.

use symmap_engine::EngineStats;
use symmap_libchar::catalog::{self, names};
use symmap_mp3::imdct;
use symmap_platform::machine::Badge4;

use crate::pipeline::CodeVersion;

/// Table 1 — sample complex library elements: execution time and ratio for
/// the float / fixed / IPP versions of SubBandSynthesis and IMDCT.
pub fn render_table1(badge: &Badge4) -> String {
    let full = catalog::full_catalog(badge);
    let rows = [
        ("float SubBandSyn", names::FLOAT_SUBBAND),
        ("fixed SubBandSyn", names::FIXED_SUBBAND),
        ("IPP SubBandSyn", names::IPP_SUBBAND),
        ("float IMDCT", names::FLOAT_IMDCT),
        ("fixed IMDCT", names::FIXED_IMDCT),
        ("IPP IMDCT", names::IPP_IMDCT),
    ];
    let seconds = |name: &str| {
        full.element(name)
            .map(|e| {
                badge
                    .operating_point()
                    .seconds_for(e.cycles() * catalog::invocations_per_frame(name))
            })
            .unwrap_or(0.0)
    };
    let float_subband = seconds(names::FLOAT_SUBBAND);
    let float_imdct = seconds(names::FLOAT_IMDCT);
    let mut out = String::from("Table 1. Sample Complex Library Elements\n");
    out.push_str(&format!(
        "{:<22} {:>16} {:>22}\n",
        "Library Element", "Execution time", "Execution time ratio"
    ));
    for (label, name) in rows {
        let s = seconds(name);
        let baseline = if label.contains("SubBand") {
            float_subband
        } else {
            float_imdct
        };
        let ratio = if s > 0.0 { baseline / s } else { 0.0 };
        out.push_str(&format!("{:<22} {:>16.6} {:>22.0}\n", label, s, ratio));
    }
    out
}

/// Equation 1 — the polynomial representation of the IMDCT (first output of
/// the 36-point transform, truncated for readability).
pub fn render_eq1() -> String {
    let poly = imdct::imdct_polynomial(0, 36);
    let shown: Vec<String> = poly
        .iter()
        .take(4)
        .map(|(m, c)| format!("({:.4})*{}", c.to_f64(), m))
        .collect();
    format!(
        "Equation 1 (IMDCT as a first-order polynomial, n = 36):\n  x0 = {} + ... ({} linear terms in y0..y17)\n",
        shown.join(" + "),
        poly.num_terms()
    )
}

/// Figure 1 — the Badge4 architecture inventory.
pub fn render_figure1(badge: &Badge4) -> String {
    format!(
        "Figure 1. SmartBadge/Badge4 architecture\n{}",
        badge.describe()
    )
}

/// The §3.3 Maple examples: factor/expand, Horner and simplify, reproduced by
/// the in-crate algebra engine.
pub fn render_maple_examples() -> String {
    use symmap_algebra::factor::factor;
    use symmap_algebra::horner::horner_form;
    use symmap_algebra::poly::Poly;
    use symmap_algebra::simplify::{simplify_modulo, SideRelations};
    use symmap_algebra::var::Var;

    let mut out = String::from("Section 3.3 symbolic manipulation examples\n");
    let p = Poly::parse("x^2*(x^14 + x^15 + 1)").expect("valid");
    out.push_str(&format!("  expand(x^2*(x^14+x^15+1)) = {p}\n"));
    out.push_str(&format!("  factor(...)               = {}\n", factor(&p)));

    let s = Poly::parse("y^2*x + y*x^2 + 4*x*y + x^2 + 2*x").expect("valid");
    let h = horner_form(&s, &[Var::new("x"), Var::new("y")]);
    out.push_str(&format!("  convert(S, 'horner', [x,y]) = {h}\n"));

    let target = Poly::parse("x + x^3*y^2 - 2*x*y^3").expect("valid");
    let mut sr = SideRelations::new();
    sr.push("p", Poly::parse("x^2 - 2*y").expect("valid"))
        .expect("fresh symbol");
    let simplified = simplify_modulo(&target, &sr, &["x", "y", "p"]).expect("simplify");
    out.push_str(&format!(
        "  simplify(S, {{p = x^2 - 2*y}}, [x,y,p]) = {simplified}\n"
    ));
    out
}

/// Tables 3–5 — a per-frame profile in the paper's format.
pub fn render_profile(title: &str, version: &CodeVersion) -> String {
    version.frame_profile.render(title)
}

/// Table 6 — performance and energy for every measured code version, with
/// improvement factors relative to the first (original) version.
pub fn render_table6(versions: &[CodeVersion]) -> String {
    let mut out = String::from("Table 6. Performance and Energy for MP3 library mapping\n");
    out.push_str(&format!(
        "{:<28} {:>10} {:>8} {:>12} {:>8}\n",
        "Code version", "Perf (s)", "Factor", "Energy (J)", "Factor"
    ));
    let Some(baseline) = versions.first() else {
        return out;
    };
    for v in versions {
        out.push_str(&format!(
            "{:<28} {:>10.2} {:>8.1} {:>12.2} {:>8.1}\n",
            v.name,
            v.stream_seconds,
            v.perf_factor_vs(baseline),
            v.stream_energy_j,
            v.energy_factor_vs(baseline)
        ));
    }
    out
}

/// The batch engine's run report: job volume, worker scheduling and the
/// shared Gröbner cache's per-shard activity for one mapping batch.
pub fn render_engine_stats(stats: &EngineStats) -> String {
    let mut out = format!(
        "Batch engine: {} jobs on {} workers ({} steals) in {:.3} ms\n",
        stats.jobs,
        stats.workers,
        stats.steals,
        stats.wall.as_secs_f64() * 1e3,
    );
    out.push_str(&format!(
        "  cache: {} hits / {} misses / {} evictions, {} bases resident in {} shards\n",
        stats.cache_hits(),
        stats.cache_misses(),
        stats.cache_evictions(),
        stats.cache_len(),
        stats.cache_shards.len(),
    ));
    out.push_str(&format!(
        "  ring-local sharing: {} α-hits / {} Buchberger cores run \
         (α-equivalent side-relation ideals share one core)\n",
        stats.cache_alpha_hits(),
        stats.cache_alpha_misses(),
    ));
    if stats.fp_hits + stats.fp_rejects + stats.unlucky_primes + stats.fp_exact_reuse > 0 {
        out.push_str(&format!(
            "  modular prefilter: {} mod-p zero / {} mod-p nonzero probes, \
             {} unlucky primes rotated, {} certified from resident exact bases\n",
            stats.fp_hits, stats.fp_rejects, stats.unlucky_primes, stats.fp_exact_reuse,
        ));
    }
    if stats.lift_success + stats.lift_retry + stats.lift_fallback + stats.lift_bypass > 0 {
        out.push_str(&format!(
            "  multi-modular lift: {} verified lifts ({} prime images CRT-combined) / \
             {} retries / {} exact fallbacks / {} gate bypasses\n",
            stats.lift_success,
            stats.crt_primes_used,
            stats.lift_retry,
            stats.lift_fallback,
            stats.lift_bypass,
        ));
    }
    if stats.index_rejected + stats.index_kept > 0 {
        out.push_str(&format!(
            "  fingerprint index: {} elements pruned / {} kept \
             ({} shards skipped whole, {:.1}% prune rate)\n",
            stats.index_rejected,
            stats.index_kept,
            stats.index_shards_skipped,
            100.0 * stats.index_rejected as f64
                / (stats.index_rejected + stats.index_kept).max(1) as f64,
        ));
    }
    for (i, shard) in stats.cache_shards.iter().enumerate() {
        // Shards untouched by the batch (and currently empty) add no signal.
        if shard.hits + shard.misses + shard.evictions + shard.len == 0 {
            continue;
        }
        out.push_str(&format!(
            "    shard {i}: {:>5} hits {:>5} misses {:>4} evictions {:>5} resident\n",
            shard.hits, shard.misses, shard.evictions, shard.len
        ));
    }
    // Per-phase breakdown over the unified registry window: every counter
    // rolls up under its name's leading family segment (cache, alpha, fp,
    // lift, pool, …), histograms report count and mean.
    let mut families: std::collections::BTreeMap<&str, u64> = std::collections::BTreeMap::new();
    for (name, v) in &stats.metrics.counters {
        let family = name.split('.').next().unwrap_or(name);
        *families.entry(family).or_default() += v;
    }
    families.retain(|_, total| *total > 0);
    if !families.is_empty() {
        out.push_str(&format!(
            "  per-phase counters: {:<10} {:>10}\n",
            "phase", "events"
        ));
        for (family, total) in &families {
            out.push_str(&format!("    {:<24} {:>10}\n", family, total));
        }
    }
    for (name, h) in &stats.metrics.histograms {
        if h.count == 0 {
            continue;
        }
        out.push_str(&format!(
            "    {:<24} {:>10} samples, mean {:.1}\n",
            name,
            h.count,
            h.sum as f64 / h.count as f64
        ));
    }
    out
}

/// The DVFS headroom argument of §4/§5: how much faster than real time the
/// decoder runs and how much additional energy scaling recovers.
pub fn render_dvfs(version: &CodeVersion, frames: usize, badge: &Badge4) -> String {
    let headroom = version.real_time_headroom(frames);
    let cycles_per_frame = version.frame_profile.total_cycles();
    let deadline = symmap_mp3::types::frame_duration_s();
    let saving = badge
        .dvfs()
        .energy_saving_factor(cycles_per_frame, deadline);
    format!(
        "DVFS headroom for `{}`: {:.2}x faster than real time; \
         running at the slowest deadline-meeting operating point saves a further {:.2}x energy\n",
        version.name, headroom, saving
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use symmap_libchar::catalog::full_catalog;
    use symmap_mp3::decoder::KernelSet;

    use crate::pipeline::OptimizationPipeline;

    fn quick_version(name: &str, kernels: KernelSet) -> CodeVersion {
        let badge = Badge4::new();
        OptimizationPipeline::new(badge.clone(), full_catalog(&badge))
            .with_stream_frames(1)
            .measure(name, kernels)
    }

    #[test]
    fn table1_contains_all_six_rows_and_ordering() {
        let t = render_table1(&Badge4::new());
        for label in [
            "float SubBandSyn",
            "fixed SubBandSyn",
            "IPP SubBandSyn",
            "float IMDCT",
            "fixed IMDCT",
            "IPP IMDCT",
        ] {
            assert!(t.contains(label), "missing {label} in\n{t}");
        }
        assert!(t.contains("Execution time ratio"));
    }

    #[test]
    fn eq1_and_figure1_render() {
        assert!(render_eq1().contains("x0 ="));
        let fig = render_figure1(&Badge4::new());
        assert!(fig.contains("SA-1110"));
    }

    #[test]
    fn maple_examples_match_paper() {
        let s = render_maple_examples();
        assert!(s.contains("x^17"));
        assert!(s.contains("horner"));
        // The simplify example's answer from the paper.
        assert!(s.contains("x*y^2*p") || s.contains("y^2*x*p"), "{s}");
    }

    #[test]
    fn engine_stats_render() {
        let badge = Badge4::new();
        let pipeline =
            OptimizationPipeline::new(badge.clone(), full_catalog(&badge)).with_stream_frames(1);
        let (_, solutions, stats) = pipeline.map_decoder_with_stats();
        assert!(stats.jobs > 0);
        assert!(stats.jobs >= solutions.len());
        let rendered = render_engine_stats(&stats);
        assert!(rendered.contains("Batch engine:"), "{rendered}");
        assert!(rendered.contains(&format!("{} jobs", stats.jobs)));
        assert!(rendered.contains("misses"));
        assert!(rendered.contains("shard"), "{rendered}");
    }

    #[test]
    fn profile_and_table6_render() {
        let original = quick_version("Original", KernelSet::reference());
        let optimized = quick_version("IH + IPP SubBand & IMDCT", KernelSet::in_house_with_ipp());
        let t3 = render_profile("Table 3. Original MP3 Profile", &original);
        assert!(t3.contains("III_dequantize_sample"));
        let t6 = render_table6(&[original.clone(), optimized]);
        assert!(t6.contains("Original"));
        assert!(t6.contains("IH + IPP"));
        assert!(render_table6(&[]).contains("Table 6"));
        let dvfs = render_dvfs(&original, 1, &Badge4::new());
        assert!(dvfs.contains("real time"));
    }
}
