//! # symmap-libchar
//!
//! Library characterization — step 1 of the DAC 2002 methodology.
//!
//! Every complex software library element is labelled with:
//!
//! * the type of its inputs and outputs ([`element::NumericFormat`]),
//! * its **polynomial representation** (used by the symbolic mapper),
//! * its performance and energy consumption measured on the simulated Badge4
//!   ([`characterize`]),
//! * its accuracy.
//!
//! [`catalog`] builds the three libraries of the paper's evaluation — the
//! Linux math library ("LM"), the in-house fixed-point library ("IH") and the
//! Intel IPP-style library ("IPP") — plus the four-way `log` library of the
//! paper's motivating example.
//!
//! ```
//! use symmap_libchar::catalog;
//! use symmap_platform::machine::Badge4;
//!
//! let badge = Badge4::new();
//! let ipp = catalog::ipp_library(&badge);
//! let subband = ipp.element("ipp_subband_synthesis").expect("characterized element");
//! assert!(subband.cycles() > 0);
//! ```

#![deny(rustdoc::broken_intra_doc_links)]

pub mod catalog;
pub mod characterize;
pub mod element;
pub mod library;
pub mod synthetic;

pub use element::{LibraryElement, LibrarySource, NumericFormat};
pub use library::{CandidateScan, Library, LibraryShard, PruneStats};
