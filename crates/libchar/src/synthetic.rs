//! Synthetic large-library generation for scaling benchmarks.
//!
//! The paper maps against libraries of a few dozen elements; the
//! `large_library` bench needs hundreds to thousands with realistic
//! structure. This module fills a library with α-renamed, lightly perturbed
//! copies of the MP3 catalog: each *group* rewrites every catalog element
//! onto a fresh variable pool (`x → x__g7`), so groups land in disjoint
//! fingerprint shards exactly the way unrelated subsystems' kernels would —
//! which is the regime the fingerprint index is built for (a target touches
//! one group's variables; every other group's shards are skipped by one
//! mask test each).
//!
//! Everything here is a pure function of its arguments: no randomness, no
//! clocks, so the bench corpus and the determinism suites see the same
//! library byte for byte on every run.

use symmap_algebra::poly::Poly;
use symmap_algebra::var::Var;
use symmap_algebra::Monomial;
use symmap_numeric::rational::Rational;
use symmap_platform::machine::Badge4;

use crate::catalog;
use crate::element::LibraryElement;
use crate::library::Library;

/// Rewrites `p` onto a fresh variable pool by suffixing every variable name.
/// An α-renaming: the result is structurally identical with disjoint support.
fn rename_poly(p: &Poly, suffix: &str) -> Poly {
    Poly::from_terms(p.iter().map(|(m, c)| {
        let pairs: Vec<(Var, u32)> = m
            .iter()
            .map(|(v, e)| (Var::new(&format!("{}{}", v.name(), suffix)), e))
            .collect();
        (Monomial::from_pairs(&pairs), c.clone())
    }))
}

/// Scales the lexicographically-first term's coefficient by `factor` — a
/// deterministic perturbation that keeps the support and degree signature
/// while making the polynomial inequivalent to its sibling groups' copies
/// even under renaming.
fn perturb_poly(p: &Poly, factor: i64) -> Poly {
    let mut first = true;
    p.map_coefficients(|c| {
        if std::mem::take(&mut first) {
            c * &Rational::integer(factor)
        } else {
            c.clone()
        }
    })
}

/// Builds `full_catalog(badge)` plus `groups` α-renamed copies of it, each
/// on its own variable pool. With the ~25-element catalog, `groups = 40`
/// yields a ≈1000-element library. Element names and output symbols get the
/// same `__g{i}` suffix as their variables; cycle costs are perturbed
/// per-group so cost-based tie-breaks can't collapse groups together.
pub fn synthetic_large_library(badge: &Badge4, groups: usize) -> Library {
    let base = catalog::full_catalog(badge);
    let mut lib = Library::new("synthetic-large");
    lib.merge(&base);
    for g in 0..groups {
        let suffix = format!("__g{g}");
        for e in base.iter() {
            let factor = 1 + (g % 3) as i64;
            let poly = perturb_poly(&rename_poly(e.polynomial(), &suffix), factor);
            lib.push(
                LibraryElement::builder(
                    &format!("{}{}", e.name(), suffix),
                    &format!("{}{}", e.output_symbol(), suffix),
                )
                .polynomial(poly)
                .cycles(e.cycles() + (g as u64 % 7))
                .energy_nj(e.energy_nj())
                .accuracy(e.accuracy())
                .format(e.format())
                .source(e.source())
                .build()
                .expect("catalog elements always carry polynomials"),
            );
        }
    }
    lib
}

#[cfg(test)]
mod tests {
    use super::*;
    use symmap_algebra::fingerprint::PolyFingerprint;

    #[test]
    fn groups_are_alpha_renamed_onto_disjoint_supports() {
        let badge = Badge4::new();
        let lib = synthetic_large_library(&badge, 2);
        let base = catalog::full_catalog(&badge);
        assert_eq!(lib.len(), base.len() * 3);
        let orig = lib.element("float_imdct").unwrap();
        let copy = lib.element("float_imdct__g0").unwrap();
        assert!(!orig.fingerprint().intersects(copy.fingerprint()));
        // Same shape: equal degree signature, disjoint variables.
        assert_eq!(
            orig.fingerprint().total_degree(),
            copy.fingerprint().total_degree()
        );
        assert_eq!(
            orig.fingerprint().term_count(),
            copy.fingerprint().term_count()
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let badge = Badge4::new();
        let a = synthetic_large_library(&badge, 3);
        let b = synthetic_large_library(&badge, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn candidates_for_one_group_skip_every_other_group() {
        let badge = Badge4::new();
        let lib = synthetic_large_library(&badge, 8);
        let target = PolyFingerprint::of(
            lib.element("float_stereo_butterfly__g5")
                .unwrap()
                .polynomial(),
        );
        let scan = lib.candidates(&target);
        // Survivors all come from group 5.
        assert!(!scan.elements.is_empty());
        for e in &scan.elements {
            assert!(e.name().ends_with("__g5"), "stray candidate {}", e.name());
        }
        assert!(scan.stats.rejected > scan.stats.kept * 4);
    }
}
