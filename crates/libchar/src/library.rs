//! Collections of characterized library elements, stored as ring-sharded
//! groups behind a fingerprint index.
//!
//! A [`Library`] groups its elements by *exact variable support*: every
//! element whose polynomial uses precisely the same set of variables lives in
//! the same [`LibraryShard`], behind an `Arc` so cloned libraries (one per
//! batch worker) share storage instead of copying it, and shards can be
//! handed out / retained independently. Each shard carries the support's
//! [`Ring`], its sorted global indices and a 64-bit support mask, so the
//! mapper's candidate scan ([`Library::candidates`]) skips a whole shard with
//! one mask AND — on a thousand-element library the scan touches a few dozen
//! shard headers instead of a thousand `Poly`s. Because a shard's elements
//! all share one support, the shard-level test *is* the element-level test:
//! no element inside a surviving shard needs further support checks.
//!
//! Insertion order is remembered in a directory (and restored after every
//! scan), so the sharding is invisible to iteration: `iter()`,
//! `candidates()`, `Display` and `PartialEq` all behave exactly as the flat
//! `Vec` storage did, byte for byte. See `DESIGN.md` §9 for the soundness
//! argument and the shard lifecycle.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use symmap_algebra::fingerprint::PolyFingerprint;
use symmap_algebra::ring::Ring;

use crate::element::{LibraryElement, LibrarySource};

/// One support-homogeneous group of elements: every element's polynomial
/// uses exactly the variables in [`LibraryShard::support`]. Shards sit
/// behind `Arc`s inside [`Library`] — cloning a library clones shard
/// *handles*, and mutation copies only the shard it touches.
#[derive(Debug, Clone)]
pub struct LibraryShard {
    /// The ring spanned by the common support, ready for ring-local work.
    ring: Ring,
    /// OR of `1 << (index % 64)` over the support: the one-word skip test.
    mask: u64,
    /// Sorted global variable indices common to every element here.
    support: Box<[u32]>,
    /// The elements, in first-insertion order within the shard.
    elements: Vec<LibraryElement>,
    /// Directory position of each element, parallel to `elements` — what
    /// lets a scan restore library insertion order without a lookup table.
    positions: Vec<u32>,
}

impl LibraryShard {
    /// The ring spanned by this shard's variable support.
    pub fn ring(&self) -> &Ring {
        &self.ring
    }

    /// The 64-bit support mask (`OR` of `1 << (index % 64)`).
    pub fn mask(&self) -> u64 {
        self.mask
    }

    /// Sorted global indices of the common variable support.
    pub fn support(&self) -> &[u32] {
        &self.support
    }

    /// Number of elements in the shard.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Whether the shard currently holds no elements (possible after a
    /// re-characterization moved its last element to a different support).
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// The shard's elements, in first-insertion order within the shard.
    pub fn elements(&self) -> &[LibraryElement] {
        &self.elements
    }

    /// Whether this shard's support shares a variable with `target` —
    /// the mask fast-path followed by the exact sorted-merge confirm, so
    /// the answer is exact in both directions.
    fn intersects(&self, target: &PolyFingerprint) -> bool {
        self.mask & target.mask() != 0 && sorted_slices_intersect(&self.support, target.support())
    }
}

/// Whether two sorted index slices share an element (merge walk).
fn sorted_slices_intersect(a: &[u32], b: &[u32]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

/// What one [`Library::candidates`] scan did, for the mapper's prune
/// instrumentation. Deterministic: a pure function of the library contents
/// and the target fingerprint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PruneStats {
    /// Shards dismissed whole by the support test (mask AND, confirmed by
    /// the exact merge on a collision).
    pub shards_skipped: usize,
    /// Shards whose support intersects the target's: every element inside
    /// is a genuine candidate (shard support is exact, not approximate).
    pub shards_scanned: usize,
    /// Elements pruned without touching their polynomials — the total
    /// population of the skipped shards.
    pub rejected: usize,
    /// Elements kept as candidates.
    pub kept: usize,
}

/// Result of a [`Library::candidates`] scan: the surviving elements in
/// library insertion order (byte-identical to the legacy full scan), plus
/// the prune accounting.
#[derive(Debug)]
pub struct CandidateScan<'a> {
    /// Surviving elements, in library insertion order.
    pub elements: Vec<&'a LibraryElement>,
    /// What the scan skipped and kept.
    pub stats: PruneStats,
}

/// Where one element lives: shard index and slot within the shard. The
/// directory (one entry per element, in insertion order) is what keeps
/// sharded storage observably identical to the old flat `Vec`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Slot {
    shard: u32,
    slot: u32,
}

/// A named collection of characterized library elements.
///
/// ```
/// use symmap_libchar::{Library, LibraryElement};
/// use symmap_algebra::poly::Poly;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut lib = Library::new("tiny");
/// lib.push(
///     LibraryElement::builder("sum", "s")
///         .polynomial(Poly::parse("x + y")?)
///         .cycles(2)
///         .build()?,
/// );
/// assert_eq!(lib.len(), 1);
/// assert!(lib.element("sum").is_some());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Library {
    name: String,
    /// Support-homogeneous element groups, in first-creation order.
    shards: Vec<Arc<LibraryShard>>,
    /// One entry per element, in insertion order.
    directory: Vec<Slot>,
    /// Element name → directory index. Point lookups only — iteration
    /// always goes through the (ordered) directory, never this map.
    by_name: HashMap<String, u32>,
    /// Exact support → shard index. Point lookups only, same discipline.
    by_support: HashMap<Box<[u32]>, u32>,
}

impl Library {
    /// Creates an empty library.
    pub fn new(name: &str) -> Self {
        Library {
            name: name.to_string(),
            ..Library::default()
        }
    }

    /// The library's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds an element. Elements with duplicate names replace the earlier one
    /// (re-characterization updates in place, keeping its insertion-order
    /// position even when the new polynomial moves it to a different shard).
    pub fn push(&mut self, element: LibraryElement) {
        match self.by_name.get(element.name()) {
            Some(&dir_idx) => self.replace(dir_idx, element),
            None => {
                let dir_idx = self.directory.len() as u32;
                self.by_name.insert(element.name().to_string(), dir_idx);
                let slot = self.insert_into_shard(element, dir_idx);
                self.directory.push(slot);
            }
        }
    }

    /// Routes `element` to the shard matching its exact support, creating
    /// the shard on first sight of that support.
    fn insert_into_shard(&mut self, element: LibraryElement, dir_idx: u32) -> Slot {
        let fp = element.fingerprint();
        let shard_idx = match self.by_support.get(fp.support()) {
            Some(&i) => i,
            None => {
                let i = self.shards.len() as u32;
                self.shards.push(Arc::new(LibraryShard {
                    ring: Ring::spanning(std::iter::once(element.polynomial())),
                    mask: fp.mask(),
                    support: fp.support().into(),
                    elements: Vec::new(),
                    positions: Vec::new(),
                }));
                self.by_support.insert(fp.support().into(), i);
                i
            }
        };
        let shard = Arc::make_mut(&mut self.shards[shard_idx as usize]);
        shard.elements.push(element);
        shard.positions.push(dir_idx);
        Slot {
            shard: shard_idx,
            slot: (shard.elements.len() - 1) as u32,
        }
    }

    /// Replaces the element at directory position `dir_idx`. Same support:
    /// overwrite in place. Changed support: relocate to the right shard,
    /// keeping the directory position (and thus iteration order).
    fn replace(&mut self, dir_idx: u32, element: LibraryElement) {
        let Slot { shard, slot } = self.directory[dir_idx as usize];
        if *self.shards[shard as usize].support == *element.fingerprint().support() {
            Arc::make_mut(&mut self.shards[shard as usize]).elements[slot as usize] = element;
            return;
        }
        // Shift the old slot out and re-point the directory entries of the
        // elements that moved down.
        let moved: Vec<u32> = {
            let s = Arc::make_mut(&mut self.shards[shard as usize]);
            s.elements.remove(slot as usize);
            s.positions.remove(slot as usize);
            s.positions[slot as usize..].to_vec()
        };
        for pos in moved {
            self.directory[pos as usize].slot -= 1;
        }
        let slot = self.insert_into_shard(element, dir_idx);
        self.directory[dir_idx as usize] = slot;
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.directory.len()
    }

    /// Returns `true` when the library has no elements.
    pub fn is_empty(&self) -> bool {
        self.directory.is_empty()
    }

    /// Looks up an element by name — O(1) through the name map.
    pub fn element(&self, name: &str) -> Option<&LibraryElement> {
        let &dir_idx = self.by_name.get(name)?;
        Some(self.at(self.directory[dir_idx as usize]))
    }

    /// The element a directory slot points at.
    fn at(&self, slot: Slot) -> &LibraryElement {
        &self.shards[slot.shard as usize].elements[slot.slot as usize]
    }

    /// Iterates over all elements, in insertion order (the directory order —
    /// sharding never reorders iteration).
    pub fn iter(&self) -> impl Iterator<Item = &LibraryElement> + '_ {
        // lint:allow(D1): `directory` is a `Vec<Slot>` iterated in insertion
        // order; the hash maps in this struct are point-lookup-only.
        self.directory.iter().map(|&slot| self.at(slot))
    }

    /// The ring-sharded storage: support-homogeneous element groups in
    /// first-creation order, each behind an `Arc` handle that clones (and
    /// ships to workers) without copying element data.
    pub fn shards(&self) -> &[Arc<LibraryShard>] {
        &self.shards
    }

    /// Candidate elements for a target with fingerprint `target`: exactly
    /// those whose polynomial shares at least one variable with the
    /// target's support, in insertion order — the same elements, in the
    /// same order, as a full `iter()` scan filtering on support overlap,
    /// but skipping whole shards on a one-word mask test.
    pub fn candidates(&self, target: &PolyFingerprint) -> CandidateScan<'_> {
        let mut picked: Vec<(u32, &LibraryElement)> = Vec::new();
        let mut stats = PruneStats::default();
        for shard in &self.shards {
            if !shard.intersects(target) {
                stats.shards_skipped += 1;
                stats.rejected += shard.elements.len();
                continue;
            }
            stats.shards_scanned += 1;
            picked.extend(shard.positions.iter().copied().zip(&shard.elements));
        }
        picked.sort_unstable_by_key(|&(pos, _)| pos);
        stats.kept = picked.len();
        CandidateScan {
            elements: picked.into_iter().map(|(_, e)| e).collect(),
            stats,
        }
    }

    /// Elements from a specific source library.
    pub fn from_source(&self, source: LibrarySource) -> Vec<&LibraryElement> {
        self.iter().filter(|e| e.source() == source).collect()
    }

    /// Merges another library into this one (its elements override same-named
    /// ones here).
    pub fn merge(&mut self, other: &Library) {
        for e in other.iter() {
            self.push(e.clone());
        }
    }

    /// Builds the union of several libraries under a new name.
    pub fn union(name: &str, parts: &[&Library]) -> Library {
        let mut out = Library::new(name);
        for p in parts {
            out.merge(p);
        }
        out
    }

    /// Elements with the same functionality (identical polynomial modulo the
    /// output symbol) as `element` — the alternatives the selection process
    /// chooses among (§3.1). The fingerprint's conservative equality check
    /// screens non-matches before any exact polynomial comparison runs.
    pub fn alternatives(&self, element: &LibraryElement) -> Vec<&LibraryElement> {
        self.iter()
            .filter(|e| {
                e.name() != element.name()
                    && e.fingerprint().may_equal(element.fingerprint())
                    && e.polynomial() == element.polynomial()
            })
            .collect()
    }
}

/// Libraries are equal when they have the same name and the same elements in
/// the same iteration order — shard layout is storage, not identity.
impl PartialEq for Library {
    fn eq(&self, other: &Library) -> bool {
        self.name == other.name && self.len() == other.len() && self.iter().eq(other.iter())
    }
}

impl fmt::Display for Library {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "library `{}` ({} elements)", self.name, self.len())?;
        for e in self.iter() {
            writeln!(f, "  {e}")?;
        }
        Ok(())
    }
}

impl Extend<LibraryElement> for Library {
    fn extend<T: IntoIterator<Item = LibraryElement>>(&mut self, iter: T) {
        for e in iter {
            self.push(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symmap_algebra::poly::Poly;

    fn element(name: &str, poly: &str, source: LibrarySource, cycles: u64) -> LibraryElement {
        LibraryElement::builder(name, &format!("{name}_out"))
            .polynomial(Poly::parse(poly).unwrap())
            .cycles(cycles)
            .source(source)
            .build()
            .unwrap()
    }

    fn fp(poly: &str) -> PolyFingerprint {
        PolyFingerprint::of(&Poly::parse(poly).unwrap())
    }

    #[test]
    fn push_and_lookup() {
        let mut lib = Library::new("test");
        assert!(lib.is_empty());
        lib.push(element("a", "x + y", LibrarySource::InHouse, 5));
        lib.push(element("b", "x*y", LibrarySource::Ipp, 2));
        assert_eq!(lib.len(), 2);
        assert!(lib.element("a").is_some());
        assert!(lib.element("zzz").is_none());
    }

    #[test]
    fn duplicate_names_replace() {
        let mut lib = Library::new("test");
        lib.push(element("a", "x + y", LibrarySource::InHouse, 5));
        lib.push(element("a", "x + y", LibrarySource::InHouse, 3));
        assert_eq!(lib.len(), 1);
        assert_eq!(lib.element("a").unwrap().cycles(), 3);
    }

    #[test]
    fn filter_by_source_and_union() {
        let mut lm = Library::new("lm");
        lm.push(element("exp", "1 + x", LibrarySource::LinuxMath, 900));
        let mut ih = Library::new("ih");
        ih.push(element("exp_fixed", "1 + x", LibrarySource::InHouse, 40));
        let all = Library::union("all", &[&lm, &ih]);
        assert_eq!(all.len(), 2);
        assert_eq!(all.from_source(LibrarySource::LinuxMath).len(), 1);
        assert_eq!(all.from_source(LibrarySource::Ipp).len(), 0);
    }

    #[test]
    fn alternatives_share_functionality() {
        let mut lib = Library::new("test");
        lib.push(element(
            "exp_double",
            "1 + x",
            LibrarySource::LinuxMath,
            900,
        ));
        lib.push(element("exp_fixed", "1 + x", LibrarySource::InHouse, 40));
        lib.push(element("log_fixed", "x - 1", LibrarySource::InHouse, 50));
        let e = lib.element("exp_double").unwrap().clone();
        let alts = lib.alternatives(&e);
        assert_eq!(alts.len(), 1);
        assert_eq!(alts[0].name(), "exp_fixed");
    }

    #[test]
    fn extend_and_display() {
        let mut lib = Library::new("test");
        lib.extend(vec![element("a", "x", LibrarySource::Ipp, 1)]);
        let s = lib.to_string();
        assert!(s.contains("library `test`"));
        assert!(s.contains("a [IPP]"));
    }

    #[test]
    fn shards_group_by_exact_support_and_iteration_stays_insertion_ordered() {
        let mut lib = Library::new("test");
        lib.push(element("sum", "x + y", LibrarySource::InHouse, 2));
        lib.push(element("sq", "x^2", LibrarySource::InHouse, 1));
        lib.push(element("diff", "x - y", LibrarySource::InHouse, 2));
        lib.push(element("prod", "x*y", LibrarySource::Ipp, 3));
        // {x,y} and {x}: two shards; sum/diff/prod share the first.
        assert_eq!(lib.shards().len(), 2);
        let names: Vec<&str> = lib.iter().map(|e| e.name()).collect();
        assert_eq!(names, vec!["sum", "sq", "diff", "prod"]);
        let xy = &lib.shards()[0];
        assert_eq!(xy.len(), 3);
        assert_eq!(xy.ring().len(), 2);
        assert!(!xy.is_empty());
    }

    #[test]
    fn candidates_match_the_legacy_support_scan_in_content_and_order() {
        let mut lib = Library::new("test");
        lib.push(element("sum", "x + y", LibrarySource::InHouse, 2));
        lib.push(element("other", "u*w", LibrarySource::InHouse, 4));
        lib.push(element("sq", "x^2", LibrarySource::InHouse, 1));
        lib.push(element("mixed", "y + u", LibrarySource::Ipp, 3));
        let target = fp("x^2 + y");
        let scan = lib.candidates(&target);
        let legacy: Vec<&LibraryElement> = lib
            .iter()
            .filter(|e| {
                let tv = Poly::parse("x^2 + y").unwrap().vars();
                e.polynomial().vars().iter().any(|v| tv.contains(v))
            })
            .collect();
        let got: Vec<&str> = scan.elements.iter().map(|e| e.name()).collect();
        let want: Vec<&str> = legacy.iter().map(|e| e.name()).collect();
        assert_eq!(got, want);
        assert_eq!(got, vec!["sum", "sq", "mixed"]);
        assert_eq!(scan.stats.kept, 3);
        assert_eq!(scan.stats.rejected, 1);
        assert_eq!(scan.stats.shards_skipped, 1);
        assert_eq!(scan.stats.shards_scanned, 3);
    }

    #[test]
    fn constant_elements_are_never_candidates() {
        let mut lib = Library::new("test");
        lib.push(element("konst", "7", LibrarySource::InHouse, 1));
        lib.push(element("id", "x", LibrarySource::InHouse, 1));
        let scan = lib.candidates(&fp("x + 1"));
        let names: Vec<&str> = scan.elements.iter().map(|e| e.name()).collect();
        assert_eq!(names, vec!["id"]);
    }

    #[test]
    fn replacement_with_changed_support_relocates_but_keeps_order() {
        let mut lib = Library::new("test");
        lib.push(element("a", "x + y", LibrarySource::InHouse, 1));
        lib.push(element("b", "x - y", LibrarySource::InHouse, 2));
        lib.push(element("c", "x*y", LibrarySource::InHouse, 3));
        // Re-characterize `b` onto a different support: moves shard, keeps
        // its iteration position and stays findable by name.
        lib.push(element("b", "z^2", LibrarySource::InHouse, 9));
        let names: Vec<&str> = lib.iter().map(|e| e.name()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
        assert_eq!(lib.element("b").unwrap().cycles(), 9);
        assert_eq!(lib.element("c").unwrap().cycles(), 3);
        // The z-shard now exists and the {x,y} shard shrank to two.
        assert_eq!(lib.shards().len(), 2);
        assert_eq!(lib.shards()[0].len(), 2);
        // Candidates for z hit exactly the relocated element.
        let scan = lib.candidates(&fp("z"));
        let names: Vec<&str> = scan.elements.iter().map(|e| e.name()).collect();
        assert_eq!(names, vec!["b"]);
    }

    #[test]
    fn cloned_libraries_share_shards_until_mutation() {
        let mut lib = Library::new("test");
        lib.push(element("a", "x + y", LibrarySource::InHouse, 1));
        let snap = lib.clone();
        assert!(Arc::ptr_eq(&lib.shards()[0], &snap.shards()[0]));
        // Mutating the original copies only its own shard handle.
        lib.push(element("b", "x + y", LibrarySource::InHouse, 2));
        assert!(!Arc::ptr_eq(&lib.shards()[0], &snap.shards()[0]));
        assert_eq!(snap.len(), 1);
        assert_eq!(lib.len(), 2);
        assert_eq!(snap.element("a").unwrap().cycles(), 1);
    }

    #[test]
    fn equality_ignores_shard_layout() {
        // Same elements arriving in the same order through different
        // replacement histories must compare equal.
        let mut a = Library::new("lib");
        a.push(element("e1", "x", LibrarySource::InHouse, 1));
        a.push(element("e2", "y", LibrarySource::InHouse, 1));
        let mut b = Library::new("lib");
        b.push(element("e1", "x + y", LibrarySource::InHouse, 1));
        b.push(element("e2", "y", LibrarySource::InHouse, 1));
        b.push(element("e1", "x", LibrarySource::InHouse, 1));
        assert_eq!(a, b);
    }
}
