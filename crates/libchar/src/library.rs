//! Collections of characterized library elements.

use std::fmt;

use crate::element::{LibraryElement, LibrarySource};

/// A named collection of characterized library elements.
///
/// ```
/// use symmap_libchar::{Library, LibraryElement};
/// use symmap_algebra::poly::Poly;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut lib = Library::new("tiny");
/// lib.push(
///     LibraryElement::builder("sum", "s")
///         .polynomial(Poly::parse("x + y")?)
///         .cycles(2)
///         .build()?,
/// );
/// assert_eq!(lib.len(), 1);
/// assert!(lib.element("sum").is_some());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Library {
    name: String,
    elements: Vec<LibraryElement>,
}

impl Library {
    /// Creates an empty library.
    pub fn new(name: &str) -> Self {
        Library {
            name: name.to_string(),
            elements: Vec::new(),
        }
    }

    /// The library's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds an element. Elements with duplicate names replace the earlier one
    /// (re-characterization updates in place).
    pub fn push(&mut self, element: LibraryElement) {
        if let Some(existing) = self
            .elements
            .iter_mut()
            .find(|e| e.name() == element.name())
        {
            *existing = element;
        } else {
            self.elements.push(element);
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Returns `true` when the library has no elements.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Looks up an element by name.
    pub fn element(&self, name: &str) -> Option<&LibraryElement> {
        self.elements.iter().find(|e| e.name() == name)
    }

    /// Iterates over all elements.
    pub fn iter(&self) -> impl Iterator<Item = &LibraryElement> + '_ {
        self.elements.iter()
    }

    /// Elements from a specific source library.
    pub fn from_source(&self, source: LibrarySource) -> Vec<&LibraryElement> {
        self.elements
            .iter()
            .filter(|e| e.source() == source)
            .collect()
    }

    /// Merges another library into this one (its elements override same-named
    /// ones here).
    pub fn merge(&mut self, other: &Library) {
        for e in other.iter() {
            self.push(e.clone());
        }
    }

    /// Builds the union of several libraries under a new name.
    pub fn union(name: &str, parts: &[&Library]) -> Library {
        let mut out = Library::new(name);
        for p in parts {
            out.merge(p);
        }
        out
    }

    /// Elements with the same functionality (identical polynomial modulo the
    /// output symbol) as `element` — the alternatives the selection process
    /// chooses among (§3.1).
    pub fn alternatives(&self, element: &LibraryElement) -> Vec<&LibraryElement> {
        self.elements
            .iter()
            .filter(|e| e.name() != element.name() && e.polynomial() == element.polynomial())
            .collect()
    }
}

impl fmt::Display for Library {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "library `{}` ({} elements)",
            self.name,
            self.elements.len()
        )?;
        for e in &self.elements {
            writeln!(f, "  {e}")?;
        }
        Ok(())
    }
}

impl Extend<LibraryElement> for Library {
    fn extend<T: IntoIterator<Item = LibraryElement>>(&mut self, iter: T) {
        for e in iter {
            self.push(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symmap_algebra::poly::Poly;

    fn element(name: &str, poly: &str, source: LibrarySource, cycles: u64) -> LibraryElement {
        LibraryElement::builder(name, &format!("{name}_out"))
            .polynomial(Poly::parse(poly).unwrap())
            .cycles(cycles)
            .source(source)
            .build()
            .unwrap()
    }

    #[test]
    fn push_and_lookup() {
        let mut lib = Library::new("test");
        assert!(lib.is_empty());
        lib.push(element("a", "x + y", LibrarySource::InHouse, 5));
        lib.push(element("b", "x*y", LibrarySource::Ipp, 2));
        assert_eq!(lib.len(), 2);
        assert!(lib.element("a").is_some());
        assert!(lib.element("zzz").is_none());
    }

    #[test]
    fn duplicate_names_replace() {
        let mut lib = Library::new("test");
        lib.push(element("a", "x + y", LibrarySource::InHouse, 5));
        lib.push(element("a", "x + y", LibrarySource::InHouse, 3));
        assert_eq!(lib.len(), 1);
        assert_eq!(lib.element("a").unwrap().cycles(), 3);
    }

    #[test]
    fn filter_by_source_and_union() {
        let mut lm = Library::new("lm");
        lm.push(element("exp", "1 + x", LibrarySource::LinuxMath, 900));
        let mut ih = Library::new("ih");
        ih.push(element("exp_fixed", "1 + x", LibrarySource::InHouse, 40));
        let all = Library::union("all", &[&lm, &ih]);
        assert_eq!(all.len(), 2);
        assert_eq!(all.from_source(LibrarySource::LinuxMath).len(), 1);
        assert_eq!(all.from_source(LibrarySource::Ipp).len(), 0);
    }

    #[test]
    fn alternatives_share_functionality() {
        let mut lib = Library::new("test");
        lib.push(element(
            "exp_double",
            "1 + x",
            LibrarySource::LinuxMath,
            900,
        ));
        lib.push(element("exp_fixed", "1 + x", LibrarySource::InHouse, 40));
        lib.push(element("log_fixed", "x - 1", LibrarySource::InHouse, 50));
        let e = lib.element("exp_double").unwrap().clone();
        let alts = lib.alternatives(&e);
        assert_eq!(alts.len(), 1);
        assert_eq!(alts[0].name(), "exp_fixed");
    }

    #[test]
    fn extend_and_display() {
        let mut lib = Library::new("test");
        lib.extend(vec![element("a", "x", LibrarySource::Ipp, 1)]);
        let s = lib.to_string();
        assert!(s.contains("library `test`"));
        assert!(s.contains("a [IPP]"));
    }
}
