//! The characterized libraries of the paper's evaluation.
//!
//! Four catalogs are provided:
//!
//! * [`reference_library`] — the floating-point kernels of the standards-body
//!   code (the "float" rows of Table 1); these are what the original program
//!   already contains,
//! * [`linux_math_library`] — the Linux math library ("LM"): `exp`, `log`,
//!   `pow` as double-precision software-float routines,
//! * [`in_house_library`] — the in-house fixed-point routines ("IH"),
//! * [`ipp_library`] — the Intel IPP-style hand-optimized routines ("IPP"),
//!
//! plus [`log_library`] — the four `log` implementations of the paper's
//! motivating example (§1).
//!
//! Element costs are *measured* by running the corresponding workload kernels
//! against the Badge4 model (per frame for the complex elements, per call for
//! the scalar ones), exactly as §3.1 prescribes; polynomial representations
//! come from the kernel modules (Equation 1 for the IMDCT, the matrixing form
//! for subband synthesis, truncated series for the transcendentals).

use symmap_algebra::poly::Poly;
use symmap_mp3::types::{GRANULES_PER_FRAME, LINES_PER_SUBBAND, SUBBANDS};
use symmap_mp3::{dequant, frame::FrameGenerator, imdct, synthesis};
use symmap_numeric::series::{taylor_rational, Function};
use symmap_platform::cost::OpCounts;
use symmap_platform::machine::Badge4;

use crate::characterize::Characterizer;
use crate::element::{LibraryElement, LibrarySource, NumericFormat};
use crate::library::Library;

/// Canonical element names, used by the optimization pipeline to translate a
/// mapping solution into a kernel selection.
pub mod names {
    /// Floating-point subband synthesis (standards-body code).
    pub const FLOAT_SUBBAND: &str = "float_subband_synthesis";
    /// In-house fixed-point subband synthesis.
    pub const FIXED_SUBBAND: &str = "fixed_subband_synthesis";
    /// IPP subband synthesis (`ippsSynthPQMF_MP3_32s16s`).
    pub const IPP_SUBBAND: &str = "ipp_subband_synthesis";
    /// Floating-point IMDCT (standards-body code).
    pub const FLOAT_IMDCT: &str = "float_imdct";
    /// In-house fixed-point IMDCT.
    pub const FIXED_IMDCT: &str = "fixed_imdct";
    /// IPP IMDCT (`IppsMDCTInv_MP3_32s`).
    pub const IPP_IMDCT: &str = "ipp_imdct";
    /// Reference dequantizer built on math-library `pow`.
    pub const FLOAT_DEQUANT: &str = "float_dequantize_sample";
    /// In-house fixed-point dequantizer (table driven).
    pub const FIXED_DEQUANT: &str = "fixed_dequantize_sample";
    /// IPP-style dequantizer.
    pub const IPP_DEQUANT: &str = "ipp_dequantize_sample";
    /// Floating-point mid/side stereo butterfly.
    pub const FLOAT_STEREO: &str = "float_stereo_butterfly";
    /// Fixed-point mid/side stereo butterfly.
    pub const FIXED_STEREO: &str = "fixed_stereo_butterfly";
    /// Floating-point antialias butterfly.
    pub const FLOAT_ANTIALIAS: &str = "float_antialias_butterfly";
    /// Fixed-point antialias butterfly.
    pub const FIXED_ANTIALIAS: &str = "fixed_antialias_butterfly";
    /// Floating-point hybrid overlap-add.
    pub const FLOAT_HYBRID: &str = "float_hybrid_overlap";
    /// Fixed-point hybrid overlap-add.
    pub const FIXED_HYBRID: &str = "fixed_hybrid_overlap";
}

fn series_poly(f: Function, terms: usize, var: &str) -> Poly {
    let coeffs = taylor_rational(f, terms, 1 << 20);
    let mut p = Poly::zero();
    for (k, c) in coeffs.into_iter().enumerate() {
        if c.is_zero() {
            continue;
        }
        p = p.add(&Poly::from_term(
            symmap_algebra::monomial::Monomial::var(symmap_algebra::var::Var::new(var), k as u32),
            c,
        ));
    }
    p
}

/// Polynomial representation used for every dequantizer variant: the
/// truncated binomial series of `(1 + q)^(4/3)` — the nonlinear requantization
/// exponent handled by series expansion in target-code identification.
pub fn dequantizer_polynomial() -> Poly {
    series_poly(Function::Pow43, 5, "q")
}

/// Polynomial representation of the stereo butterfly `l = (m + s)/√2`.
pub fn stereo_polynomial() -> Poly {
    let inv_sqrt2 =
        symmap_numeric::Rational::approximate_f64(std::f64::consts::FRAC_1_SQRT_2, 1 << 20)
            .expect("finite");
    Poly::parse("m + s").expect("valid").scale(&inv_sqrt2)
}

/// Polynomial representation of the antialias butterfly `a*cs - b*ca`.
pub fn antialias_polynomial() -> Poly {
    Poly::parse("a*cs - b*ca").expect("valid")
}

/// Polynomial representation of the hybrid overlap-add `ts + ov` (current
/// IMDCT output sample plus the previous granule's overlap value).
pub fn hybrid_polynomial() -> Poly {
    Poly::parse("ts + ov").expect("valid")
}

/// Per-frame operation counts of one subband-synthesis variant.
fn subband_frame_ops(variant: synthesis::SynthesisVariant) -> OpCounts {
    let mut filter = synthesis::PolyphaseSynthesis::new(variant);
    let bands: Vec<f64> = (0..SUBBANDS)
        .map(|k| 0.3 * ((k as f64) * 0.2).cos())
        .collect();
    let mut ops = OpCounts::new();
    for _ in 0..LINES_PER_SUBBAND * GRANULES_PER_FRAME {
        filter.process(&bands, &mut ops);
    }
    ops
}

/// Per-frame operation counts of one IMDCT variant.
fn imdct_frame_ops(kernel: fn(&[f64], &mut OpCounts) -> Vec<f64>) -> OpCounts {
    let input: Vec<f64> = (0..LINES_PER_SUBBAND)
        .map(|k| ((k as f64) * 0.5).sin())
        .collect();
    let mut ops = OpCounts::new();
    for _ in 0..SUBBANDS * GRANULES_PER_FRAME {
        kernel(&input, &mut ops);
    }
    ops
}

/// Per-frame operation counts of one dequantizer variant.
fn dequant_frame_ops(variant: &str) -> OpCounts {
    let granule = FrameGenerator::new(1).frame().granules[0].clone();
    let table = dequant::pow43_table();
    let mut ops = OpCounts::new();
    for _ in 0..GRANULES_PER_FRAME {
        match variant {
            "float" => {
                dequant::dequantize_reference(&granule, &mut ops);
            }
            "fixed" => {
                dequant::dequantize_fixed(&granule, &table, &mut ops);
            }
            _ => {
                dequant::dequantize_ipp(&granule, &table, &mut ops);
            }
        }
    }
    ops
}

/// How many times the polynomial representation of an element is evaluated
/// while decoding one frame — used to convert between per-invocation element
/// costs (what the mapper compares) and per-frame execution times (what the
/// paper's Table 1 and Tables 3–5 report).
pub fn invocations_per_frame(element_name: &str) -> u64 {
    use symmap_mp3::types::{GRANULES_PER_FRAME, SAMPLES_PER_GRANULE};
    let per_granule = if element_name.ends_with("subband_synthesis") {
        // One matrixing output: 64 outputs per slot, 18 slots.
        (super::catalog::MATRIX_OUTPUTS * LINES_PER_SUBBAND) as u64
    } else if element_name.ends_with("imdct") {
        // One IMDCT output sample: 36 outputs per subband block, 32 blocks.
        (36 * SUBBANDS) as u64
    } else if element_name.contains("dequantize")
        || element_name.contains("stereo")
        || element_name.contains("hybrid")
    {
        SAMPLES_PER_GRANULE as u64
    } else if element_name.contains("antialias") {
        (8 * (SUBBANDS - 1)) as u64
    } else {
        1
    };
    per_granule * GRANULES_PER_FRAME as u64
}

/// Matrixing outputs per synthesis time slot (re-exported for
/// [`invocations_per_frame`]).
pub const MATRIX_OUTPUTS: usize = 64;

#[allow(clippy::too_many_arguments)] // one argument per Table 1 column
fn characterized(
    characterizer: &Characterizer,
    name: &str,
    symbol: &str,
    poly: Poly,
    ops: OpCounts,
    accuracy: f64,
    format: NumericFormat,
    source: LibrarySource,
) -> LibraryElement {
    let mut e = LibraryElement::builder(name, symbol)
        .polynomial(poly)
        .accuracy(accuracy)
        .format(format)
        .source(source)
        .build()
        .expect("polynomial provided");
    // Per-frame kernel measurements are attributed to a single invocation of
    // the element's polynomial, so the mapper compares like with like.
    let per_invocation = ops.divided(invocations_per_frame(name));
    characterizer.characterize(&mut e, |out| out.merge(&per_invocation));
    e
}

/// The floating-point kernels already present in the standards-body code.
pub fn reference_library(badge: &Badge4) -> Library {
    let c = Characterizer::new(badge.clone());
    let mut lib = Library::new("reference-float");
    lib.push(characterized(
        &c,
        names::FLOAT_SUBBAND,
        "sbs",
        synthesis::synthesis_polynomial(0),
        subband_frame_ops(synthesis::SynthesisVariant::Reference),
        1e-15,
        NumericFormat::Double,
        LibrarySource::LinuxMath,
    ));
    lib.push(characterized(
        &c,
        names::FLOAT_IMDCT,
        "md",
        imdct::imdct_polynomial(0, 36),
        imdct_frame_ops(imdct::imdct_reference),
        1e-15,
        NumericFormat::Double,
        LibrarySource::LinuxMath,
    ));
    lib.push(characterized(
        &c,
        names::FLOAT_DEQUANT,
        "dq",
        dequantizer_polynomial(),
        dequant_frame_ops("float"),
        1e-15,
        NumericFormat::Double,
        LibrarySource::LinuxMath,
    ));
    let small = |name: &str, symbol: &str, poly: Poly, float_ops: u64| {
        let mut ops = OpCounts::new();
        ops.add(
            symmap_platform::cost::InstructionClass::FloatMulSoft,
            float_ops,
        );
        ops.add(
            symmap_platform::cost::InstructionClass::FloatAddSoft,
            float_ops,
        );
        characterized(
            &c,
            name,
            symbol,
            poly,
            ops,
            1e-15,
            NumericFormat::Double,
            LibrarySource::LinuxMath,
        )
    };
    lib.push(small(names::FLOAT_STEREO, "st", stereo_polynomial(), 2));
    lib.push(small(
        names::FLOAT_ANTIALIAS,
        "aa",
        antialias_polynomial(),
        2,
    ));
    lib.push(small(names::FLOAT_HYBRID, "hy", hybrid_polynomial(), 1));
    lib
}

/// The Linux math library ("LM"): double-precision transcendentals.
pub fn linux_math_library(badge: &Badge4) -> Library {
    let c = Characterizer::new(badge.clone());
    let mut lib = Library::new("linux-math");
    let libm = |name: &str, symbol: &str, f: Function| {
        let mut ops = OpCounts::new();
        ops.add(symmap_platform::cost::InstructionClass::LibmCall, 1);
        characterized(
            &c,
            name,
            symbol,
            series_poly(f, 6, "x"),
            ops,
            1e-15,
            NumericFormat::Double,
            LibrarySource::LinuxMath,
        )
    };
    lib.push(libm("libm_exp", "e_x", Function::Exp));
    lib.push(libm("libm_log1p", "ln_x", Function::Ln1p));
    lib.push(libm("libm_sqrt1p", "sq_x", Function::Sqrt1p));
    lib.push(libm("libm_pow43", "pw_x", Function::Pow43));
    lib
}

/// The in-house fixed-point library ("IH").
pub fn in_house_library(badge: &Badge4) -> Library {
    let c = Characterizer::new(badge.clone());
    let mut lib = Library::new("in-house-fixed");
    lib.push(characterized(
        &c,
        names::FIXED_SUBBAND,
        "sbs",
        synthesis::synthesis_polynomial(0),
        subband_frame_ops(synthesis::SynthesisVariant::Fixed),
        2e-7,
        NumericFormat::Fixed(1, 30),
        LibrarySource::InHouse,
    ));
    lib.push(characterized(
        &c,
        names::FIXED_IMDCT,
        "md",
        imdct::imdct_polynomial(0, 36),
        imdct_frame_ops(imdct::imdct_fixed),
        2e-7,
        NumericFormat::Fixed(8, 23),
        LibrarySource::InHouse,
    ));
    lib.push(characterized(
        &c,
        names::FIXED_DEQUANT,
        "dq",
        dequantizer_polynomial(),
        dequant_frame_ops("fixed"),
        1e-6,
        NumericFormat::Fixed(16, 15),
        LibrarySource::InHouse,
    ));
    let small = |name: &str, symbol: &str, poly: Poly, int_ops: u64| {
        let mut ops = OpCounts::new();
        ops.add(symmap_platform::cost::InstructionClass::IntMac, int_ops);
        characterized(
            &c,
            name,
            symbol,
            poly,
            ops,
            1e-6,
            NumericFormat::Fixed(16, 15),
            LibrarySource::InHouse,
        )
    };
    lib.push(small(names::FIXED_STEREO, "st", stereo_polynomial(), 2));
    lib.push(small(
        names::FIXED_ANTIALIAS,
        "aa",
        antialias_polynomial(),
        2,
    ));
    lib.push(small(names::FIXED_HYBRID, "hy", hybrid_polynomial(), 1));
    // Scalar fixed-point replacements for the LM transcendentals.
    lib.push(small(
        "fixed_exp",
        "e_x",
        series_poly(Function::Exp, 6, "x"),
        12,
    ));
    lib.push(small(
        "fixed_log1p",
        "ln_x",
        series_poly(Function::Ln1p, 6, "x"),
        12,
    ));
    lib.push(small(
        "fixed_pow43_table",
        "pw_x",
        series_poly(Function::Pow43, 5, "x"),
        4,
    ));
    lib
}

/// The Intel IPP-style library ("IPP").
pub fn ipp_library(badge: &Badge4) -> Library {
    let c = Characterizer::new(badge.clone());
    let mut lib = Library::new("intel-ipp");
    lib.push(characterized(
        &c,
        names::IPP_SUBBAND,
        "sbs",
        synthesis::synthesis_polynomial(0),
        subband_frame_ops(synthesis::SynthesisVariant::Ipp),
        3e-7,
        NumericFormat::Fixed(1, 30),
        LibrarySource::Ipp,
    ));
    lib.push(characterized(
        &c,
        names::IPP_IMDCT,
        "md",
        imdct::imdct_polynomial(0, 36),
        imdct_frame_ops(imdct::imdct_ipp),
        3e-7,
        NumericFormat::Fixed(1, 30),
        LibrarySource::Ipp,
    ));
    lib.push(characterized(
        &c,
        names::IPP_DEQUANT,
        "dq",
        dequantizer_polynomial(),
        dequant_frame_ops("ipp"),
        1e-6,
        NumericFormat::Fixed(16, 15),
        LibrarySource::Ipp,
    ));
    lib
}

/// The four `log` implementations of the paper's §1 motivating example.
pub fn log_library(badge: &Badge4) -> Library {
    let c = Characterizer::new(badge.clone());
    let poly = series_poly(Function::Ln1p, 6, "x");
    let mut lib = Library::new("log-example");
    let entry = |name: &str,
                 cycles_class: (symmap_platform::cost::InstructionClass, u64),
                 accuracy,
                 format,
                 source| {
        let mut ops = OpCounts::new();
        ops.add(cycles_class.0, cycles_class.1);
        characterized(&c, name, "lg", poly.clone(), ops, accuracy, format, source)
    };
    use symmap_platform::cost::InstructionClass::*;
    lib.push(entry(
        "log_double",
        (LibmCall, 1),
        1e-15,
        NumericFormat::Double,
        LibrarySource::LinuxMath,
    ));
    lib.push(entry(
        "log_float",
        (FloatMulSoft, 22),
        1e-7,
        NumericFormat::Single,
        LibrarySource::LinuxMath,
    ));
    lib.push(entry(
        "log_fixed_bitmanip",
        (IntAlu, 28),
        3e-3,
        NumericFormat::Fixed(16, 15),
        LibrarySource::InHouse,
    ));
    lib.push(entry(
        "log_fixed_poly",
        (IntMac, 14),
        2e-5,
        NumericFormat::Fixed(16, 15),
        LibrarySource::InHouse,
    ));
    lib
}

/// The union of the reference, LM, IH and IPP libraries — everything the
/// mapper may draw from in the paper's final configuration.
pub fn full_catalog(badge: &Badge4) -> Library {
    Library::union(
        "full-catalog",
        &[
            &reference_library(badge),
            &linux_math_library(badge),
            &in_house_library(badge),
            &ipp_library(badge),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_1_ordering_float_fixed_ipp() {
        let badge = Badge4::new();
        let float = reference_library(&badge);
        let fixed = in_house_library(&badge);
        let ipp = ipp_library(&badge);
        // SubBand Synthesis: float ≫ fixed > ipp (Table 1 ratios 1 / 92 / 479).
        let f = float.element(names::FLOAT_SUBBAND).unwrap().cycles();
        let x = fixed.element(names::FIXED_SUBBAND).unwrap().cycles();
        let i = ipp.element(names::IPP_SUBBAND).unwrap().cycles();
        assert!(f > 20 * x, "float {f} vs fixed {x}");
        assert!(x > i, "fixed {x} vs ipp {i}");
        // IMDCT: same ordering, with IPP relatively even faster (1 / 27 / 1898).
        let f = float.element(names::FLOAT_IMDCT).unwrap().cycles();
        let x = fixed.element(names::FIXED_IMDCT).unwrap().cycles();
        let i = ipp.element(names::IPP_IMDCT).unwrap().cycles();
        assert!(f > 10 * x);
        assert!(x > 2 * i);
    }

    #[test]
    fn alternatives_share_polynomials_across_libraries() {
        let badge = Badge4::new();
        let all = full_catalog(&badge);
        let float_subband = all.element(names::FLOAT_SUBBAND).unwrap().clone();
        let alts = all.alternatives(&float_subband);
        let names: Vec<&str> = alts.iter().map(|e| e.name()).collect();
        assert!(names.contains(&names::FIXED_SUBBAND));
        assert!(names.contains(&names::IPP_SUBBAND));
    }

    #[test]
    fn log_library_has_four_implementations_with_tradeoffs() {
        let badge = Badge4::new();
        let lib = log_library(&badge);
        assert_eq!(lib.len(), 4);
        let double = lib.element("log_double").unwrap();
        let bitmanip = lib.element("log_fixed_bitmanip").unwrap();
        let fixed_poly = lib.element("log_fixed_poly").unwrap();
        // Fastest implementation is the least accurate and vice versa.
        assert!(double.cycles() > 50 * bitmanip.cycles());
        assert!(double.accuracy() < bitmanip.accuracy());
        assert!(fixed_poly.accuracy() < bitmanip.accuracy());
        assert!(fixed_poly.cycles() > bitmanip.cycles());
    }

    #[test]
    fn catalogs_have_expected_sizes_and_sources() {
        let badge = Badge4::new();
        assert_eq!(linux_math_library(&badge).len(), 4);
        assert_eq!(ipp_library(&badge).len(), 3);
        assert!(in_house_library(&badge).len() >= 9);
        let full = full_catalog(&badge);
        assert!(full.len() >= 19);
        assert!(!full.from_source(LibrarySource::Ipp).is_empty());
        assert!(!full.from_source(LibrarySource::LinuxMath).is_empty());
        assert!(!full.from_source(LibrarySource::InHouse).is_empty());
    }

    #[test]
    fn polynomials_are_nontrivial() {
        assert_eq!(
            dequantizer_polynomial().degree_in(symmap_algebra::var::Var::new("q")),
            4
        );
        assert_eq!(stereo_polynomial().num_terms(), 2);
        assert_eq!(antialias_polynomial().num_terms(), 2);
        let badge = Badge4::new();
        let ih = in_house_library(&badge);
        assert_eq!(
            ih.element(names::FIXED_IMDCT)
                .unwrap()
                .polynomial()
                .num_terms(),
            18
        );
        assert_eq!(
            ih.element(names::FIXED_SUBBAND)
                .unwrap()
                .polynomial()
                .num_terms(),
            32
        );
    }
}
