//! Measuring library elements on the platform model.
//!
//! §3.1: "Most embedded systems have OS timers that can be used for
//! fine-granularity performance measurements on hardware… Alternatively, a
//! cycle-accurate energy consumption simulator easily provides energy and
//! performance estimates of library elements." Here the Badge4 cost model
//! plays the role of both: an element is characterized by running its kernel
//! (which reports operation counts) and costing those counts.

use symmap_platform::cost::OpCounts;
use symmap_platform::machine::{Badge4, ExecutionCost};

use crate::element::LibraryElement;

/// A characterization measurement for one element.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Cycles per invocation.
    pub cycles: u64,
    /// Seconds per invocation at the platform's operating point.
    pub seconds: f64,
    /// Energy per invocation in nanojoules.
    pub energy_nj: f64,
}

impl From<ExecutionCost> for Measurement {
    fn from(c: ExecutionCost) -> Self {
        Measurement {
            cycles: c.cycles,
            seconds: c.seconds,
            energy_nj: c.energy_j * 1e9,
        }
    }
}

/// Characterizes elements against a [`Badge4`] model.
#[derive(Debug, Clone)]
pub struct Characterizer {
    badge: Badge4,
}

impl Characterizer {
    /// Creates a characterizer for the given platform.
    pub fn new(badge: Badge4) -> Self {
        Characterizer { badge }
    }

    /// The underlying platform model.
    pub fn badge(&self) -> &Badge4 {
        &self.badge
    }

    /// Costs a bag of operation counts (one invocation of the element's
    /// kernel).
    pub fn measure_counts(&self, ops: &OpCounts) -> Measurement {
        self.badge.cost_of(ops).into()
    }

    /// Runs `kernel`, which performs one invocation of the element and
    /// returns its operation counts, and stores the measured cost in
    /// `element`.
    pub fn characterize(
        &self,
        element: &mut LibraryElement,
        kernel: impl FnOnce(&mut OpCounts),
    ) -> Measurement {
        let mut ops = OpCounts::new();
        kernel(&mut ops);
        let m = self.measure_counts(&ops);
        element.set_cost(m.cycles, m.energy_nj);
        m
    }

    /// Measures the execution-time ratio of two op-count bags (the
    /// "execution time ratio" column of Table 1).
    pub fn ratio(&self, baseline: &OpCounts, candidate: &OpCounts) -> f64 {
        let b = self.measure_counts(baseline);
        let c = self.measure_counts(candidate);
        if c.seconds > 0.0 {
            b.seconds / c.seconds
        } else {
            f64::INFINITY
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symmap_algebra::poly::Poly;
    use symmap_platform::cost::InstructionClass;

    #[test]
    fn characterize_updates_element_cost() {
        let characterizer = Characterizer::new(Badge4::new());
        let mut element = LibraryElement::builder("mac", "m")
            .polynomial(Poly::parse("a*b + c").unwrap())
            .build()
            .unwrap();
        let m = characterizer.characterize(&mut element, |ops| {
            ops.add(InstructionClass::IntMac, 1);
            ops.add(InstructionClass::Load, 3);
        });
        assert_eq!(element.cycles(), m.cycles);
        assert!(element.energy_nj() > 0.0);
        assert!(m.cycles >= 9);
    }

    #[test]
    fn ratio_reflects_relative_cost() {
        let characterizer = Characterizer::new(Badge4::new());
        let mut float_ops = OpCounts::new();
        float_ops.add(InstructionClass::FloatMulSoft, 1000);
        let mut fixed_ops = OpCounts::new();
        fixed_ops.add(InstructionClass::IntMac, 1000);
        let ratio = characterizer.ratio(&float_ops, &fixed_ops);
        assert!(ratio > 20.0, "float/fixed ratio {ratio}");
        assert_eq!(
            characterizer.ratio(&float_ops, &OpCounts::new()),
            f64::INFINITY
        );
    }

    #[test]
    fn measurement_converts_energy_to_nanojoules() {
        let characterizer = Characterizer::new(Badge4::new());
        let mut ops = OpCounts::new();
        ops.add(InstructionClass::IntAlu, 1_000_000);
        let m = characterizer.measure_counts(&ops);
        assert!(m.energy_nj > 1000.0);
        assert!(m.seconds > 0.0);
    }
}
