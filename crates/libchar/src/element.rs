//! The library-element model.

use std::fmt;

use serde::{Deserialize, Serialize};
use symmap_algebra::fingerprint::PolyFingerprint;
use symmap_algebra::poly::Poly;

/// Numeric format of an element's inputs and outputs (from the library's
/// include files, as §3.1 puts it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NumericFormat {
    /// IEEE double precision.
    Double,
    /// IEEE single precision.
    Single,
    /// Fixed point with the given integer/fractional bit split.
    Fixed(u8, u8),
}

impl fmt::Display for NumericFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumericFormat::Double => write!(f, "double"),
            NumericFormat::Single => write!(f, "float"),
            NumericFormat::Fixed(i, q) => write!(f, "Q{i}.{q}"),
        }
    }
}

/// Which library an element belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LibrarySource {
    /// Linux math library ("LM").
    LinuxMath,
    /// In-house pre-optimized fixed-point routines ("IH").
    InHouse,
    /// Intel Integrated Performance Primitives style library ("IPP").
    Ipp,
}

impl fmt::Display for LibrarySource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LibrarySource::LinuxMath => write!(f, "LM"),
            LibrarySource::InHouse => write!(f, "IH"),
            LibrarySource::Ipp => write!(f, "IPP"),
        }
    }
}

/// A characterized complex library element.
///
/// The polynomial representation is expressed in the element's formal input
/// variables; `output_symbol` is the fresh variable the mapper introduces when
/// it uses the element as a side relation.
#[derive(Debug, Clone, PartialEq)]
pub struct LibraryElement {
    name: String,
    output_symbol: String,
    polynomial: Poly,
    /// Invariant summary of `polynomial`, computed once at build time so
    /// candidate selection over thousand-element libraries never touches the
    /// polynomial itself (see `DESIGN.md` §9).
    fingerprint: PolyFingerprint,
    cycles: u64,
    energy_nj: f64,
    accuracy: f64,
    format: NumericFormat,
    source: LibrarySource,
}

impl LibraryElement {
    /// Starts building an element with the given name and output symbol.
    pub fn builder(name: &str, output_symbol: &str) -> LibraryElementBuilder {
        LibraryElementBuilder {
            name: name.to_string(),
            output_symbol: output_symbol.to_string(),
            polynomial: None,
            cycles: 1,
            energy_nj: 0.0,
            accuracy: 0.0,
            format: NumericFormat::Double,
            source: LibrarySource::InHouse,
        }
    }

    /// The element's name (as a designer would see it in the library index).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The fresh symbol that stands for the element's output in rewritten code.
    pub fn output_symbol(&self) -> &str {
        &self.output_symbol
    }

    /// The polynomial representation of the element's function.
    pub fn polynomial(&self) -> &Poly {
        &self.polynomial
    }

    /// The precomputed invariant fingerprint of [`polynomial`]: support mask,
    /// degree signature and ℤ/p evaluation hash, ready for O(1) conservative
    /// pruning checks.
    ///
    /// [`polynomial`]: LibraryElement::polynomial
    pub fn fingerprint(&self) -> &PolyFingerprint {
        &self.fingerprint
    }

    /// Execution cycles on the characterized platform (per invocation).
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Energy per invocation in nanojoules.
    pub fn energy_nj(&self) -> f64 {
        self.energy_nj
    }

    /// Worst-case absolute output error versus the exact function.
    pub fn accuracy(&self) -> f64 {
        self.accuracy
    }

    /// Input/output numeric format.
    pub fn format(&self) -> NumericFormat {
        self.format
    }

    /// Which library this element comes from.
    pub fn source(&self) -> LibrarySource {
        self.source
    }

    /// Overrides the measured cost (used after characterization).
    pub fn set_cost(&mut self, cycles: u64, energy_nj: f64) {
        self.cycles = cycles;
        self.energy_nj = energy_nj;
    }
}

impl fmt::Display for LibraryElement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] ({}, {} cycles, {:.1} nJ, err {:.2e}): {} = {}",
            self.name,
            self.source,
            self.format,
            self.cycles,
            self.energy_nj,
            self.accuracy,
            self.output_symbol,
            self.polynomial
        )
    }
}

/// Builder for [`LibraryElement`].
#[derive(Debug, Clone)]
pub struct LibraryElementBuilder {
    name: String,
    output_symbol: String,
    polynomial: Option<Poly>,
    cycles: u64,
    energy_nj: f64,
    accuracy: f64,
    format: NumericFormat,
    source: LibrarySource,
}

/// Error returned when a builder is missing its polynomial representation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildElementError {
    /// Name of the element that failed to build.
    pub name: String,
}

impl fmt::Display for BuildElementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "library element `{}` has no polynomial representation",
            self.name
        )
    }
}

impl std::error::Error for BuildElementError {}

impl LibraryElementBuilder {
    /// Sets the polynomial representation (required).
    pub fn polynomial(mut self, p: Poly) -> Self {
        self.polynomial = Some(p);
        self
    }

    /// Sets the per-invocation cycle cost.
    pub fn cycles(mut self, cycles: u64) -> Self {
        self.cycles = cycles.max(1);
        self
    }

    /// Sets the per-invocation energy in nanojoules.
    pub fn energy_nj(mut self, energy: f64) -> Self {
        self.energy_nj = energy.max(0.0);
        self
    }

    /// Sets the worst-case absolute error.
    pub fn accuracy(mut self, accuracy: f64) -> Self {
        self.accuracy = accuracy.max(0.0);
        self
    }

    /// Sets the numeric format.
    pub fn format(mut self, format: NumericFormat) -> Self {
        self.format = format;
        self
    }

    /// Sets the source library.
    pub fn source(mut self, source: LibrarySource) -> Self {
        self.source = source;
        self
    }

    /// Builds the element.
    ///
    /// # Errors
    ///
    /// Returns [`BuildElementError`] if no polynomial representation was set.
    pub fn build(self) -> Result<LibraryElement, BuildElementError> {
        let polynomial = self.polynomial.ok_or(BuildElementError {
            name: self.name.clone(),
        })?;
        let fingerprint = PolyFingerprint::of(&polynomial);
        Ok(LibraryElement {
            name: self.name,
            output_symbol: self.output_symbol,
            polynomial,
            fingerprint,
            cycles: self.cycles,
            energy_nj: self.energy_nj,
            accuracy: self.accuracy,
            format: self.format,
            source: self.source,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_round_trip() {
        let e = LibraryElement::builder("mac", "m")
            .polynomial(Poly::parse("a*b + c").unwrap())
            .cycles(3)
            .energy_nj(4.5)
            .accuracy(1e-9)
            .format(NumericFormat::Fixed(16, 15))
            .source(LibrarySource::Ipp)
            .build()
            .unwrap();
        assert_eq!(e.name(), "mac");
        assert_eq!(e.output_symbol(), "m");
        assert_eq!(e.cycles(), 3);
        assert_eq!(e.source(), LibrarySource::Ipp);
        assert_eq!(e.format().to_string(), "Q16.15");
        assert!(e.to_string().contains("mac"));
    }

    #[test]
    fn builder_requires_polynomial() {
        let err = LibraryElement::builder("nopoly", "n").build().unwrap_err();
        assert!(err.to_string().contains("nopoly"));
    }

    #[test]
    fn zero_cycles_clamped_to_one() {
        let e = LibraryElement::builder("free", "f")
            .polynomial(Poly::parse("x").unwrap())
            .cycles(0)
            .build()
            .unwrap();
        assert_eq!(e.cycles(), 1);
    }

    #[test]
    fn set_cost_updates_measurements() {
        let mut e = LibraryElement::builder("exp", "e")
            .polynomial(Poly::parse("1 + x").unwrap())
            .build()
            .unwrap();
        e.set_cost(123, 9.0);
        assert_eq!(e.cycles(), 123);
        assert_eq!(e.energy_nj(), 9.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(NumericFormat::Double.to_string(), "double");
        assert_eq!(LibrarySource::LinuxMath.to_string(), "LM");
        assert_eq!(LibrarySource::Ipp.to_string(), "IPP");
    }
}
