//! Packed power products (monomials) of symbolic variables.
//!
//! A monomial stores its exponents as a **dense vector indexed by variable
//! index** (the interner hands out dense indices), trimmed of trailing zeros,
//! with the total degree cached. Vectors of up to [`INLINE_VARS`] entries
//! live inline in the monomial itself; only wider monomials spill to the
//! heap. Divisibility, lcm/gcd and the monomial-order comparisons in
//! [`crate::ordering`] are plain slice loops over these vectors — no tree
//! walks, no per-comparison allocation, and `degree_of` is a constant-time
//! index lookup.
//!
//! All exponent arithmetic is checked: the `try_*` constructors surface
//! [`AlgebraError::DegreeOverflow`], and the infallible wrappers panic
//! instead of silently wrapping in release builds (the former representation
//! accumulated with unchecked `+=`).

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::error::AlgebraError;
use crate::var::{Var, VarSet};

/// Number of exponent slots stored inline before spilling to the heap.
///
/// Eight covers every workload in the mapper corpus (the paper's examples use
/// 2–7 variables); the constant only bounds *inline* storage, not the number
/// of variables.
///
/// Storage is dense by variable index, so what must fit inline is the
/// *highest index* occurring in the monomial, not the variable count. In
/// **global** coordinates that index is the interner index — a monomial in
/// one late-interned variable of index `k` stores `k + 1` slots. The algebra
/// hot paths no longer run in global coordinates, though: Gröbner/normal-form
/// computations rewrite their inputs through a [`crate::ring::Ring`] into
/// dense **ring-local** indices `0..n` at entry, where `n` is the ideal's
/// variable count (2–7 for the paper's workloads — always inline), and only
/// the one-pass localize/globalize boundary ever touches the wide global
/// vectors. A process that interns thousands of names before doing algebra
/// pays a boundary scan proportional to the interner width once per ideal,
/// not per operation — see `DESIGN.md` §4 and the `wide_interner` bench.
pub const INLINE_VARS: usize = 8;

/// Exponent storage: a fixed inline array or a heap spill for wide monomials.
#[derive(Clone)]
enum Exps {
    /// Exponents `arr[..len]`; slots at `len..` are zero.
    Inline([u32; INLINE_VARS]),
    /// Heap storage, exactly `len` entries.
    Heap(Box<[u32]>),
}

/// A power product `x1^e1 * x2^e2 * ...` with non-negative integer exponents.
///
/// Stored as a packed exponent vector over dense variable indices with no
/// trailing zeros, so the empty vector is the constant `1`; the total degree
/// is cached at construction.
///
/// `Ord` is the *canonical storage order* used to keep [`crate::poly::Poly`]
/// term vectors sorted: exponent vectors compare lexicographically by
/// variable index (implicit zeros past the end). This order is total and
/// multiplication-invariant (`a < b` implies `a*c < b*c`), which is what
/// merge-based polynomial arithmetic needs; it is **not** one of the
/// [`crate::ordering::MonomialOrder`]s used for Gröbner reduction.
///
/// ```
/// use symmap_algebra::monomial::Monomial;
/// use symmap_algebra::var::Var;
///
/// let m = Monomial::from_pairs(&[(Var::new("x"), 2), (Var::new("y"), 1)]);
/// assert_eq!(m.total_degree(), 3);
/// assert_eq!(m.degree_of(Var::new("x")), 2);
/// ```
#[derive(Clone)]
pub struct Monomial {
    /// Number of significant exponent entries (last entry is non-zero).
    len: u32,
    /// Cached total degree, wide enough that the cache itself cannot wrap.
    degree: u64,
    exps: Exps,
}

impl Monomial {
    /// Builds from a dense exponent vector (index = variable index).
    fn from_dense(mut exps: Vec<u32>) -> Self {
        while exps.last() == Some(&0) {
            exps.pop();
        }
        let degree = exps.iter().map(|&e| e as u64).sum();
        let len = exps.len() as u32;
        if exps.len() <= INLINE_VARS {
            let mut arr = [0u32; INLINE_VARS];
            arr[..exps.len()].copy_from_slice(&exps);
            Monomial {
                len,
                degree,
                exps: Exps::Inline(arr),
            }
        } else {
            Monomial {
                len,
                degree,
                exps: Exps::Heap(exps.into_boxed_slice()),
            }
        }
    }

    /// Builds from `width` exponents produced by `get(index)`, writing
    /// directly into the inline array when the result fits — the binary
    /// operations on the division/Gröbner hot path go through here so that
    /// the common ≤ [`INLINE_VARS`]-wide case allocates nothing at all.
    /// Also the localization entry point of [`crate::ring::Ring`].
    pub(crate) fn from_fn(width: usize, get: impl Fn(usize) -> u32) -> Self {
        if width <= INLINE_VARS {
            let mut arr = [0u32; INLINE_VARS];
            let mut degree = 0u64;
            let mut len = 0usize;
            for (i, slot) in arr.iter_mut().enumerate().take(width) {
                let e = get(i);
                *slot = e;
                degree += e as u64;
                if e != 0 {
                    len = i + 1;
                }
            }
            Monomial {
                len: len as u32,
                degree,
                exps: Exps::Inline(arr),
            }
        } else {
            Monomial::from_dense((0..width).map(get).collect())
        }
    }

    /// Builds from a dense exponent vector whose trailing entry is already
    /// non-zero and whose total degree the caller knows — the globalization
    /// path of [`crate::ring::Ring`], where re-deriving either would cost an
    /// `O(width)` pass over a mostly-zero wide vector.
    pub(crate) fn from_dense_with_degree(exps: Vec<u32>, degree: u64) -> Self {
        debug_assert_ne!(exps.last().copied(), Some(0), "trailing zero not trimmed");
        debug_assert_eq!(exps.iter().map(|&e| e as u64).sum::<u64>(), degree);
        let len = exps.len() as u32;
        if exps.len() <= INLINE_VARS {
            let mut arr = [0u32; INLINE_VARS];
            arr[..exps.len()].copy_from_slice(&exps);
            Monomial {
                len,
                degree,
                exps: Exps::Inline(arr),
            }
        } else {
            Monomial {
                len,
                degree,
                exps: Exps::Heap(exps.into_boxed_slice()),
            }
        }
    }

    /// Appends the indices of all non-zero exponents to `out` (the variable
    /// support, ascending). Chunked so that the all-zero stretches of a wide
    /// global-coordinate vector are rejected by vectorizable OR-reductions —
    /// this is the ring-spanning scan, the only step of a localized
    /// computation that still walks the full global width, so it is written
    /// to move at memory speed: fixed-size 64-slot OR-folds (which LLVM
    /// turns into SIMD loads) inside 256-slot rejection blocks, descending
    /// to per-element work only where a block holds support.
    pub(crate) fn support_into(&self, out: &mut Vec<u32>) {
        const LANE: usize = 64;
        const BLOCK: usize = 4 * LANE;
        let exps = self.exps();
        let mut base = 0usize;
        for block in exps.chunks(BLOCK) {
            let mut any = 0u32;
            let lanes = block.chunks_exact(LANE);
            let tail = lanes.remainder();
            for lane in lanes {
                // Fixed-length array fold: no trip-count check per element,
                // so this compiles to straight-line SIMD ORs.
                let lane: &[u32; LANE] = lane.try_into().expect("exact chunk");
                any |= lane.iter().fold(0u32, |acc, &e| acc | e);
            }
            any |= tail.iter().fold(0u32, |acc, &e| acc | e);
            if any != 0 {
                for (j, &e) in block.iter().enumerate() {
                    if e != 0 {
                        out.push((base + j) as u32);
                    }
                }
            }
            base += BLOCK;
        }
    }

    /// The packed exponent slice (one entry per variable index, trailing
    /// zeros trimmed).
    pub(crate) fn exps(&self) -> &[u32] {
        match &self.exps {
            Exps::Inline(arr) => &arr[..self.len as usize],
            Exps::Heap(v) => v,
        }
    }

    /// The constant monomial `1`.
    pub fn one() -> Self {
        Monomial {
            len: 0,
            degree: 0,
            exps: Exps::Inline([0; INLINE_VARS]),
        }
    }

    /// A single variable raised to a power (degenerate to `1` when `exp == 0`).
    pub fn var(v: Var, exp: u32) -> Self {
        if exp == 0 {
            return Monomial::one();
        }
        let idx = v.index() as usize;
        Monomial::from_fn(idx + 1, |i| if i == idx { exp } else { 0 })
    }

    /// Builds a monomial from `(variable, exponent)` pairs; zero exponents are
    /// dropped and repeated variables accumulate.
    ///
    /// # Errors
    ///
    /// Returns [`AlgebraError::DegreeOverflow`] when accumulation overflows a
    /// `u32` exponent.
    pub fn try_from_pairs(pairs: &[(Var, u32)]) -> Result<Self, AlgebraError> {
        let width = pairs
            .iter()
            .filter(|&&(_, e)| e > 0)
            .map(|&(v, _)| v.index() as usize + 1)
            .max()
            .unwrap_or(0);
        let mut exps = vec![0u32; width];
        for &(v, e) in pairs {
            if e > 0 {
                let slot = &mut exps[v.index() as usize];
                *slot = slot.checked_add(e).ok_or(AlgebraError::DegreeOverflow)?;
            }
        }
        Ok(Monomial::from_dense(exps))
    }

    /// Builds a monomial from `(variable, exponent)` pairs; zero exponents are
    /// dropped and repeated variables accumulate.
    ///
    /// # Panics
    ///
    /// Panics when accumulation overflows a `u32` exponent; use
    /// [`Monomial::try_from_pairs`] to handle overflow as an error.
    pub fn from_pairs(pairs: &[(Var, u32)]) -> Self {
        Monomial::try_from_pairs(pairs).expect("monomial exponent overflow")
    }

    /// Returns `true` for the constant monomial.
    pub fn is_one(&self) -> bool {
        self.len == 0
    }

    /// Total degree (sum of all exponents), cached at construction.
    ///
    /// # Panics
    ///
    /// Panics if the (64-bit cached) total degree exceeds `u32::MAX` — only
    /// reachable through monomials whose individual exponents already sum
    /// past `u32`, which the checked constructors make explicit rather than
    /// wrapping.
    pub fn total_degree(&self) -> u32 {
        u32::try_from(self.degree).expect("total degree overflows u32")
    }

    /// Total degree as `u64` (never truncates; used by the graded orders).
    pub fn total_degree_u64(&self) -> u64 {
        self.degree
    }

    /// Exponent of a specific variable (0 when absent). Constant time.
    pub fn degree_of(&self, v: Var) -> u32 {
        self.exps().get(v.index() as usize).copied().unwrap_or(0)
    }

    /// The set of variables with a non-zero exponent, in interner order.
    pub fn vars(&self) -> VarSet {
        self.iter().map(|(v, _)| v).collect()
    }

    /// Iterates over `(variable, exponent)` pairs in ascending variable
    /// index, skipping zero exponents.
    pub fn iter(&self) -> impl Iterator<Item = (Var, u32)> + '_ {
        self.exps()
            .iter()
            .enumerate()
            .filter(|&(_, &e)| e > 0)
            .map(|(i, &e)| (Var::from_index(i as u32), e))
    }

    /// Number of distinct variables.
    pub fn num_vars(&self) -> usize {
        self.exps().iter().filter(|&&e| e > 0).count()
    }

    /// Product of two monomials (exponents add, checked).
    ///
    /// # Errors
    ///
    /// Returns [`AlgebraError::DegreeOverflow`] when any exponent sum
    /// overflows `u32`.
    pub fn try_mul(&self, other: &Monomial) -> Result<Monomial, AlgebraError> {
        let (a, b) = (self.exps(), other.exps());
        let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
        // Validate first so the allocation-free builder below can use plain
        // (now provably non-wrapping) additions.
        for (&el, &es) in long.iter().zip(short) {
            el.checked_add(es).ok_or(AlgebraError::DegreeOverflow)?;
        }
        Ok(Monomial::from_fn(long.len(), |i| {
            long[i] + short.get(i).copied().unwrap_or(0)
        }))
    }

    /// Product of two monomials (exponents add).
    ///
    /// # Panics
    ///
    /// Panics when an exponent sum overflows `u32`; use
    /// [`Monomial::try_mul`] to handle overflow as an error.
    pub fn mul(&self, other: &Monomial) -> Monomial {
        self.try_mul(other).expect("monomial exponent overflow")
    }

    /// Returns `true` when `self` divides `other` (component-wise `<=`).
    pub fn divides(&self, other: &Monomial) -> bool {
        let (a, b) = (self.exps(), other.exps());
        a.len() <= b.len() && a.iter().zip(b).all(|(&ea, &eb)| ea <= eb)
    }

    /// Quotient `self / other`, or `None` when `other` does not divide `self`.
    pub fn div(&self, other: &Monomial) -> Option<Monomial> {
        if !other.divides(self) {
            return None;
        }
        let (a, b) = (self.exps(), other.exps());
        Some(Monomial::from_fn(a.len(), |i| {
            a[i] - b.get(i).copied().unwrap_or(0)
        }))
    }

    /// Least common multiple (component-wise max).
    pub fn lcm(&self, other: &Monomial) -> Monomial {
        let (a, b) = (self.exps(), other.exps());
        let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
        Monomial::from_fn(long.len(), |i| {
            long[i].max(short.get(i).copied().unwrap_or(0))
        })
    }

    /// Greatest common divisor (component-wise min).
    pub fn gcd(&self, other: &Monomial) -> Monomial {
        let (a, b) = (self.exps(), other.exps());
        let width = a.len().min(b.len());
        Monomial::from_fn(width, |i| a[i].min(b[i]))
    }

    /// Returns `true` when the two monomials share no variable — Buchberger's
    /// first criterion skips S-polynomials of such pairs.
    pub fn is_coprime_with(&self, other: &Monomial) -> bool {
        self.exps()
            .iter()
            .zip(other.exps())
            .all(|(&ea, &eb)| ea == 0 || eb == 0)
    }

    /// A 64-bit fingerprint of the variable support: bit `index % 64` is set
    /// for every variable with a non-zero exponent.
    ///
    /// If `self.divides(other)` then `self.var_mask() & !other.var_mask()`
    /// is zero; the converse can fail on bit collisions, so the mask is a
    /// cheap *necessary* condition used to prefilter divisibility tests in
    /// the division hot path.
    pub fn var_mask(&self) -> u64 {
        self.exps()
            .iter()
            .enumerate()
            .filter(|&(_, &e)| e > 0)
            .fold(0u64, |m, (i, _)| m | 1u64 << (i % 64))
    }

    /// Raises the monomial to a power (exponents multiply, checked).
    ///
    /// # Errors
    ///
    /// Returns [`AlgebraError::DegreeOverflow`] when any product overflows
    /// `u32`.
    pub fn try_pow(&self, k: u32) -> Result<Monomial, AlgebraError> {
        if k == 0 {
            return Ok(Monomial::one());
        }
        let exps = self.exps();
        for &e in exps {
            e.checked_mul(k).ok_or(AlgebraError::DegreeOverflow)?;
        }
        Ok(Monomial::from_fn(exps.len(), |i| exps[i] * k))
    }

    /// Raises the monomial to a power.
    ///
    /// # Panics
    ///
    /// Panics when an exponent product overflows `u32`; use
    /// [`Monomial::try_pow`] to handle overflow as an error.
    pub fn pow(&self, k: u32) -> Monomial {
        self.try_pow(k).expect("monomial exponent overflow")
    }

    /// Number of multiplications needed to evaluate the bare power product
    /// naively (used by the cost estimator).
    pub fn naive_mul_count(&self) -> u32 {
        let deg = self.total_degree();
        deg.saturating_sub(1)
    }

    /// The ordering the pre-packing representation (`BTreeMap<Var, u32>`
    /// keys) derived: sparse `(variable, exponent)` sequences compared
    /// lexicographically, shorter prefix first. [`crate::poly::Poly::vars`]
    /// replays it so variable discovery order — which feeds default monomial
    /// orders in `simplify`/`eliminate` — is bit-compatible with the old
    /// representation.
    pub(crate) fn legacy_seq_cmp(&self, other: &Monomial) -> Ordering {
        let mut a = self.iter();
        let mut b = other.iter();
        loop {
            match (a.next(), b.next()) {
                (None, None) => return Ordering::Equal,
                (None, Some(_)) => return Ordering::Less,
                (Some(_), None) => return Ordering::Greater,
                (Some(pa), Some(pb)) => match pa.cmp(&pb) {
                    Ordering::Equal => {}
                    o => return o,
                },
            }
        }
    }
}

impl Default for Monomial {
    fn default() -> Self {
        Monomial::one()
    }
}

impl PartialEq for Monomial {
    fn eq(&self, other: &Self) -> bool {
        // Trailing zeros are trimmed, so slice equality is value equality.
        self.exps() == other.exps()
    }
}

impl Eq for Monomial {}

impl Hash for Monomial {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Hash the logical slice so inline and heap storage of the same
        // value (impossible by construction, but cheap to be safe) agree.
        self.exps().hash(state);
    }
}

impl PartialOrd for Monomial {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Monomial {
    /// The canonical storage order (see the type docs): dense exponent
    /// vectors compared lexicographically with implicit zeros past the end.
    fn cmp(&self, other: &Self) -> Ordering {
        let (a, b) = (self.exps(), other.exps());
        let common = a.len().min(b.len());
        match a[..common].cmp(&b[..common]) {
            Ordering::Equal => {
                // The longer vector ends in a non-zero exponent, so it is
                // greater at the first index the shorter one lacks.
                a.len().cmp(&b.len())
            }
            o => o,
        }
    }
}

impl fmt::Debug for Monomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Monomial({self})")
    }
}

impl fmt::Display for Monomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_one() {
            return write!(f, "1");
        }
        let mut first = true;
        for (v, e) in self.iter() {
            if !first {
                write!(f, "*")?;
            }
            first = false;
            if e == 1 {
                write!(f, "{v}")?;
            } else {
                write!(f, "{v}^{e}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn x() -> Var {
        Var::new("x")
    }
    fn y() -> Var {
        Var::new("y")
    }
    fn z() -> Var {
        Var::new("z")
    }

    #[test]
    fn construction_drops_zero_exponents() {
        let m = Monomial::from_pairs(&[(x(), 0), (y(), 2)]);
        assert_eq!(m.degree_of(x()), 0);
        assert_eq!(m.degree_of(y()), 2);
        assert_eq!(m.num_vars(), 1);
        assert!(Monomial::var(x(), 0).is_one());
    }

    #[test]
    fn multiplication_adds_exponents() {
        let a = Monomial::from_pairs(&[(x(), 1), (y(), 2)]);
        let b = Monomial::from_pairs(&[(x(), 3), (z(), 1)]);
        let p = a.mul(&b);
        assert_eq!(p.degree_of(x()), 4);
        assert_eq!(p.degree_of(y()), 2);
        assert_eq!(p.degree_of(z()), 1);
        assert_eq!(p.total_degree(), 7);
    }

    #[test]
    fn division() {
        let a = Monomial::from_pairs(&[(x(), 3), (y(), 2)]);
        let b = Monomial::from_pairs(&[(x(), 1), (y(), 2)]);
        assert!(b.divides(&a));
        assert!(!a.divides(&b));
        let q = a.div(&b).unwrap();
        assert_eq!(q, Monomial::var(x(), 2));
        assert!(b.div(&a).is_none());
        assert_eq!(a.div(&a).unwrap(), Monomial::one());
    }

    #[test]
    fn lcm_gcd() {
        let a = Monomial::from_pairs(&[(x(), 3), (y(), 1)]);
        let b = Monomial::from_pairs(&[(x(), 1), (z(), 2)]);
        let l = a.lcm(&b);
        assert_eq!(l.degree_of(x()), 3);
        assert_eq!(l.degree_of(y()), 1);
        assert_eq!(l.degree_of(z()), 2);
        let g = a.gcd(&b);
        assert_eq!(g, Monomial::var(x(), 1));
    }

    #[test]
    fn coprimality() {
        let a = Monomial::from_pairs(&[(x(), 2)]);
        let b = Monomial::from_pairs(&[(y(), 3)]);
        assert!(a.is_coprime_with(&b));
        assert!(!a.is_coprime_with(&a));
        assert!(Monomial::one().is_coprime_with(&a));
    }

    #[test]
    fn display() {
        assert_eq!(Monomial::one().to_string(), "1");
        let m = Monomial::from_pairs(&[(x(), 2), (y(), 1)]);
        assert_eq!(m.to_string(), "x^2*y");
    }

    #[test]
    fn pow() {
        let m = Monomial::from_pairs(&[(x(), 2), (y(), 1)]);
        assert_eq!(m.pow(3).degree_of(x()), 6);
        assert_eq!(m.pow(0), Monomial::one());
    }

    #[test]
    fn var_mask_is_a_divisibility_prefilter() {
        assert_eq!(Monomial::one().var_mask(), 0);
        let a = Monomial::from_pairs(&[(x(), 1)]);
        let b = Monomial::from_pairs(&[(x(), 2), (y(), 1)]);
        // a | b, so a's mask bits are a subset of b's.
        assert_eq!(a.var_mask() & !b.var_mask(), 0);
        // Exponents do not affect the mask, only the support does.
        assert_eq!(a.var_mask(), a.pow(5).var_mask());
    }

    #[test]
    fn checked_exponent_arithmetic_surfaces_degree_overflow() {
        // Accumulation in try_from_pairs.
        assert_eq!(
            Monomial::try_from_pairs(&[(x(), u32::MAX), (x(), 1)]),
            Err(AlgebraError::DegreeOverflow)
        );
        // Product of exponents at the same variable.
        let big = Monomial::var(x(), u32::MAX);
        assert_eq!(
            big.try_mul(&Monomial::var(x(), 1)),
            Err(AlgebraError::DegreeOverflow)
        );
        // Power.
        assert_eq!(
            Monomial::var(x(), 1 << 31).try_pow(2),
            Err(AlgebraError::DegreeOverflow)
        );
        // The boundary itself is fine.
        assert!(Monomial::var(x(), u32::MAX - 1)
            .try_mul(&Monomial::var(x(), 1))
            .is_ok());
    }

    #[test]
    #[should_panic(expected = "monomial exponent overflow")]
    fn infallible_mul_panics_instead_of_wrapping() {
        let big = Monomial::var(x(), u32::MAX);
        let _ = big.mul(&Monomial::var(x(), 1));
    }

    #[test]
    fn wide_monomials_spill_to_the_heap_transparently() {
        // More than INLINE_VARS distinct variables forces heap storage; the
        // behavior must be identical.
        let pairs: Vec<(Var, u32)> = (0..INLINE_VARS as u32 + 4)
            .map(|i| (Var::new(&format!("wide_spill_v{i}")), i + 1))
            .collect();
        let m = Monomial::from_pairs(&pairs);
        assert_eq!(m.num_vars(), INLINE_VARS + 4);
        for &(v, e) in &pairs {
            assert_eq!(m.degree_of(v), e);
        }
        let sq = m.mul(&m);
        for &(v, e) in &pairs {
            assert_eq!(sq.degree_of(v), 2 * e);
        }
        assert!(m.divides(&sq));
        assert_eq!(sq.div(&m).unwrap(), m);
        assert_eq!(
            m.total_degree_u64(),
            pairs.iter().map(|&(_, e)| e as u64).sum::<u64>()
        );
    }

    #[test]
    fn canonical_order_is_total_and_multiplicative() {
        let monos = [
            Monomial::one(),
            Monomial::var(x(), 1),
            Monomial::var(y(), 2),
            Monomial::from_pairs(&[(x(), 1), (y(), 1)]),
            Monomial::from_pairs(&[(x(), 3), (z(), 1)]),
            Monomial::var(z(), 4),
        ];
        for a in &monos {
            for b in &monos {
                assert_eq!(a.cmp(b), b.cmp(a).reverse());
                if a.cmp(b) == Ordering::Equal {
                    assert_eq!(a, b);
                }
                for c in &monos {
                    if a.cmp(b) == Ordering::Greater {
                        assert_eq!(a.mul(c).cmp(&b.mul(c)), Ordering::Greater);
                    }
                }
            }
        }
    }

    proptest! {
        #[test]
        fn prop_mul_then_div_round_trips(e1 in 0_u32..6, e2 in 0_u32..6, e3 in 0_u32..6, e4 in 0_u32..6) {
            let a = Monomial::from_pairs(&[(x(), e1), (y(), e2)]);
            let b = Monomial::from_pairs(&[(x(), e3), (y(), e4)]);
            let p = a.mul(&b);
            prop_assert_eq!(p.div(&b).unwrap(), a);
            prop_assert!(b.divides(&p));
        }

        #[test]
        fn prop_lcm_divisible_by_both(e1 in 0_u32..6, e2 in 0_u32..6, e3 in 0_u32..6, e4 in 0_u32..6) {
            let a = Monomial::from_pairs(&[(x(), e1), (y(), e2)]);
            let b = Monomial::from_pairs(&[(x(), e3), (y(), e4)]);
            let l = a.lcm(&b);
            prop_assert!(a.divides(&l) && b.divides(&l));
            let g = a.gcd(&b);
            prop_assert!(g.divides(&a) && g.divides(&b));
        }
    }
}
