//! Sparse power products (monomials) of symbolic variables.

use std::collections::BTreeMap;
use std::fmt;

use crate::var::{Var, VarSet};

/// A power product `x1^e1 * x2^e2 * ...` with non-negative integer exponents.
///
/// Stored sparsely as a sorted map from variable to exponent; variables with a
/// zero exponent are never stored, so the empty monomial is the constant `1`.
///
/// ```
/// use symmap_algebra::monomial::Monomial;
/// use symmap_algebra::var::Var;
///
/// let m = Monomial::from_pairs(&[(Var::new("x"), 2), (Var::new("y"), 1)]);
/// assert_eq!(m.total_degree(), 3);
/// assert_eq!(m.degree_of(Var::new("x")), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Monomial {
    exps: BTreeMap<Var, u32>,
}

impl Monomial {
    /// The constant monomial `1`.
    pub fn one() -> Self {
        Monomial {
            exps: BTreeMap::new(),
        }
    }

    /// A single variable raised to a power (degenerate to `1` when `exp == 0`).
    pub fn var(v: Var, exp: u32) -> Self {
        let mut exps = BTreeMap::new();
        if exp > 0 {
            exps.insert(v, exp);
        }
        Monomial { exps }
    }

    /// Builds a monomial from `(variable, exponent)` pairs; zero exponents are
    /// dropped and repeated variables accumulate.
    pub fn from_pairs(pairs: &[(Var, u32)]) -> Self {
        let mut m = Monomial::one();
        for &(v, e) in pairs {
            if e > 0 {
                *m.exps.entry(v).or_insert(0) += e;
            }
        }
        m
    }

    /// Returns `true` for the constant monomial.
    pub fn is_one(&self) -> bool {
        self.exps.is_empty()
    }

    /// Total degree (sum of all exponents).
    pub fn total_degree(&self) -> u32 {
        self.exps.values().sum()
    }

    /// Exponent of a specific variable (0 when absent).
    pub fn degree_of(&self, v: Var) -> u32 {
        self.exps.get(&v).copied().unwrap_or(0)
    }

    /// The set of variables with a non-zero exponent, in interner order.
    pub fn vars(&self) -> VarSet {
        self.exps.keys().copied().collect()
    }

    /// Iterates over `(variable, exponent)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Var, u32)> + '_ {
        self.exps.iter().map(|(&v, &e)| (v, e))
    }

    /// Number of distinct variables.
    pub fn num_vars(&self) -> usize {
        self.exps.len()
    }

    /// Product of two monomials (exponents add).
    pub fn mul(&self, other: &Monomial) -> Monomial {
        let mut exps = self.exps.clone();
        for (&v, &e) in &other.exps {
            *exps.entry(v).or_insert(0) += e;
        }
        Monomial { exps }
    }

    /// Returns `true` when `self` divides `other` (component-wise `<=`).
    pub fn divides(&self, other: &Monomial) -> bool {
        self.exps.iter().all(|(v, &e)| other.degree_of(*v) >= e)
    }

    /// Quotient `self / other`, or `None` when `other` does not divide `self`.
    pub fn div(&self, other: &Monomial) -> Option<Monomial> {
        if !other.divides(self) {
            return None;
        }
        let mut exps = BTreeMap::new();
        for (&v, &e) in &self.exps {
            let d = e - other.degree_of(v);
            if d > 0 {
                exps.insert(v, d);
            }
        }
        Some(Monomial { exps })
    }

    /// Least common multiple (component-wise max).
    pub fn lcm(&self, other: &Monomial) -> Monomial {
        let mut exps = self.exps.clone();
        for (&v, &e) in &other.exps {
            let cur = exps.entry(v).or_insert(0);
            *cur = (*cur).max(e);
        }
        Monomial { exps }
    }

    /// Greatest common divisor (component-wise min).
    pub fn gcd(&self, other: &Monomial) -> Monomial {
        let mut exps = BTreeMap::new();
        for (&v, &e) in &self.exps {
            let o = other.degree_of(v);
            let m = e.min(o);
            if m > 0 {
                exps.insert(v, m);
            }
        }
        Monomial { exps }
    }

    /// Returns `true` when the two monomials share no variable — Buchberger's
    /// first criterion skips S-polynomials of such pairs.
    pub fn is_coprime_with(&self, other: &Monomial) -> bool {
        self.exps.keys().all(|v| other.degree_of(*v) == 0)
    }

    /// A 64-bit fingerprint of the variable support: bit `index % 64` is set
    /// for every variable with a non-zero exponent.
    ///
    /// If `self.divides(other)` then `self.var_mask() & !other.var_mask()`
    /// is zero; the converse can fail on bit collisions, so the mask is a
    /// cheap *necessary* condition used to prefilter divisibility tests in
    /// the division hot path.
    pub fn var_mask(&self) -> u64 {
        self.exps
            .keys()
            .fold(0u64, |m, v| m | 1u64 << (v.index() % 64))
    }

    /// Raises the monomial to a power.
    pub fn pow(&self, k: u32) -> Monomial {
        if k == 0 {
            return Monomial::one();
        }
        Monomial {
            exps: self.exps.iter().map(|(&v, &e)| (v, e * k)).collect(),
        }
    }

    /// Number of multiplications needed to evaluate the bare power product
    /// naively (used by the cost estimator).
    pub fn naive_mul_count(&self) -> u32 {
        let deg = self.total_degree();
        deg.saturating_sub(1)
    }
}

impl fmt::Display for Monomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_one() {
            return write!(f, "1");
        }
        let mut first = true;
        for (v, e) in self.iter() {
            if !first {
                write!(f, "*")?;
            }
            first = false;
            if e == 1 {
                write!(f, "{v}")?;
            } else {
                write!(f, "{v}^{e}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn x() -> Var {
        Var::new("x")
    }
    fn y() -> Var {
        Var::new("y")
    }
    fn z() -> Var {
        Var::new("z")
    }

    #[test]
    fn construction_drops_zero_exponents() {
        let m = Monomial::from_pairs(&[(x(), 0), (y(), 2)]);
        assert_eq!(m.degree_of(x()), 0);
        assert_eq!(m.degree_of(y()), 2);
        assert_eq!(m.num_vars(), 1);
        assert!(Monomial::var(x(), 0).is_one());
    }

    #[test]
    fn multiplication_adds_exponents() {
        let a = Monomial::from_pairs(&[(x(), 1), (y(), 2)]);
        let b = Monomial::from_pairs(&[(x(), 3), (z(), 1)]);
        let p = a.mul(&b);
        assert_eq!(p.degree_of(x()), 4);
        assert_eq!(p.degree_of(y()), 2);
        assert_eq!(p.degree_of(z()), 1);
        assert_eq!(p.total_degree(), 7);
    }

    #[test]
    fn division() {
        let a = Monomial::from_pairs(&[(x(), 3), (y(), 2)]);
        let b = Monomial::from_pairs(&[(x(), 1), (y(), 2)]);
        assert!(b.divides(&a));
        assert!(!a.divides(&b));
        let q = a.div(&b).unwrap();
        assert_eq!(q, Monomial::var(x(), 2));
        assert!(b.div(&a).is_none());
        assert_eq!(a.div(&a).unwrap(), Monomial::one());
    }

    #[test]
    fn lcm_gcd() {
        let a = Monomial::from_pairs(&[(x(), 3), (y(), 1)]);
        let b = Monomial::from_pairs(&[(x(), 1), (z(), 2)]);
        let l = a.lcm(&b);
        assert_eq!(l.degree_of(x()), 3);
        assert_eq!(l.degree_of(y()), 1);
        assert_eq!(l.degree_of(z()), 2);
        let g = a.gcd(&b);
        assert_eq!(g, Monomial::var(x(), 1));
    }

    #[test]
    fn coprimality() {
        let a = Monomial::from_pairs(&[(x(), 2)]);
        let b = Monomial::from_pairs(&[(y(), 3)]);
        assert!(a.is_coprime_with(&b));
        assert!(!a.is_coprime_with(&a));
        assert!(Monomial::one().is_coprime_with(&a));
    }

    #[test]
    fn display() {
        assert_eq!(Monomial::one().to_string(), "1");
        let m = Monomial::from_pairs(&[(x(), 2), (y(), 1)]);
        assert_eq!(m.to_string(), "x^2*y");
    }

    #[test]
    fn pow() {
        let m = Monomial::from_pairs(&[(x(), 2), (y(), 1)]);
        assert_eq!(m.pow(3).degree_of(x()), 6);
        assert_eq!(m.pow(0), Monomial::one());
    }

    #[test]
    fn var_mask_is_a_divisibility_prefilter() {
        assert_eq!(Monomial::one().var_mask(), 0);
        let a = Monomial::from_pairs(&[(x(), 1)]);
        let b = Monomial::from_pairs(&[(x(), 2), (y(), 1)]);
        // a | b, so a's mask bits are a subset of b's.
        assert_eq!(a.var_mask() & !b.var_mask(), 0);
        // Exponents do not affect the mask, only the support does.
        assert_eq!(a.var_mask(), a.pow(5).var_mask());
    }

    proptest! {
        #[test]
        fn prop_mul_then_div_round_trips(e1 in 0_u32..6, e2 in 0_u32..6, e3 in 0_u32..6, e4 in 0_u32..6) {
            let a = Monomial::from_pairs(&[(x(), e1), (y(), e2)]);
            let b = Monomial::from_pairs(&[(x(), e3), (y(), e4)]);
            let p = a.mul(&b);
            prop_assert_eq!(p.div(&b).unwrap(), a);
            prop_assert!(b.divides(&p));
        }

        #[test]
        fn prop_lcm_divisible_by_both(e1 in 0_u32..6, e2 in 0_u32..6, e3 in 0_u32..6, e4 in 0_u32..6) {
            let a = Monomial::from_pairs(&[(x(), e1), (y(), e2)]);
            let b = Monomial::from_pairs(&[(x(), e3), (y(), e4)]);
            let l = a.lcm(&b);
            prop_assert!(a.divides(&l) && b.divides(&l));
            let g = a.gcd(&b);
            prop_assert!(g.divides(&a) && g.divides(&b));
        }
    }
}
