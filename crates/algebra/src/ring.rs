//! Ring-local monomial coordinates.
//!
//! Packed monomials (see [`crate::monomial`]) store exponents densely by
//! **global interner index**, so a monomial touching one late-interned
//! variable of index `k` stores and scans `k + 1` slots — cost proportional
//! to interner width, not to how many variables the ideal actually uses. A
//! [`Ring`] is a small, cheaply cloneable (`Arc`-backed) bijection between
//! the global [`Var`]s of one ideal and dense *local* indices `0..n`, built
//! once per ideal at the algebra boundary ([`crate::groebner::buchberger`],
//! [`crate::division::normal_form`], the basis cache). Inside that boundary
//! every monomial is `n` slots wide regardless of interner population, order
//! comparisons loop over ring variables only, and (for rings of ≤ 64
//! variables) the [`crate::monomial::Monomial::var_mask`] support fingerprint
//! is an exact dense bitset rather than a hash.
//!
//! # Why localization is invisible to callers
//!
//! Local indices are assigned in **ascending global-index order**, which
//! makes localization order-preserving for the canonical storage order of
//! [`Monomial`]: that order compares dense exponent vectors
//! lexicographically, and deleting coordinates that are zero in *both*
//! operands (every non-ring coordinate, for monomials supported on the ring)
//! cannot change a lexicographic comparison. Sorted [`Poly`] term vectors
//! therefore stay sorted under [`Ring::localize_poly`]/[`Ring::globalize_poly`]
//! — no re-sort, and `globalize(localize(p)) == p` exactly (property-tested
//! below). [`crate::ordering::MonomialOrder::localized`] maps an order's
//! precedence list the same way, so every comparison, divisibility test and
//! criterion decision made in local coordinates is identical to the one the
//! global-coordinate path would have made — byte-identical results, proven
//! by the differential tests in `crates/bench/tests/ring_differential.rs`.

use std::sync::Arc;

use crate::monomial::Monomial;
use crate::poly::Poly;
use crate::var::Var;

/// A dense local coordinate system over the variables of one ideal.
///
/// Construction cost is one support scan of the spanning polynomials (the
/// only width-proportional step left on the algebra path); cloning is one
/// `Arc` bump. Local index `i` maps to [`Ring::global`]`(i)`, and local
/// indices preserve ascending global-index order.
///
/// ```
/// use symmap_algebra::poly::Poly;
/// use symmap_algebra::ring::Ring;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = Poly::parse("x^2*y - z")?;
/// let ring = Ring::spanning([&p]);
/// assert_eq!(ring.len(), 3);
/// assert_eq!(ring.globalize_poly(&ring.localize_poly(&p)), p);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Ring {
    /// Ring variables in ascending global-index order; position = local index.
    globals: Arc<[Var]>,
}

impl Ring {
    /// The ring spanned by every variable occurring in `polys`, in ascending
    /// global-index order.
    pub fn spanning<'a, I>(polys: I) -> Ring
    where
        I: IntoIterator<Item = &'a Poly>,
    {
        let mut indices: Vec<u32> = Vec::new();
        for p in polys {
            for (m, _) in p.iter() {
                m.support_into(&mut indices);
            }
        }
        indices.sort_unstable();
        indices.dedup();
        Ring {
            globals: indices.into_iter().map(Var::from_index).collect(),
        }
    }

    /// Number of ring variables.
    pub fn len(&self) -> usize {
        self.globals.len()
    }

    /// Returns `true` for the ring of constant polynomials.
    pub fn is_empty(&self) -> bool {
        self.globals.is_empty()
    }

    /// The ring variables, ascending by global index (position = local index).
    pub fn vars(&self) -> &[Var] {
        &self.globals
    }

    /// Returns `true` when local and global indices coincide (`globals[i]`
    /// has interner index `i` for every `i`): localization would be the
    /// identity map, so the boundary conversions can be skipped entirely.
    /// This is the mapper's intern-early profile — program variables and
    /// library symbols interned before anything else.
    pub fn is_identity(&self) -> bool {
        self.globals
            .iter()
            .enumerate()
            .all(|(i, v)| v.index() as usize == i)
    }

    /// Returns `true` if `v` is a ring variable.
    pub fn contains(&self, v: Var) -> bool {
        self.local_of(v).is_some()
    }

    /// Local index of a global variable, or `None` when it is not in the
    /// ring. Binary search over the (sorted) ring variables.
    pub fn local_of(&self, v: Var) -> Option<u32> {
        self.globals
            .binary_search_by_key(&v.index(), |g| g.index())
            .ok()
            .map(|i| i as u32)
    }

    /// Global variable of a local index.
    ///
    /// # Panics
    ///
    /// Panics when `local >= self.len()`.
    pub fn global(&self, local: u32) -> Var {
        self.globals[local as usize]
    }

    /// Rewrites a monomial into local coordinates, or `None` when it
    /// involves a variable outside the ring (detected by a constant-time
    /// comparison of cached total degrees — a foreign variable's exponent
    /// goes missing from the localized sum).
    pub fn try_localize_monomial(&self, m: &Monomial) -> Option<Monomial> {
        let local = Monomial::from_fn(self.len(), |i| m.degree_of(self.globals[i]));
        (local.total_degree_u64() == m.total_degree_u64()).then_some(local)
    }

    /// Rewrites a monomial into local coordinates.
    ///
    /// # Panics
    ///
    /// Panics when the monomial involves a variable outside the ring.
    pub fn localize_monomial(&self, m: &Monomial) -> Monomial {
        self.try_localize_monomial(m)
            .unwrap_or_else(|| panic!("monomial {m} has variables outside the ring"))
    }

    /// Rewrites a local-coordinate monomial back into global coordinates.
    pub fn globalize_monomial(&self, m: &Monomial) -> Monomial {
        let exps = m.exps();
        let Some(last) = exps.iter().rposition(|&e| e != 0) else {
            return Monomial::one();
        };
        let width = self.globals[last].index() as usize + 1;
        if width <= crate::monomial::INLINE_VARS {
            // Narrow result: build through the allocation-free constructor.
            return Monomial::from_fn(width, |gi| {
                self.globals[..=last]
                    .iter()
                    .position(|v| v.index() as usize == gi)
                    .map_or(0, |li| exps[li])
            });
        }
        // Wide result: one zeroed allocation plus a scatter of the (few)
        // ring entries; the cached degree carries over, so no O(width)
        // trim/sum pass is needed.
        let mut dense = vec![0u32; width];
        for (li, &e) in exps.iter().enumerate() {
            if e != 0 {
                dense[self.globals[li].index() as usize] = e;
            }
        }
        Monomial::from_dense_with_degree(dense, m.total_degree_u64())
    }

    /// Rewrites a polynomial into local coordinates. Localization preserves
    /// the canonical term order (see the module docs), so the sorted term
    /// vector is mapped in place — no re-sort.
    ///
    /// # Panics
    ///
    /// Panics when the polynomial involves a variable outside the ring.
    pub fn localize_poly(&self, p: &Poly) -> Poly {
        Poly::from_sorted_terms_unchecked(
            p.iter()
                .map(|(m, c)| (self.localize_monomial(m), c.clone()))
                .collect(),
        )
    }

    /// Rewrites a polynomial into local coordinates, or `None` when any of
    /// its variables falls outside the ring (used by
    /// [`crate::groebner::GroebnerBasis::reduce`] to decide between the
    /// fully-local fast path and the joint-ring fallback).
    pub fn try_localize_poly(&self, p: &Poly) -> Option<Poly> {
        let mut terms = Vec::with_capacity(p.num_terms());
        for (m, c) in p.iter() {
            terms.push((self.try_localize_monomial(m)?, c.clone()));
        }
        Some(Poly::from_sorted_terms_unchecked(terms))
    }

    /// Rewrites a local-coordinate polynomial back into global coordinates
    /// (exact inverse of [`Ring::localize_poly`]).
    pub fn globalize_poly(&self, p: &Poly) -> Poly {
        Poly::from_sorted_terms_unchecked(
            p.iter()
                .map(|(m, c)| (self.globalize_monomial(m), c.clone()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ordering::MonomialOrder;
    use crate::var::VarSet;
    use proptest::prelude::*;
    use std::cmp::Ordering;

    fn p(s: &str) -> Poly {
        Poly::parse(s).unwrap()
    }

    #[test]
    fn spanning_collects_sorted_distinct_vars() {
        let ring = Ring::spanning([&p("x*y + z"), &p("y^2 - 1")]);
        assert_eq!(ring.len(), 3);
        let idx: Vec<u32> = ring.vars().iter().map(|v| v.index()).collect();
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        assert_eq!(idx, sorted);
        assert!(ring.contains(Var::new("x")));
        assert!(!ring.contains(Var::new("w")));
        assert_eq!(ring.local_of(Var::new("w")), None);
        for (i, v) in ring.vars().iter().enumerate() {
            assert_eq!(ring.local_of(*v), Some(i as u32));
            assert_eq!(ring.global(i as u32), *v);
        }
    }

    #[test]
    fn empty_ring_for_constants() {
        let ring = Ring::spanning([&p("7"), &Poly::zero()]);
        assert!(ring.is_empty());
        assert!(ring.is_identity());
        assert_eq!(ring.localize_poly(&p("7")), p("7"));
        assert_eq!(ring.globalize_poly(&p("7")), p("7"));
    }

    #[test]
    fn roundtrip_on_late_interned_wide_variables() {
        // Force high global indices: a monomial over these stores thousands
        // of slots globally but exactly two locally.
        for i in 0..600 {
            Var::new(&format!("ring_test_filler_{i}"));
        }
        let a = Var::new("ring_test_wide_a");
        let b = Var::new("ring_test_wide_b");
        let wide = Poly::from_terms(vec![
            (
                Monomial::from_pairs(&[(a, 2), (b, 1)]),
                symmap_numeric::Rational::integer(3),
            ),
            (Monomial::var(b, 4), symmap_numeric::Rational::integer(-1)),
        ]);
        let ring = Ring::spanning([&wide]);
        assert_eq!(ring.len(), 2);
        assert!(!ring.is_identity());
        let local = ring.localize_poly(&wide);
        // Local coordinates are dense from zero.
        for (m, _) in local.iter() {
            assert!(m.exps().len() <= 2);
        }
        assert_eq!(ring.globalize_poly(&local), wide);
    }

    #[test]
    #[should_panic(expected = "outside the ring")]
    fn localizing_a_foreign_variable_panics() {
        let ring = Ring::spanning([&p("x + y")]);
        ring.localize_poly(&p("x + z"));
    }

    #[test]
    fn localized_order_comparisons_match_global() {
        let monos = [
            p("x^2*y").iter().next().unwrap().0.clone(),
            p("x*y^2*z").iter().next().unwrap().0.clone(),
            p("z^4").iter().next().unwrap().0.clone(),
            Monomial::one(),
            p("x*z").iter().next().unwrap().0.clone(),
        ];
        let spanning: Vec<Poly> = monos
            .iter()
            .map(|m| Poly::from_term(m.clone(), symmap_numeric::Rational::one()))
            .collect();
        let ring = Ring::spanning(spanning.iter());
        for order in [
            MonomialOrder::lex(&["x", "y", "z"]),
            MonomialOrder::grlex(&["y", "x"]),
            MonomialOrder::grevlex(&["x", "y", "z"]),
            // Listed variable `w` is absent from the ring: dropped, inert.
            MonomialOrder::Elimination(VarSet::from_names(&["x", "w", "y", "z"]), 2),
        ] {
            let lorder = order.localized(&ring);
            for a in &monos {
                for b in &monos {
                    let (la, lb) = (ring.localize_monomial(a), ring.localize_monomial(b));
                    assert_eq!(
                        order.cmp(a, b),
                        lorder.cmp(&la, &lb),
                        "order {order:?} diverged on {a} vs {b}"
                    );
                    // Canonical storage order is preserved too.
                    assert_eq!(a.cmp(b), la.cmp(&lb));
                }
            }
        }
    }

    #[test]
    fn elimination_block_shrinks_with_dropped_vars() {
        let ring = Ring::spanning([&p("x + y")]);
        // Block of 2 where only one variable survives: k must become 1, so
        // the surviving block variable still dominates.
        let order = MonomialOrder::Elimination(VarSet::from_names(&["w", "x", "y"]), 2);
        let local = order.localized(&ring);
        let (lx, ly) = (
            ring.localize_monomial(&Monomial::var(Var::new("x"), 1)),
            ring.localize_monomial(&Monomial::var(Var::new("y"), 5)),
        );
        assert_eq!(local.cmp(&lx, &ly), Ordering::Greater);
        assert_eq!(
            order.cmp(
                &Monomial::var(Var::new("x"), 1),
                &Monomial::var(Var::new("y"), 5)
            ),
            Ordering::Greater
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The tentpole invariant: `globalize(localize(p)) == p` for random
        /// polynomials, including ones over a late-interned (wide-index)
        /// variable.
        #[test]
        fn prop_globalize_localize_round_trips(
            terms in proptest::collection::vec(
                (0u32..4, 0u32..4, 0u32..3, -6i64..7),
                1..6,
            ),
        ) {
            let wide = Var::new("ring_prop_wide_var");
            let polys: Vec<Poly> = vec![Poly::from_terms(terms.iter().map(|&(ex, ey, ew, c)| {
                (
                    Monomial::from_pairs(&[
                        (Var::new("x"), ex),
                        (Var::new("y"), ey),
                        (wide, ew),
                    ]),
                    symmap_numeric::Rational::integer(c),
                )
            }))];
            let ring = Ring::spanning(polys.iter());
            for q in &polys {
                let local = ring.localize_poly(q);
                prop_assert_eq!(&ring.globalize_poly(&local), q);
                // Degrees, term counts and coefficients carry over exactly.
                prop_assert_eq!(local.num_terms(), q.num_terms());
                prop_assert_eq!(local.total_degree(), q.total_degree());
            }
        }
    }
}
