//! Error type for the symbolic algebra engine.

use std::fmt;

use symmap_numeric::NumericError;

/// Errors produced while parsing or manipulating symbolic expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlgebraError {
    /// A textual polynomial or expression could not be parsed.
    Parse { input: String, message: String },
    /// An operation required a variable that is not known to the engine.
    UnknownVariable(String),
    /// An expression is not a polynomial (e.g. a division by a variable or a
    /// transcendental call without an approximation).
    NotPolynomial(String),
    /// A numeric error bubbled up from the coefficient arithmetic.
    Numeric(NumericError),
    /// A side-relation set was malformed (e.g. duplicate definition names).
    InvalidSideRelation(String),
    /// An exponent was too large to manipulate safely.
    ExponentTooLarge(u64),
    /// Exponent arithmetic (monomial product, power, or accumulation) would
    /// overflow the `u32` per-variable degree. The former representation
    /// wrapped silently in release builds; all exponent arithmetic is now
    /// checked and surfaces this error on the fallible entry points.
    DegreeOverflow,
}

impl fmt::Display for AlgebraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlgebraError::Parse { input, message } => {
                write!(f, "cannot parse `{input}`: {message}")
            }
            AlgebraError::UnknownVariable(v) => write!(f, "unknown variable `{v}`"),
            AlgebraError::NotPolynomial(e) => write!(f, "expression is not a polynomial: {e}"),
            AlgebraError::Numeric(e) => write!(f, "numeric error: {e}"),
            AlgebraError::InvalidSideRelation(s) => write!(f, "invalid side relation: {s}"),
            AlgebraError::ExponentTooLarge(e) => write!(f, "exponent {e} is too large"),
            AlgebraError::DegreeOverflow => {
                write!(f, "monomial exponent arithmetic overflows u32")
            }
        }
    }
}

impl std::error::Error for AlgebraError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AlgebraError::Numeric(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NumericError> for AlgebraError {
    fn from(e: NumericError) -> Self {
        AlgebraError::Numeric(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = AlgebraError::UnknownVariable("zz".into());
        assert!(e.to_string().contains("zz"));
        let e = AlgebraError::Numeric(NumericError::DivisionByZero);
        assert!(e.to_string().contains("division"));
    }

    #[test]
    fn source_chains_numeric_errors() {
        use std::error::Error;
        let e = AlgebraError::Numeric(NumericError::DivisionByZero);
        assert!(e.source().is_some());
        assert!(AlgebraError::UnknownVariable("x".into()).source().is_none());
    }
}
