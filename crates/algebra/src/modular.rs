//! Modular (ℤ/p) Gröbner fast path.
//!
//! Buchberger over ℚ spends most of its time in rational arithmetic whose
//! numerators and denominators grow with every cancellation. Reducing the
//! ideal's generators modulo a 62-bit prime and running the **same**
//! field-generic engine ([`crate::coeff`]) over [`Fp64`] keeps every
//! coefficient in one machine word — typically an order of magnitude faster
//! (the `modular_prefilter` bench pins the ratio on the mapper's hard
//! side-relation ideal).
//!
//! # What a mod-p run can and cannot tell us
//!
//! Reduction mod p is a ring homomorphism ℤ(p)\[x\] → 𝔽p\[x\] on p-integral
//! rationals, so an **exact-zero certificate transfers in one direction**:
//! if `f = Σ hᵢ·gᵢ` over ℚ and no denominator in `f`, the `gᵢ` *or the
//! cofactors `hᵢ`* is divisible by p, then `f̄` reduces to zero modulo the
//! mod-p basis. Contrapositively, a **nonzero** mod-p normal form (under a
//! *complete* mod-p basis) certifies non-membership — the cheap direction
//! the mapper's prefilter exploits to discard candidates early.
//!
//! Two failure modes make a prime *unlucky* for an ideal, and only the first
//! is visible at localization time:
//!
//! * **p divides a denominator** of some generator coefficient (or the
//!   leading numerator, collapsing the leading term): detected by
//!   [`FpBasis::with_prime`], which reports [`UnluckyPrime`] so
//!   [`FpBasis::compute`] can rotate to the next prime of the deterministic
//!   [`PrimeIterator`] sequence.
//! * **p divides a cofactor denominator** arising *inside* the ℚ division —
//!   undetectable without the exact computation. This is why the cache wires
//!   the probe as a **hint**: every mod-p verdict is confirmed by the exact
//!   ℚ run before it can affect a mapping solution (see
//!   `SharedGroebnerCache::probe_membership` and DESIGN.md §6). Promoting
//!   mod-p answers to trusted results needs the multi-modular CRT lift
//!   tracked in the roadmap.
//!
//! Targets are localized more leniently than generators
//! ([`FpBasis::normal_form`] returns `None` only when a target denominator
//! vanishes): a vanishing target *leading* coefficient is a legitimate
//! homomorphic image, not an unlucky prime.

use symmap_numeric::{Fp64, PrimeIterator, Rational};

use crate::coeff::{buchberger_core_in, normal_form_in, CPoly, CPrepared, CoeffField};
use crate::groebner::GroebnerOptions;
use crate::monomial::Monomial;
use crate::ordering::MonomialOrder;
use crate::poly::Poly;

/// ℤ/p as a coefficient field for the generic engine. Elements are `u64`
/// residues in Montgomery form; the context carries the Montgomery constants,
/// so every operation is a handful of word multiplies.
impl CoeffField for Fp64 {
    type Elem = u64;

    fn one(&self) -> u64 {
        Fp64::one(self)
    }
    fn is_zero(&self, a: &u64) -> bool {
        *a == 0
    }
    fn neg(&self, a: &u64) -> u64 {
        Fp64::neg(self, *a)
    }
    fn add(&self, a: &u64, b: &u64) -> u64 {
        Fp64::add(self, *a, *b)
    }
    fn mul(&self, a: &u64, b: &u64) -> u64 {
        Fp64::mul(self, *a, *b)
    }
    fn inv(&self, a: &u64) -> u64 {
        Fp64::inv(self, *a)
    }
    fn div(&self, a: &u64, b: &u64) -> u64 {
        Fp64::div(self, *a, *b)
    }
}

/// Why a prime was rejected for an ideal at localization time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnluckyPrime {
    /// The prime divides the denominator of some generator coefficient, so
    /// the generator has no image in 𝔽p\[x\].
    Denominator,
    /// The prime divides the numerator of a generator's leading coefficient,
    /// so the image's leading structure differs from the exact ideal's.
    LeadingCoefficient,
}

/// How many primes [`FpBasis::compute`] tries before giving up. Each
/// rotation only rules out finitely many divisors, so in practice the first
/// prime almost always succeeds; the bound exists to keep adversarial
/// inputs from walking the iterator forever.
pub const MAX_PRIME_ROTATIONS: usize = 16;

/// Reduces one rational coefficient mod p, returning its Montgomery-form
/// residue; `None` when p divides the denominator.
fn localize_coefficient(field: &Fp64, c: &Rational) -> Option<u64> {
    let p = field.modulus();
    let den = c.denom().mod_u64(p);
    if den == 0 {
        return None;
    }
    let num = c.numer().mod_u64(p);
    Some(field.div(field.to_montgomery(num), field.to_montgomery(den)))
}

/// Localizes a **generator**: strict about unlucky primes. Errors when p
/// divides a denominator or kills the leading coefficient under `order`.
/// Shared with [`crate::multimodular`], whose per-prime images must reject
/// unlucky primes by exactly the same criterion as the prefilter.
pub(crate) fn localize_generator(
    field: &Fp64,
    g: &Poly,
    order: &MonomialOrder,
) -> Result<CPoly<Fp64>, UnluckyPrime> {
    let (lm, _) = g
        .leading_term(order)
        .expect("zero generators are filtered before localization");
    let mut terms = Vec::with_capacity(g.num_terms());
    for (m, c) in g.sorted_terms() {
        match localize_coefficient(field, c) {
            None => return Err(UnluckyPrime::Denominator),
            Some(0) => {
                if *m == lm {
                    return Err(UnluckyPrime::LeadingCoefficient);
                }
            }
            Some(k) => terms.push((m.clone(), k)),
        }
    }
    Ok(CPoly::from_sorted_terms(terms))
}

/// Localizes a **target**: lenient. Coefficients whose numerator vanishes
/// mod p simply drop out (a valid homomorphic image); only a vanishing
/// denominator makes the image undefined (`None`).
fn localize_target(field: &Fp64, f: &Poly) -> Option<CPoly<Fp64>> {
    let mut terms = Vec::with_capacity(f.num_terms());
    for (m, c) in f.sorted_terms() {
        match localize_coefficient(field, c)? {
            0 => {}
            k => terms.push((m.clone(), k)),
        }
    }
    Some(CPoly::from_sorted_terms(terms))
}

/// A reduced Gröbner basis of an ideal's image in 𝔽p\[x\], prepared for
/// repeated normal-form queries — the modular half of the cache's
/// membership prefilter.
#[derive(Debug, Clone)]
pub struct FpBasis {
    field: Fp64,
    order: MonomialOrder,
    prepared: Vec<CPrepared<Fp64>>,
    /// Whether the mod-p Buchberger run finished within its iteration bound.
    /// Only a complete basis makes a nonzero normal form a non-membership
    /// certificate.
    pub complete: bool,
    /// S-polynomial reductions the mod-p run performed.
    pub reductions: usize,
    /// How many unlucky primes [`FpBasis::compute`] rotated past before this
    /// basis's prime was accepted.
    pub rotations: usize,
}

impl FpBasis {
    /// Computes the mod-p reduced basis for one specific prime, failing fast
    /// with [`UnluckyPrime`] when the generators have no clean image.
    pub fn with_prime(
        prime: u64,
        generators: &[Poly],
        order: &MonomialOrder,
        options: &GroebnerOptions,
    ) -> Result<FpBasis, UnluckyPrime> {
        let field = Fp64::new(prime);
        let mut lgens = Vec::with_capacity(generators.len());
        for g in generators.iter().filter(|g| !g.is_zero()) {
            lgens.push(localize_generator(&field, g, order)?);
        }
        let core = buchberger_core_in(&field, &lgens, order, options);
        let prepared = core
            .polys
            .into_iter()
            .map(|p| CPrepared::new(p, order).expect("reduced basis elements are nonzero"))
            .collect();
        Ok(FpBasis {
            field,
            order: order.clone(),
            prepared,
            complete: core.complete,
            reductions: core.reductions,
            rotations: 0,
        })
    }

    /// Computes a mod-p basis under the first prime of the deterministic
    /// [`PrimeIterator`] sequence that is not unlucky for these generators,
    /// recording how many primes were rotated past. `None` when
    /// [`MAX_PRIME_ROTATIONS`] consecutive primes were all unlucky.
    pub fn compute(
        generators: &[Poly],
        order: &MonomialOrder,
        options: &GroebnerOptions,
    ) -> Option<FpBasis> {
        for (rotations, prime) in PrimeIterator::new().take(MAX_PRIME_ROTATIONS).enumerate() {
            if let Ok(mut basis) = Self::with_prime(prime, generators, order, options) {
                basis.rotations = rotations;
                return Some(basis);
            }
        }
        None
    }

    /// The prime this basis was computed under.
    pub fn prime(&self) -> u64 {
        self.field.modulus()
    }

    /// The basis elements' leading monomials, in basis order (descending).
    /// For a lucky prime these coincide with the exact ℚ basis's leading
    /// monomials — the differential tests pin this down.
    pub fn leading_monomials(&self) -> Vec<Monomial> {
        self.prepared.iter().map(|d| d.lm.clone()).collect()
    }

    /// Number of basis elements.
    pub fn len(&self) -> usize {
        self.prepared.len()
    }

    /// Whether the basis is empty (zero ideal).
    pub fn is_empty(&self) -> bool {
        self.prepared.is_empty()
    }

    /// Normal form of `f`'s image mod p; `None` when p divides one of `f`'s
    /// denominators (the image is undefined — not an unlucky prime for the
    /// *ideal*, just an unanswerable query).
    pub fn normal_form(&self, f: &Poly) -> Option<CPoly<Fp64>> {
        let lf = localize_target(&self.field, f)?;
        Some(normal_form_in(
            &self.field,
            lf,
            &self.prepared,
            &self.order,
            None,
        ))
    }

    /// Whether `f`'s image reduces to zero modulo this basis. `Some(false)`
    /// from a [`FpBasis::complete`] basis certifies `f` is not in the exact
    /// ideal *provided the prime is lucky for the membership witness* — see
    /// the module docs for why callers must treat it as a hint.
    pub fn reduces_to_zero(&self, f: &Poly) -> Option<bool> {
        self.normal_form(f).map(|r| r.is_zero())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symmap_numeric::fp64::PRIME_SEED;

    fn p(s: &str) -> Poly {
        Poly::parse(s).unwrap()
    }

    fn first_primes(n: usize) -> Vec<u64> {
        PrimeIterator::new().take(n).collect()
    }

    #[test]
    fn fp_basis_matches_exact_leading_monomials_on_the_circle_system() {
        let gens = [p("x^2 + y^2 + z^2 - 1"), p("x*y - z"), p("x - y + z^2")];
        let order = MonomialOrder::grevlex(&["x", "y", "z"]);
        let options = GroebnerOptions::default();
        let exact = crate::groebner::buchberger(&gens, &order, &options);
        let exact_lms: Vec<Monomial> = exact
            .polys()
            .iter()
            .map(|g| g.leading_monomial(&order).unwrap())
            .collect();
        let fp = FpBasis::compute(&gens, &order, &options).unwrap();
        assert!(fp.complete);
        assert_eq!(fp.rotations, 0);
        assert_eq!(fp.prime(), PRIME_SEED - 56);
        assert_eq!(fp.leading_monomials(), exact_lms);
        // Membership transfers: each exact basis element reduces to zero.
        for g in exact.polys() {
            assert_eq!(fp.reduces_to_zero(g), Some(true));
        }
        // And x (clearly not in the ideal) does not.
        assert_eq!(fp.reduces_to_zero(&p("x")), Some(false));
    }

    #[test]
    fn denominator_unlucky_prime_rotates_deterministically() {
        let primes = first_primes(2);
        // 1/p as a coefficient: the seed prime divides the denominator.
        let unlucky = Poly::parse("x^2 - y").unwrap().add(&Poly::from_terms([(
            Monomial::one(),
            Rational::new(1, primes[0] as i64),
        )]));
        let order = MonomialOrder::lex(&["x", "y"]);
        let options = GroebnerOptions::default();
        assert_eq!(
            FpBasis::with_prime(primes[0], std::slice::from_ref(&unlucky), &order, &options)
                .unwrap_err(),
            UnluckyPrime::Denominator
        );
        let fp = FpBasis::compute(&[unlucky], &order, &options).unwrap();
        assert_eq!(fp.rotations, 1);
        assert_eq!(fp.prime(), primes[1]);
    }

    #[test]
    fn leading_coefficient_unlucky_prime_rotates_deterministically() {
        let primes = first_primes(2);
        // p * x^2 - y: the seed prime kills the leading coefficient.
        let unlucky = Poly::from_terms([
            (
                Monomial::from_pairs(&[(crate::var::Var::new("x"), 2)]),
                Rational::from(primes[0] as i64),
            ),
            (
                Monomial::from_pairs(&[(crate::var::Var::new("y"), 1)]),
                Rational::from(-1),
            ),
        ]);
        let order = MonomialOrder::lex(&["x", "y"]);
        let options = GroebnerOptions::default();
        assert_eq!(
            FpBasis::with_prime(primes[0], std::slice::from_ref(&unlucky), &order, &options)
                .unwrap_err(),
            UnluckyPrime::LeadingCoefficient
        );
        let fp = FpBasis::compute(&[unlucky], &order, &options).unwrap();
        assert_eq!(fp.rotations, 1);
        assert_eq!(fp.prime(), primes[1]);
    }

    #[test]
    fn target_leading_vanish_is_not_unlucky() {
        let primes = first_primes(1);
        let gens = [p("x^2 - y")];
        let order = MonomialOrder::lex(&["x", "y"]);
        let fp =
            FpBasis::with_prime(primes[0], &gens, &order, &GroebnerOptions::default()).unwrap();
        // p*x vanishes entirely mod p — a legal image that reduces to zero.
        let target = Poly::from_terms([(
            Monomial::from_pairs(&[(crate::var::Var::new("x"), 1)]),
            Rational::from(primes[0] as i64),
        )]);
        assert_eq!(fp.reduces_to_zero(&target), Some(true));
        // A denominator of p makes the query unanswerable, not unlucky.
        let bad = Poly::from_terms([(Monomial::one(), Rational::new(1, primes[0] as i64))]);
        assert_eq!(fp.reduces_to_zero(&bad), None);
    }
}
