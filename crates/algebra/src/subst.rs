//! Multivariate polynomial substitution.
//!
//! Substitution is one of the "guideline" manipulations of §3.3: replacing a
//! variable by another polynomial produces equivalent formulations of the
//! target, which widens the pool of candidate side-relation sets for the
//! branch-and-bound search.

use std::collections::BTreeMap;

use crate::error::AlgebraError;
use crate::poly::Poly;
use crate::var::Var;

/// Substitutes `replacement` for every occurrence of `var` in `poly`.
///
/// # Errors
///
/// Returns [`AlgebraError::ExponentTooLarge`] if an intermediate power would
/// exceed the safety bound of [`Poly::pow`].
pub fn substitute(poly: &Poly, var: Var, replacement: &Poly) -> Result<Poly, AlgebraError> {
    let mut assignment = BTreeMap::new();
    assignment.insert(var, replacement.clone());
    substitute_all(poly, &assignment)
}

/// Substitutes several variables simultaneously (occurrences of the
/// substituted variables inside the replacement polynomials are *not*
/// re-substituted, matching simultaneous substitution semantics).
///
/// # Errors
///
/// Returns [`AlgebraError::ExponentTooLarge`] if an intermediate power would
/// exceed the safety bound of [`Poly::pow`].
pub fn substitute_all(poly: &Poly, assignment: &BTreeMap<Var, Poly>) -> Result<Poly, AlgebraError> {
    let mut out = Poly::zero();
    for (m, c) in poly.iter() {
        let mut term = Poly::constant(c.clone());
        for (v, e) in m.iter() {
            let factor = match assignment.get(&v) {
                Some(rep) => rep.pow(e)?,
                None => Poly::from_term(
                    crate::monomial::Monomial::var(v, e),
                    symmap_numeric::Rational::one(),
                ),
            };
            term = term.mul(&factor);
        }
        out = out.add(&term);
    }
    Ok(out)
}

/// Renames a variable (a special case of substitution that cannot fail).
pub fn rename(poly: &Poly, from: Var, to: Var) -> Poly {
    substitute(poly, from, &Poly::var(to)).expect("renaming never raises exponents")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Poly {
        Poly::parse(s).unwrap()
    }

    #[test]
    fn substitute_variable_by_polynomial() {
        // x^2 + x with x := y + 1 gives y^2 + 3y + 2.
        let out = substitute(&p("x^2 + x"), Var::new("x"), &p("y + 1")).unwrap();
        assert_eq!(out, p("y^2 + 3*y + 2"));
    }

    #[test]
    fn substitute_by_constant_evaluates() {
        let out = substitute(&p("x^2*y + x"), Var::new("x"), &Poly::integer(2)).unwrap();
        assert_eq!(out, p("4*y + 2"));
    }

    #[test]
    fn simultaneous_substitution_does_not_cascade() {
        // x -> y, y -> x swaps the variables rather than collapsing them.
        let mut asn = BTreeMap::new();
        asn.insert(Var::new("x"), p("y"));
        asn.insert(Var::new("y"), p("x"));
        let out = substitute_all(&p("x^2 + y"), &asn).unwrap();
        assert_eq!(out, p("y^2 + x"));
    }

    #[test]
    fn substituting_missing_variable_is_identity() {
        let t = p("x^3 - 2");
        assert_eq!(substitute(&t, Var::new("unused_var"), &p("y")).unwrap(), t);
    }

    #[test]
    fn rename_changes_variable() {
        let out = rename(&p("a^2 + a*b"), Var::new("a"), Var::new("c"));
        assert_eq!(out, p("c^2 + c*b"));
    }

    #[test]
    fn substitution_into_zero_is_zero() {
        assert!(substitute(&Poly::zero(), Var::new("x"), &p("y + 1"))
            .unwrap()
            .is_zero());
    }

    #[test]
    fn horner_identity_under_substitution() {
        // p(x) evaluated at x := q(y) equals substitute then evaluate.
        use symmap_numeric::Rational;
        let target = p("3*x^2 - x + 5");
        let q = p("2*y - 1");
        let composed = substitute(&target, Var::new("x"), &q).unwrap();
        let mut asn = BTreeMap::new();
        asn.insert(Var::new("y"), Rational::integer(4));
        let qv = q.eval(&asn);
        let mut asn_x = BTreeMap::new();
        asn_x.insert(Var::new("x"), qv);
        assert_eq!(composed.eval(&asn), target.eval(&asn_x));
    }
}
