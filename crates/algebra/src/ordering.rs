//! Monomial orderings.
//!
//! Gröbner-basis computations and normal-form reduction are only defined
//! relative to a *monomial order*. The library-mapping algorithm uses
//! lexicographic and elimination orders so that reduction rewrites the target
//! polynomial **in terms of the library-element variables** (the new symbols
//! `p`, `q`, … introduced by side relations) rather than the other way around.
//!
//! Comparisons are plain loops over the packed exponent vectors of
//! [`Monomial`]: listed variables are probed in precedence order with
//! constant-time `degree_of` lookups and unlisted variables are swept by
//! index, so a comparison allocates nothing (the pre-packing implementation
//! built and sorted a `Vec` per operand per comparison — in the innermost
//! loop of the division algorithm).

use std::cmp::Ordering;

use crate::monomial::Monomial;
use crate::var::{Var, VarSet};

/// A monomial order over a fixed variable precedence list.
///
/// The precedence list ranks variables from most significant to least
/// significant, mirroring Maple's `[x, y, p]` ordering argument. Variables not
/// in the list rank after all listed variables, ordered by interner index.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum MonomialOrder {
    /// Pure lexicographic order.
    Lex(VarSet),
    /// Graded lexicographic: compare total degree first, ties broken by lex.
    GrLex(VarSet),
    /// Graded reverse lexicographic: total degree first, ties broken by the
    /// *smallest* variable having the *larger* exponent losing.
    GrevLex(VarSet),
    /// Elimination order: monomials involving any of the first `k` variables
    /// of the list are larger than monomials involving none; within each block
    /// GrevLex is used. Reduction under this order eliminates the first `k`
    /// variables whenever possible.
    Elimination(VarSet, usize),
}

/// Returns `true` when dense variable index `idx` belongs to a listed
/// variable (linear probe; precedence lists are short).
fn is_listed(listed: &[Var], idx: usize) -> bool {
    listed.iter().any(|v| v.index() as usize == idx)
}

/// Exponent of dense index `idx` in a packed exponent slice.
fn exp_at(exps: &[u32], idx: usize) -> u32 {
    exps.get(idx).copied().unwrap_or(0)
}

impl MonomialOrder {
    /// Convenience constructor for lexicographic order over named variables.
    pub fn lex(names: &[&str]) -> Self {
        MonomialOrder::Lex(VarSet::from_names(names))
    }

    /// Convenience constructor for graded lexicographic order.
    pub fn grlex(names: &[&str]) -> Self {
        MonomialOrder::GrLex(VarSet::from_names(names))
    }

    /// Convenience constructor for graded reverse lexicographic order.
    pub fn grevlex(names: &[&str]) -> Self {
        MonomialOrder::GrevLex(VarSet::from_names(names))
    }

    /// The variable precedence list of this order.
    pub fn vars(&self) -> &VarSet {
        match self {
            MonomialOrder::Lex(v)
            | MonomialOrder::GrLex(v)
            | MonomialOrder::GrevLex(v)
            | MonomialOrder::Elimination(v, _) => v,
        }
    }

    /// Extends the precedence list with any variables of `extra` not yet
    /// listed (appended after the existing ones, i.e. with lower precedence).
    pub fn extended_with(&self, extra: &VarSet) -> MonomialOrder {
        let merged = self.vars().union(extra);
        match self {
            MonomialOrder::Lex(_) => MonomialOrder::Lex(merged),
            MonomialOrder::GrLex(_) => MonomialOrder::GrLex(merged),
            MonomialOrder::GrevLex(_) => MonomialOrder::GrevLex(merged),
            MonomialOrder::Elimination(_, k) => MonomialOrder::Elimination(merged, *k),
        }
    }

    /// Rewrites the order into the local coordinates of `ring`: listed
    /// variables inside the ring map to their local handles (precedence
    /// preserved), listed variables outside the ring are dropped — every
    /// monomial of a ring-local computation has exponent zero on them, so
    /// they can never decide a comparison — and an [`MonomialOrder::Elimination`]
    /// block shrinks by exactly the dropped members of its first `k` entries
    /// (their block-degree contribution is identically zero).
    ///
    /// Unlisted variables need no mapping at all: they rank by ascending
    /// index in both coordinate systems, and localization preserves relative
    /// index order, so the unlisted sweeps of [`MonomialOrder::cmp`] agree.
    /// The net effect is that `localized(ring).cmp(localize(a), localize(b))
    /// == cmp(a, b)` for all monomials supported on the ring, while each
    /// comparison loops over at most `ring.len()` slots instead of the full
    /// interner width.
    pub fn localized(&self, ring: &crate::ring::Ring) -> MonomialOrder {
        let map = |vs: &VarSet| -> VarSet {
            vs.iter()
                .filter_map(|v| ring.local_of(v).map(Var::from_index))
                .collect()
        };
        match self {
            MonomialOrder::Lex(v) => MonomialOrder::Lex(map(v)),
            MonomialOrder::GrLex(v) => MonomialOrder::GrLex(map(v)),
            MonomialOrder::GrevLex(v) => MonomialOrder::GrevLex(map(v)),
            MonomialOrder::Elimination(v, k) => {
                let kept = v.iter().take(*k).filter(|&v| ring.contains(v)).count();
                MonomialOrder::Elimination(map(v), kept)
            }
        }
    }

    /// Lexicographic comparison: listed variables in precedence order, then
    /// unlisted variables by ascending interner index; the first variable
    /// with differing exponents decides (larger exponent wins).
    fn lex_cmp(&self, a: &Monomial, b: &Monomial) -> Ordering {
        let listed = self.vars().as_slice();
        for &v in listed {
            match a.degree_of(v).cmp(&b.degree_of(v)) {
                Ordering::Equal => {}
                o => return o,
            }
        }
        let (ea, eb) = (a.exps(), b.exps());
        for idx in 0..ea.len().max(eb.len()) {
            if is_listed(listed, idx) {
                continue;
            }
            match exp_at(ea, idx).cmp(&exp_at(eb, idx)) {
                Ordering::Equal => {}
                o => return o,
            }
        }
        Ordering::Equal
    }

    /// Graded reverse lexicographic comparison: total degree first; on ties,
    /// scan variables from *least* significant (highest-index unlisted
    /// variable) to most significant — at the first variable with differing
    /// exponents, the monomial with the **larger** exponent is the smaller.
    fn grevlex_cmp(&self, a: &Monomial, b: &Monomial) -> Ordering {
        match a.total_degree_u64().cmp(&b.total_degree_u64()) {
            Ordering::Equal => {}
            o => return o,
        }
        let listed = self.vars().as_slice();
        let (ea, eb) = (a.exps(), b.exps());
        for idx in (0..ea.len().max(eb.len())).rev() {
            if is_listed(listed, idx) {
                continue;
            }
            match exp_at(ea, idx).cmp(&exp_at(eb, idx)) {
                Ordering::Equal => {}
                Ordering::Greater => return Ordering::Less,
                Ordering::Less => return Ordering::Greater,
            }
        }
        for &v in listed.iter().rev() {
            match a.degree_of(v).cmp(&b.degree_of(v)) {
                Ordering::Equal => {}
                Ordering::Greater => return Ordering::Less,
                Ordering::Less => return Ordering::Greater,
            }
        }
        Ordering::Equal
    }

    fn block_degree(&self, m: &Monomial, k: usize) -> u64 {
        self.vars()
            .iter()
            .take(k)
            .map(|v| m.degree_of(v) as u64)
            .sum()
    }

    /// Compares two monomials under this order.
    pub fn cmp(&self, a: &Monomial, b: &Monomial) -> Ordering {
        match self {
            MonomialOrder::Lex(_) => self.lex_cmp(a, b),
            MonomialOrder::GrLex(_) => match a.total_degree_u64().cmp(&b.total_degree_u64()) {
                Ordering::Equal => self.lex_cmp(a, b),
                o => o,
            },
            MonomialOrder::GrevLex(_) => self.grevlex_cmp(a, b),
            MonomialOrder::Elimination(_, k) => {
                match self.block_degree(a, *k).cmp(&self.block_degree(b, *k)) {
                    Ordering::Equal => self.grevlex_cmp(a, b),
                    o => o,
                }
            }
        }
    }

    /// Returns the maximal element of an iterator of monomials under this
    /// order, or `None` when empty.
    pub fn max<'a, I: IntoIterator<Item = &'a Monomial>>(&self, iter: I) -> Option<&'a Monomial> {
        iter.into_iter().fold(None, |best, m| match best {
            None => Some(m),
            Some(b) => {
                if self.cmp(m, b) == Ordering::Greater {
                    Some(m)
                } else {
                    Some(b)
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pairs: &[(&str, u32)]) -> Monomial {
        Monomial::from_pairs(
            &pairs
                .iter()
                .map(|&(n, e)| (Var::new(n), e))
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn lex_basic() {
        let o = MonomialOrder::lex(&["x", "y", "z"]);
        // x > y^5 under lex with x > y.
        assert_eq!(o.cmp(&m(&[("x", 1)]), &m(&[("y", 5)])), Ordering::Greater);
        assert_eq!(
            o.cmp(&m(&[("x", 1), ("y", 1)]), &m(&[("x", 1)])),
            Ordering::Greater
        );
        assert_eq!(o.cmp(&m(&[("x", 2)]), &m(&[("x", 2)])), Ordering::Equal);
        assert_eq!(o.cmp(&Monomial::one(), &m(&[("z", 1)])), Ordering::Less);
    }

    #[test]
    fn grlex_degree_dominates() {
        let o = MonomialOrder::grlex(&["x", "y"]);
        assert_eq!(o.cmp(&m(&[("y", 3)]), &m(&[("x", 2)])), Ordering::Greater);
        // Same degree: lex breaks the tie.
        assert_eq!(
            o.cmp(&m(&[("x", 2)]), &m(&[("x", 1), ("y", 1)])),
            Ordering::Greater
        );
    }

    #[test]
    fn grevlex_textbook_example() {
        // Cox–Little–O'Shea: under grevlex with x > y > z,
        // x^2*y*z^2 > x*y^3*z (same degree 5; compare last variable: z^2 vs z
        // means the first has MORE of the least variable... actually the
        // standard example is x*y^2*z vs x^2*z^2 — let us use exponent vectors
        // (1,2,1) and (2,0,2): total degree 4 both; reversed comparison finds
        // last differing exponent z: 1 vs 2, the one with larger z exponent is
        // smaller, so (1,2,1) > (2,0,2).
        let o = MonomialOrder::grevlex(&["x", "y", "z"]);
        let a = m(&[("x", 1), ("y", 2), ("z", 1)]);
        let b = m(&[("x", 2), ("z", 2)]);
        assert_eq!(o.cmp(&a, &b), Ordering::Greater);
        assert_eq!(o.cmp(&b, &a), Ordering::Less);
    }

    #[test]
    fn grevlex_differs_from_grlex() {
        // Exponents (1,1,2) vs (0,3,1) with x>y>z, degree 4 each.
        // grlex: lex compare → x^1 > x^0 so a > b.
        // grevlex: last differing from the end: z: 2 vs 1 → a has more of the
        // smallest variable → a < b.
        let a = m(&[("x", 1), ("y", 1), ("z", 2)]);
        let b = m(&[("y", 3), ("z", 1)]);
        let grlex = MonomialOrder::grlex(&["x", "y", "z"]);
        let grevlex = MonomialOrder::grevlex(&["x", "y", "z"]);
        assert_eq!(grlex.cmp(&a, &b), Ordering::Greater);
        assert_eq!(grevlex.cmp(&a, &b), Ordering::Less);
    }

    #[test]
    fn elimination_order_prefers_block_free_monomials() {
        // Eliminate x (k = 1): any monomial containing x is larger than any
        // monomial not containing x.
        let o = MonomialOrder::Elimination(VarSet::from_names(&["x", "y", "p"]), 1);
        assert_eq!(
            o.cmp(&m(&[("x", 1)]), &m(&[("y", 7), ("p", 3)])),
            Ordering::Greater
        );
        assert_eq!(o.cmp(&m(&[("y", 1)]), &m(&[("p", 1)])), Ordering::Greater);
    }

    #[test]
    fn max_picks_leading_monomial() {
        let o = MonomialOrder::lex(&["x", "y"]);
        let ms = vec![m(&[("y", 4)]), m(&[("x", 1), ("y", 1)]), m(&[("x", 2)])];
        assert_eq!(o.max(&ms), Some(&ms[2]));
        assert_eq!(o.max(std::iter::empty()), None);
    }

    #[test]
    fn unlisted_variables_rank_last() {
        let o = MonomialOrder::lex(&["x"]);
        // y is not listed: x beats any power of y.
        assert_eq!(o.cmp(&m(&[("x", 1)]), &m(&[("y", 9)])), Ordering::Greater);
    }

    #[test]
    fn unlisted_variables_order_by_interner_index() {
        // Two fresh unlisted variables: the earlier-interned one is the more
        // significant, exactly as the pre-packing rank `(MAX, index)` ranked
        // them.
        let a = Var::new("ord_unlisted_first");
        let b = Var::new("ord_unlisted_second");
        assert!(a.index() < b.index());
        let o = MonomialOrder::lex(&["x"]);
        let ma = Monomial::var(a, 1);
        let mb = Monomial::var(b, 5);
        assert_eq!(o.cmp(&ma, &mb), Ordering::Greater);
        let grevlex = MonomialOrder::grevlex(&["x"]);
        // Same degree: the one loaded on the less significant (later) var is
        // smaller under grevlex.
        assert_eq!(
            grevlex.cmp(&Monomial::var(a, 2), &Monomial::var(b, 2)),
            Ordering::Greater
        );
    }

    #[test]
    fn extended_with_appends_lower_precedence() {
        let o = MonomialOrder::lex(&["x"]).extended_with(&VarSet::from_names(&["y"]));
        assert_eq!(o.vars().len(), 2);
        assert_eq!(o.cmp(&m(&[("x", 1)]), &m(&[("y", 3)])), Ordering::Greater);
    }

    #[test]
    fn orders_are_total_and_antisymmetric() {
        let monos = vec![
            Monomial::one(),
            m(&[("x", 1)]),
            m(&[("y", 2)]),
            m(&[("x", 1), ("y", 1)]),
            m(&[("x", 3), ("z", 1)]),
            m(&[("z", 4)]),
        ];
        for order in [
            MonomialOrder::lex(&["x", "y", "z"]),
            MonomialOrder::grlex(&["x", "y", "z"]),
            MonomialOrder::grevlex(&["x", "y", "z"]),
            MonomialOrder::Elimination(VarSet::from_names(&["x", "y", "z"]), 1),
        ] {
            for a in &monos {
                for b in &monos {
                    let ab = order.cmp(a, b);
                    let ba = order.cmp(b, a);
                    assert_eq!(ab, ba.reverse(), "antisymmetry failed for {a} vs {b}");
                    if a == b {
                        assert_eq!(ab, Ordering::Equal);
                    }
                }
            }
            // Multiplicativity: a > b implies a*c > b*c.
            for a in &monos {
                for b in &monos {
                    for c in &monos {
                        if order.cmp(a, b) == Ordering::Greater {
                            assert_eq!(
                                order.cmp(&a.mul(c), &b.mul(c)),
                                Ordering::Greater,
                                "multiplicativity failed"
                            );
                        }
                    }
                }
            }
        }
    }
}
