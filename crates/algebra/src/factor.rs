//! Polynomial factorization heuristics.
//!
//! `factor` and `expand` are the first pair of manipulations the paper lists.
//! The mapping algorithm does not need a complete factorization over ℚ — it
//! needs the *structural* factorizations a designer would exploit when
//! matching code to library elements: common monomial factors, content,
//! difference of squares, perfect-square trinomials, univariate rational
//! roots and square-free splitting. Those are implemented here; anything
//! beyond stays unfactored (which is always sound, merely less helpful as a
//! search guideline).

use symmap_numeric::Rational;

use crate::monomial::Monomial;
use crate::ordering::MonomialOrder;
use crate::poly::Poly;
use crate::var::Var;

/// A factorization `constant * Π factor_i ^ multiplicity_i`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Factorization {
    /// Leading rational constant.
    pub constant: Rational,
    /// The non-constant factors with multiplicities.
    pub factors: Vec<(Poly, u32)>,
}

impl Factorization {
    /// Multiplies the factorization back out; must equal the original input.
    pub fn expand(&self) -> Poly {
        let mut acc = Poly::constant(self.constant.clone());
        for (f, m) in &self.factors {
            for _ in 0..*m {
                acc = acc.mul(f);
            }
        }
        acc
    }

    /// Total number of non-constant factors counted with multiplicity.
    pub fn factor_count(&self) -> u32 {
        self.factors.iter().map(|(_, m)| *m).sum()
    }

    /// Returns `true` when factorization found more than one nontrivial piece
    /// (i.e. the result is more structured than the input).
    pub fn is_nontrivial(&self) -> bool {
        self.factor_count() > 1 || self.factors.iter().any(|(_, m)| *m > 1)
    }
}

impl std::fmt::Display for Factorization {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        if !self.constant.is_one() || self.factors.is_empty() {
            write!(f, "{}", self.constant)?;
            first = false;
        }
        for (p, m) in &self.factors {
            if !first {
                write!(f, "*")?;
            }
            first = false;
            if *m == 1 {
                write!(f, "({p})")?;
            } else {
                write!(f, "({p})^{m}")?;
            }
        }
        Ok(())
    }
}

/// Factors a polynomial using the heuristics described in the module
/// documentation. The product of the returned factors always equals the
/// input; when nothing is found the input is returned as a single factor.
pub fn factor(poly: &Poly) -> Factorization {
    if poly.is_zero() {
        return Factorization {
            constant: Rational::zero(),
            factors: Vec::new(),
        };
    }
    if let Some(c) = poly.as_constant() {
        return Factorization {
            constant: c,
            factors: Vec::new(),
        };
    }

    // 1. Pull out the content (rational constant).
    let content = poly.content();
    let sign = if leading_is_negative(poly) {
        -Rational::one()
    } else {
        Rational::one()
    };
    let constant = &content * &sign;
    let mut rest = poly.scale(&constant.recip().expect("nonzero content"));

    let mut factors: Vec<(Poly, u32)> = Vec::new();

    // 2. Common monomial factor, e.g. x^2*(x^15 + x^14 + 1).
    let common = common_monomial(&rest);
    if !common.is_one() {
        for (v, e) in common.iter() {
            factors.push((Poly::var(v), e));
        }
        rest = divide_by_monomial(&rest, &common);
    }

    // 3. Recursive structural factoring of what remains.
    let extra = factor_primitive(&rest, &mut factors);
    let constant = &constant * &extra;

    // Merge repeated factors.
    let mut merged: Vec<(Poly, u32)> = Vec::new();
    for (f, m) in factors {
        if let Some(entry) = merged.iter_mut().find(|(g, _)| *g == f) {
            entry.1 += m;
        } else {
            merged.push((f, m));
        }
    }
    Factorization {
        constant,
        factors: merged,
    }
}

fn leading_is_negative(poly: &Poly) -> bool {
    let order = MonomialOrder::GrLex(poly.vars());
    poly.leading_term(&order)
        .map(|(_, c)| c.is_negative())
        .unwrap_or(false)
}

/// The largest monomial dividing every term.
fn common_monomial(poly: &Poly) -> Monomial {
    let mut iter = poly.iter();
    let Some((first, _)) = iter.next() else {
        return Monomial::one();
    };
    iter.fold(first.clone(), |acc, (m, _)| acc.gcd(m))
}

fn divide_by_monomial(poly: &Poly, m: &Monomial) -> Poly {
    Poly::from_terms(poly.iter().map(|(mm, c)| {
        (
            mm.div(m).expect("common monomial divides every term"),
            c.clone(),
        )
    }))
}

/// Factors a content-free polynomial into `out`, returning any leftover
/// rational constant (e.g. the leading coefficient of a fully split
/// quadratic) that the caller must fold into the overall constant.
fn factor_primitive(poly: &Poly, out: &mut Vec<(Poly, u32)>) -> Rational {
    if poly.is_constant() {
        return poly.as_constant().unwrap_or_else(Rational::one);
    }

    // Difference of squares: a^2 - b^2 where a, b are single terms.
    if let Some((a, b)) = as_difference_of_squares(poly) {
        let c1 = factor_primitive(&a.add(&b), out);
        let c2 = factor_primitive(&a.sub(&b), out);
        return &c1 * &c2;
    }

    // Perfect square trinomial: a^2 + 2ab + b^2.
    if let Some((a, b)) = as_perfect_square(poly) {
        out.push((a.add(&b), 2));
        return Rational::one();
    }

    // Univariate: strip rational roots and try a quadratic split.
    let vars = poly.vars();
    if vars.len() == 1 {
        let v = vars.iter().next().expect("one variable");
        return factor_univariate(poly, v, out);
    }

    out.push((poly.clone(), 1));
    Rational::one()
}

/// Detects `s^2 - t^2` for single-term `s`, `t`.
fn as_difference_of_squares(poly: &Poly) -> Option<(Poly, Poly)> {
    if poly.num_terms() != 2 {
        return None;
    }
    let terms: Vec<(Monomial, Rational)> =
        poly.iter().map(|(m, c)| (m.clone(), c.clone())).collect();
    let (pos, neg) = if terms[0].1.is_positive() && terms[1].1.is_negative() {
        (&terms[0], &terms[1])
    } else if terms[1].1.is_positive() && terms[0].1.is_negative() {
        (&terms[1], &terms[0])
    } else {
        return None;
    };
    let a = term_sqrt(&pos.0, &pos.1)?;
    let b = term_sqrt(&neg.0, &neg.1.abs())?;
    Some((a, b))
}

/// Square root of a single term `c*m`, if both parts are perfect squares.
fn term_sqrt(m: &Monomial, c: &Rational) -> Option<Poly> {
    if m.iter().any(|(_, e)| e % 2 != 0) {
        return None;
    }
    let root_c = rational_sqrt(c)?;
    let root_m = Monomial::from_pairs(&m.iter().map(|(v, e)| (v, e / 2)).collect::<Vec<_>>());
    Some(Poly::from_term(root_m, root_c))
}

fn rational_sqrt(c: &Rational) -> Option<Rational> {
    if c.is_negative() {
        return None;
    }
    let num = bigint_sqrt(&c.numer())?;
    let den = bigint_sqrt(&c.denom())?;
    Some(Rational::from_bigints(num, den))
}

fn bigint_sqrt(v: &symmap_numeric::BigInt) -> Option<symmap_numeric::BigInt> {
    use symmap_numeric::BigInt;
    if v.is_negative() {
        return None;
    }
    if v.is_zero() {
        return Some(BigInt::zero());
    }
    // Newton's method on integers, starting from 2^(bits/2 + 1).
    let two = BigInt::from(2_i64);
    let mut x = BigInt::from(2_i64).pow((v.bits() / 2 + 1) as u32);
    loop {
        let next = &(&x + &(v / &x)) / &two;
        if next >= x {
            break;
        }
        x = next;
    }
    if &(&x * &x) == v {
        Some(x)
    } else {
        None
    }
}

/// Detects `a^2 + 2ab + b^2` (or with `-2ab`, giving `(a-b)^2`).
fn as_perfect_square(poly: &Poly) -> Option<(Poly, Poly)> {
    if poly.num_terms() != 3 {
        return None;
    }
    let terms: Vec<(Monomial, Rational)> =
        poly.iter().map(|(m, c)| (m.clone(), c.clone())).collect();
    // Try each choice of the two "square" terms.
    for i in 0..3 {
        for j in 0..3 {
            if i == j {
                continue;
            }
            let k = 3 - i - j;
            let (Some(a), Some(b)) = (
                term_sqrt(&terms[i].0, &terms[i].1),
                term_sqrt(&terms[j].0, &terms[j].1),
            ) else {
                continue;
            };
            let cross = a.mul(&b).scale(&Rational::integer(2));
            let middle = Poly::from_term(terms[k].0.clone(), terms[k].1.clone());
            if cross == middle {
                return Some((a, b));
            }
            if cross.neg() == middle {
                return Some((a, b.neg()));
            }
        }
    }
    None
}

/// Factors a univariate polynomial by extracting rational roots
/// (rational-root theorem) and splitting quadratics with rational
/// discriminant square roots.
fn factor_univariate(poly: &Poly, v: Var, out: &mut Vec<(Poly, u32)>) -> Rational {
    let mut rest = poly.clone();
    loop {
        let deg = rest.degree_in(v);
        if deg <= 1 {
            break;
        }
        if deg == 2 {
            if let Some((r1, r2, lead)) = quadratic_roots(&rest, v) {
                out.push((Poly::var(v).sub(&Poly::constant(r1)), 1));
                out.push((Poly::var(v).sub(&Poly::constant(r2)), 1));
                rest = Poly::constant(lead);
            }
            break;
        }
        match find_rational_root(&rest, v) {
            Some(root) => {
                let linear = Poly::var(v).sub(&Poly::constant(root));
                let order = MonomialOrder::Lex(rest.vars());
                let div = crate::division::divide(&rest, std::slice::from_ref(&linear), &order);
                debug_assert!(div.remainder.is_zero());
                out.push((linear, 1));
                rest = div.quotients[0].clone();
            }
            None => break,
        }
    }
    match rest.as_constant() {
        Some(c) => c,
        None => {
            out.push((rest, 1));
            Rational::one()
        }
    }
}

fn dense_coeffs(poly: &Poly, v: Var) -> Vec<Rational> {
    poly.coefficients_in(v)
        .into_iter()
        .map(|c| c.as_constant().unwrap_or_else(Rational::zero))
        .collect()
}

fn quadratic_roots(poly: &Poly, v: Var) -> Option<(Rational, Rational, Rational)> {
    let c = dense_coeffs(poly, v);
    if c.len() != 3 {
        return None;
    }
    let (c0, c1, c2) = (&c[0], &c[1], &c[2]);
    let disc = &(c1 * c1) - &(&(&Rational::integer(4) * c2) * c0);
    let sqrt_disc = rational_sqrt(&disc)?;
    let two_a = &Rational::integer(2) * c2;
    let r1 = &(&-c1.clone() + &sqrt_disc) / &two_a;
    let r2 = &(&-c1.clone() - &sqrt_disc) / &two_a;
    Some((r1, r2, c2.clone()))
}

/// Rational-root theorem search over divisors of the constant and leading
/// coefficients (bounded to keep the search cheap).
fn find_rational_root(poly: &Poly, v: Var) -> Option<Rational> {
    let coeffs = dense_coeffs(poly, v);
    let c0 = coeffs.first()?.clone();
    let cn = coeffs.last()?.clone();
    if c0.is_zero() {
        return Some(Rational::zero());
    }
    // Work with integer-scaled coefficients.
    let p_divs = small_divisors(&c0);
    let q_divs = small_divisors(&cn);
    for p in &p_divs {
        for q in &q_divs {
            for sign in [1_i64, -1] {
                let candidate = &(p * &Rational::integer(sign)) / q;
                let mut asn = std::collections::BTreeMap::new();
                asn.insert(v, candidate.clone());
                if poly.eval(&asn).is_zero() {
                    return Some(candidate);
                }
            }
        }
    }
    None
}

fn small_divisors(c: &Rational) -> Vec<Rational> {
    // Use the numerator magnitude if it fits in i64; otherwise just 1.
    let mut out = vec![Rational::one()];
    if let Ok(n) = c.numer().to_i64() {
        let n = n.unsigned_abs().min(10_000);
        let mut d = 1_u64;
        while d * d <= n {
            if n % d == 0 {
                out.push(Rational::integer(d as i64));
                out.push(Rational::integer((n / d) as i64));
            }
            d += 1;
        }
    }
    out.sort();
    out.dedup();
    out.retain(|r| !r.is_zero());
    out
}

/// Expands a factorization (or any polynomial product expression) — provided
/// for symmetry with Maple's `expand`; polynomials are already stored
/// expanded, so this simply multiplies a factor list back out.
pub fn expand(factors: &Factorization) -> Poly {
    factors.expand()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn p(s: &str) -> Poly {
        Poly::parse(s).unwrap()
    }

    #[test]
    fn paper_example_common_monomial() {
        // factor(x^16 + x^17 + x^2) = x^2 * (x^14 + x^15 + 1)
        let f = factor(&p("x^16 + x^17 + x^2"));
        assert_eq!(f.expand(), p("x^16 + x^17 + x^2"));
        assert!(f.factors.iter().any(|(q, m)| *q == p("x") && *m == 2));
        assert!(f.factors.iter().any(|(q, _)| *q == p("x^15 + x^14 + 1")));
    }

    #[test]
    fn difference_of_squares() {
        let f = factor(&p("x^2 - y^2"));
        assert_eq!(f.expand(), p("x^2 - y^2"));
        assert_eq!(f.factor_count(), 2);
        assert!(f.factors.iter().any(|(q, _)| *q == p("x + y")));
        assert!(f.factors.iter().any(|(q, _)| *q == p("x - y")));
    }

    #[test]
    fn perfect_square_trinomial() {
        let f = factor(&p("x^2 + 2*x*y + y^2"));
        assert_eq!(f.factors.len(), 1);
        assert_eq!(f.factors[0].1, 2);
        assert_eq!(f.expand(), p("x^2 + 2*x*y + y^2"));
        let g = factor(&p("x^2 - 2*x*y + y^2"));
        assert_eq!(g.factors[0].1, 2);
        assert_eq!(g.expand(), p("x^2 - 2*x*y + y^2"));
    }

    #[test]
    fn univariate_rational_roots() {
        // x^3 - 6x^2 + 11x - 6 = (x-1)(x-2)(x-3)
        let f = factor(&p("x^3 - 6*x^2 + 11*x - 6"));
        assert_eq!(f.expand(), p("x^3 - 6*x^2 + 11*x - 6"));
        assert_eq!(f.factor_count(), 3);
    }

    #[test]
    fn quadratic_with_rational_roots() {
        // 2x^2 + x - 1 = 2(x - 1/2)(x + 1)
        let f = factor(&p("2*x^2 + x - 1"));
        assert_eq!(f.expand(), p("2*x^2 + x - 1"));
        assert_eq!(f.factor_count(), 2);
        assert_eq!(f.constant, Rational::integer(2));
    }

    #[test]
    fn irreducible_quadratic_left_alone() {
        let f = factor(&p("x^2 + 1"));
        assert_eq!(f.factors, vec![(p("x^2 + 1"), 1)]);
        assert_eq!(f.expand(), p("x^2 + 1"));
    }

    #[test]
    fn content_and_sign_extraction() {
        let f = factor(&p("-4*x^2 + 4*y^2"));
        assert_eq!(f.expand(), p("-4*x^2 + 4*y^2"));
        assert_eq!(f.constant, Rational::integer(-4));
        assert_eq!(f.factor_count(), 2);
    }

    #[test]
    fn constants_and_zero() {
        assert_eq!(factor(&Poly::zero()).constant, Rational::zero());
        let f = factor(&p("7"));
        assert_eq!(f.constant, Rational::integer(7));
        assert!(f.factors.is_empty());
        assert_eq!(f.expand(), p("7"));
    }

    #[test]
    fn display_shows_structure() {
        let f = factor(&p("x^2 - y^2"));
        let s = f.to_string();
        assert!(s.contains('(') && s.contains(')'), "{s}");
    }

    #[test]
    fn nontrivial_flag() {
        assert!(factor(&p("x^2 - y^2")).is_nontrivial());
        assert!(!factor(&p("x^2 + x + 1")).is_nontrivial());
    }

    #[test]
    fn imdct_subexpression_factoring() {
        // A windowed-IMDCT-style subexpression: c*y0 + c*y1 = c*(y0 + y1);
        // the common "monomial" here is the variable c.
        let f = factor(&p("c*y0 + c*y1"));
        assert_eq!(f.expand(), p("c*y0 + c*y1"));
        assert!(f.factors.iter().any(|(q, _)| *q == p("c")));
        assert!(f.factors.iter().any(|(q, _)| *q == p("y0 + y1")));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn prop_factor_expand_round_trips(
            a in -5_i64..5, b in -5_i64..5, c in -5_i64..5,
            e1 in 0_u32..4, e2 in 0_u32..3,
        ) {
            let q = Poly::parse(&format!("{a}*x^{e1}*y^{e2} + {b}*x*y + {c}*x")).unwrap();
            let f = factor(&q);
            prop_assert_eq!(f.expand(), q);
        }

        #[test]
        fn prop_products_of_linears_fully_factor(r1 in -6_i64..6, r2 in -6_i64..6) {
            let q = Poly::parse(&format!("(x - {r1})*(x - {r2})")).unwrap()
                .add(&Poly::zero());
            let f = factor(&q);
            prop_assert_eq!(f.expand(), q);
            prop_assert_eq!(f.factor_count(), 2);
        }
    }
}
