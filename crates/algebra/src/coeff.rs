//! Generic coefficient layer: one Buchberger engine and one division loop,
//! parameterized over the coefficient field.
//!
//! The monomial substrate (packed exponents, ring-local indices, order
//! comparisons) is coefficient-agnostic; what distinguishes a ℚ run from a
//! ℤ/p run is purely the scalar arithmetic. This module factors that
//! difference into a [`CoeffField`] context — the field-object idiom of
//! symbolica's `finite_field.rs`, where elements are plain data and all
//! arithmetic goes through the context — and implements the S-pair engine,
//! auto-reduction and the prepared-divisor normal form **once**, generically:
//!
//! * [`RationalField`] instantiates it over [`Rational`], and is what
//!   [`crate::groebner::buchberger`] and
//!   [`crate::division::prepared_normal_form`] run on. The entry/exit
//!   conversions with [`crate::poly::Poly`] are zero-copy term-vector moves (both types
//!   share the descending-canonical-sort storage invariant), so the exact
//!   path is byte-identical to the historic concrete implementation — the
//!   seed-oracle differential tests in `groebner.rs` pin this down.
//! * [`symmap_numeric::Fp64`] instantiates it over ℤ/p (see
//!   [`crate::modular`]), giving the mapper's prefilter a basis run whose
//!   coefficients never leave one machine word.
//!
//! Every algorithm here mirrors its `Poly` counterpart operation for
//! operation (same merge passes, same division-step selection, same
//! tiebreaks), so the two instantiations differ only in scalar cost.

use std::collections::HashSet;

use symmap_numeric::Rational;

use crate::groebner::GroebnerOptions;
use crate::monomial::Monomial;
use crate::ordering::MonomialOrder;

/// A coefficient field context. Elements are plain data ([`CoeffField::Elem`])
/// and all arithmetic goes through the context, so a field carrying runtime
/// state (like the Montgomery constants of ℤ/p) costs nothing extra over a
/// stateless one like [`RationalField`].
pub trait CoeffField: Clone + std::fmt::Debug {
    /// The element representation.
    type Elem: Clone + PartialEq + std::fmt::Debug;

    /// The multiplicative identity.
    fn one(&self) -> Self::Elem;
    /// Whether `a` is the additive identity.
    fn is_zero(&self, a: &Self::Elem) -> bool;
    /// Additive inverse.
    fn neg(&self, a: &Self::Elem) -> Self::Elem;
    /// Addition.
    fn add(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem;
    /// Multiplication.
    fn mul(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem;
    /// Multiplicative inverse of a **nonzero** element.
    fn inv(&self, a: &Self::Elem) -> Self::Elem;
    /// Division by a **nonzero** element.
    fn div(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem {
        self.mul(a, &self.inv(b))
    }
}

/// The exact rationals ℚ as a [`CoeffField`]. Stateless; every operation
/// delegates to [`Rational`]'s reference operators, so the generic engine
/// performs the identical arithmetic sequence as the historic concrete code.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RationalField;

impl CoeffField for RationalField {
    type Elem = Rational;

    fn one(&self) -> Rational {
        Rational::one()
    }
    fn is_zero(&self, a: &Rational) -> bool {
        a.is_zero()
    }
    fn neg(&self, a: &Rational) -> Rational {
        -a
    }
    fn add(&self, a: &Rational, b: &Rational) -> Rational {
        a + b
    }
    fn mul(&self, a: &Rational, b: &Rational) -> Rational {
        a * b
    }
    fn inv(&self, a: &Rational) -> Rational {
        a.recip().expect("inverse of zero")
    }
    fn div(&self, a: &Rational, b: &Rational) -> Rational {
        a / b
    }
}

/// A multivariate polynomial over an arbitrary [`CoeffField`].
///
/// Storage mirrors [`crate::poly::Poly`] exactly: `(monomial, coefficient)`
/// pairs sorted strictly descending by the canonical (multiplication-
/// invariant) monomial order, no zero coefficients — so `Poly` term vectors
/// move in and out without re-sorting.
#[derive(Debug, Clone, PartialEq)]
pub struct CPoly<F: CoeffField> {
    terms: Vec<(Monomial, F::Elem)>,
}

impl<F: CoeffField> CPoly<F> {
    /// The zero polynomial.
    pub fn zero() -> Self {
        CPoly { terms: Vec::new() }
    }

    /// Builds a polynomial from a term vector that is **already** strictly
    /// descending in the canonical monomial order with no zero coefficients.
    pub fn from_sorted_terms(terms: Vec<(Monomial, F::Elem)>) -> Self {
        debug_assert!(
            terms
                .windows(2)
                .all(|w| w[0].0.cmp(&w[1].0) == std::cmp::Ordering::Greater),
            "term vector not strictly descending in the canonical order"
        );
        CPoly { terms }
    }

    /// The sorted term vector.
    pub fn terms(&self) -> &[(Monomial, F::Elem)] {
        &self.terms
    }

    /// Moves the sorted term vector out.
    pub fn into_terms(self) -> Vec<(Monomial, F::Elem)> {
        self.terms
    }

    /// Whether this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// Number of terms.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Total degree (max over terms); zero polynomial has degree 0.
    pub fn total_degree(&self) -> u32 {
        self.terms
            .iter()
            .map(|(m, _)| m.total_degree())
            .max()
            .unwrap_or(0)
    }

    /// Leading term under `order` (linear scan, like `Poly::leading_term`).
    pub fn leading_term(&self, order: &MonomialOrder) -> Option<(Monomial, F::Elem)> {
        let mut best: Option<&(Monomial, F::Elem)> = None;
        for t in &self.terms {
            best = match best {
                None => Some(t),
                Some(b) => {
                    if order.cmp(&t.0, &b.0) == std::cmp::Ordering::Greater {
                        Some(t)
                    } else {
                        Some(b)
                    }
                }
            };
        }
        best.cloned()
    }

    /// Adds `c * m` in place (binary search into the sorted vector).
    pub fn add_term(&mut self, field: &F, m: &Monomial, c: &F::Elem) {
        if field.is_zero(c) {
            return;
        }
        match self.terms.binary_search_by(|(tm, _)| m.cmp(tm)) {
            Ok(i) => {
                self.terms[i].1 = field.add(&self.terms[i].1, c);
                if field.is_zero(&self.terms[i].1) {
                    self.terms.remove(i);
                }
            }
            Err(i) => self.terms.insert(i, (m.clone(), c.clone())),
        }
    }

    /// In-place `self -= g * (c * m)` — the cancellation step of division,
    /// fused into one merge against the lazily scaled divisor term stream
    /// (sorted order is multiplication-invariant), exactly like
    /// `Poly::sub_scaled`.
    pub fn sub_scaled(&mut self, field: &F, g: &[(Monomial, F::Elem)], m: &Monomial, c: &F::Elem) {
        if field.is_zero(c) || g.is_empty() {
            return;
        }
        let own = std::mem::take(&mut self.terms);
        let capacity = own.len() + g.len();
        let scaled = g
            .iter()
            .map(|(gm, gc)| (gm.mul(m), field.neg(&field.mul(gc, c))));
        self.terms = merge_terms_in(field, own.into_iter(), scaled, capacity);
    }

    /// Multiplication by a single term `c * m` (sorted map, no re-sort).
    pub fn mul_term(&self, field: &F, m: &Monomial, c: &F::Elem) -> CPoly<F> {
        if field.is_zero(c) {
            return CPoly::zero();
        }
        CPoly {
            terms: self
                .terms
                .iter()
                .map(|(mm, k)| (mm.mul(m), field.mul(k, c)))
                .collect(),
        }
    }

    /// Scales so the leading coefficient under `order` becomes one (no-op on
    /// the zero polynomial).
    pub fn monic(&self, field: &F, order: &MonomialOrder) -> CPoly<F> {
        match self.leading_term(order) {
            None => CPoly::zero(),
            Some((_, lc)) => {
                let inv = field.inv(&lc);
                CPoly {
                    terms: self
                        .terms
                        .iter()
                        .map(|(m, k)| (m.clone(), field.mul(k, &inv)))
                        .collect(),
                }
            }
        }
    }
}

/// Merges two term streams sorted descending by the canonical monomial
/// order, summing coefficients of equal monomials and dropping zeros —
/// the generic twin of `poly::merge_terms`.
fn merge_terms_in<F: CoeffField>(
    field: &F,
    a: impl Iterator<Item = (Monomial, F::Elem)>,
    b: impl Iterator<Item = (Monomial, F::Elem)>,
    capacity: usize,
) -> Vec<(Monomial, F::Elem)> {
    let mut out: Vec<(Monomial, F::Elem)> = Vec::with_capacity(capacity);
    let mut a = a.peekable();
    let mut b = b.peekable();
    loop {
        let which = match (a.peek(), b.peek()) {
            (None, None) => break,
            (Some(_), None) => std::cmp::Ordering::Greater,
            (None, Some(_)) => std::cmp::Ordering::Less,
            (Some((ma, _)), Some((mb, _))) => ma.cmp(mb),
        };
        match which {
            std::cmp::Ordering::Greater => out.push(a.next().expect("peeked")),
            std::cmp::Ordering::Less => out.push(b.next().expect("peeked")),
            std::cmp::Ordering::Equal => {
                let (m, ca) = a.next().expect("peeked");
                let (_, cb) = b.next().expect("peeked");
                let c = field.add(&ca, &cb);
                if !field.is_zero(&c) {
                    out.push((m, c));
                }
            }
        }
    }
    out
}

/// What the division loop needs from a divisor: cached leading term, the
/// variable-support mask of the leading monomial, and the sorted term slice.
/// Implemented by [`CPrepared`] and by the ℚ-concrete
/// [`crate::division::PreparedDivisor`], so the exact path reuses its
/// prepared divisors without conversion.
pub trait DivisorView<F: CoeffField> {
    /// Cached leading monomial under the preparation order.
    fn lm(&self) -> &Monomial;
    /// Cached leading coefficient.
    fn lc(&self) -> &F::Elem;
    /// Variable-support fingerprint of the leading monomial.
    fn mask(&self) -> u64;
    /// The divisor's sorted term vector.
    fn terms(&self) -> &[(Monomial, F::Elem)];
}

/// A nonzero divisor with its leading term resolved once — the generic twin
/// of [`crate::division::PreparedDivisor`].
#[derive(Debug, Clone)]
pub struct CPrepared<F: CoeffField> {
    /// The divisor polynomial (nonzero).
    pub poly: CPoly<F>,
    /// Cached leading monomial under the preparation order.
    pub lm: Monomial,
    /// Cached leading coefficient.
    pub lc: F::Elem,
    /// Variable-support fingerprint of `lm`.
    pub mask: u64,
}

impl<F: CoeffField> CPrepared<F> {
    /// Prepares `poly` for repeated division under `order`; `None` when the
    /// polynomial is zero.
    pub fn new(poly: CPoly<F>, order: &MonomialOrder) -> Option<Self> {
        let (lm, lc) = poly.leading_term(order)?;
        let mask = lm.var_mask();
        Some(CPrepared { poly, lm, lc, mask })
    }
}

impl<F: CoeffField> DivisorView<F> for CPrepared<F> {
    fn lm(&self) -> &Monomial {
        &self.lm
    }
    fn lc(&self) -> &F::Elem {
        &self.lc
    }
    fn mask(&self) -> u64 {
        self.mask
    }
    fn terms(&self) -> &[(Monomial, F::Elem)] {
        self.poly.terms()
    }
}

/// Normal form of `p` modulo prepared divisors — THE division loop, shared
/// by the ℚ path ([`crate::division::prepared_normal_form`]) and the ℤ/p
/// path. `skip` excludes one divisor by index (auto-reduction). The divisor
/// selected at every step is the first whose leading monomial divides the
/// current leading term, identically to the historic concrete loop.
pub fn normal_form_in<F: CoeffField, D: DivisorView<F>>(
    field: &F,
    mut p: CPoly<F>,
    divisors: &[D],
    order: &MonomialOrder,
    skip: Option<usize>,
) -> CPoly<F> {
    let mut remainder = CPoly::zero();
    while let Some((lm_p, lc_p)) = p.leading_term(order) {
        let t_mask = lm_p.var_mask();
        let mut divided = false;
        for (i, d) in divisors.iter().enumerate() {
            if skip == Some(i) || d.mask() & !t_mask != 0 {
                continue;
            }
            if let Some(m_quot) = lm_p.div(d.lm()) {
                let c_quot = field.div(&lc_p, d.lc());
                p.sub_scaled(field, d.terms(), &m_quot, &c_quot);
                divided = true;
                break;
            }
        }
        if !divided {
            remainder.add_term(field, &lm_p, &lc_p);
            p.add_term(field, &lm_p, &field.neg(&lc_p));
        }
    }
    remainder
}

/// A pending S-pair: basis indices, the cached lcm of the two leading
/// monomials, and the pair's sugar degree. Coefficient-free.
#[derive(Debug)]
struct SPair {
    i: usize,
    j: usize,
    lcm: Monomial,
    sugar: u32,
}

/// Deterministic binary min-heap of S-pairs under the normal selection
/// strategy: smallest lcm first; ties broken by sugar degree when enabled,
/// then by pair age so the pop order is a total, reproducible function of
/// the push sequence.
#[derive(Debug)]
struct PairQueue {
    heap: Vec<SPair>,
    order: MonomialOrder,
    sugar_tiebreak: bool,
}

impl PairQueue {
    fn new(order: MonomialOrder, sugar_tiebreak: bool) -> Self {
        PairQueue {
            heap: Vec::new(),
            order,
            sugar_tiebreak,
        }
    }

    fn less(&self, a: &SPair, b: &SPair) -> bool {
        match self.order.cmp(&a.lcm, &b.lcm) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => {
                if self.sugar_tiebreak && a.sugar != b.sugar {
                    return a.sugar < b.sugar;
                }
                (a.j, a.i) < (b.j, b.i)
            }
        }
    }

    fn push(&mut self, pair: SPair) {
        self.heap.push(pair);
        let mut child = self.heap.len() - 1;
        while child > 0 {
            let parent = (child - 1) / 2;
            if self.less(&self.heap[child], &self.heap[parent]) {
                self.heap.swap(child, parent);
                child = parent;
            } else {
                break;
            }
        }
    }

    fn pop(&mut self) -> Option<SPair> {
        if self.heap.is_empty() {
            return None;
        }
        let last = self.heap.len() - 1;
        self.heap.swap(0, last);
        let top = self.heap.pop().expect("nonempty");
        let mut parent = 0;
        loop {
            let (l, r) = (2 * parent + 1, 2 * parent + 2);
            let mut smallest = parent;
            if l < self.heap.len() && self.less(&self.heap[l], &self.heap[smallest]) {
                smallest = l;
            }
            if r < self.heap.len() && self.less(&self.heap[r], &self.heap[smallest]) {
                smallest = r;
            }
            if smallest == parent {
                break;
            }
            self.heap.swap(parent, smallest);
            parent = smallest;
        }
        Some(top)
    }
}

/// The Buchberger working state, generic over the coefficient field.
struct Engine<'f, F: CoeffField> {
    field: &'f F,
    basis: Vec<CPrepared<F>>,
    sugars: Vec<u32>,
    queue: PairQueue,
    pending: HashSet<(usize, usize)>,
    options: GroebnerOptions,
    skipped_coprime: usize,
    skipped_chain: usize,
}

impl<F: CoeffField> Engine<'_, F> {
    /// Creates the pair `(i, j)` (with `i < j`) unless the coprime criterion
    /// discards it outright.
    fn push_pair(&mut self, i: usize, j: usize) {
        let (lm_i, lm_j) = (&self.basis[i].lm, &self.basis[j].lm);
        if self.options.use_coprime_criterion && lm_i.is_coprime_with(lm_j) {
            self.skipped_coprime += 1;
            return;
        }
        let lcm = lm_i.lcm(lm_j);
        let deg = lcm.total_degree();
        let sugar = (self.sugars[i] + deg - lm_i.total_degree())
            .max(self.sugars[j] + deg - lm_j.total_degree());
        self.pending.insert((i, j));
        self.queue.push(SPair { i, j, lcm, sugar });
    }

    /// Buchberger's chain (second) criterion.
    fn chain_skippable(&self, pair: &SPair) -> bool {
        let lcm_mask = pair.lcm.var_mask();
        (0..self.basis.len()).any(|k| {
            k != pair.i
                && k != pair.j
                && self.basis[k].mask & !lcm_mask == 0
                && self.basis[k].lm.divides(&pair.lcm)
                && !self.pending.contains(&ordered(pair.i, k))
                && !self.pending.contains(&ordered(pair.j, k))
        })
    }

    /// S-polynomial of basis entries `i` and `j`, reusing the pair's cached
    /// lcm and the entries' cached leading terms.
    fn s_polynomial(&self, pair: &SPair) -> CPoly<F> {
        let (f, g) = (&self.basis[pair.i], &self.basis[pair.j]);
        let mf = pair.lcm.div(&f.lm).expect("lcm divisible by lm(f)");
        let mg = pair.lcm.div(&g.lm).expect("lcm divisible by lm(g)");
        let mut s = f.poly.mul_term(self.field, &mf, &self.field.inv(&f.lc));
        let c = self.field.inv(&g.lc);
        s.sub_scaled(self.field, g.poly.terms(), &mg, &c);
        s
    }
}

fn ordered(a: usize, b: usize) -> (usize, usize) {
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Result of a generic Buchberger run: the reduced monic basis plus the
/// engine's counters, all in whatever coordinate system the input used.
#[derive(Debug)]
pub struct CoreOutput<F: CoeffField> {
    /// The reduced, monic basis, sorted descending by leading monomial.
    pub polys: Vec<CPoly<F>>,
    /// Whether the run finished before the iteration bound.
    pub complete: bool,
    /// S-polynomial reductions performed.
    pub reductions: usize,
    /// Pairs discarded by the coprime (first) criterion.
    pub skipped_coprime: usize,
    /// Pairs discarded by the chain (second) criterion.
    pub skipped_chain: usize,
}

/// Buchberger's algorithm over an arbitrary coefficient field — the engine
/// proper, shared by the ℚ path ([`crate::groebner::buchberger`]) and the
/// ℤ/p path ([`crate::modular`]). Heap pair queue (normal selection
/// strategy), coprime criterion at push, chain criterion at pop, cached
/// leading terms, clone-free auto-reduction; step for step the historic
/// concrete engine.
pub fn buchberger_core_in<F: CoeffField>(
    field: &F,
    generators: &[CPoly<F>],
    order: &MonomialOrder,
    options: &GroebnerOptions,
) -> CoreOutput<F> {
    let basis: Vec<CPrepared<F>> = generators
        .iter()
        .filter(|g| !g.is_zero())
        .map(|g| CPrepared::new(g.monic(field, order), order).expect("nonzero generator"))
        .collect();
    if basis.is_empty() {
        return CoreOutput {
            polys: Vec::new(),
            complete: true,
            reductions: 0,
            skipped_coprime: 0,
            skipped_chain: 0,
        };
    }

    let sugars = basis.iter().map(|e| e.poly.total_degree()).collect();
    let mut engine = Engine {
        field,
        basis,
        sugars,
        queue: PairQueue::new(order.clone(), options.use_sugar_tiebreak),
        pending: HashSet::new(),
        options: options.clone(),
        skipped_coprime: 0,
        skipped_chain: 0,
    };
    for i in 0..engine.basis.len() {
        for j in (i + 1)..engine.basis.len() {
            engine.push_pair(i, j);
        }
    }

    let mut reductions = 0;
    let mut complete = true;
    while let Some(pair) = engine.queue.pop() {
        engine.pending.remove(&(pair.i, pair.j));
        if engine.options.use_chain_criterion && engine.chain_skippable(&pair) {
            engine.skipped_chain += 1;
            continue;
        }
        // The bound is checked only when a pair survives the criteria: skips
        // are free, so a run whose tail pairs are all discarded by criteria
        // still reports `complete`.
        if reductions >= engine.options.max_iterations {
            complete = false;
            break;
        }
        let s = engine.s_polynomial(&pair);
        let r = normal_form_in(field, s, &engine.basis, order, None);
        reductions += 1;
        if !r.is_zero() {
            let entry = CPrepared::new(r.monic(field, order), order).expect("nonzero remainder");
            let new_index = engine.basis.len();
            engine.basis.push(entry);
            engine.sugars.push(pair.sugar);
            for k in 0..new_index {
                engine.push_pair(k, new_index);
            }
        }
    }

    let polys = auto_reduce_in(field, engine.basis, order);
    CoreOutput {
        polys,
        complete,
        reductions,
        skipped_coprime: engine.skipped_coprime,
        skipped_chain: engine.skipped_chain,
    }
}

/// Inter-reduces a basis to the reduced Gröbner basis: removes elements
/// whose leading monomial is divisible by another's, then tail-reduces each
/// element modulo the others via the index-skipping division — clone-free,
/// like the historic `auto_reduce`.
fn auto_reduce_in<F: CoeffField>(
    field: &F,
    basis: Vec<CPrepared<F>>,
    order: &MonomialOrder,
) -> Vec<CPoly<F>> {
    // Drop redundant elements (leading monomial divisible by another's).
    let mut keep = vec![true; basis.len()];
    for i in 0..basis.len() {
        if !keep[i] {
            continue;
        }
        for j in 0..basis.len() {
            if i == j || !keep[j] {
                continue;
            }
            let (lm_i, lm_j) = (&basis[i].lm, &basis[j].lm);
            if lm_j.divides(lm_i) && (lm_i != lm_j || j < i) {
                keep[i] = false;
                break;
            }
        }
    }
    let kept: Vec<CPrepared<F>> = basis
        .into_iter()
        .zip(keep)
        .filter_map(|(e, k)| if k { Some(e) } else { None })
        .collect();

    // Tail-reduce each element modulo the others. No other kept leading
    // monomial divides lm_i, so the remainder keeps lm_i (and stays monic
    // and nonzero); the cached leading monomial remains valid for sorting.
    let mut reduced: Vec<(Monomial, CPoly<F>)> = Vec::with_capacity(kept.len());
    for i in 0..kept.len() {
        let r = normal_form_in(field, kept[i].poly.clone(), &kept, order, Some(i));
        if !r.is_zero() {
            reduced.push((kept[i].lm.clone(), r.monic(field, order)));
        }
    }
    // Canonical output order: sort by leading monomial, largest first.
    reduced.sort_by(|(la, _), (lb, _)| order.cmp(lb, la));
    reduced.into_iter().map(|(_, p)| p).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poly::Poly;

    fn cp(s: &str) -> CPoly<RationalField> {
        CPoly::from_sorted_terms(Poly::parse(s).unwrap().sorted_terms().to_vec())
    }

    fn back(p: CPoly<RationalField>) -> Poly {
        Poly::from_terms(p.into_terms())
    }

    #[test]
    fn rational_cpoly_roundtrips_and_matches_poly_ops() {
        let field = RationalField;
        let order = MonomialOrder::lex(&["x", "y"]);
        let f = cp("x^2 + 2*x*y - 3");
        assert_eq!(back(f.clone()).to_string(), "x^2 + 2*x*y - 3");
        let (lm, lc) = f.leading_term(&order).unwrap();
        assert_eq!(
            (lm, lc),
            Poly::parse("x^2 + 2*x*y - 3")
                .unwrap()
                .leading_term(&order)
                .unwrap()
        );
        // monic over ℚ agrees with Poly::monic.
        let g = cp("2*x^2 - 4*y");
        assert_eq!(
            back(g.monic(&field, &order)),
            Poly::parse("2*x^2 - 4*y").unwrap().monic(&order)
        );
    }

    #[test]
    fn generic_division_matches_concrete_division() {
        use crate::division::{divide, PreparedDivisor};
        let order = MonomialOrder::grlex(&["x", "y"]);
        let divisors = [
            Poly::parse("x^2 - y").unwrap(),
            Poly::parse("x*y - 1").unwrap(),
        ];
        let f = Poly::parse("x^3 + x^2*y^2 + y^3 + x + 1").unwrap();
        let prepared: Vec<PreparedDivisor> = divisors
            .iter()
            .filter_map(|g| PreparedDivisor::new(g.clone(), &order))
            .collect();
        let generic = normal_form_in(
            &RationalField,
            CPoly::from_sorted_terms(f.sorted_terms().to_vec()),
            &prepared,
            &order,
            None,
        );
        assert_eq!(back(generic), divide(&f, &divisors, &order).remainder);
    }
}
