//! Horner (nested) forms of multivariate polynomials.
//!
//! The Horner form is a nested normal form with a minimal number of
//! multiplications and additions for sequential evaluation. The paper uses it
//! both as a cost baseline (how cheaply could this polynomial be computed with
//! plain MULs/ADDs?) and as one of the expression-tree manipulations that
//! guide side-relation selection.

use std::fmt;

use symmap_numeric::Rational;

use crate::poly::Poly;
use crate::var::Var;

/// A node of a Horner (nested) form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HornerForm {
    /// A constant leaf.
    Constant(Rational),
    /// A variable leaf.
    Variable(Var),
    /// `base + var * inner` — the nested step of Horner's rule. `base` may be
    /// absent (zero) and `power` records how many times `var` multiplies the
    /// inner form (for runs of missing coefficients).
    Nest {
        /// The variable factored out at this level.
        var: Var,
        /// The exponent applied to `var`.
        power: u32,
        /// The coefficient of `var^power` (already in Horner form).
        inner: Box<HornerForm>,
        /// The remaining terms not containing `var` at this level.
        base: Box<HornerForm>,
    },
}

impl HornerForm {
    /// Number of multiplications needed to evaluate this form (counting
    /// `var^power` as `power` multiplications).
    pub fn mul_count(&self) -> u32 {
        match self {
            HornerForm::Constant(_) | HornerForm::Variable(_) => 0,
            HornerForm::Nest {
                power, inner, base, ..
            } => {
                // var^power costs power-1 multiplications; multiplying by the
                // inner coefficient costs one more unless that coefficient is
                // ±1 (a sign flip is an add/sub, not a multiplication).
                let inner_is_unit = matches!(&**inner, HornerForm::Constant(c) if c.abs().is_one());
                let own = if inner_is_unit {
                    power.saturating_sub(1)
                } else {
                    *power
                };
                own + inner.mul_count() + base.mul_count()
            }
        }
    }

    /// Number of additions needed to evaluate this form.
    pub fn add_count(&self) -> u32 {
        match self {
            HornerForm::Constant(_) | HornerForm::Variable(_) => 0,
            HornerForm::Nest { inner, base, .. } => {
                let base_is_zero = matches!(&**base, HornerForm::Constant(c) if c.is_zero());
                (if base_is_zero { 0 } else { 1 }) + inner.add_count() + base.add_count()
            }
        }
    }

    /// Expands the nested form back into a flat polynomial (inverse of
    /// [`horner_form`]); used to check that the transformation is lossless.
    pub fn expand(&self) -> Poly {
        match self {
            HornerForm::Constant(c) => Poly::constant(c.clone()),
            HornerForm::Variable(v) => Poly::var(*v),
            HornerForm::Nest {
                var,
                power,
                inner,
                base,
            } => {
                let v = Poly::var(*var).pow(*power).expect("bounded exponent");
                v.mul(&inner.expand()).add(&base.expand())
            }
        }
    }
}

impl fmt::Display for HornerForm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HornerForm::Constant(c) => {
                if c.is_negative() {
                    write!(f, "({c})")
                } else {
                    write!(f, "{c}")
                }
            }
            HornerForm::Variable(v) => write!(f, "{v}"),
            HornerForm::Nest {
                var,
                power,
                inner,
                base,
            } => {
                let var_str = if *power == 1 {
                    format!("{var}")
                } else {
                    format!("{var}^{power}")
                };
                let inner_is_one = matches!(&**inner, HornerForm::Constant(c) if c.is_one());
                let base_is_zero = matches!(&**base, HornerForm::Constant(c) if c.is_zero());
                let prod = if inner_is_one {
                    var_str
                } else {
                    format!("{}*{var_str}", parenthesize(inner))
                };
                if base_is_zero {
                    write!(f, "{prod}")
                } else {
                    write!(f, "{} + {prod}", parenthesize_base(base))
                }
            }
        }
    }
}

fn parenthesize(h: &HornerForm) -> String {
    match h {
        HornerForm::Constant(_) | HornerForm::Variable(_) => h.to_string(),
        HornerForm::Nest { .. } => format!("({h})"),
    }
}

fn parenthesize_base(h: &HornerForm) -> String {
    h.to_string()
}

/// Converts a polynomial to Horner form with respect to an explicit variable
/// order (factored out in that order), mirroring Maple's
/// `convert(S, 'horner', [x, y])`.
pub fn horner_form(poly: &Poly, var_order: &[Var]) -> HornerForm {
    // Pick the first listed variable that actually occurs.
    let var = var_order.iter().copied().find(|&v| poly.degree_in(v) > 0);
    let Some(v) = var else {
        // No listed variable occurs: fall back to any remaining variable, or a
        // leaf for constants / single variables.
        let vars = poly.vars();
        if let Some(other) = vars.iter().next() {
            if !var_order.contains(&other) {
                return horner_form(poly, &[other]);
            }
        }
        return leaf(poly);
    };
    let rest: Vec<Var> = var_order.iter().copied().filter(|&x| x != v).collect();

    let coeffs = poly.coefficients_in(v);
    // Process from the highest power down, nesting as we go and skipping runs
    // of zero coefficients by raising the power.
    let mut acc: Option<(HornerForm, u32)> = None; // (form, pending power of v)
    for k in (0..coeffs.len()).rev() {
        let c = &coeffs[k];
        match (&mut acc, c.is_zero()) {
            (None, true) => {}
            (None, false) => {
                acc = Some((horner_form(c, &rest), k as u32));
            }
            (Some((form, pending)), is_zero) => {
                if k == 0 && is_zero && *pending > 0 {
                    // Final wrap with no constant term.
                    let power = *pending;
                    let inner = std::mem::replace(form, HornerForm::Constant(Rational::zero()));
                    acc = Some((
                        HornerForm::Nest {
                            var: v,
                            power,
                            inner: Box::new(inner),
                            base: Box::new(HornerForm::Constant(Rational::zero())),
                        },
                        0,
                    ));
                } else if !is_zero {
                    let power = *pending - k as u32;
                    let inner = std::mem::replace(form, HornerForm::Constant(Rational::zero()));
                    acc = Some((
                        HornerForm::Nest {
                            var: v,
                            power,
                            inner: Box::new(inner),
                            base: Box::new(horner_form(c, &rest)),
                        },
                        k as u32,
                    ));
                }
            }
        }
    }
    match acc {
        None => HornerForm::Constant(Rational::zero()),
        Some((form, 0)) => form,
        Some((form, pending)) => HornerForm::Nest {
            var: v,
            power: pending,
            inner: Box::new(form),
            base: Box::new(HornerForm::Constant(Rational::zero())),
        },
    }
}

/// Horner form using the polynomial's own variables in default (interner)
/// order.
pub fn horner_form_auto(poly: &Poly) -> HornerForm {
    let vars: Vec<Var> = poly.vars().iter().collect();
    horner_form(poly, &vars)
}

fn leaf(poly: &Poly) -> HornerForm {
    if let Some(c) = poly.as_constant() {
        return HornerForm::Constant(c);
    }
    if let Some(v) = poly.as_single_variable() {
        return HornerForm::Variable(v);
    }
    // Shouldn't happen: non-constant polynomial with no variables.
    HornerForm::Constant(Rational::zero())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn p(s: &str) -> Poly {
        Poly::parse(s).unwrap()
    }

    fn vars(names: &[&str]) -> Vec<Var> {
        names.iter().map(|n| Var::new(n)).collect()
    }

    #[test]
    fn univariate_horner_structure() {
        // 3x^3 + 2x + 1 -> 1 + x*(2 + x^2*3): 2 + power muls... expand must match.
        let q = p("3*x^3 + 2*x + 1");
        let h = horner_form(&q, &vars(&["x"]));
        assert_eq!(h.expand(), q);
        // Horner never needs more multiplications than the naive expansion.
        assert!(h.mul_count() <= q.naive_op_count().0);
    }

    #[test]
    fn paper_example_from_section_3_3() {
        // S := y^2*x + y*x^2 + 4*x*y + x^2 + 2*x
        // convert(S, 'horner', [x, y]) = (2 + (4 + y)*y + (y + 1)*x)*x
        let q = p("y^2*x + y*x^2 + 4*x*y + x^2 + 2*x");
        let h = horner_form(&q, &vars(&["x", "y"]));
        assert_eq!(h.expand(), q, "horner form must be lossless");
        // The Maple output uses 4 multiplications ((4+y)*y, (y+1)*x, outer *x)
        // — allow equality with that count.
        assert!(
            h.mul_count() <= 4,
            "mul count {} too high: {h}",
            h.mul_count()
        );
        assert!(h.add_count() <= 4);
        let naive = q.naive_op_count();
        assert!(
            h.mul_count() < naive.0,
            "horner {} should beat naive {}",
            h.mul_count(),
            naive.0
        );
    }

    #[test]
    fn constant_and_single_variable_leaves() {
        assert_eq!(
            horner_form(&p("5"), &vars(&["x"])),
            HornerForm::Constant(Rational::integer(5))
        );
        assert_eq!(
            horner_form(&Poly::zero(), &vars(&["x"])),
            HornerForm::Constant(Rational::zero())
        );
        assert_eq!(horner_form(&p("x"), &vars(&["x"])).expand(), p("x"));
    }

    #[test]
    fn sparse_polynomial_uses_power_jumps() {
        // x^6 + 1: Horner should not introduce five nested x multiplications
        // of zero coefficients; the power jump keeps the structure shallow.
        let q = p("x^6 + 1");
        let h = horner_form(&q, &vars(&["x"]));
        assert_eq!(h.expand(), q);
        assert!(h.mul_count() <= 6);
    }

    #[test]
    fn variable_order_changes_shape_but_not_value() {
        let q = p("x^2*y + x*y^2 + x*y + x + y");
        let hx = horner_form(&q, &vars(&["x", "y"]));
        let hy = horner_form(&q, &vars(&["y", "x"]));
        assert_eq!(hx.expand(), q);
        assert_eq!(hy.expand(), q);
    }

    #[test]
    fn unlisted_variables_still_handled() {
        let q = p("a*b + b^2");
        let h = horner_form(&q, &vars(&["zz_unrelated"]));
        assert_eq!(h.expand(), q);
    }

    #[test]
    fn display_is_readable() {
        let q = p("x^2 + 2*x + 1");
        let h = horner_form(&q, &vars(&["x"]));
        let s = h.to_string();
        assert!(s.contains('x'), "display {s}");
        assert_eq!(
            Poly::parse(&s).unwrap(),
            q,
            "display must parse back to the same polynomial"
        );
    }

    #[test]
    fn display_round_trips_multivariate() {
        for src in [
            "y^2*x + y*x^2 + 4*x*y + x^2 + 2*x",
            "x^6 + 1",
            "x*y*z + x*y + x",
            "-x^2 + 3",
        ] {
            let q = p(src);
            let h = horner_form_auto(&q);
            assert_eq!(
                Poly::parse(&h.to_string()).unwrap(),
                q,
                "round trip for {src}: {h}"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_horner_expand_is_identity(
            a in -6_i64..6, b in -6_i64..6, c in -6_i64..6, d in -6_i64..6,
            e1 in 0_u32..4, e2 in 0_u32..4,
        ) {
            let src = format!("{a}*x^{e1}*y + {b}*x*y^{e2} + {c}*x + {d}");
            let q = Poly::parse(&src).unwrap();
            let h = horner_form(&q, &[Var::new("x"), Var::new("y")]);
            prop_assert_eq!(h.expand(), q);
        }

        #[test]
        fn prop_horner_never_worse_than_naive(
            a in 1_i64..6, b in -6_i64..6, c in -6_i64..6,
            e in 2_u32..6,
        ) {
            let q = Poly::parse(&format!("{a}*x^{e} + {b}*x^2 + {c}*x + 1")).unwrap();
            let h = horner_form(&q, &[Var::new("x")]);
            prop_assert!(h.mul_count() <= q.naive_op_count().0);
        }
    }
}
