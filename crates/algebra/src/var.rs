//! Interned symbolic variables.
//!
//! Variables are interned process-wide so that a variable called `x` in a
//! library element's polynomial and a variable called `x` in a target-code
//! polynomial are the same symbol. [`Var`] is a cheap `Copy` handle;
//! [`VarSet`] is an *ordered* collection of variables used to express
//! orderings such as Maple's `[x, y, p]` argument to `simplify`.
//!
//! # Interner design
//!
//! Interning (`Var::new`) takes a mutex around a `HashMap<&str, u32>`, so a
//! lookup is one hash probe instead of the former `O(n)` scan of every name
//! ever interned. Resolution (`Var::name`, and therefore every `Display` of
//! every variable of every polynomial) is **lock-free**: names live in leaked
//! append-only segments published through atomics, and `name()` returns the
//! `&'static str` directly — no lock, no `String` clone. This matters because
//! formatting a polynomial resolves a name per variable *occurrence*, and the
//! mapper's reports format thousands of terms.

use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicPtr, Ordering as AtomicOrdering};
use std::sync::{Mutex, OnceLock};

/// log2 of the first segment's capacity: segment `s` holds `2^(s + 5)` names,
/// so 27 segments cover `2^32 - 32` variables — effectively the full index
/// space of a `u32` handle.
const FIRST_SEGMENT_BITS: u32 = 5;
/// Number of name segments (doubling capacities).
const SEGMENT_COUNT: usize = 27;

/// Append-only, lock-free-readable name table.
///
/// Each segment is a leaked boxed slice of `OnceLock<&'static str>` published
/// through an [`AtomicPtr`]; a slot is written (under the intern mutex) before
/// its index ever escapes as a [`Var`], so any index a reader can legally hold
/// resolves without blocking.
struct NameTable {
    /// Published name segments (leaked, capacities doubling per slot).
    segments: [AtomicPtr<OnceLock<&'static str>>; SEGMENT_COUNT],
    /// Hashed name → index lookup, guarded by the intern mutex.
    map: Mutex<HashMap<&'static str, u32>>,
}

/// Segment and offset of a global name index.
fn locate(index: u32) -> (usize, usize) {
    let virtual_index = index as u64 + (1 << FIRST_SEGMENT_BITS);
    let seg = (virtual_index.ilog2() - FIRST_SEGMENT_BITS) as usize;
    let base = (1_u64 << (seg as u32 + FIRST_SEGMENT_BITS)) - (1 << FIRST_SEGMENT_BITS);
    (seg, (index as u64 - base) as usize)
}

/// Capacity of segment `seg`.
fn segment_len(seg: usize) -> usize {
    1 << (seg as u32 + FIRST_SEGMENT_BITS)
}

fn table() -> &'static NameTable {
    static TABLE: OnceLock<NameTable> = OnceLock::new();
    TABLE.get_or_init(|| NameTable {
        segments: [const { AtomicPtr::new(std::ptr::null_mut()) }; SEGMENT_COUNT],
        map: Mutex::new(HashMap::new()),
    })
}

impl NameTable {
    /// Interns `name`, returning its stable index.
    fn intern(&self, name: &str) -> u32 {
        let mut map = self.map.lock().expect("variable interner poisoned");
        if let Some(&idx) = map.get(name) {
            return idx;
        }
        // The segment table covers virtual indices below 2^32, i.e. raw
        // indices up to u32::MAX - 32; fail with the capacity message before
        // `locate` could index past the last segment.
        let idx = u32::try_from(map.len())
            .ok()
            .filter(|&i| (i as u64) + (1 << FIRST_SEGMENT_BITS) < 1 << 32)
            .expect("variable interner full");
        let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
        let (seg, offset) = locate(idx);
        let mut ptr = self.segments[seg].load(AtomicOrdering::Acquire);
        if ptr.is_null() {
            let fresh: Box<[OnceLock<&'static str>]> =
                (0..segment_len(seg)).map(|_| OnceLock::new()).collect();
            ptr = Box::leak(fresh).as_mut_ptr();
            // Only this thread allocates (we hold the mutex), so a plain
            // Release store publishes the zeroed segment.
            self.segments[seg].store(ptr, AtomicOrdering::Release);
        }
        // SAFETY: `ptr` is non-null and points at a leaked (never freed)
        // slice of exactly `segment_len(seg)` OnceLocks: it is either the
        // allocation made just above on this thread, or one published by a
        // previous `intern` call's Release store — which this function's
        // Acquire load pairs with, making the fully initialized slice
        // visible. Interners never store any other value, the slice is
        // leaked via Box::leak so the 'static lifetime is real, and
        // `offset < segment_len(seg)` by construction of `locate`, so the
        // pointer arithmetic stays in bounds of the one allocation.
        let slot = unsafe { &*ptr.add(offset) };
        slot.set(leaked).expect("fresh interner slot set twice");
        map.insert(leaked, idx);
        idx
    }

    /// Resolves an index previously returned by [`NameTable::intern`].
    ///
    /// Lock-free: one atomic load plus a `OnceLock` read.
    fn resolve(&self, index: u32) -> &'static str {
        let (seg, offset) = locate(index);
        let ptr = self.segments[seg].load(AtomicOrdering::Acquire);
        assert!(!ptr.is_null(), "unknown variable index {index}");
        // SAFETY: the only non-null value ever stored into
        // `segments[seg]` is the Box::leak'd slice of `segment_len(seg)`
        // OnceLocks published by `intern`'s Release store; the Acquire load
        // above pairs with it, so observing non-null here guarantees the
        // whole allocation (and every OnceLock in it) is visible and alive
        // forever (leaked, never freed). A caller-supplied `index` only
        // reaches a published slot because `intern` sets the slot's
        // OnceLock under the interner mutex *before* the index escapes to
        // any caller, and `offset < segment_len(seg)` by construction of
        // `locate` keeps the pointer arithmetic in bounds.
        let slot = unsafe { &*ptr.add(offset) };
        slot.get().expect("variable index not yet published")
    }
}

/// A symbolic variable, interned by name.
///
/// ```
/// use symmap_algebra::var::Var;
///
/// let x1 = Var::new("x");
/// let x2 = Var::new("x");
/// assert_eq!(x1, x2);
/// assert_eq!(x1.name(), "x");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(u32);

impl Var {
    /// Interns `name` and returns its handle. Calling this twice with the same
    /// name yields equal handles; the lookup is a single hash probe.
    pub fn new(name: &str) -> Self {
        Var(table().intern(name))
    }

    /// The variable's textual name. Lock-free and allocation-free: the name
    /// lives in the process-wide interner for the lifetime of the process.
    pub fn name(&self) -> &'static str {
        table().resolve(self.0)
    }

    /// The raw interner index. Stable for the lifetime of the process.
    pub fn index(&self) -> u32 {
        self.0
    }

    /// Rebuilds a handle from a raw interner index. Internal: packed
    /// monomials store exponents densely by variable index and need to
    /// reconstruct handles when iterating.
    pub(crate) fn from_index(index: u32) -> Var {
        Var(index)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An *ordered* list of distinct variables.
///
/// The order is significant: it defines variable precedence for lexicographic
/// and elimination monomial orders (first = most significant), mirroring the
/// variable-list argument of Maple's `simplify` and `convert(..., 'horner')`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct VarSet {
    vars: Vec<Var>,
}

impl VarSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        VarSet { vars: Vec::new() }
    }

    /// Creates a set from variable names, in the given precedence order.
    pub fn from_names(names: &[&str]) -> Self {
        let mut set = VarSet::new();
        for n in names {
            set.push(Var::new(n));
        }
        set
    }

    /// Appends a variable if not already present; returns `true` if added.
    pub fn push(&mut self, v: Var) -> bool {
        if self.vars.contains(&v) {
            false
        } else {
            self.vars.push(v);
            true
        }
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// Returns `true` when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// Returns `true` if the set contains `v`.
    pub fn contains(&self, v: Var) -> bool {
        self.vars.contains(&v)
    }

    /// Position of `v` in the precedence order, if present.
    pub fn position(&self, v: Var) -> Option<usize> {
        self.vars.iter().position(|&x| x == v)
    }

    /// Iterates over the variables in precedence order.
    pub fn iter(&self) -> impl Iterator<Item = Var> + '_ {
        self.vars.iter().copied()
    }

    /// The variables as a slice, in precedence order.
    pub fn as_slice(&self) -> &[Var] {
        &self.vars
    }

    /// Builds the union of two sets, keeping `self`'s order first.
    pub fn union(&self, other: &VarSet) -> VarSet {
        let mut out = self.clone();
        for v in other.iter() {
            out.push(v);
        }
        out
    }

    /// Returns the set of variables present in `self` but not in `other`
    /// (order preserved).
    pub fn difference(&self, other: &VarSet) -> VarSet {
        let other_set: BTreeSet<Var> = other.iter().collect();
        VarSet {
            vars: self
                .vars
                .iter()
                .copied()
                .filter(|v| !other_set.contains(v))
                .collect(),
        }
    }
}

impl FromIterator<Var> for VarSet {
    fn from_iter<T: IntoIterator<Item = Var>>(iter: T) -> Self {
        let mut s = VarSet::new();
        for v in iter {
            s.push(v);
        }
        s
    }
}

impl fmt::Display for VarSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.vars.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let a = Var::new("alpha_test_var");
        let b = Var::new("alpha_test_var");
        let c = Var::new("beta_test_var");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.name(), "alpha_test_var");
        assert_eq!(c.name(), "beta_test_var");
    }

    #[test]
    fn segment_locator_covers_the_index_space() {
        // Indices map to (segment, offset) pairs that are dense and in bounds.
        let mut expected = Vec::new();
        for seg in 0..4 {
            for off in 0..segment_len(seg) {
                expected.push((seg, off));
            }
        }
        for (idx, &(seg, off)) in expected.iter().enumerate() {
            assert_eq!(locate(idx as u32), (seg, off), "index {idx}");
        }
        // The last representable index still lands inside the segment table.
        let (seg, off) = locate(u32::MAX - (1 << FIRST_SEGMENT_BITS));
        assert!(seg < SEGMENT_COUNT);
        assert!(off < segment_len(seg));
    }

    #[test]
    fn interner_crosses_segment_boundaries() {
        // Intern enough fresh names to spill past the first (32-entry)
        // segment regardless of what other tests interned first.
        let vars: Vec<Var> = (0..80)
            .map(|i| Var::new(&format!("seg_boundary_test_var_{i}")))
            .collect();
        for (i, v) in vars.iter().enumerate() {
            assert_eq!(v.name(), format!("seg_boundary_test_var_{i}"));
        }
    }

    #[test]
    fn concurrent_interning_and_resolution() {
        use std::thread;
        let handles: Vec<_> = (0..4)
            .map(|t| {
                thread::spawn(move || {
                    let mut resolved = Vec::new();
                    for i in 0..64 {
                        // Half shared names (contended interning), half unique.
                        let name = if i % 2 == 0 {
                            format!("concurrent_shared_{i}")
                        } else {
                            format!("concurrent_t{t}_{i}")
                        };
                        let v = Var::new(&name);
                        resolved.push((v, name));
                    }
                    for (v, name) in resolved {
                        assert_eq!(v.name(), name);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("interner thread panicked");
        }
        // Shared names interned from different threads are the same handle.
        assert_eq!(
            Var::new("concurrent_shared_0"),
            Var::new("concurrent_shared_0")
        );
    }

    #[test]
    fn varset_preserves_order_and_dedups() {
        let mut s = VarSet::from_names(&["x", "y"]);
        assert_eq!(s.len(), 2);
        assert!(!s.push(Var::new("x")));
        assert!(s.push(Var::new("z")));
        assert_eq!(s.position(Var::new("x")), Some(0));
        assert_eq!(s.position(Var::new("z")), Some(2));
        assert_eq!(s.to_string(), "[x, y, z]");
    }

    #[test]
    fn union_and_difference() {
        let a = VarSet::from_names(&["x", "y"]);
        let b = VarSet::from_names(&["y", "z"]);
        let u = a.union(&b);
        assert_eq!(u.len(), 3);
        assert_eq!(u.position(Var::new("z")), Some(2));
        let d = a.difference(&b);
        assert_eq!(d.len(), 1);
        assert!(d.contains(Var::new("x")));
    }

    #[test]
    fn from_iterator() {
        let s: VarSet = [Var::new("x"), Var::new("y"), Var::new("x")]
            .into_iter()
            .collect();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn empty_set() {
        let s = VarSet::new();
        assert!(s.is_empty());
        assert_eq!(s.to_string(), "[]");
    }
}
