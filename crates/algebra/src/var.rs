//! Interned symbolic variables.
//!
//! Variables are interned process-wide so that a variable called `x` in a
//! library element's polynomial and a variable called `x` in a target-code
//! polynomial are the same symbol. [`Var`] is a cheap `Copy` handle;
//! [`VarSet`] is an *ordered* collection of variables used to express
//! orderings such as Maple's `[x, y, p]` argument to `simplify`.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// Process-wide variable interner.
fn interner() -> &'static Mutex<Vec<String>> {
    static INTERNER: OnceLock<Mutex<Vec<String>>> = OnceLock::new();
    INTERNER.get_or_init(|| Mutex::new(Vec::new()))
}

/// A symbolic variable, interned by name.
///
/// ```
/// use symmap_algebra::var::Var;
///
/// let x1 = Var::new("x");
/// let x2 = Var::new("x");
/// assert_eq!(x1, x2);
/// assert_eq!(x1.name(), "x");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(u32);

impl Var {
    /// Interns `name` and returns its handle. Calling this twice with the same
    /// name yields equal handles.
    pub fn new(name: &str) -> Self {
        let mut table = interner().lock().expect("variable interner poisoned");
        if let Some(idx) = table.iter().position(|n| n == name) {
            Var(idx as u32)
        } else {
            table.push(name.to_string());
            Var((table.len() - 1) as u32)
        }
    }

    /// The variable's textual name.
    pub fn name(&self) -> String {
        interner().lock().expect("variable interner poisoned")[self.0 as usize].clone()
    }

    /// The raw interner index. Stable for the lifetime of the process.
    pub fn index(&self) -> u32 {
        self.0
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// An *ordered* list of distinct variables.
///
/// The order is significant: it defines variable precedence for lexicographic
/// and elimination monomial orders (first = most significant), mirroring the
/// variable-list argument of Maple's `simplify` and `convert(..., 'horner')`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct VarSet {
    vars: Vec<Var>,
}

impl VarSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        VarSet { vars: Vec::new() }
    }

    /// Creates a set from variable names, in the given precedence order.
    pub fn from_names(names: &[&str]) -> Self {
        let mut set = VarSet::new();
        for n in names {
            set.push(Var::new(n));
        }
        set
    }

    /// Appends a variable if not already present; returns `true` if added.
    pub fn push(&mut self, v: Var) -> bool {
        if self.vars.contains(&v) {
            false
        } else {
            self.vars.push(v);
            true
        }
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// Returns `true` when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// Returns `true` if the set contains `v`.
    pub fn contains(&self, v: Var) -> bool {
        self.vars.contains(&v)
    }

    /// Position of `v` in the precedence order, if present.
    pub fn position(&self, v: Var) -> Option<usize> {
        self.vars.iter().position(|&x| x == v)
    }

    /// Iterates over the variables in precedence order.
    pub fn iter(&self) -> impl Iterator<Item = Var> + '_ {
        self.vars.iter().copied()
    }

    /// The variables as a slice, in precedence order.
    pub fn as_slice(&self) -> &[Var] {
        &self.vars
    }

    /// Builds the union of two sets, keeping `self`'s order first.
    pub fn union(&self, other: &VarSet) -> VarSet {
        let mut out = self.clone();
        for v in other.iter() {
            out.push(v);
        }
        out
    }

    /// Returns the set of variables present in `self` but not in `other`
    /// (order preserved).
    pub fn difference(&self, other: &VarSet) -> VarSet {
        let other_set: BTreeSet<Var> = other.iter().collect();
        VarSet {
            vars: self
                .vars
                .iter()
                .copied()
                .filter(|v| !other_set.contains(v))
                .collect(),
        }
    }
}

impl FromIterator<Var> for VarSet {
    fn from_iter<T: IntoIterator<Item = Var>>(iter: T) -> Self {
        let mut s = VarSet::new();
        for v in iter {
            s.push(v);
        }
        s
    }
}

impl fmt::Display for VarSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.vars.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let a = Var::new("alpha_test_var");
        let b = Var::new("alpha_test_var");
        let c = Var::new("beta_test_var");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.name(), "alpha_test_var");
        assert_eq!(c.name(), "beta_test_var");
    }

    #[test]
    fn varset_preserves_order_and_dedups() {
        let mut s = VarSet::from_names(&["x", "y"]);
        assert_eq!(s.len(), 2);
        assert!(!s.push(Var::new("x")));
        assert!(s.push(Var::new("z")));
        assert_eq!(s.position(Var::new("x")), Some(0));
        assert_eq!(s.position(Var::new("z")), Some(2));
        assert_eq!(s.to_string(), "[x, y, z]");
    }

    #[test]
    fn union_and_difference() {
        let a = VarSet::from_names(&["x", "y"]);
        let b = VarSet::from_names(&["y", "z"]);
        let u = a.union(&b);
        assert_eq!(u.len(), 3);
        assert_eq!(u.position(Var::new("z")), Some(2));
        let d = a.difference(&b);
        assert_eq!(d.len(), 1);
        assert!(d.contains(Var::new("x")));
    }

    #[test]
    fn from_iterator() {
        let s: VarSet = [Var::new("x"), Var::new("y"), Var::new("x")]
            .into_iter()
            .collect();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn empty_set() {
        let s = VarSet::new();
        assert!(s.is_empty());
        assert_eq!(s.to_string(), "[]");
    }
}
