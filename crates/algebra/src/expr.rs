//! Symbolic expression trees.
//!
//! The mapping algorithm of Table 2 operates on an *expression tree*
//! (`exp_tree`) in addition to flat polynomials: tree-height reduction,
//! factoring, Horner transformation and substitution each yield a different
//! tree for the same function, and each tree suggests a different initial set
//! of side relations. [`Expr`] is that tree form; it also carries
//! non-polynomial leaves (calls to `exp`, `log`, …) so the identification step
//! can decide where to substitute a series approximation.

// lint:allow-file(D3): eval_f64 is the explicit float *boundary* — a
// diagnostic evaluator for spot-checking expressions numerically. The
// mapping pipeline itself never consumes its results.
use std::collections::BTreeMap;
use std::fmt;

use symmap_numeric::series::{taylor_rational, Function};
use symmap_numeric::Rational;

use crate::error::AlgebraError;
use crate::poly::Poly;
use crate::var::Var;

/// A symbolic expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A rational constant.
    Constant(Rational),
    /// A variable reference.
    Variable(Var),
    /// Sum of subexpressions.
    Add(Vec<Expr>),
    /// Product of subexpressions.
    Mul(Vec<Expr>),
    /// A subexpression raised to a fixed non-negative power.
    Pow(Box<Expr>, u32),
    /// A call to an elementary function (non-polynomial leaf).
    Call(Function, Box<Expr>),
}

impl Expr {
    /// A constant expression.
    pub fn constant(c: i64) -> Expr {
        Expr::Constant(Rational::integer(c))
    }

    /// A named-variable expression.
    pub fn var(name: &str) -> Expr {
        Expr::Variable(Var::new(name))
    }

    /// Sum of two expressions (flattening nested sums).
    // Consuming n-ary constructors, not std ops (which would force clones).
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Expr) -> Expr {
        match (self, other) {
            (Expr::Add(mut a), Expr::Add(b)) => {
                a.extend(b);
                Expr::Add(a)
            }
            (Expr::Add(mut a), b) => {
                a.push(b);
                Expr::Add(a)
            }
            (a, Expr::Add(mut b)) => {
                b.insert(0, a);
                Expr::Add(b)
            }
            (a, b) => Expr::Add(vec![a, b]),
        }
    }

    /// Product of two expressions (flattening nested products).
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: Expr) -> Expr {
        match (self, other) {
            (Expr::Mul(mut a), Expr::Mul(b)) => {
                a.extend(b);
                Expr::Mul(a)
            }
            (Expr::Mul(mut a), b) => {
                a.push(b);
                Expr::Mul(a)
            }
            (a, Expr::Mul(mut b)) => {
                b.insert(0, a);
                Expr::Mul(b)
            }
            (a, b) => Expr::Mul(vec![a, b]),
        }
    }

    /// Height of the tree (a leaf has height 1). Tree-height reduction tries
    /// to minimize this, which shortens the critical path of the generated
    /// code and, in the mapping algorithm, produces alternative groupings of
    /// operands.
    pub fn height(&self) -> usize {
        match self {
            Expr::Constant(_) | Expr::Variable(_) => 1,
            Expr::Add(xs) | Expr::Mul(xs) => 1 + xs.iter().map(Expr::height).max().unwrap_or(0),
            Expr::Pow(b, _) => 1 + b.height(),
            Expr::Call(_, a) => 1 + a.height(),
        }
    }

    /// Number of operation nodes (adds, muls, pows, calls).
    pub fn op_count(&self) -> usize {
        match self {
            Expr::Constant(_) | Expr::Variable(_) => 0,
            Expr::Add(xs) | Expr::Mul(xs) => {
                xs.len().saturating_sub(1) + xs.iter().map(Expr::op_count).sum::<usize>()
            }
            Expr::Pow(b, _) => 1 + b.op_count(),
            Expr::Call(_, a) => 1 + a.op_count(),
        }
    }

    /// Returns `true` when the expression contains no [`Expr::Call`] node,
    /// i.e. it is already a polynomial.
    pub fn is_polynomial(&self) -> bool {
        match self {
            Expr::Constant(_) | Expr::Variable(_) => true,
            Expr::Add(xs) | Expr::Mul(xs) => xs.iter().all(Expr::is_polynomial),
            Expr::Pow(b, _) => b.is_polynomial(),
            Expr::Call(_, _) => false,
        }
    }

    /// Converts the expression into a flat polynomial.
    ///
    /// # Errors
    ///
    /// Returns [`AlgebraError::NotPolynomial`] if the tree contains a function
    /// call (use [`Expr::approximate_calls`] first) and
    /// [`AlgebraError::ExponentTooLarge`] for oversized exponents.
    pub fn to_poly(&self) -> Result<Poly, AlgebraError> {
        match self {
            Expr::Constant(c) => Ok(Poly::constant(c.clone())),
            Expr::Variable(v) => Ok(Poly::var(*v)),
            Expr::Add(xs) => {
                let mut acc = Poly::zero();
                for x in xs {
                    acc = acc.add(&x.to_poly()?);
                }
                Ok(acc)
            }
            Expr::Mul(xs) => {
                let mut acc = Poly::one();
                for x in xs {
                    acc = acc.mul(&x.to_poly()?);
                }
                Ok(acc)
            }
            Expr::Pow(b, e) => b.to_poly()?.pow(*e),
            Expr::Call(f, _) => Err(AlgebraError::NotPolynomial(format!(
                "call to `{}`",
                f.name()
            ))),
        }
    }

    /// Replaces every [`Expr::Call`] node by a truncated Taylor polynomial in
    /// its argument with `terms` terms (coefficients approximated by rationals
    /// with denominators at most `max_den`). This is the §3.2 treatment of
    /// nonlinear functions.
    pub fn approximate_calls(&self, terms: usize, max_den: u64) -> Expr {
        match self {
            Expr::Constant(_) | Expr::Variable(_) => self.clone(),
            Expr::Add(xs) => Expr::Add(
                xs.iter()
                    .map(|x| x.approximate_calls(terms, max_den))
                    .collect(),
            ),
            Expr::Mul(xs) => Expr::Mul(
                xs.iter()
                    .map(|x| x.approximate_calls(terms, max_den))
                    .collect(),
            ),
            Expr::Pow(b, e) => Expr::Pow(Box::new(b.approximate_calls(terms, max_den)), *e),
            Expr::Call(f, arg) => {
                let arg = arg.approximate_calls(terms, max_den);
                let coeffs = taylor_rational(*f, terms, max_den);
                // Σ c_k * arg^k as an expression tree.
                let mut sum: Vec<Expr> = Vec::new();
                for (k, c) in coeffs.iter().enumerate() {
                    if c.is_zero() {
                        continue;
                    }
                    let term = if k == 0 {
                        Expr::Constant(c.clone())
                    } else {
                        Expr::Constant(c.clone()).mul(Expr::Pow(Box::new(arg.clone()), k as u32))
                    };
                    sum.push(term);
                }
                if sum.is_empty() {
                    Expr::Constant(Rational::zero())
                } else if sum.len() == 1 {
                    sum.pop().expect("one element")
                } else {
                    Expr::Add(sum)
                }
            }
        }
    }

    /// Evaluates the expression in floating point.
    pub fn eval_f64(&self, assignment: &BTreeMap<Var, f64>) -> f64 {
        match self {
            Expr::Constant(c) => c.to_f64(),
            Expr::Variable(v) => assignment.get(v).copied().unwrap_or(0.0),
            Expr::Add(xs) => xs.iter().map(|x| x.eval_f64(assignment)).sum(),
            Expr::Mul(xs) => xs.iter().map(|x| x.eval_f64(assignment)).product(),
            Expr::Pow(b, e) => b.eval_f64(assignment).powi(*e as i32),
            Expr::Call(f, a) => f.eval(a.eval_f64(assignment)),
        }
    }

    /// Rebalances sums and products into near-balanced binary trees
    /// (tree-height reduction). The flat n-ary structure is preserved
    /// semantically; only the nesting that [`Expr::height`] measures changes.
    pub fn reduce_tree_height(&self) -> Expr {
        match self {
            Expr::Constant(_) | Expr::Variable(_) => self.clone(),
            Expr::Add(xs) => balance(xs, true),
            Expr::Mul(xs) => balance(xs, false),
            Expr::Pow(b, e) => Expr::Pow(Box::new(b.reduce_tree_height()), *e),
            Expr::Call(f, a) => Expr::Call(*f, Box::new(a.reduce_tree_height())),
        }
    }

    /// Collects all variables referenced by the expression.
    pub fn vars(&self) -> crate::var::VarSet {
        let mut out = crate::var::VarSet::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut crate::var::VarSet) {
        match self {
            Expr::Constant(_) => {}
            Expr::Variable(v) => {
                out.push(*v);
            }
            Expr::Add(xs) | Expr::Mul(xs) => {
                for x in xs {
                    x.collect_vars(out);
                }
            }
            Expr::Pow(b, _) => b.collect_vars(out),
            Expr::Call(_, a) => a.collect_vars(out),
        }
    }
}

fn balance(xs: &[Expr], is_add: bool) -> Expr {
    // Flatten nested sums-of-sums / products-of-products into one operand
    // list, reduce each operand, then rebuild as a balanced binary tree.
    let mut operands: Vec<Expr> = Vec::new();
    flatten(xs, is_add, &mut operands);
    let reduced: Vec<Expr> = operands.iter().map(Expr::reduce_tree_height).collect();
    build_balanced(&reduced, is_add)
}

fn flatten(xs: &[Expr], is_add: bool, out: &mut Vec<Expr>) {
    for x in xs {
        match (x, is_add) {
            (Expr::Add(inner), true) | (Expr::Mul(inner), false) => flatten(inner, is_add, out),
            _ => out.push(x.clone()),
        }
    }
}

fn build_balanced(xs: &[Expr], is_add: bool) -> Expr {
    match xs.len() {
        0 => {
            if is_add {
                Expr::Constant(Rational::zero())
            } else {
                Expr::Constant(Rational::one())
            }
        }
        1 => xs[0].clone(),
        _ => {
            let mid = xs.len() / 2;
            let left = build_balanced(&xs[..mid], is_add);
            let right = build_balanced(&xs[mid..], is_add);
            if is_add {
                Expr::Add(vec![left, right])
            } else {
                Expr::Mul(vec![left, right])
            }
        }
    }
}

impl From<Poly> for Expr {
    /// Converts a flat polynomial into a sum-of-products expression tree.
    fn from(p: Poly) -> Expr {
        if p.is_zero() {
            return Expr::Constant(Rational::zero());
        }
        let mut terms: Vec<Expr> = Vec::new();
        for (m, c) in p.iter() {
            let mut factors: Vec<Expr> = Vec::new();
            if !c.is_one() || m.is_one() {
                factors.push(Expr::Constant(c.clone()));
            }
            for (v, e) in m.iter() {
                if e == 1 {
                    factors.push(Expr::Variable(v));
                } else {
                    factors.push(Expr::Pow(Box::new(Expr::Variable(v)), e));
                }
            }
            terms.push(if factors.len() == 1 {
                factors.pop().expect("one factor")
            } else {
                Expr::Mul(factors)
            });
        }
        if terms.len() == 1 {
            terms.pop().expect("one term")
        } else {
            Expr::Add(terms)
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Constant(c) => {
                if c.is_negative() {
                    write!(f, "({c})")
                } else {
                    write!(f, "{c}")
                }
            }
            Expr::Variable(v) => write!(f, "{v}"),
            Expr::Add(xs) => {
                write!(f, "(")?;
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " + ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
            Expr::Mul(xs) => {
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, "*")?;
                    }
                    write!(f, "{x}")?;
                }
                Ok(())
            }
            Expr::Pow(b, e) => write!(f, "{b}^{e}"),
            Expr::Call(func, a) => write!(f, "{}({a})", func.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Poly {
        Poly::parse(s).unwrap()
    }

    #[test]
    fn build_and_convert_to_poly() {
        let e = Expr::var("x").mul(Expr::var("x")).add(Expr::constant(1));
        assert_eq!(e.to_poly().unwrap(), p("x^2 + 1"));
        assert!(e.is_polynomial());
    }

    #[test]
    fn poly_round_trip_through_expr() {
        for s in ["x^2 + 2*x*y + y^2", "3*x - 1/2", "x*y*z", "0", "7"] {
            let q = p(s);
            let e: Expr = q.clone().into();
            assert_eq!(e.to_poly().unwrap(), q, "round trip for {s}");
        }
    }

    #[test]
    fn calls_are_not_polynomials() {
        let e = Expr::Call(Function::Exp, Box::new(Expr::var("x")));
        assert!(!e.is_polynomial());
        assert!(matches!(e.to_poly(), Err(AlgebraError::NotPolynomial(_))));
    }

    #[test]
    fn approximate_calls_yields_polynomial() {
        let e = Expr::Call(Function::Exp, Box::new(Expr::var("x")));
        let approx = e.approximate_calls(6, 1_000_000);
        assert!(approx.is_polynomial());
        let poly = approx.to_poly().unwrap();
        // The approximation evaluated at 0.1 should be close to exp(0.1).
        let mut asn = BTreeMap::new();
        asn.insert(Var::new("x"), 0.1);
        assert!((poly.eval_f64(&asn) - (0.1_f64).exp()).abs() < 1e-6);
    }

    #[test]
    fn nested_call_approximation() {
        // log(1 + (exp(x) - 1)) ≈ x near zero once both calls are expanded.
        let inner = Expr::Call(Function::Exp, Box::new(Expr::var("x"))).add(Expr::constant(-1));
        let e = Expr::Call(Function::Ln1p, Box::new(inner));
        let approx = e.approximate_calls(8, 10_000_000);
        assert!(approx.is_polynomial());
        let mut asn = BTreeMap::new();
        asn.insert(Var::new("x"), 0.05);
        assert!((approx.eval_f64(&asn) - 0.05).abs() < 1e-5);
    }

    #[test]
    fn height_and_tree_reduction() {
        // A long left-leaning chain a + (b + (c + (d + e))) built by repeated add.
        let mut e = Expr::var("a0");
        for i in 1..9 {
            e = e.add(Expr::var(&format!("a{i}")));
        }
        // Flattened n-ary add has height 2; force a skewed tree to exercise
        // the reduction.
        let skewed = Expr::Add(vec![
            Expr::var("a0"),
            Expr::Add(vec![
                Expr::var("a1"),
                Expr::Add(vec![
                    Expr::var("a2"),
                    Expr::Add(vec![Expr::var("a3"), Expr::var("a4")]),
                ]),
            ]),
        ]);
        let reduced = skewed.reduce_tree_height();
        assert!(reduced.height() < skewed.height());
        // Semantics preserved.
        let mut asn = BTreeMap::new();
        for i in 0..5 {
            asn.insert(Var::new(&format!("a{i}")), (i + 1) as f64);
        }
        assert_eq!(reduced.eval_f64(&asn), skewed.eval_f64(&asn));
    }

    #[test]
    fn op_count() {
        let e = Expr::var("x").mul(Expr::var("y")).add(Expr::constant(3));
        assert_eq!(e.op_count(), 2);
        assert_eq!(Expr::var("x").op_count(), 0);
    }

    #[test]
    fn eval_with_missing_variable_is_zero() {
        let e = Expr::var("missing").add(Expr::constant(2));
        assert_eq!(e.eval_f64(&BTreeMap::new()), 2.0);
    }

    #[test]
    fn display_parses_back_when_polynomial() {
        let q = p("x^2 + 2*x*y + 1");
        let e: Expr = q.clone().into();
        let shown = e.to_string();
        assert_eq!(Poly::parse(&shown).unwrap(), q, "display {shown}");
    }

    #[test]
    fn vars_collects_all() {
        let e = Expr::Call(Function::Sin, Box::new(Expr::var("theta"))).mul(Expr::var("amp"));
        let vars = e.vars();
        assert!(vars.contains(Var::new("theta")));
        assert!(vars.contains(Var::new("amp")));
        assert_eq!(vars.len(), 2);
    }
}
