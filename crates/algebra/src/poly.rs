//! Multivariate polynomials over exact rationals.

// lint:allow-file(D3): eval_f64 and the test that cross-checks it are the
// declared float boundary; all polynomial arithmetic is exact Rational.
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt;

use symmap_numeric::Rational;

use crate::error::AlgebraError;
use crate::monomial::Monomial;
use crate::ordering::MonomialOrder;
use crate::var::{Var, VarSet};

/// A multivariate polynomial with [`Rational`] coefficients.
///
/// Terms are stored as a flat vector sorted **descending** by the canonical
/// (multiplication-invariant) [`Monomial`] order, with no zero coefficients,
/// so equal polynomials have identical storage. Addition and subtraction are
/// linear merges of two sorted term lists, [`Poly::sub_scaled`] (the
/// cancellation step of division) is a single merge against a lazily scaled
/// divisor, and [`Poly::mul`] is a heap-merge over per-term product streams —
/// none of which rebuild a search tree the way the former
/// `BTreeMap<Monomial, Rational>` storage did.
///
/// ```
/// use symmap_algebra::poly::Poly;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = Poly::parse("(x + 1)*(x - 1)")?;
/// assert_eq!(p, Poly::parse("x^2 - 1")?);
/// assert_eq!(p.total_degree(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Poly {
    /// `(monomial, coefficient)` pairs, canonically sorted (descending), no
    /// zero coefficients, no duplicate monomials.
    terms: Vec<Term>,
}

/// A single `(monomial, coefficient)` term of a polynomial.
pub type Term = (Monomial, Rational);

/// Merges two term streams sorted descending by the canonical monomial
/// order, summing coefficients of equal monomials and dropping zeros.
fn merge_terms(
    a: impl Iterator<Item = Term>,
    b: impl Iterator<Item = Term>,
    capacity: usize,
) -> Vec<Term> {
    let mut out: Vec<Term> = Vec::with_capacity(capacity);
    let mut a = a.peekable();
    let mut b = b.peekable();
    loop {
        let which = match (a.peek(), b.peek()) {
            (None, None) => break,
            (Some(_), None) => Ordering::Greater,
            (None, Some(_)) => Ordering::Less,
            (Some((ma, _)), Some((mb, _))) => ma.cmp(mb),
        };
        match which {
            Ordering::Greater => out.push(a.next().expect("peeked")),
            Ordering::Less => out.push(b.next().expect("peeked")),
            Ordering::Equal => {
                let (m, ca) = a.next().expect("peeked");
                let (_, cb) = b.next().expect("peeked");
                let c = &ca + &cb;
                if !c.is_zero() {
                    out.push((m, c));
                }
            }
        }
    }
    out
}

/// A pending product stream head for the heap-merge multiplication: term `i`
/// of the shorter operand times term `j` of the longer one. Max-heap keyed by
/// the product monomial (ties broken by stream index for determinism).
struct ProductHead {
    mono: Monomial,
    i: usize,
    j: usize,
}

impl PartialEq for ProductHead {
    fn eq(&self, other: &Self) -> bool {
        self.mono == other.mono && self.i == other.i
    }
}
impl Eq for ProductHead {}
impl PartialOrd for ProductHead {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ProductHead {
    fn cmp(&self, other: &Self) -> Ordering {
        self.mono
            .cmp(&other.mono)
            .then_with(|| other.i.cmp(&self.i))
    }
}

impl Poly {
    /// The zero polynomial.
    pub fn zero() -> Self {
        Poly { terms: Vec::new() }
    }

    /// The constant polynomial `1`.
    pub fn one() -> Self {
        Poly::constant(Rational::one())
    }

    /// A constant polynomial.
    pub fn constant(c: Rational) -> Self {
        if c.is_zero() {
            return Poly::zero();
        }
        Poly {
            terms: vec![(Monomial::one(), c)],
        }
    }

    /// An integer constant polynomial.
    pub fn integer(c: i64) -> Self {
        Poly::constant(Rational::integer(c))
    }

    /// The polynomial consisting of a single variable.
    pub fn var(v: Var) -> Self {
        Poly::from_term(Monomial::var(v, 1), Rational::one())
    }

    /// The polynomial consisting of a single named variable.
    pub fn var_named(name: &str) -> Self {
        Poly::var(Var::new(name))
    }

    /// A single-term polynomial `c * m`.
    pub fn from_term(m: Monomial, c: Rational) -> Self {
        if c.is_zero() {
            return Poly::zero();
        }
        Poly {
            terms: vec![(m, c)],
        }
    }

    /// Builds a polynomial from a list of terms (duplicates accumulate).
    pub fn from_terms<I: IntoIterator<Item = Term>>(iter: I) -> Self {
        let mut terms: Vec<Term> = iter.into_iter().collect();
        // Sort descending by the canonical order, stably, so coefficients of
        // duplicate monomials accumulate in input order.
        terms.sort_by(|(ma, _), (mb, _)| mb.cmp(ma));
        let mut out: Vec<Term> = Vec::with_capacity(terms.len());
        for (m, c) in terms {
            match out.last_mut() {
                Some((lm, lc)) if *lm == m => {
                    *lc += &c;
                    if lc.is_zero() {
                        out.pop();
                    }
                }
                _ => {
                    if !c.is_zero() {
                        out.push((m, c));
                    }
                }
            }
        }
        Poly { terms: out }
    }

    /// Builds a polynomial from a term vector that is **already** strictly
    /// descending in the canonical monomial order with no zero coefficients —
    /// the ring localize/globalize boundary, which maps a sorted term vector
    /// through an order-preserving coordinate change and must not pay (or
    /// depend on) a re-sort.
    pub(crate) fn from_sorted_terms_unchecked(terms: Vec<Term>) -> Self {
        debug_assert!(
            terms
                .windows(2)
                .all(|w| w[0].0.cmp(&w[1].0) == Ordering::Greater),
            "term vector not strictly descending in the canonical order"
        );
        debug_assert!(terms.iter().all(|(_, c)| !c.is_zero()));
        Poly { terms }
    }

    /// The raw term vector, strictly descending in the canonical monomial
    /// order — the zero-copy boundary to the generic coefficient layer
    /// ([`crate::coeff`]), which shares this storage invariant.
    pub(crate) fn sorted_terms(&self) -> &[Term] {
        &self.terms
    }

    /// Parses a textual polynomial such as `"x^2 + 2*x*y - 3/2"`.
    ///
    /// The grammar accepts `+ - * ^ ( )`, integer and rational/decimal
    /// literals, and identifiers; see [`crate::parse`] for details. Products of
    /// sums are expanded, so the result is always in canonical expanded form.
    ///
    /// # Errors
    ///
    /// Returns [`AlgebraError::Parse`] on malformed input and
    /// [`AlgebraError::NotPolynomial`] when the expression contains division
    /// by a non-constant or a function call.
    pub fn parse(input: &str) -> Result<Self, AlgebraError> {
        crate::parse::parse_polynomial(input)
    }

    /// Returns `true` for the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// Returns `true` if the polynomial is a constant (including zero).
    pub fn is_constant(&self) -> bool {
        match self.terms.as_slice() {
            [] => true,
            [(m, _)] => m.is_one(),
            _ => false,
        }
    }

    /// Returns the constant value when [`Poly::is_constant`] is true.
    pub fn as_constant(&self) -> Option<Rational> {
        match self.terms.as_slice() {
            [] => Some(Rational::zero()),
            [(m, c)] if m.is_one() => Some(c.clone()),
            _ => None,
        }
    }

    /// Returns `Some(var)` when the polynomial is exactly a single variable
    /// with coefficient one.
    pub fn as_single_variable(&self) -> Option<Var> {
        match self.terms.as_slice() {
            [(m, c)] if c.is_one() && m.total_degree() == 1 => m.iter().next().map(|(v, _)| v),
            _ => None,
        }
    }

    /// Number of terms.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Iterates over `(monomial, coefficient)` pairs in canonical storage
    /// order (descending in the canonical monomial order).
    pub fn iter(&self) -> impl Iterator<Item = (&Monomial, &Rational)> + '_ {
        self.terms.iter().map(|(m, c)| (m, c))
    }

    /// Total degree (max over terms); zero polynomial has degree 0.
    pub fn total_degree(&self) -> u32 {
        self.terms
            .iter()
            .map(|(m, _)| m.total_degree())
            .max()
            .unwrap_or(0)
    }

    /// Degree in a specific variable.
    pub fn degree_in(&self, v: Var) -> u32 {
        self.terms
            .iter()
            .map(|(m, _)| m.degree_of(v))
            .max()
            .unwrap_or(0)
    }

    /// All variables that occur with non-zero exponent.
    ///
    /// The discovery order replays the pre-packing representation exactly
    /// (terms visited ascending in the legacy sparse-sequence monomial
    /// order): it feeds default variable orders in `simplify`/`eliminate`,
    /// so it must stay bit-compatible across the storage change.
    pub fn vars(&self) -> VarSet {
        let mut monos: Vec<&Monomial> = self.terms.iter().map(|(m, _)| m).collect();
        monos.sort_by(|a, b| a.legacy_seq_cmp(b));
        let mut s = VarSet::new();
        for m in monos {
            for (v, _) in m.iter() {
                s.push(v);
            }
        }
        s
    }

    /// Coefficient of a monomial (zero if absent).
    pub fn coefficient(&self, m: &Monomial) -> Rational {
        match self.position_of(m) {
            Ok(i) => self.terms[i].1.clone(),
            Err(_) => Rational::zero(),
        }
    }

    /// Binary search for `m` in the descending-sorted term vector.
    fn position_of(&self, m: &Monomial) -> Result<usize, usize> {
        self.terms.binary_search_by(|(tm, _)| m.cmp(tm))
    }

    /// Adds `c * m` in place.
    pub fn add_term(&mut self, m: &Monomial, c: &Rational) {
        if c.is_zero() {
            return;
        }
        match self.position_of(m) {
            Ok(i) => {
                self.terms[i].1 += c;
                if self.terms[i].1.is_zero() {
                    self.terms.remove(i);
                }
            }
            Err(i) => self.terms.insert(i, (m.clone(), c.clone())),
        }
    }

    /// Polynomial addition (linear merge of the sorted term vectors).
    pub fn add(&self, other: &Poly) -> Poly {
        Poly {
            terms: merge_terms(
                self.terms.iter().cloned(),
                other.terms.iter().cloned(),
                self.terms.len() + other.terms.len(),
            ),
        }
    }

    /// In-place `self -= g * (c * m)` — the cancellation step of multivariate
    /// division, fused into one merge pass: the scaled divisor terms are
    /// produced lazily (the canonical order is multiplication-invariant, so
    /// `g`'s sorted terms stay sorted after scaling by a monomial) and merged
    /// into the existing term vector without building `g.mul_term(m, c)`.
    pub fn sub_scaled(&mut self, g: &Poly, m: &Monomial, c: &Rational) {
        if c.is_zero() || g.is_zero() {
            return;
        }
        let own = std::mem::take(&mut self.terms);
        let capacity = own.len() + g.terms.len();
        let scaled = g.terms.iter().map(|(gm, gc)| (gm.mul(m), -(gc * c)));
        self.terms = merge_terms(own.into_iter(), scaled, capacity);
    }

    /// Polynomial subtraction.
    pub fn sub(&self, other: &Poly) -> Poly {
        Poly {
            terms: merge_terms(
                self.terms.iter().cloned(),
                other.terms.iter().map(|(m, c)| (m.clone(), -c)),
                self.terms.len() + other.terms.len(),
            ),
        }
    }

    /// Negation.
    pub fn neg(&self) -> Poly {
        Poly {
            terms: self.terms.iter().map(|(m, c)| (m.clone(), -c)).collect(),
        }
    }

    /// Multiplication by a scalar.
    pub fn scale(&self, c: &Rational) -> Poly {
        if c.is_zero() {
            return Poly::zero();
        }
        Poly {
            terms: self.terms.iter().map(|(m, k)| (m.clone(), k * c)).collect(),
        }
    }

    /// Multiplication by a single term `c * m`. The canonical order is
    /// multiplication-invariant, so the result is a sorted map — no re-sort.
    pub fn mul_term(&self, m: &Monomial, c: &Rational) -> Poly {
        if c.is_zero() {
            return Poly::zero();
        }
        Poly {
            terms: self
                .terms
                .iter()
                .map(|(mm, k)| (mm.mul(m), k * c))
                .collect(),
        }
    }

    /// Polynomial multiplication: a heap-merge over one product stream per
    /// term of the shorter operand. Each stream (`term_i * other`) is already
    /// sorted because the canonical order is multiplication-invariant, so the
    /// k-way max-heap pops products in order and equal monomials coalesce as
    /// they surface — the output is built sorted, never searched.
    pub fn mul(&self, other: &Poly) -> Poly {
        if self.is_zero() || other.is_zero() {
            return Poly::zero();
        }
        let (short, long) = if self.terms.len() <= other.terms.len() {
            (&self.terms, &other.terms)
        } else {
            (&other.terms, &self.terms)
        };
        let mut heap: std::collections::BinaryHeap<ProductHead> =
            std::collections::BinaryHeap::with_capacity(short.len());
        for (i, (m, _)) in short.iter().enumerate() {
            heap.push(ProductHead {
                mono: m.mul(&long[0].0),
                i,
                j: 0,
            });
        }
        let mut out: Vec<Term> = Vec::with_capacity(short.len() + long.len());
        while let Some(head) = heap.pop() {
            let ProductHead { mono, i, j } = head;
            let mut coeff = &short[i].1 * &long[j].1;
            if j + 1 < long.len() {
                heap.push(ProductHead {
                    mono: short[i].0.mul(&long[j + 1].0),
                    i,
                    j: j + 1,
                });
            }
            // Coalesce every other stream head with the same product monomial.
            while let Some(next) = heap.peek() {
                if next.mono != mono {
                    break;
                }
                let next = heap.pop().expect("peeked");
                coeff += &(&short[next.i].1 * &long[next.j].1);
                if next.j + 1 < long.len() {
                    heap.push(ProductHead {
                        mono: short[next.i].0.mul(&long[next.j + 1].0),
                        i: next.i,
                        j: next.j + 1,
                    });
                }
            }
            if !coeff.is_zero() {
                out.push((mono, coeff));
            }
        }
        Poly { terms: out }
    }

    /// Raises the polynomial to a non-negative power.
    ///
    /// # Errors
    ///
    /// Returns [`AlgebraError::ExponentTooLarge`] when `exp > 64` (to guard
    /// against accidental term-count explosions) and
    /// [`AlgebraError::DegreeOverflow`] when the resulting exponents would
    /// overflow `u32`.
    pub fn pow(&self, exp: u32) -> Result<Poly, AlgebraError> {
        if exp > 64 {
            return Err(AlgebraError::ExponentTooLarge(exp as u64));
        }
        // Every per-variable exponent of the result is bounded by the
        // largest single-variable exponent of the base times `exp`; check
        // once here so the repeated squaring below cannot overflow
        // (monomial arithmetic would panic rather than wrap).
        let max_exp = self
            .terms
            .iter()
            .flat_map(|(m, _)| m.iter().map(|(_, e)| e as u64))
            .max()
            .unwrap_or(0);
        if max_exp * exp as u64 > u32::MAX as u64 {
            return Err(AlgebraError::DegreeOverflow);
        }
        let mut result = Poly::one();
        let mut base = self.clone();
        let mut e = exp;
        while e > 0 {
            if e & 1 == 1 {
                result = result.mul(&base);
            }
            e >>= 1;
            if e > 0 {
                base = base.mul(&base);
            }
        }
        Ok(result)
    }

    /// Leading term under a monomial order, or `None` for the zero polynomial.
    pub fn leading_term(&self, order: &MonomialOrder) -> Option<Term> {
        let mut best: Option<&Term> = None;
        for t in &self.terms {
            best = match best {
                None => Some(t),
                Some(b) => {
                    if order.cmp(&t.0, &b.0) == std::cmp::Ordering::Greater {
                        Some(t)
                    } else {
                        Some(b)
                    }
                }
            };
        }
        best.cloned()
    }

    /// Leading monomial under a monomial order.
    pub fn leading_monomial(&self, order: &MonomialOrder) -> Option<Monomial> {
        self.leading_term(order).map(|(m, _)| m)
    }

    /// Divides every coefficient by the leading coefficient so the leading
    /// coefficient becomes one (no-op for the zero polynomial).
    pub fn monic(&self, order: &MonomialOrder) -> Poly {
        match self.leading_term(order) {
            None => Poly::zero(),
            Some((_, c)) => self.scale(&c.recip().expect("leading coefficient is nonzero")),
        }
    }

    /// Evaluates the polynomial at rational points. Missing variables evaluate
    /// as zero.
    pub fn eval(&self, assignment: &BTreeMap<Var, Rational>) -> Rational {
        let mut acc = Rational::zero();
        for (m, c) in self.iter() {
            let mut term = c.clone();
            for (v, e) in m.iter() {
                let val = assignment.get(&v).cloned().unwrap_or_else(Rational::zero);
                term = &term * &val.pow(e as i32).expect("non-negative exponent");
            }
            acc = &acc + &term;
        }
        acc
    }

    /// Evaluates the polynomial in floating point. Missing variables evaluate
    /// as zero.
    pub fn eval_f64(&self, assignment: &BTreeMap<Var, f64>) -> f64 {
        let mut acc = 0.0;
        for (m, c) in self.iter() {
            let mut term = c.to_f64();
            for (v, e) in m.iter() {
                term *= assignment.get(&v).copied().unwrap_or(0.0).powi(e as i32);
            }
            acc += term;
        }
        acc
    }

    /// Collects the polynomial as a dense univariate coefficient vector in `v`
    /// with polynomial coefficients: index `k` holds the coefficient of `v^k`.
    pub fn coefficients_in(&self, v: Var) -> Vec<Poly> {
        let deg = self.degree_in(v) as usize;
        let mut out = vec![Poly::zero(); deg + 1];
        for (m, c) in self.iter() {
            let k = m.degree_of(v) as usize;
            let reduced = m
                .div(&Monomial::var(v, k as u32))
                .expect("divides by construction");
            out[k].add_term(&reduced, c);
        }
        out
    }

    /// Counts the multiplications and additions needed to evaluate the
    /// polynomial naively in expanded form (used as a software cost proxy when
    /// no library element covers a subexpression).
    pub fn naive_op_count(&self) -> (u32, u32) {
        let mut muls = 0;
        let mut adds = 0;
        for (m, c) in self.iter() {
            muls += m.naive_mul_count();
            if !m.is_one() && !c.is_one() && !(-c.clone()).is_one() {
                muls += 1;
            }
        }
        if self.num_terms() > 1 {
            adds += self.num_terms() as u32 - 1;
        }
        (muls, adds)
    }

    /// Content: the gcd of all coefficient numerators divided by the lcm of
    /// denominators (positive), or zero for the zero polynomial.
    pub fn content(&self) -> Rational {
        use symmap_numeric::BigInt;
        if self.is_zero() {
            return Rational::zero();
        }
        let mut num_gcd = BigInt::zero();
        let mut den_lcm = BigInt::one();
        for (_, c) in self.iter() {
            num_gcd = num_gcd.gcd(&c.numer());
            den_lcm = den_lcm.lcm(&c.denom());
        }
        Rational::from_bigints(num_gcd, den_lcm)
    }

    /// Maps every coefficient through `f`, dropping terms that become zero.
    ///
    /// The monomials are untouched, so the result reuses the sorted term
    /// vector directly.
    pub fn map_coefficients(&self, mut f: impl FnMut(&Rational) -> Rational) -> Poly {
        Poly {
            terms: self
                .terms
                .iter()
                .filter_map(|(m, c)| {
                    let c = f(c);
                    if c.is_zero() {
                        None
                    } else {
                        Some((m.clone(), c))
                    }
                })
                .collect(),
        }
    }
}

impl fmt::Display for Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        // Display in a readable "descending degree" order.
        let order = MonomialOrder::GrLex(self.vars());
        let mut terms: Vec<(&Monomial, &Rational)> = self.iter().collect();
        terms.sort_by(|a, b| order.cmp(b.0, a.0));
        for (i, (m, c)) in terms.iter().enumerate() {
            let neg = c.is_negative();
            let abs = c.abs();
            if i == 0 {
                if neg {
                    write!(f, "-")?;
                }
            } else if neg {
                write!(f, " - ")?;
            } else {
                write!(f, " + ")?;
            }
            if m.is_one() {
                write!(f, "{abs}")?;
            } else if abs.is_one() {
                write!(f, "{m}")?;
            } else {
                write!(f, "{abs}*{m}")?;
            }
        }
        Ok(())
    }
}

impl std::ops::Add for &Poly {
    type Output = Poly;
    fn add(self, rhs: &Poly) -> Poly {
        Poly::add(self, rhs)
    }
}

impl std::ops::Sub for &Poly {
    type Output = Poly;
    fn sub(self, rhs: &Poly) -> Poly {
        Poly::sub(self, rhs)
    }
}

impl std::ops::Mul for &Poly {
    type Output = Poly;
    fn mul(self, rhs: &Poly) -> Poly {
        Poly::mul(self, rhs)
    }
}

impl std::ops::Neg for &Poly {
    type Output = Poly;
    fn neg(self) -> Poly {
        Poly::neg(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn p(s: &str) -> Poly {
        Poly::parse(s).unwrap()
    }

    #[test]
    fn construction_and_constants() {
        assert!(Poly::zero().is_zero());
        assert!(Poly::one().is_constant());
        assert_eq!(Poly::integer(5).as_constant(), Some(Rational::integer(5)));
        assert_eq!(Poly::constant(Rational::zero()), Poly::zero());
        assert_eq!(
            Poly::var_named("x").as_single_variable(),
            Some(Var::new("x"))
        );
        assert_eq!(p("2*x").as_single_variable(), None);
    }

    #[test]
    fn terms_are_canonically_sorted_and_zero_free() {
        let q = p("y^2 + x - x + 3*x*y + 1 - 1");
        // Storage invariant: strictly descending canonical order.
        let monos: Vec<&Monomial> = q.iter().map(|(m, _)| m).collect();
        for w in monos.windows(2) {
            assert_eq!(w[0].cmp(w[1]), std::cmp::Ordering::Greater);
        }
        assert_eq!(q.num_terms(), 2);
        assert_eq!(q, p("3*x*y + y^2"));
    }

    #[test]
    fn addition_cancels() {
        let a = p("x^2 + y");
        let b = p("-x^2 + y");
        assert_eq!(a.add(&b), p("2*y"));
        assert_eq!(a.sub(&a), Poly::zero());
    }

    #[test]
    fn sub_scaled_matches_sub_of_mul_term() {
        let mut a = p("x^3 + x^2*y^2 + y^3");
        let g = p("x*y - 1");
        let m = Monomial::var(Var::new("x"), 1);
        let c = Rational::new(3, 2);
        a.sub_scaled(&g, &m, &c);
        assert_eq!(a, p("x^3 + x^2*y^2 + y^3").sub(&g.mul_term(&m, &c)));
        // A zero scale is a no-op.
        let before = a.clone();
        a.sub_scaled(&g, &m, &Rational::zero());
        assert_eq!(a, before);
    }

    #[test]
    fn multiplication_expands() {
        assert_eq!(p("x + 1").mul(&p("x - 1")), p("x^2 - 1"));
        assert_eq!(p("x + y").mul(&p("x + y")), p("x^2 + 2*x*y + y^2"));
        assert_eq!(p("0").mul(&p("x + y")), Poly::zero());
    }

    #[test]
    fn pow() {
        assert_eq!(p("x + 1").pow(3).unwrap(), p("x^3 + 3*x^2 + 3*x + 1"));
        assert_eq!(p("x").pow(0).unwrap(), Poly::one());
        assert!(p("x").pow(1000).is_err());
    }

    #[test]
    fn pow_surfaces_degree_overflow() {
        let big = Poly::from_term(Monomial::var(Var::new("x"), u32::MAX / 2), Rational::one());
        assert_eq!(big.pow(2).map(|_| ()), Ok(()));
        let bigger = Poly::from_term(Monomial::var(Var::new("x"), u32::MAX), Rational::one());
        assert_eq!(bigger.pow(2), Err(AlgebraError::DegreeOverflow));
        // The guard bounds *per-variable* exponents, not the total degree:
        // three variables at 2^30 squared is a total degree of ~6.4e9, but
        // every resulting exponent is 2^31, which fits u32.
        let wide = Poly::from_term(
            Monomial::from_pairs(&[
                (Var::new("x"), 1 << 30),
                (Var::new("y"), 1 << 30),
                (Var::new("z"), 1 << 30),
            ]),
            Rational::one(),
        );
        let sq = wide.pow(2).expect("per-variable exponents fit u32");
        assert_eq!(sq.degree_in(Var::new("x")), 1 << 31);
    }

    #[test]
    fn degrees_and_vars() {
        let q = p("x^3*y + z - 7");
        assert_eq!(q.total_degree(), 4);
        assert_eq!(q.degree_in(Var::new("x")), 3);
        assert_eq!(q.degree_in(Var::new("w")), 0);
        assert_eq!(q.vars().len(), 3);
        assert_eq!(q.num_terms(), 3);
    }

    #[test]
    fn leading_term_depends_on_order() {
        let q = p("x + y^3");
        let lex = MonomialOrder::lex(&["x", "y"]);
        let grlex = MonomialOrder::grlex(&["x", "y"]);
        assert_eq!(q.leading_monomial(&lex).unwrap().to_string(), "x");
        assert_eq!(q.leading_monomial(&grlex).unwrap().to_string(), "y^3");
        assert!(Poly::zero().leading_term(&lex).is_none());
    }

    #[test]
    fn monic_normalizes_leading_coefficient() {
        let q = p("3*x^2 + 6*y");
        let lex = MonomialOrder::lex(&["x", "y"]);
        let m = q.monic(&lex);
        assert_eq!(m, p("x^2 + 2*y"));
        assert_eq!(Poly::zero().monic(&lex), Poly::zero());
    }

    #[test]
    fn eval_exact_and_float() {
        let q = p("x^2*y - 1/2");
        let mut a = BTreeMap::new();
        a.insert(Var::new("x"), Rational::integer(3));
        a.insert(Var::new("y"), Rational::new(1, 3));
        assert_eq!(q.eval(&a), Rational::new(5, 2));
        let mut af = BTreeMap::new();
        af.insert(Var::new("x"), 3.0);
        af.insert(Var::new("y"), 1.0 / 3.0);
        assert!((q.eval_f64(&af) - 2.5).abs() < 1e-12);
        // Missing variable treated as zero.
        assert_eq!(p("x + 5").eval(&BTreeMap::new()), Rational::integer(5));
    }

    #[test]
    fn coefficients_in_variable() {
        let q = p("x^2*y + x^2 + 2*x + y^2");
        let cs = q.coefficients_in(Var::new("x"));
        assert_eq!(cs.len(), 3);
        assert_eq!(cs[0], p("y^2"));
        assert_eq!(cs[1], p("2"));
        assert_eq!(cs[2], p("y + 1"));
    }

    #[test]
    fn content() {
        assert_eq!(p("6*x + 9*y").content(), Rational::integer(3));
        assert_eq!(p("x/2 + 3/4").content(), Rational::new(1, 4));
        assert_eq!(Poly::zero().content(), Rational::zero());
    }

    #[test]
    fn display_round_trips() {
        for s in ["x^2 - 1", "x^2 + 2*x*y + y^2", "-x + 1/2", "0", "3"] {
            let q = p(s);
            assert_eq!(Poly::parse(&q.to_string()).unwrap(), q);
        }
        assert_eq!(p("y + x^2").to_string(), "x^2 + y");
    }

    #[test]
    fn naive_op_count() {
        // x^2 + 2*x*y + y^2: muls = 1 (x^2) + (1+1) (2*x*y) + 1 (y^2) = 4, adds = 2
        let (muls, adds) = p("x^2 + 2*x*y + y^2").naive_op_count();
        assert_eq!(adds, 2);
        assert_eq!(muls, 4);
        assert_eq!(p("7").naive_op_count(), (0, 0));
    }

    #[test]
    fn map_coefficients() {
        let doubled = p("x + y").map_coefficients(|c| c * &Rational::integer(2));
        assert_eq!(doubled, p("2*x + 2*y"));
        let zeroed = p("x + y").map_coefficients(|_| Rational::zero());
        assert!(zeroed.is_zero());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_ring_axioms(
            a in -5_i64..5, b in -5_i64..5, c in -5_i64..5,
            d in -5_i64..5, e in -5_i64..5, f in -5_i64..5,
        ) {
            // Build small random polynomials in x, y.
            let p1 = Poly::from_terms(vec![
                (Monomial::var(Var::new("x"), 1), Rational::integer(a)),
                (Monomial::var(Var::new("y"), 2), Rational::integer(b)),
                (Monomial::one(), Rational::integer(c)),
            ]);
            let p2 = Poly::from_terms(vec![
                (Monomial::var(Var::new("x"), 2), Rational::integer(d)),
                (Monomial::var(Var::new("y"), 1), Rational::integer(e)),
                (Monomial::one(), Rational::integer(f)),
            ]);
            prop_assert_eq!(p1.add(&p2), p2.add(&p1));
            prop_assert_eq!(p1.mul(&p2), p2.mul(&p1));
            prop_assert_eq!(p1.mul(&p2.add(&p1)), p1.mul(&p2).add(&p1.mul(&p1)));
            prop_assert_eq!(p1.sub(&p1), Poly::zero());
        }

        #[test]
        fn prop_eval_homomorphism(a in -4_i64..4, b in -4_i64..4, x in -3_i64..3, y in -3_i64..3) {
            let p1 = Poly::parse(&format!("{a}*x^2 + y")).unwrap();
            let p2 = Poly::parse(&format!("x + {b}*y")).unwrap();
            let mut asn = BTreeMap::new();
            asn.insert(Var::new("x"), Rational::integer(x));
            asn.insert(Var::new("y"), Rational::integer(y));
            prop_assert_eq!(p1.add(&p2).eval(&asn), &p1.eval(&asn) + &p2.eval(&asn));
            prop_assert_eq!(p1.mul(&p2).eval(&asn), &p1.eval(&asn) * &p2.eval(&asn));
        }
    }
}
