//! Invariant fingerprints over polynomials: cheap, deterministic summaries
//! that let a caller reject "these two polynomials cannot be equal" or "this
//! polynomial cannot divide that one" in O(support) integer work, without
//! touching a single [`Rational`].
//!
//! The mapper's branch-and-bound prices library subsets through the Gröbner
//! cache, but before any algebra runs it must *select* candidates from the
//! library — and on a thousand-element library even the selection scan
//! (`Poly::vars` allocates and sorts per element) dominates. A
//! [`PolyFingerprint`] is computed once per library element and answers the
//! selection predicates from three invariants:
//!
//! * **var-support mask + exact support** — a 64-bit bloom-style mask
//!   (bit `index % 64`, the same scheme as [`Monomial::var_mask`]) over the
//!   sorted global indices of the variables that occur with nonzero exponent.
//!   Disjoint masks prove disjoint supports; equal-bit collisions are
//!   confirmed against the exact sorted support.
//! * **degree signature** — total degree, per-support-var maximum degree and
//!   term count. Equal polynomials have equal signatures, and over the
//!   integral domain ℚ\[x₁…xₙ\] per-variable and total degree are *additive*
//!   under multiplication, so `deg(f) ≤ deg(f·g)` holds variable-by-variable:
//!   the signature yields a sound necessary condition for divisibility.
//!   (Term count is **not** monotone under multiplication — `(x−1)(x+1)` has
//!   fewer terms than either factor squared — so [`may_divide`] ignores it.)
//! * **finite-field evaluation hash** — the polynomial evaluated over
//!   [`Fp64`] at fixed pseudo-random points derived from each variable's
//!   *name* (stable across interner orders), using the first prime from the
//!   deterministic [`PrimeIterator`] stream that divides none of the
//!   coefficient denominators. Equal polynomials evaluate identically, so a
//!   hash mismatch proves inequality; the converse is a ≈2⁻⁶² false-match,
//!   which callers resolve with one exact `Poly` comparison.
//!
//! Every predicate here is *conservative*: `false` is a proof, `true` means
//! "run the exact check". See `DESIGN.md` §9 for the per-filter soundness
//! arguments and the one tempting filter that is provably unsound
//! (degree-based candidate rejection in the mapper).
//!
//! [`may_divide`]: PolyFingerprint::may_divide
//! [`Monomial::var_mask`]: crate::monomial::Monomial::var_mask
//! [`Rational`]: symmap_numeric::rational::Rational

use crate::poly::Poly;
use crate::var::Var;
use symmap_numeric::fp64::{Fp64, PrimeIterator};
use symmap_numeric::rational::Rational;

/// How many primes the evaluation hash tries before falling back to a
/// structural hash. A prime is rejected only when it divides a coefficient
/// denominator; 62-bit primes make even one rejection vanishingly rare.
const MAX_HASH_PRIME_ROTATIONS: usize = 16;

/// An order-independent, scheduling-independent summary of a [`Poly`]:
/// exact variable support with a 64-bit mask, a degree signature and a
/// finite-field evaluation hash. Computed once (at library build time),
/// queried many times (once per mapper job per element).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolyFingerprint {
    /// OR of `1 << (index % 64)` over the support. `mask_a & mask_b == 0`
    /// proves the supports are disjoint; a nonzero AND proves nothing.
    mask: u64,
    /// Sorted global interner indices of the variables with nonzero exponent.
    support: Box<[u32]>,
    /// Maximum exponent of each support variable, parallel to `support`.
    max_degrees: Box<[u32]>,
    /// Maximum total degree over all terms.
    total_degree: u32,
    /// Number of (monomial, coefficient) terms.
    term_count: u32,
    /// ℤ/p evaluation at name-seeded points; equal polynomials hash equal.
    eval_hash: u64,
}

impl PolyFingerprint {
    /// Computes the fingerprint of `poly`. Cost is one pass over the terms
    /// plus one ℤ/p evaluation — no rational arithmetic, no sorting beyond
    /// an insertion-ordered support merge.
    pub fn of(poly: &Poly) -> Self {
        // Support with per-var max degree, kept sorted by global index.
        let mut vars: Vec<(Var, u32)> = Vec::new();
        let mut mask = 0u64;
        for (m, _) in poly.iter() {
            mask |= m.var_mask();
            for (v, e) in m.iter() {
                match vars.binary_search_by_key(&v.index(), |(w, _)| w.index()) {
                    Ok(i) => vars[i].1 = vars[i].1.max(e),
                    Err(i) => vars.insert(i, (v, e)),
                }
            }
        }
        let eval_hash = eval_hash(poly, &vars);
        PolyFingerprint {
            mask,
            support: vars.iter().map(|(v, _)| v.index()).collect(),
            max_degrees: vars.iter().map(|&(_, d)| d).collect(),
            total_degree: poly.total_degree(),
            term_count: poly.num_terms() as u32,
            eval_hash,
        }
    }

    /// The 64-bit support mask (`OR` of `1 << (index % 64)`).
    #[inline]
    pub fn mask(&self) -> u64 {
        self.mask
    }

    /// Sorted global indices of the variables in the support.
    #[inline]
    pub fn support(&self) -> &[u32] {
        &self.support
    }

    /// Per-support-variable maximum degrees, parallel to [`support`].
    ///
    /// [`support`]: PolyFingerprint::support
    #[inline]
    pub fn max_degrees(&self) -> &[u32] {
        &self.max_degrees
    }

    /// Maximum total degree over all terms.
    #[inline]
    pub fn total_degree(&self) -> u32 {
        self.total_degree
    }

    /// Number of terms.
    #[inline]
    pub fn term_count(&self) -> u32 {
        self.term_count
    }

    /// The ℤ/p evaluation hash.
    #[inline]
    pub fn eval_hash(&self) -> u64 {
        self.eval_hash
    }

    /// Whether the two supports share at least one variable — the exact
    /// predicate `Mapper::candidates` filters on. The mask test fast-paths
    /// the disjoint case (sound: disjoint masks ⟹ disjoint supports); a
    /// colliding mask is confirmed against the exact sorted supports, so the
    /// answer is never approximate in either direction.
    pub fn intersects(&self, other: &PolyFingerprint) -> bool {
        if self.mask & other.mask == 0 {
            return false;
        }
        sorted_slices_intersect(&self.support, &other.support)
    }

    /// How many support variables the two fingerprints share. Exact (a
    /// sorted-merge count), used for candidate-ordering scores without
    /// materialising either `VarSet`.
    pub fn shared_support_count(&self, other: &PolyFingerprint) -> usize {
        let (mut i, mut j, mut n) = (0, 0, 0);
        while i < self.support.len() && j < other.support.len() {
            match self.support[i].cmp(&other.support[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    n += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        n
    }

    /// Conservative equality test: `false` proves the polynomials differ;
    /// `true` means "possibly equal — run the exact comparison". Sound
    /// because every component is a function of the polynomial's exact term
    /// multiset: equal polynomials have identical supports, degree
    /// signatures and (same prime, same points) evaluation hashes.
    pub fn may_equal(&self, other: &PolyFingerprint) -> bool {
        self.mask == other.mask
            && self.total_degree == other.total_degree
            && self.term_count == other.term_count
            && self.eval_hash == other.eval_hash
            && self.support == other.support
            && self.max_degrees == other.max_degrees
    }

    /// Conservative divisibility test: `false` proves `self`'s polynomial
    /// does not divide `other`'s over ℚ\[x\]; `true` means "possibly — run
    /// the exact check". Sound because ℚ\[x₁…xₙ\] is an integral domain, so
    /// both total degree and each per-variable degree are additive under
    /// multiplication: `f · g = t` forces `deg(f) ≤ deg(t)` in every
    /// variable and in total, and `support(f) ⊆ support(t)`. Term count is
    /// deliberately not consulted (not monotone under multiplication), and
    /// the evaluation hash proves nothing here (the hash of a product is not
    /// the product of hashes once coefficients reduce mod p).
    pub fn may_divide(&self, other: &PolyFingerprint) -> bool {
        if self.total_degree > other.total_degree || self.mask & other.mask != self.mask {
            return false;
        }
        let mut j = 0;
        for (i, &v) in self.support.iter().enumerate() {
            while j < other.support.len() && other.support[j] < v {
                j += 1;
            }
            if j >= other.support.len()
                || other.support[j] != v
                || other.max_degrees[j] < self.max_degrees[i]
            {
                return false;
            }
        }
        true
    }
}

/// Whether two sorted index slices share an element (merge walk).
fn sorted_slices_intersect(a: &[u32], b: &[u32]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

/// FNV-1a over a byte string — the point-derivation seed. Name-based (not
/// interner-index-based) so a fingerprint is a pure function of the
/// polynomial's text, independent of interning order.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// splitmix64 finalizer: diffuses the FNV seed into a full-width point.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Evaluation hash driver: walks the deterministic prime stream until a
/// prime divides no coefficient denominator (the same rotation discipline as
/// the modular prefilter, so the chosen prime is a pure function of the
/// polynomial), then evaluates once. The practically unreachable exhaustion
/// case falls back to a structural hash — still deterministic, still equal
/// for equal polynomials.
fn eval_hash(poly: &Poly, vars: &[(Var, u32)]) -> u64 {
    if poly.is_zero() {
        return 0;
    }
    let mut primes = PrimeIterator::new();
    for _ in 0..MAX_HASH_PRIME_ROTATIONS {
        let p = primes.next().expect("the 62-bit prime stream is unbounded");
        if let Some(h) = try_eval_hash(poly, vars, p) {
            return mix64(h ^ p);
        }
    }
    structural_hash(poly)
}

/// One ℤ/p evaluation at name-seeded points in `[1, p)`; `None` when `p`
/// divides a coefficient denominator (rotate to the next prime).
fn try_eval_hash(poly: &Poly, vars: &[(Var, u32)], p: u64) -> Option<u64> {
    let field = Fp64::new(p);
    let points: Vec<u64> = vars
        .iter()
        .map(|(v, _)| field.to_montgomery(1 + mix64(fnv1a(v.name().as_bytes())) % (p - 1)))
        .collect();
    let mut acc = field.zero();
    for (m, c) in poly.iter() {
        let mut term = coefficient_mod(&field, c)?;
        for (v, e) in m.iter() {
            let i = vars
                .binary_search_by_key(&v.index(), |(w, _)| w.index())
                .expect("support covers every variable of every term");
            term = field.mul(term, field.pow(points[i], e as u64));
        }
        acc = field.add(acc, term);
    }
    Some(field.from_montgomery(acc))
}

/// Montgomery-form residue of a rational mod p; `None` when p divides the
/// denominator.
fn coefficient_mod(field: &Fp64, c: &Rational) -> Option<u64> {
    let p = field.modulus();
    let den = c.denom().mod_u64(p);
    if den == 0 {
        return None;
    }
    Some(field.div(
        field.to_montgomery(c.numer().mod_u64(p)),
        field.to_montgomery(den),
    ))
}

/// Deterministic fallback when every probe prime divides some denominator
/// (needs ≥16 distinct 62-bit prime factors across the denominators — out of
/// reach for any input this system produces, but the contract must hold).
fn structural_hash(poly: &Poly) -> u64 {
    let m = u64::MAX;
    let mut h: u64 = 0x9e37_79b9_7f4a_7c15;
    for (mono, c) in poly.iter() {
        for (v, e) in mono.iter() {
            h = mix64(h ^ fnv1a(v.name().as_bytes()) ^ ((e as u64) << 32));
        }
        h = mix64(h ^ c.numer().mod_u64(m) ^ c.denom().mod_u64(m).rotate_left(17));
        h ^= (c.is_negative() as u64) << 63;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Poly {
        Poly::parse(s).expect("test polynomial parses")
    }

    fn fp(s: &str) -> PolyFingerprint {
        PolyFingerprint::of(&p(s))
    }

    #[test]
    fn equal_polynomials_fingerprint_identically() {
        // Same polynomial through different construction orders.
        let a = fp("x^2 + 2*x*y + y^2");
        let b = PolyFingerprint::of(&p("y^2 + 2*y*x + x^2"));
        assert_eq!(a, b);
        assert!(a.may_equal(&b));
    }

    #[test]
    fn signature_components_are_what_they_say() {
        let f = fp("3*x^2*y - y^3 + 1/2");
        assert_eq!(f.total_degree(), 3);
        assert_eq!(f.term_count(), 3);
        let x = Var::new("x").index();
        let y = Var::new("y").index();
        let mut expect = [(x, 2u32), (y, 3u32)];
        expect.sort_by_key(|&(i, _)| i);
        assert_eq!(
            f.support(),
            expect
                .iter()
                .map(|&(i, _)| i)
                .collect::<Vec<_>>()
                .as_slice()
        );
        assert_eq!(
            f.max_degrees(),
            expect
                .iter()
                .map(|&(_, d)| d)
                .collect::<Vec<_>>()
                .as_slice()
        );
    }

    #[test]
    fn distinct_polynomials_are_distinguished_by_the_hash() {
        // Same support, same degree signature, different coefficients: only
        // the evaluation hash can tell them apart without exact arithmetic.
        let a = fp("x^2 + y");
        let b = fp("x^2 - y");
        assert_eq!(a.support(), b.support());
        assert_eq!(a.total_degree(), b.total_degree());
        assert!(!a.may_equal(&b), "hash must separate +y from -y");
    }

    #[test]
    fn fractional_coefficients_hash_deterministically() {
        let a = fp("1/3*x^2 + 5/7*y");
        let b = fp("1/3*x^2 + 5/7*y");
        assert_eq!(a.eval_hash(), b.eval_hash());
        assert!(a.may_equal(&b));
    }

    #[test]
    fn disjoint_supports_never_intersect_and_shared_counts_are_exact() {
        let t = fp("x*y + z");
        let disjoint = fp("u*w");
        let overlap = fp("y^2 + w");
        assert!(!t.intersects(&disjoint));
        assert!(t.intersects(&overlap));
        assert_eq!(t.shared_support_count(&overlap), 1);
        assert_eq!(t.shared_support_count(&disjoint), 0);
        assert_eq!(t.shared_support_count(&t), 3);
    }

    #[test]
    fn constants_have_empty_support() {
        let c = fp("7");
        assert_eq!(c.support().len(), 0);
        assert_eq!(c.mask(), 0);
        assert!(!c.intersects(&fp("x")));
        let z = PolyFingerprint::of(&Poly::zero());
        assert_eq!(z.term_count(), 0);
        assert_eq!(z.eval_hash(), 0);
    }

    #[test]
    fn divisibility_prefilter_is_a_necessary_condition() {
        // Real divisors always pass.
        let f = p("x + y");
        let g = p("x^2 - x*y + y^2");
        let prod = f.mul(&g); // x^3 + y^3
        let (ff, pf) = (PolyFingerprint::of(&f), PolyFingerprint::of(&prod));
        assert!(ff.may_divide(&pf));
        // Degree excess in one variable refutes.
        assert!(!fp("x^4").may_divide(&pf));
        // Support excess refutes.
        assert!(!fp("x*z").may_divide(&pf));
        // Total-degree excess refutes.
        assert!(!fp("x^2*y^2").may_divide(&fp("x^2 + y^2")));
        // Term count must NOT refute: x^3+y^3 has 2 terms, its divisor
        // x^2-x*y+y^2 has 3.
        assert!(PolyFingerprint::of(&g).may_divide(&pf));
    }

    #[test]
    fn mask_collisions_are_resolved_by_exact_support() {
        // Two variables whose interner indices collide mod 64 would share a
        // mask bit; the exact support comparison still separates them. We
        // can't force a collision without 64 interned vars, so simulate the
        // property: intersects() on equal masks with disjoint supports.
        let a = PolyFingerprint {
            mask: 0b1,
            support: vec![0].into(),
            max_degrees: vec![1].into(),
            total_degree: 1,
            term_count: 1,
            eval_hash: 1,
        };
        let b = PolyFingerprint {
            mask: 0b1,
            support: vec![64].into(),
            max_degrees: vec![1].into(),
            total_degree: 1,
            term_count: 1,
            eval_hash: 2,
        };
        assert!(
            !a.intersects(&b),
            "colliding masks must not fake an overlap"
        );
        assert!(!a.may_equal(&b));
    }
}
