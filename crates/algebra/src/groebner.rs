//! Buchberger's algorithm for Gröbner bases.
//!
//! Gröbner bases make normal-form reduction canonical: `f` reduces to zero
//! modulo a Gröbner basis of an ideal **iff** `f` is a member of the ideal.
//! The paper leans on this (via Maple) both for simplification modulo side
//! relations and for variable elimination.
//!
//! # Engine design
//!
//! The computation's worst case is exponential (as the paper notes), so the
//! engine earns its keep through bookkeeping rather than raw iteration:
//!
//! * **Heap pair queue.** Pending S-pairs live in a deterministic binary
//!   min-heap keyed by the lcm of the pair's leading monomials (the *normal
//!   selection strategy*), with an optional sugar-degree tiebreak. Selection
//!   is `O(log n)` per pair instead of the former `O(n)` linear scan.
//! * **Criteria.** Buchberger's first (coprime leading monomials, applied at
//!   pair creation) and second (chain, applied at pair selection) criteria
//!   discard pairs whose S-polynomials provably reduce to zero. Both are
//!   independently ablatable via [`GroebnerOptions`].
//! * **Cached leading terms.** The basis is stored as
//!   [`PreparedDivisor`] entries, so leading monomials are computed once per
//!   basis element — pair creation, criteria checks and every division step
//!   reuse the cache instead of rescanning terms.
//! * **Clone-free auto-reduction.** Inter-reduction reduces each element
//!   modulo the others *in place* via an index-skipping division, instead of
//!   deep-cloning the rest of the basis for every tail reduction.
//! * **Ring-local coordinates.** [`buchberger`] rewrites its generators and
//!   order through a per-ideal [`Ring`] into dense local indices `0..n`
//!   before the engine runs, so every monomial operation costs the ideal's
//!   variable count, never the process-wide interner width; conversions are
//!   confined to the entry/exit boundary and the output is byte-identical to
//!   the global-coordinate path (kept as [`buchberger_unringed`] for the
//!   differential tests and the `wide_interner` bench).
//! * **Shared memoization.** [`SharedGroebnerCache`] memoizes whole bases by
//!   `(generators, order, options)` behind lock-striped shards with a bounded
//!   FIFO capacity, so the mapper's branch-and-bound — and the batch engine's
//!   worker threads — compute each side-relation basis once per process. A
//!   second, ring-local layer shares one core computation between
//!   α-equivalent requests (same ideal up to variable renaming).

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;
use symmap_trace::{trace_event, trace_sched, Counter, Gauge, Histogram, MetricsRegistry};

use crate::coeff::{buchberger_core_in, CPoly, RationalField};
use crate::division::{normal_form, prepared_normal_form, PreparedDivisor};
use crate::modular::{FpBasis, MAX_PRIME_ROTATIONS};
use crate::ordering::MonomialOrder;
use crate::poly::Poly;
use crate::ring::Ring;

/// Options controlling the Buchberger computation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GroebnerOptions {
    /// Upper bound on the number of S-polynomial reductions before giving up.
    /// The mapping algorithm prefers an incomplete basis over an unbounded
    /// computation (its worst case is exponential, as the paper notes).
    /// Criterion skips are free and never count toward this bound.
    pub max_iterations: usize,
    /// Whether to apply Buchberger's first criterion (skip pairs with coprime
    /// leading monomials). Disabling this is only useful in ablation benches.
    pub use_coprime_criterion: bool,
    /// Whether to apply Buchberger's second (chain) criterion: a pair `(i, j)`
    /// is skipped when some other basis element's leading monomial divides
    /// `lcm(lm_i, lm_j)` and both pairs with that element have already been
    /// treated. Disabling this is only useful in ablation benches.
    pub use_chain_criterion: bool,
    /// Break lcm ties in the pair queue by the *sugar degree* (the degree the
    /// S-polynomial would have if the inputs were homogeneous) instead of pair
    /// age alone. Either way the pop order is deterministic; the final
    /// reduced basis is canonical and identical under both tiebreaks.
    pub use_sugar_tiebreak: bool,
    /// Route basis computation through the multi-modular engine
    /// ([`crate::multimodular`]): reduced bases are computed mod a
    /// deterministic prime sequence, CRT-combined, rationally reconstructed
    /// and verified over ℚ, falling back to the exact engine whenever the
    /// lift cannot be certified. The result is byte-identical to the exact
    /// path either way; only the wall clock (and the lift counters) change.
    /// **On by default** (after four PRs of green opt-in soak); a
    /// profitability gate still routes small all-integer ideals straight to
    /// the exact engine, where the lift's fixed cost is pure overhead — see
    /// [`lift_profitable`]. Set `SYMMAP_TEST_MULTIMODULAR=0` to opt out.
    pub multimodular: bool,
}

/// Whether the multi-modular lift is the default compute path: on unless
/// `SYMMAP_TEST_MULTIMODULAR=0`, read once per process so a mid-run
/// environment change can never fork option defaults between threads.
fn multimodular_from_env() -> bool {
    static FLAG: OnceLock<bool> = OnceLock::new();
    // lint:allow(D5): this IS the CI switch — the fourth tier-1 pass sets
    // SYMMAP_TEST_MULTIMODULAR=0 to prove the exact engine remains an
    // independent ground truth with the lift fully disabled.
    *FLAG.get_or_init(|| std::env::var("SYMMAP_TEST_MULTIMODULAR").map_or(true, |v| v != "0"))
}

impl Default for GroebnerOptions {
    fn default() -> Self {
        GroebnerOptions {
            max_iterations: 10_000,
            use_coprime_criterion: true,
            use_chain_criterion: true,
            use_sugar_tiebreak: false,
            multimodular: multimodular_from_env(),
        }
    }
}

/// Ideal-membership verdict of [`GroebnerBasis::membership`].
///
/// On an **incomplete** basis (iteration bound hit) a non-zero normal form
/// proves nothing: the missing basis elements could have reduced it further.
/// Only a complete basis can certify non-membership.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Membership {
    /// The polynomial reduces to zero: it is in the ideal. Sound even on an
    /// incomplete basis (every basis element lies in the ideal).
    In,
    /// The polynomial has a non-zero normal form modulo a **complete** basis:
    /// it is definitely not in the ideal.
    NotIn,
    /// Non-zero normal form modulo an *incomplete* basis: membership is
    /// undecided (the truncated basis may simply be too small to reduce it).
    Unknown,
}

/// A Gröbner basis together with the order it was computed under.
///
/// The basis is held in the **ring-local coordinates** of its computation
/// and globalized lazily: [`GroebnerBasis::reduce`] (and everything built on
/// it — membership, the mapper's pricing) works directly on the local
/// polynomials, so the dominant consumers never materialize global exponent
/// vectors at all. [`GroebnerBasis::polys`] globalizes on first access and
/// memoizes the result.
#[derive(Debug, Clone)]
pub struct GroebnerBasis {
    /// Ring of the computation; `None` when `local_polys` already are in
    /// global coordinates (the [`buchberger_unringed`] oracle path).
    ring: Option<Ring>,
    /// The (reduced, monic) basis in the computation's coordinates.
    local_polys: Arc<[Poly]>,
    /// Lazily globalized basis (untouched when the ring is the identity).
    global: OnceLock<Vec<Poly>>,
    /// Lazily prepared reduction state for [`GroebnerBasis::reduce`]'s
    /// local fast path: the localized order plus one [`PreparedDivisor`]
    /// per basis element, built once per basis instead of per call.
    local_prepared: OnceLock<(MonomialOrder, Vec<PreparedDivisor>)>,
    /// The monomial order of the computation.
    pub order: MonomialOrder,
    /// Whether the computation finished before hitting the iteration bound.
    pub complete: bool,
    /// Number of S-polynomial reductions performed (ablation metric).
    pub reductions: usize,
    /// Pairs discarded by the coprime (first) criterion (ablation metric).
    pub skipped_coprime: usize,
    /// Pairs discarded by the chain (second) criterion (ablation metric).
    pub skipped_chain: usize,
}

impl GroebnerBasis {
    /// The (reduced, monic) basis polynomials in **global** coordinates,
    /// globalized from the ring-local computation on first access and
    /// memoized. Callers that only reduce modulo the basis never pay this —
    /// [`GroebnerBasis::reduce`] stays in local coordinates.
    pub fn polys(&self) -> &[Poly] {
        match &self.ring {
            None => &self.local_polys,
            Some(ring) if ring.is_identity() => &self.local_polys,
            Some(ring) => self.global.get_or_init(|| {
                self.local_polys
                    .iter()
                    .map(|p| ring.globalize_poly(p))
                    .collect()
            }),
        }
    }

    /// Normal form of `f` modulo this basis.
    ///
    /// Valid (`f − reduce(f)` lies in the ideal) even when the basis is
    /// incomplete; canonical only when [`GroebnerBasis::complete`] is true.
    ///
    /// When `f` lives inside the basis ring (the mapper's standard case —
    /// targets share the side relations' variables), the whole reduction
    /// runs in ring-local coordinates: divisors are prepared from the local
    /// basis, only the (small) remainder is globalized, and no wide global
    /// exponent vector is ever built. A target with variables outside the
    /// ring falls back to [`normal_form`], which spans a joint ring over
    /// basis and target; both paths are byte-identical to global division.
    pub fn reduce(&self, f: &Poly) -> Poly {
        let Some(ring) = &self.ring else {
            return normal_form(f, &self.local_polys, &self.order);
        };
        if ring.is_identity() {
            return normal_form(f, &self.local_polys, &self.order);
        }
        match ring.try_localize_poly(f) {
            Some(lf) => {
                let (lorder, prepared) = self.local_prepared.get_or_init(|| {
                    let lorder = self.order.localized(ring);
                    let prepared = self
                        .local_polys
                        .iter()
                        .filter_map(|g| PreparedDivisor::new(g.clone(), &lorder))
                        .collect();
                    (lorder, prepared)
                });
                ring.globalize_poly(&prepared_normal_form(&lf, prepared, lorder, None))
            }
            None => normal_form(f, self.polys(), &self.order),
        }
    }

    /// Three-valued ideal-membership test; see [`Membership`] for the exact
    /// contract on incomplete bases.
    pub fn membership(&self, f: &Poly) -> Membership {
        if self.reduce(f).is_zero() {
            Membership::In
        } else if self.complete {
            Membership::NotIn
        } else {
            Membership::Unknown
        }
    }

    /// Boolean ideal-membership test: `true` exactly when [`membership`]
    /// returns [`Membership::In`].
    ///
    /// **Caller contract:** on an incomplete basis `false` means *"not proven
    /// a member"*, not *"not a member"* — use [`membership`] when the
    /// distinction matters (the mapper records [`GroebnerBasis::complete`]
    /// alongside every rewrite for exactly this reason).
    ///
    /// [`membership`]: GroebnerBasis::membership
    pub fn contains(&self, f: &Poly) -> bool {
        self.membership(f) == Membership::In
    }
}

/// Basis data in whatever coordinate system the computation ran in — the
/// ring-agnostic core result, wrapped into a [`GroebnerBasis`] (with the
/// caller's order and global coordinates) at the ring boundary. Also the
/// value memoized by the cache's ring-local (α-equivalence) layer.
#[derive(Debug)]
struct CoreBasis {
    /// `Arc`-shared so α-equivalent cache keys reference one copy instead of
    /// each deep-cloning the basis (see `SharedGroebnerCache::basis`).
    polys: Arc<[Poly]>,
    complete: bool,
    reductions: usize,
    skipped_coprime: usize,
    skipped_chain: usize,
}

/// The Buchberger engine proper. Coordinate-agnostic: generators and order
/// merely have to agree on a coordinate system; [`buchberger`] feeds it
/// ring-local data, the [`buchberger_unringed`] oracle feeds it global data.
///
/// Since PR 6 this is a thin ℚ instantiation of the field-generic engine in
/// [`crate::coeff`] (which ℤ/p shares — see [`crate::modular`]). The entry
/// and exit conversions are zero-copy term-vector moves; the arithmetic
/// performed is operation-for-operation identical to the historic concrete
/// engine, pinned down by the seed-oracle differential tests below.
fn buchberger_core(
    generators: &[Poly],
    order: &MonomialOrder,
    options: &GroebnerOptions,
) -> CoreBasis {
    let cgens: Vec<CPoly<RationalField>> = generators
        .iter()
        .map(|g| CPoly::from_sorted_terms(g.sorted_terms().to_vec()))
        .collect();
    let core = buchberger_core_in(&RationalField, &cgens, order, options);
    let polys: Vec<Poly> = core
        .polys
        .into_iter()
        .map(|p| Poly::from_sorted_terms_unchecked(p.into_terms()))
        .collect();
    CoreBasis {
        polys: polys.into(),
        complete: core.complete,
        reductions: core.reductions,
        skipped_coprime: core.skipped_coprime,
        skipped_chain: core.skipped_chain,
    }
}

/// What one multi-modular attempt did, for the cache's lift counters. `None`
/// when the exact engine ran directly (flag off).
struct LiftReport {
    /// The verified lift produced the basis (no exact run happened).
    success: bool,
    /// The profitability gate routed the request straight to the exact
    /// engine without attempting any prime image.
    bypassed: bool,
    /// Votes/verifications that failed before the outcome was settled.
    retries: usize,
    /// Mod-p prime images that fed the final CRT combine.
    primes_used: usize,
}

/// Numerator size (in bits) at or above which an integer coefficient marks
/// an ideal as lift-profitable: coefficients this wide are already past the
/// single-word fast path and grow further under elimination.
const LIFT_NUMERATOR_BITS: usize = 32;

/// Whether the multi-modular lift is worth attempting on these generators.
///
/// Exact-path cost is driven by *rational coefficient growth* during
/// elimination, and the input-visible trigger is a fractional or wide
/// coefficient in some generator (the katsura-style ideals the lift wins
/// ~17× on carry a `1/3`). Small all-integer ideals — the mapper's typical
/// side-relation systems — reduce in microseconds over ℚ, where the lift's
/// fixed cost (≥2 prime images + CRT + ℚ-verification) measured 2.6–4.6×
/// overhead on the `groebner_engine` quick benches. A pure function of the
/// generators, so cached bases stay scheduling-independent; the basis is
/// byte-identical on either path (the lift is ℚ-verified before it is
/// trusted), so the gate can never change a result — only a wall clock.
fn lift_profitable(generators: &[Poly]) -> bool {
    generators.iter().any(|g| {
        g.iter()
            .any(|(_, c)| !c.is_integer() || c.numer().bits() >= LIFT_NUMERATOR_BITS)
    })
}

/// Routes one core computation: the multi-modular engine when
/// `options.multimodular` is set (falling back to [`buchberger_core`] if the
/// lift cannot be certified), the exact engine otherwise. Either way the
/// returned basis is byte-identical — the lift is verified over ℚ before it
/// is trusted, and on any doubt the exact path decides.
fn compute_core(
    generators: &[Poly],
    order: &MonomialOrder,
    options: &GroebnerOptions,
) -> (CoreBasis, Option<LiftReport>) {
    if !options.multimodular {
        return (buchberger_core(generators, order, options), None);
    }
    if !lift_profitable(generators) {
        let report = LiftReport {
            success: false,
            bypassed: true,
            retries: 0,
            primes_used: 0,
        };
        return (buchberger_core(generators, order, options), Some(report));
    }
    let outcome = crate::multimodular::multimodular_basis(generators, order, options);
    let report = LiftReport {
        success: outcome.basis.is_some(),
        bypassed: false,
        retries: outcome.retries,
        primes_used: outcome.primes_used,
    };
    let core = match outcome.basis {
        Some(lifted) => CoreBasis {
            polys: lifted.polys.into(),
            complete: true,
            reductions: lifted.reductions,
            skipped_coprime: lifted.skipped_coprime,
            skipped_chain: lifted.skipped_chain,
        },
        None => buchberger_core(generators, order, options),
    };
    (core, Some(report))
}

/// The ring-local canonical form of a basis request: the spanning [`Ring`]
/// plus the generators and order rewritten into its local coordinates. Two
/// requests with the same localized form are α-equivalent (identical up to a
/// variable renaming) and have α-equivalent bases, which is what lets the
/// cache share one core computation between them.
fn ring_localized(generators: &[Poly], order: &MonomialOrder) -> (Ring, Vec<Poly>, MonomialOrder) {
    let ring = Ring::spanning(generators);
    let lorder = order.localized(&ring);
    let lgens = if ring.is_identity() {
        generators.to_vec()
    } else {
        generators.iter().map(|g| ring.localize_poly(g)).collect()
    };
    (ring, lgens, lorder)
}

/// Wraps a core result (in `ring`'s local coordinates) into a lazily
/// globalizing [`GroebnerBasis`] under the caller's order.
fn basis_from_core(
    local_polys: Arc<[Poly]>,
    core: &CoreBasis,
    ring: Ring,
    order: &MonomialOrder,
) -> GroebnerBasis {
    GroebnerBasis {
        ring: Some(ring),
        local_polys,
        global: OnceLock::new(),
        local_prepared: OnceLock::new(),
        order: order.clone(),
        complete: core.complete,
        reductions: core.reductions,
        skipped_coprime: core.skipped_coprime,
        skipped_chain: core.skipped_chain,
    }
}

/// Computes a Gröbner basis of the ideal generated by `generators` under
/// `order` using Buchberger's algorithm with the heap pair queue and the
/// configured criteria, followed by auto-reduction to the unique reduced
/// basis (up to scaling; all elements are returned monic).
///
/// The computation runs in **ring-local coordinates**: a [`Ring`] spanning
/// the generators is built once, generators and order are rewritten into its
/// dense `0..n` indices, and every monomial operation inside the engine then
/// costs `O(n)` — the ideal's variable count — independent of how many
/// symbols the process-wide interner holds. The result is globalized at exit
/// and is byte-identical to the global-coordinate path (differential-tested
/// against [`buchberger_unringed`]); when the ring already coincides with
/// the interner prefix (the mapper's intern-early profile) the conversions
/// are skipped entirely.
pub fn buchberger(
    generators: &[Poly],
    order: &MonomialOrder,
    options: &GroebnerOptions,
) -> GroebnerBasis {
    let (ring, lgens, lorder) = ring_localized(generators, order);
    let (core, _lift) = compute_core(&lgens, &lorder, options);
    basis_from_core(Arc::clone(&core.polys), &core, ring, order)
}

/// [`buchberger`] on **global** interner coordinates, with no ring boundary —
/// the pre-ring code path, kept callable on purpose:
///
/// * the differential tests (`crates/bench/tests/ring_differential.rs`, the
///   proptests below) assert its output is byte-identical to [`buchberger`]'s
///   on every workload, which is the correctness argument for the ring layer;
/// * the `wide_interner` bench measures it to demonstrate the
///   interner-width-proportional cost the ring layer removes.
///
/// Never use it for real work: on late-interned variables every monomial
/// operation pays the full interner width.
pub fn buchberger_unringed(
    generators: &[Poly],
    order: &MonomialOrder,
    options: &GroebnerOptions,
) -> GroebnerBasis {
    let (core, _lift) = compute_core(generators, order, options);
    GroebnerBasis {
        ring: None,
        local_polys: core.polys,
        global: OnceLock::new(),
        local_prepared: OnceLock::new(),
        order: order.clone(),
        complete: core.complete,
        reductions: core.reductions,
        skipped_coprime: core.skipped_coprime,
        skipped_chain: core.skipped_chain,
    }
}

/// Computes a Gröbner basis with default options.
pub fn groebner_basis(generators: &[Poly], order: &MonomialOrder) -> GroebnerBasis {
    buchberger(generators, order, &GroebnerOptions::default())
}

/// Sizing of a [`SharedGroebnerCache`]: lock shards and bounded capacity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of independently locked shards. More shards mean less lock
    /// contention between worker threads whose lookups hash to different
    /// shards; one shard degenerates to a single-mutex cache.
    pub shards: usize,
    /// Total bounded capacity in memoized bases, split evenly across shards.
    /// When a shard exceeds its slice, its oldest *inserted* entry is evicted
    /// (deterministic insertion-order eviction).
    pub capacity: usize,
    /// Enables the modular (ℤ/p) membership prefilter layer
    /// ([`SharedGroebnerCache::probe_membership`]). Off by default: the
    /// probe is advisory in this phase (every answer is confirmed by the
    /// exact ℚ computation), so enabling it trades extra mod-p work for
    /// prefilter telemetry and, later, early candidate rejection.
    pub modular_prefilter: bool,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            shards: 8,
            capacity: 4096,
            modular_prefilter: false,
        }
    }
}

/// Point-in-time counters of one cache shard — a readout of the registry
/// handles the shard increments (`cache.shard.N.*` / `alpha.shard.N.*`).
///
/// The bespoke `delta_since` this struct used to carry is gone: per-batch
/// deltas now come from the one
/// [`MetricsSnapshot::delta_since`](symmap_trace::MetricsSnapshot::delta_since)
/// facade, which the engine re-exports through its `EngineStats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheShardStats {
    /// Lookups answered from the shard.
    pub hits: usize,
    /// Lookups that computed a fresh basis.
    pub misses: usize,
    /// Entries evicted by the capacity bound.
    pub evictions: usize,
    /// Bases currently memoized in the shard.
    pub len: usize,
}

// Determinism audit (rule D1, symmap-lint): the cache layers below keep
// their entries in HashMaps, which is safe ONLY because no code path ever
// iterates them — every access is a point lookup (`get`/`entry`/`remove`)
// keyed by an owned `CacheKey`/`LocalKey`. Eviction order comes from the
// FIFO `queue: VecDeque<…>` (front = victim), never from map iteration;
// aggregate stats (`hits()`, `len()`, `shard_stats()`, …) iterate the
// *shard slice* `Box<[Mutex<…>]>`, whose order is the fixed array order.
// Anyone adding a render/debug path that walks `entries` must sort the
// keys first or switch the layer to a BTreeMap.
/// The per-order level of a shard.
type OptionsMap = HashMap<GroebnerOptions, GeneratorMap>;
/// The per-(order, options) generator-set level of a shard.
type GeneratorMap = HashMap<Vec<Poly>, Arc<GroebnerBasis>>;
/// Owned lookup key, kept in insertion order for eviction.
type CacheKey = (MonomialOrder, GroebnerOptions, Vec<Poly>);
/// Key of the ring-local (α-equivalence) layer: the localized order and
/// generators of [`ring_localized`] plus the options. Two global keys that
/// differ only by a variable renaming (or by order entries outside the
/// ideal's ring — e.g. target-only variables in the mapper's default orders)
/// collapse onto one local key.
type LocalKey = (MonomialOrder, GroebnerOptions, Vec<Poly>);

/// One lock-striped slice of the ring-local layer: localized key → core
/// basis (in local coordinates), FIFO-bounded like the global layer. Its
/// `stats.hits` are the *α-hits*: lookups whose global key was never seen
/// but whose ring-local form was.
#[derive(Debug)]
struct LocalShard {
    entries: HashMap<LocalKey, Arc<CoreBasis>>,
    queue: VecDeque<LocalKey>,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    len: Gauge,
}

impl LocalShard {
    fn new(metrics: &MetricsRegistry, index: usize) -> Self {
        LocalShard {
            entries: HashMap::new(),
            queue: VecDeque::new(),
            hits: metrics.counter(&format!("alpha.shard.{index}.hits")),
            misses: metrics.counter(&format!("alpha.shard.{index}.misses")),
            evictions: metrics.counter(&format!("alpha.shard.{index}.evictions")),
            len: metrics.gauge(&format!("alpha.shard.{index}.len")),
        }
    }

    fn stats(&self) -> CacheShardStats {
        CacheShardStats {
            hits: self.hits.get() as usize,
            misses: self.misses.get() as usize,
            evictions: self.evictions.get() as usize,
            len: self.entries.len(),
        }
    }

    fn evict_oldest(&mut self) {
        if let Some(key) = self.queue.pop_front() {
            if self.entries.remove(&key).is_some() {
                self.evictions.inc();
                self.len.set(self.entries.len() as i64);
                trace_sched!("cache.alpha.evict");
            }
        }
    }
}

/// One lock-striped slice of the modular-prefilter layer: ring-local key →
/// memoized mod-p basis. `None` entries record ideals for which every
/// candidate prime was unlucky, so they are not retried on every probe.
/// FIFO-bounded like the other layers.
#[derive(Debug, Default)]
struct FpShard {
    entries: HashMap<LocalKey, Arc<Option<FpBasis>>>,
    queue: VecDeque<LocalKey>,
}

impl FpShard {
    fn evict_oldest(&mut self) {
        if let Some(key) = self.queue.pop_front() {
            self.entries.remove(&key);
        }
    }
}

/// Point-in-time counters of the modular prefilter
/// ([`SharedGroebnerCache::fp_probe_stats`]). All zero when the prefilter
/// is disabled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FpProbeStats {
    /// Probes whose target reduced to zero mod p (membership *maybe* — the
    /// exact run decides).
    pub fp_hits: usize,
    /// Probes whose target had a nonzero normal form under a complete mod-p
    /// basis (sound non-membership, modulo cofactor luck; see
    /// [`crate::modular`]).
    pub fp_rejects: usize,
    /// Unlucky primes rotated past while computing mod-p bases (counts
    /// [`MAX_PRIME_ROTATIONS`] for an ideal that exhausted the rotation
    /// budget).
    pub unlucky_primes: usize,
    /// Probes answered **certified** from a resident exact basis in the
    /// ring-local layer — no `FpBasis` was localized or consulted (see
    /// [`SharedGroebnerCache::probe_membership_verdict`]).
    pub exact_probes: usize,
}

/// Point-in-time counters of the multi-modular lift
/// ([`SharedGroebnerCache::lift_stats`]). All zero when no request carried
/// [`GroebnerOptions::multimodular`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LiftStats {
    /// Basis computations settled entirely by the verified lift: the mod-p
    /// images CRT-combined, reconstructed and verified over ℚ, so the exact
    /// engine never ran.
    pub lift_success: usize,
    /// Reconstruction/verification rounds that failed and forced another
    /// prime before the outcome was settled (a run that eventually succeeds
    /// still counts its earlier failed rounds here).
    pub lift_retry: usize,
    /// Basis computations the lift could not certify, answered by the exact
    /// fallback instead. The result is still correct — just not faster.
    pub lift_fallback: usize,
    /// Requests the profitability gate routed straight to the exact engine
    /// (small all-integer ideals) without attempting a prime image.
    pub lift_bypass: usize,
    /// Mod-p prime images that fed the final CRT combine, summed over
    /// successful lifts (1 means single-prime coefficients all round).
    pub crt_primes_used: usize,
}

/// A [`SharedGroebnerCache::probe_membership_verdict`] answer, tagged by its
/// strength.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeVerdict {
    /// The exact reduced basis was already resident in the ring-local layer
    /// and the target was reduced against it over ℚ — this *is* the exact
    /// answer, and callers may short-circuit on it.
    Certified(bool),
    /// A single mod-p image answered: `false` is sound away from
    /// cofactor-level unlucky primes, `true` is likely-but-unproven (see
    /// [`crate::modular`]). Callers must confirm with an exact run before
    /// acting.
    Advisory(bool),
}

/// One lock-striped slice of the cache.
#[derive(Debug)]
struct CacheShard {
    /// Nested maps so a lookup probes every level with *borrowed* keys (the
    /// generator level via `Vec<Poly>: Borrow<[Poly]>`): a hit allocates and
    /// clones nothing — only a miss materializes the owned keys.
    entries: HashMap<MonomialOrder, OptionsMap>,
    /// Keys in insertion order; the front is the eviction victim. Inserts
    /// and removals are 1:1 with the queue, so `queue.len()` *is* the shard
    /// length.
    queue: VecDeque<CacheKey>,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    len: Gauge,
}

impl CacheShard {
    fn new(metrics: &MetricsRegistry, index: usize) -> Self {
        CacheShard {
            entries: HashMap::new(),
            queue: VecDeque::new(),
            hits: metrics.counter(&format!("cache.shard.{index}.hits")),
            misses: metrics.counter(&format!("cache.shard.{index}.misses")),
            evictions: metrics.counter(&format!("cache.shard.{index}.evictions")),
            len: metrics.gauge(&format!("cache.shard.{index}.len")),
        }
    }

    fn stats(&self) -> CacheShardStats {
        CacheShardStats {
            hits: self.hits.get() as usize,
            misses: self.misses.get() as usize,
            evictions: self.evictions.get() as usize,
            len: self.queue.len(),
        }
    }

    fn lookup(
        &self,
        generators: &[Poly],
        order: &MonomialOrder,
        options: &GroebnerOptions,
    ) -> Option<&Arc<GroebnerBasis>> {
        self.entries
            .get(order)
            .and_then(|m| m.get(options))
            .and_then(|m| m.get(generators))
    }

    fn evict_oldest(&mut self) {
        let Some((order, options, generators)) = self.queue.pop_front() else {
            return;
        };
        if let Some(options_map) = self.entries.get_mut(&order) {
            if let Some(generator_map) = options_map.get_mut(&options) {
                if generator_map.remove(&generators).is_some() {
                    self.evictions.inc();
                    self.len.set(self.queue.len() as i64);
                    trace_sched!("cache.evict");
                }
                if generator_map.is_empty() {
                    options_map.remove(&options);
                }
            }
            if options_map.is_empty() {
                self.entries.remove(&order);
            }
        }
    }
}

/// A sharded, thread-safe, capacity-bounded memoization layer over
/// [`buchberger`], keyed by `(generators, order, options)`.
///
/// The mapper's branch-and-bound search and the optimization pipeline price
/// many candidate element subsets, and distinct targets (or repeated pipeline
/// runs) routinely share a side-relation set — recomputing the identical
/// basis dominated the mapper's hot path. Bases are shared via [`Arc`], so a
/// hit costs one pointer clone; the cache itself is `Send + Sync` and is
/// shared across the batch engine's worker threads behind one [`Arc`].
///
/// # Concurrency
///
/// Entries are striped over [`CacheConfig::shards`] independently locked
/// shards; the shard of a key is a deterministic (fixed-seed) hash of the
/// key, so the same request always lands on the same shard. A miss computes
/// the basis *outside* the shard lock — colliding lookups proceed, and two
/// threads racing on one key both compute the same pure value (the loser
/// adopts the winner's entry, so at most one copy is retained). Counter
/// totals under concurrency are therefore timing-dependent, but cached
/// *values* never are: a basis is a pure function of its key, which is what
/// makes the batch engine's output independent of the worker count.
///
/// # Eviction
///
/// Capacity is bounded ([`CacheConfig::capacity`], split across shards).
/// When a shard overflows, its oldest inserted entry is evicted first —
/// deterministic insertion-order (FIFO) eviction, so a long-lived engine's
/// memory stays bounded without any clock- or randomness-dependent policy.
#[derive(Debug)]
pub struct SharedGroebnerCache {
    shards: Box<[Mutex<CacheShard>]>,
    /// The ring-local (α-equivalence) layer, striped independently of the
    /// global layer because α-equivalent global keys hash to unrelated
    /// global shards.
    local_shards: Box<[Mutex<LocalShard>]>,
    /// The modular-prefilter layer, allocated only when
    /// [`CacheConfig::modular_prefilter`] is set — the disabled path costs
    /// one `is_some` check per probe and nothing per basis lookup.
    fp_shards: Option<Box<[Mutex<FpShard>]>>,
    /// The unified registry every counter below (and the per-shard handles
    /// above) registers into. The batch engine snapshots this registry
    /// before/after a run and reports the delta — there is no second stats
    /// bookkeeping path.
    metrics: Arc<MetricsRegistry>,
    fp_hits: Counter,
    fp_rejects: Counter,
    unlucky_primes: Counter,
    exact_probes: Counter,
    lift_success: Counter,
    lift_retry: Counter,
    lift_fallback: Counter,
    lift_bypass: Counter,
    crt_primes_used: Counter,
    /// Distribution of S-polynomial reduction counts per core computation.
    reduction_sizes: Histogram,
    per_shard_capacity: usize,
}

impl Default for SharedGroebnerCache {
    fn default() -> Self {
        SharedGroebnerCache::new()
    }
}

/// Compile-time guard: the cache (and the `Arc`-shared bases it hands out)
/// must be `Send + Sync`, so the mapper can never silently regress to a
/// single-thread-only cache again (its first incarnation was `Rc`/`RefCell`
/// based, which made every consumer `!Send`).
#[allow(dead_code)]
fn _assert_send_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SharedGroebnerCache>();
    assert_send_sync::<Arc<GroebnerBasis>>();
    assert_send_sync::<GroebnerBasis>();
}

impl SharedGroebnerCache {
    /// Creates an empty cache with the default sharding and capacity.
    pub fn new() -> Self {
        SharedGroebnerCache::with_config(CacheConfig::default())
    }

    /// Creates an empty cache with explicit sharding and capacity. Shard
    /// count is clamped to at least 1 and capacity to at least one entry per
    /// shard.
    pub fn with_config(config: CacheConfig) -> Self {
        let shards = config.shards.max(1);
        let per_shard_capacity = config.capacity.max(shards).div_ceil(shards);
        let metrics = Arc::new(MetricsRegistry::new());
        SharedGroebnerCache {
            shards: (0..shards)
                .map(|i| Mutex::new(CacheShard::new(&metrics, i)))
                .collect(),
            local_shards: (0..shards)
                .map(|i| Mutex::new(LocalShard::new(&metrics, i)))
                .collect(),
            fp_shards: config.modular_prefilter.then(|| {
                (0..shards)
                    .map(|_| Mutex::new(FpShard::default()))
                    .collect()
            }),
            fp_hits: metrics.counter("fp.hits"),
            fp_rejects: metrics.counter("fp.rejects"),
            unlucky_primes: metrics.counter("fp.unlucky_primes"),
            exact_probes: metrics.counter("fp.exact_reuse"),
            lift_success: metrics.counter("lift.success"),
            lift_retry: metrics.counter("lift.retry"),
            lift_fallback: metrics.counter("lift.fallback"),
            lift_bypass: metrics.counter("lift.bypass"),
            crt_primes_used: metrics.counter("lift.crt_primes"),
            reduction_sizes: metrics.histogram("groebner.reductions"),
            metrics,
            per_shard_capacity,
        }
    }

    /// The unified metrics registry this cache's counters live in. The batch
    /// engine shares it (pool counters register here too) and reports
    /// per-batch activity as one snapshot delta.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// A point-in-time snapshot of every metric in the registry.
    pub fn metrics_snapshot(&self) -> symmap_trace::MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// The shard a key lives in: a fixed-seed hash, so shard assignment is
    /// reproducible across runs (eviction behavior at `workers = 1` is a
    /// deterministic function of the request sequence).
    fn shard_for(
        &self,
        generators: &[Poly],
        order: &MonomialOrder,
        options: &GroebnerOptions,
    ) -> &Mutex<CacheShard> {
        &self.shards
            [(global_key_id(generators, order, options) % self.shards.len() as u64) as usize]
    }

    /// The ring-local shard a localized key lives in (same fixed-seed
    /// hashing discipline as [`SharedGroebnerCache::shard_for`]).
    fn local_shard_for(&self, key: &LocalKey) -> &Mutex<LocalShard> {
        &self.local_shards[(local_key_id(key) % self.local_shards.len() as u64) as usize]
    }

    /// Returns the memoized core basis of a ring-local canonical form,
    /// computing and inserting it on first use. The compute happens outside
    /// the shard lock; a lost key race adopts the winner's entry.
    fn local_basis(&self, key: LocalKey, options: &GroebnerOptions) -> Arc<CoreBasis> {
        let shard = self.local_shard_for(&key);
        {
            let locked = shard.lock();
            if let Some(hit) = locked.entries.get(&key) {
                let hit = Arc::clone(hit);
                locked.hits.inc();
                trace_sched!("cache.alpha.hit");
                return hit;
            }
            locked.misses.inc();
            trace_sched!("cache.alpha.miss");
        }
        // Compute-channel scope: the computation below is a pure function of
        // the α-canonical key, so racing duplicate computations record
        // byte-identical streams that collapse onto one key in the collector
        // (DESIGN.md §8). Which lookup computes is scheduling-dependent —
        // that outcome was reported to the sched channel above.
        // lint:allow(D6): the shared cache IS the compute-channel entry point
        let _compute_scope = symmap_trace::recorder::install_compute_scope(
            local_key_id(&key),
            &format!("groebner: {} gens", key.2.len()),
        );
        let (core, lift) = compute_core(&key.2, &key.0, options);
        trace_event!(
            "groebner.core",
            // "Pair selections": every queue pop is either a chain-criterion
            // skip or a reduction; coprime skips never enter the queue.
            pairs = core.reductions + core.skipped_chain,
            reductions = core.reductions,
            skipped_coprime = core.skipped_coprime,
            skipped_chain = core.skipped_chain,
            basis_len = core.polys.len(),
            complete = core.complete as usize,
        );
        self.reduction_sizes.observe(core.reductions as u64);
        if let Some(report) = lift {
            if report.bypassed {
                self.lift_bypass.inc();
            } else if report.success {
                self.lift_success.inc();
                self.crt_primes_used.add(report.primes_used as u64);
            } else {
                self.lift_fallback.inc();
            }
            if report.retries > 0 {
                self.lift_retry.add(report.retries as u64);
            }
        }
        drop(_compute_scope);
        let core = Arc::new(core);
        let mut locked = shard.lock();
        let locked = &mut *locked;
        if let Some(existing) = locked.entries.get(&key) {
            return Arc::clone(existing);
        }
        locked.entries.insert(key.clone(), Arc::clone(&core));
        locked.queue.push_back(key);
        locked.len.set(locked.entries.len() as i64);
        while locked.entries.len() > self.per_shard_capacity {
            locked.evict_oldest();
        }
        core
    }

    /// Returns the (possibly cached) Gröbner basis of `generators` under
    /// `order` with `options`, computing and memoizing it on first use.
    ///
    /// Lookups go through two layers. The **global** layer is keyed by the
    /// request verbatim — a hit is one pointer clone, exactly as before. A
    /// global miss computes the request's ring-local canonical form
    /// (generators and order rewritten through a spanning [`Ring`] into
    /// dense local indices) and consults the **ring-local** layer, where
    /// α-equivalent requests — same ideal shape under renamed variables, or
    /// the same side-relation set reduced for targets with different
    /// variable sets (whose default orders differ only outside the ideal's
    /// ring) — share one memoized core computation; only the cheap
    /// globalization is per-key. α-layer activity is reported separately
    /// ([`SharedGroebnerCache::alpha_hits`]); global `hits`/`misses`
    /// semantics are unchanged.
    pub fn basis(
        &self,
        generators: &[Poly],
        order: &MonomialOrder,
        options: &GroebnerOptions,
    ) -> Arc<GroebnerBasis> {
        // Job-channel request marker: the sequence of basis requests a job
        // makes is a pure function of the job's inputs, so this event is
        // deterministic. The *outcome* (hit vs miss) is scheduling-dependent
        // and goes to the sched channel below.
        trace_event!(
            "cache.request",
            key = global_key_id(generators, order, options),
            gens = generators.len(),
        );
        let shard = self.shard_for(generators, order, options);
        {
            let locked = shard.lock();
            if let Some(hit) = locked.lookup(generators, order, options) {
                let hit = Arc::clone(hit);
                locked.hits.inc();
                trace_sched!("cache.hit");
                return hit;
            }
            locked.misses.inc();
            trace_sched!("cache.miss");
        }
        // Resolve through the ring-local layer outside the global lock.
        let (ring, lgens, lorder) = ring_localized(generators, order);
        let core = self.local_basis((lorder, options.clone(), lgens), options);
        let gb = Arc::new(basis_from_core(Arc::clone(&core.polys), &core, ring, order));
        let mut locked = shard.lock();
        let locked = &mut *locked;
        if let Some(existing) = locked.lookup(generators, order, options) {
            // Lost a compute race on this key; adopt the winner's entry.
            return Arc::clone(existing);
        }
        locked
            .entries
            .entry(order.clone())
            .or_default()
            .entry(options.clone())
            .or_default()
            .insert(generators.to_vec(), Arc::clone(&gb));
        locked
            .queue
            .push_back((order.clone(), options.clone(), generators.to_vec()));
        locked.len.set(locked.queue.len() as i64);
        while locked.queue.len() > self.per_shard_capacity {
            locked.evict_oldest();
        }
        gb
    }

    /// Number of lookups answered from the cache (all shards).
    pub fn hits(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().hits.get() as usize)
            .sum()
    }

    /// Number of lookups that had to compute a fresh basis (all shards).
    pub fn misses(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().misses.get() as usize)
            .sum()
    }

    /// Number of entries evicted by the capacity bound (all shards).
    pub fn evictions(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().evictions.get() as usize)
            .sum()
    }

    /// Number of distinct bases currently memoized (all shards).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().queue.len()).sum()
    }

    /// Returns `true` when nothing is currently memoized.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of lock shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total capacity in bases (per-shard slice × shard count).
    pub fn capacity(&self) -> usize {
        self.per_shard_capacity * self.shards.len()
    }

    /// Point-in-time counters of every shard, in shard order.
    pub fn shard_stats(&self) -> Vec<CacheShardStats> {
        self.shards.iter().map(|s| s.lock().stats()).collect()
    }

    /// Lookups answered by the ring-local layer: the global key was new, but
    /// an α-equivalent request had already computed the core basis (all
    /// shards).
    pub fn alpha_hits(&self) -> usize {
        self.local_shards
            .iter()
            .map(|s| s.lock().hits.get() as usize)
            .sum()
    }

    /// Ring-local canonical forms that had to run the Buchberger core (all
    /// shards). Every global miss is either an α-hit or an α-miss.
    pub fn alpha_misses(&self) -> usize {
        self.local_shards
            .iter()
            .map(|s| s.lock().misses.get() as usize)
            .sum()
    }

    /// Entries evicted from the ring-local layer by the capacity bound.
    pub fn alpha_evictions(&self) -> usize {
        self.local_shards
            .iter()
            .map(|s| s.lock().evictions.get() as usize)
            .sum()
    }

    /// Distinct ring-local canonical forms currently memoized.
    pub fn alpha_len(&self) -> usize {
        self.local_shards
            .iter()
            .map(|s| s.lock().entries.len())
            .sum()
    }

    /// Point-in-time counters of every ring-local shard, in shard order
    /// (`hits` are α-hits; see [`SharedGroebnerCache::alpha_hits`]).
    pub fn alpha_shard_stats(&self) -> Vec<CacheShardStats> {
        self.local_shards.iter().map(|s| s.lock().stats()).collect()
    }

    /// Whether the modular (ℤ/p) prefilter layer is enabled
    /// ([`CacheConfig::modular_prefilter`]).
    pub fn modular_enabled(&self) -> bool {
        self.fp_shards.is_some()
    }

    /// Point-in-time counters of the modular prefilter. Counter totals under
    /// concurrency are timing-dependent (like the shard stats), but probe
    /// *answers* never are.
    pub fn fp_probe_stats(&self) -> FpProbeStats {
        FpProbeStats {
            fp_hits: self.fp_hits.get() as usize,
            fp_rejects: self.fp_rejects.get() as usize,
            unlucky_primes: self.unlucky_primes.get() as usize,
            exact_probes: self.exact_probes.get() as usize,
        }
    }

    /// Point-in-time counters of the multi-modular lift. Counter totals
    /// under concurrency are timing-dependent (like the shard stats), but
    /// the lifted *bases* never are — every lift is verified over ℚ and the
    /// exact engine answers whenever verification balks.
    pub fn lift_stats(&self) -> LiftStats {
        LiftStats {
            lift_success: self.lift_success.get() as usize,
            lift_retry: self.lift_retry.get() as usize,
            lift_fallback: self.lift_fallback.get() as usize,
            lift_bypass: self.lift_bypass.get() as usize,
            crt_primes_used: self.crt_primes_used.get() as usize,
        }
    }

    /// A lock-only peek at the ring-local layer: the resident core basis for
    /// a canonical form, or `None` without computing anything. Deliberately
    /// bumps **no** counters — the α-layer hit/miss numbers keep meaning
    /// "basis requests", not "probe glances".
    fn local_peek(&self, key: &LocalKey) -> Option<Arc<CoreBasis>> {
        self.local_shard_for(key)
            .lock()
            .entries
            .get(key)
            .map(Arc::clone)
    }

    /// Returns the memoized mod-p basis of a ring-local canonical form
    /// (sharing the α-canonical [`LocalKey`] discipline of
    /// [`SharedGroebnerCache::local_basis`]), computing it outside the shard
    /// lock on first use. `None` inside the `Arc` records an ideal whose
    /// rotation budget was exhausted by unlucky primes.
    fn fp_basis_for(&self, key: LocalKey, options: &GroebnerOptions) -> Arc<Option<FpBasis>> {
        let shards = self
            .fp_shards
            .as_ref()
            .expect("caller checked modular_enabled");
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        let shard = &shards[(hasher.finish() % shards.len() as u64) as usize];
        {
            let locked = shard.lock();
            if let Some(hit) = locked.entries.get(&key) {
                return Arc::clone(hit);
            }
        }
        // Whether this probe computes a fresh mod-p image (vs finding one
        // memoized, vs never running because a resident exact basis answered
        // first) is scheduling-dependent, so every fp event is sched-channel.
        trace_sched!("probe.fp.compute");
        let computed = FpBasis::compute(&key.2, &key.0, options);
        let rotations = computed
            .as_ref()
            .map_or(MAX_PRIME_ROTATIONS, |b| b.rotations);
        if rotations > 0 {
            self.unlucky_primes.add(rotations as u64);
            trace_sched!("probe.fp.unlucky", rotations = rotations);
        }
        let value = Arc::new(computed);
        let mut locked = shard.lock();
        let locked = &mut *locked;
        if let Some(existing) = locked.entries.get(&key) {
            return Arc::clone(existing);
        }
        locked.entries.insert(key.clone(), Arc::clone(&value));
        locked.queue.push_back(key);
        while locked.entries.len() > self.per_shard_capacity {
            locked.evict_oldest();
        }
        value
    }

    /// Cheap mod-p membership probe: does `target` reduce to zero modulo the
    /// ideal of `generators`?
    ///
    /// * `Some(false)` — nonzero normal form under a **complete** mod-p
    ///   basis: `target` is not in the ideal (sound away from cofactor-level
    ///   unlucky primes; see [`crate::modular`] for why callers must still
    ///   confirm with the exact run before acting on it).
    /// * `Some(true)` — the image reduces to zero: membership is *likely*
    ///   but never certified by a single prime.
    /// * `None` — no answer: prefilter disabled, target has variables
    ///   outside the ideal's ring or a denominator divisible by p, every
    ///   candidate prime was unlucky, or the mod-p run hit its iteration
    ///   bound with a nonzero normal form.
    ///
    /// An advisory-only view of
    /// [`SharedGroebnerCache::probe_membership_verdict`], kept for callers
    /// that treat every answer as a hint: `Some(b)` whatever the verdict's
    /// strength, `None` when there is no answer.
    pub fn probe_membership(
        &self,
        generators: &[Poly],
        order: &MonomialOrder,
        options: &GroebnerOptions,
        target: &Poly,
    ) -> Option<bool> {
        match self.probe_membership_verdict(generators, order, options, target)? {
            ProbeVerdict::Certified(b) | ProbeVerdict::Advisory(b) => Some(b),
        }
    }

    /// Membership probe: does `target` reduce to zero modulo the ideal of
    /// `generators`?
    ///
    /// Two strengths of answer:
    ///
    /// * [`ProbeVerdict::Certified`] — the exact reduced basis for this
    ///   request's α-canonical form was already resident in the ring-local
    ///   layer (some earlier [`SharedGroebnerCache::basis`] call lifted it),
    ///   so the target is reduced against it **over ℚ**. This is the exact
    ///   answer — no `FpBasis` is localized, nothing mod-p runs — and
    ///   callers may short-circuit on it. Counted in
    ///   [`FpProbeStats::exact_probes`].
    /// * [`ProbeVerdict::Advisory`] — no exact basis resident; a memoized
    ///   single-prime image answers as before. `Advisory(false)` means a
    ///   nonzero normal form under a **complete** mod-p basis (sound away
    ///   from cofactor-level unlucky primes); `Advisory(true)` means the
    ///   image reduced to zero (likely member, never certified by one
    ///   prime). The exact run must confirm before anyone acts.
    ///
    /// `None` — no answer: prefilter disabled, target has variables outside
    /// the ideal's ring or a denominator divisible by p, every candidate
    /// prime was unlucky, or the (exact or mod-p) run hit its iteration
    /// bound with a nonzero normal form.
    ///
    /// The probe deliberately leaves the exact layers' hit/miss counters
    /// untouched: a glance is not a basis request.
    pub fn probe_membership_verdict(
        &self,
        generators: &[Poly],
        order: &MonomialOrder,
        options: &GroebnerOptions,
        target: &Poly,
    ) -> Option<ProbeVerdict> {
        self.fp_shards.as_ref()?;
        let (ring, lgens, lorder) = ring_localized(generators, order);
        let ltarget = ring.try_localize_poly(target)?;
        let key: LocalKey = (lorder, options.clone(), lgens);
        if let Some(core) = self.local_peek(&key) {
            // The exact basis is already paid for — reduce against it
            // instead of localizing a fresh mod-p image of the same ideal.
            self.exact_probes.inc();
            trace_sched!("probe.exact_reuse");
            let prepared: Vec<PreparedDivisor> = core
                .polys
                .iter()
                .filter_map(|g| PreparedDivisor::new(g.clone(), &key.0))
                .collect();
            let nf = prepared_normal_form(&ltarget, &prepared, &key.0, None);
            return if nf.is_zero() {
                Some(ProbeVerdict::Certified(true))
            } else if core.complete {
                Some(ProbeVerdict::Certified(false))
            } else {
                None
            };
        }
        let fp = self.fp_basis_for(key, options);
        let basis = fp.as_ref().as_ref()?;
        match basis.reduces_to_zero(&ltarget)? {
            true => {
                self.fp_hits.inc();
                trace_sched!("probe.fp.hit");
                Some(ProbeVerdict::Advisory(true))
            }
            false if basis.complete => {
                self.fp_rejects.inc();
                trace_sched!("probe.fp.reject");
                Some(ProbeVerdict::Advisory(false))
            }
            false => None,
        }
    }
}

/// The fixed-seed hash of a ring-local key: shard selector, compute-channel
/// stream id and trace label, all from one value so they agree. The
/// `DefaultHasher` here is constructed with fixed keys, so ids are
/// reproducible across runs — the same discipline
/// [`SharedGroebnerCache::shard_for`] has always relied on.
fn local_key_id(key: &LocalKey) -> u64 {
    let mut hasher = DefaultHasher::new();
    key.hash(&mut hasher);
    hasher.finish()
}

/// The fixed-seed hash of a global cache key, used as the job-channel
/// request marker (`cache.request`): a pure function of the request, so the
/// marker sequence is deterministic per job.
fn global_key_id(generators: &[Poly], order: &MonomialOrder, options: &GroebnerOptions) -> u64 {
    let mut hasher = DefaultHasher::new();
    order.hash(&mut hasher);
    options.hash(&mut hasher);
    generators.hash(&mut hasher);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::division::{normal_form, reduces_to_zero, s_polynomial};
    use crate::monomial::Monomial;
    use crate::var::Var;
    use proptest::prelude::*;

    fn p(s: &str) -> Poly {
        Poly::parse(s).unwrap()
    }

    /// The seed engine, kept verbatim as the differential-testing oracle:
    /// linear-scan pair selection (normal strategy via `min_by`), coprime
    /// criterion at pop time, leading monomials recomputed per use, and the
    /// clone-heavy auto-reduction. Returns `(reduced basis, reductions)`.
    fn seed_buchberger(generators: &[Poly], order: &MonomialOrder) -> (Vec<Poly>, usize) {
        let mut basis: Vec<Poly> = generators
            .iter()
            .filter(|g| !g.is_zero())
            .map(|g| g.monic(order))
            .collect();
        if basis.is_empty() {
            return (Vec::new(), 0);
        }
        let lcm_of = |basis: &[Poly], i: usize, j: usize| {
            basis[i]
                .leading_monomial(order)
                .unwrap()
                .lcm(&basis[j].leading_monomial(order).unwrap())
        };
        let mut pairs: Vec<(usize, usize, Monomial)> = Vec::new();
        for i in 0..basis.len() {
            for j in (i + 1)..basis.len() {
                let lcm = lcm_of(&basis, i, j);
                pairs.push((i, j, lcm));
            }
        }
        let mut reductions = 0;
        while !pairs.is_empty() {
            if reductions >= 10_000 {
                break;
            }
            let selected = pairs
                .iter()
                .enumerate()
                .min_by(|(_, (_, _, la)), (_, (_, _, lb))| order.cmp(la, lb))
                .map(|(idx, _)| idx)
                .unwrap();
            let (i, j, _) = pairs.swap_remove(selected);
            let lm_i = basis[i].leading_monomial(order).unwrap();
            let lm_j = basis[j].leading_monomial(order).unwrap();
            if lm_i.is_coprime_with(&lm_j) {
                continue;
            }
            let s = s_polynomial(&basis[i], &basis[j], order);
            let r = normal_form(&s, &basis, order);
            reductions += 1;
            if !r.is_zero() {
                let r = r.monic(order);
                let new_index = basis.len();
                basis.push(r);
                for k in 0..new_index {
                    let lcm = lcm_of(&basis, k, new_index);
                    pairs.push((k, new_index, lcm));
                }
            }
        }
        let mut keep = vec![true; basis.len()];
        for i in 0..basis.len() {
            if !keep[i] {
                continue;
            }
            let lm_i = basis[i].leading_monomial(order).unwrap();
            for j in 0..basis.len() {
                if i == j || !keep[j] {
                    continue;
                }
                let lm_j = basis[j].leading_monomial(order).unwrap();
                if lm_j.divides(&lm_i) && (lm_i != lm_j || j < i) {
                    keep[i] = false;
                    break;
                }
            }
        }
        let basis: Vec<Poly> = basis
            .into_iter()
            .zip(keep)
            .filter_map(|(q, k)| if k { Some(q) } else { None })
            .collect();
        let mut reduced = Vec::with_capacity(basis.len());
        for i in 0..basis.len() {
            let others: Vec<Poly> = basis
                .iter()
                .enumerate()
                .filter_map(|(j, q)| if j != i { Some(q.clone()) } else { None })
                .collect();
            let r = normal_form(&basis[i], &others, order);
            if !r.is_zero() {
                reduced.push(r.monic(order));
            }
        }
        reduced.sort_by(|a, b| {
            let la = a.leading_monomial(order).unwrap();
            let lb = b.leading_monomial(order).unwrap();
            order.cmp(&lb, &la)
        });
        (reduced, reductions)
    }

    /// All eight criterion/tiebreak combinations.
    fn option_combinations() -> Vec<GroebnerOptions> {
        let mut combos = Vec::new();
        for coprime in [true, false] {
            for chain in [true, false] {
                for sugar in [true, false] {
                    combos.push(GroebnerOptions {
                        use_coprime_criterion: coprime,
                        use_chain_criterion: chain,
                        use_sugar_tiebreak: sugar,
                        ..Default::default()
                    });
                }
            }
        }
        combos
    }

    /// The mapper's 4-relation side-relation ideal from the decompose search
    /// (sum/diff/prod/square elements) — the workload that made the seed
    /// engine's naive pair ordering hang in PR 1.
    fn mapper_side_relation_ideal() -> (Vec<Poly>, MonomialOrder) {
        let gens = vec![p("x + y - s"), p("x - y - d"), p("x*y - q"), p("x^2 - sx")];
        let order = MonomialOrder::lex(&["x", "y", "s", "d", "q", "sx"]);
        (gens, order)
    }

    #[test]
    fn modular_probe_answers_and_counts_without_touching_exact_counters() {
        let (gens, order) = mapper_side_relation_ideal();
        let options = GroebnerOptions::default();
        let cache = SharedGroebnerCache::with_config(CacheConfig {
            modular_prefilter: true,
            ..CacheConfig::default()
        });
        assert!(cache.modular_enabled());
        let member = p("x + y - s");
        let non_member = p("x + 1");
        assert_eq!(
            cache.probe_membership(&gens, &order, &options, &member),
            Some(true)
        );
        assert_eq!(
            cache.probe_membership(&gens, &order, &options, &non_member),
            Some(false)
        );
        // Second probe of the same ideal reuses the memoized mod-p basis and
        // only bumps the probe counters.
        assert_eq!(
            cache.probe_membership(&gens, &order, &options, &member),
            Some(true)
        );
        let stats = cache.fp_probe_stats();
        assert_eq!(
            (stats.fp_hits, stats.fp_rejects, stats.unlucky_primes),
            (2, 1, 0)
        );
        // The probe layer never disturbs the exact layers' counters.
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
        assert_eq!((cache.alpha_hits(), cache.alpha_misses()), (0, 0));
        // A target with a variable outside the ideal's ring gets no answer.
        let foreign = p("x + zz_foreign");
        assert_eq!(
            cache.probe_membership(&gens, &order, &options, &foreign),
            None
        );
    }

    #[test]
    fn modular_probe_is_disabled_by_default() {
        let (gens, order) = mapper_side_relation_ideal();
        let cache = SharedGroebnerCache::new();
        assert!(!cache.modular_enabled());
        assert_eq!(
            cache.probe_membership(&gens, &order, &GroebnerOptions::default(), &p("x + 1")),
            None
        );
        assert_eq!(cache.fp_probe_stats(), FpProbeStats::default());
    }

    #[test]
    fn certified_probe_reuses_resident_exact_basis() {
        let (gens, order) = mapper_side_relation_ideal();
        let options = GroebnerOptions::default();
        let cache = SharedGroebnerCache::with_config(CacheConfig {
            modular_prefilter: true,
            ..CacheConfig::default()
        });
        let member = p("x + y - s");
        let non_member = p("x + 1");
        // Before any basis is resident, the probe answers mod-p (advisory)
        // and pays for an FpBasis localization.
        assert_eq!(
            cache.probe_membership_verdict(&gens, &order, &options, &member),
            Some(ProbeVerdict::Advisory(true))
        );
        // An exact basis request lands the lifted core in the α-layer ...
        let gb = cache.basis(&gens, &order, &options);
        assert!(gb.complete);
        // ... and from here on the probe reduces against the resident exact
        // basis: certified verdicts, no new mod-p work, no fp counters.
        assert_eq!(
            cache.probe_membership_verdict(&gens, &order, &options, &member),
            Some(ProbeVerdict::Certified(true))
        );
        assert_eq!(
            cache.probe_membership_verdict(&gens, &order, &options, &non_member),
            Some(ProbeVerdict::Certified(false))
        );
        let stats = cache.fp_probe_stats();
        assert_eq!(
            (stats.fp_hits, stats.fp_rejects, stats.exact_probes),
            (1, 0, 2)
        );
        // The certified glance leaves the exact layers' counters alone: one
        // global miss and one α-miss from the basis request, nothing more.
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        assert_eq!((cache.alpha_hits(), cache.alpha_misses()), (0, 1));
    }

    #[test]
    fn lift_profitability_gate_reads_only_the_coefficients() {
        // All-integer small ideals are bypassed…
        let (gens, _) = mapper_side_relation_ideal();
        assert!(!lift_profitable(&gens));
        // …a single fractional coefficient flips the verdict…
        assert!(lift_profitable(&[p("x^2 - 1/3")]));
        // …and so does a numerator past the single-word fast path.
        assert!(lift_profitable(&[p("4294967296*x - 1")]));
        assert!(!lift_profitable(&[p("2147483647*x - 1")]));
    }

    #[test]
    fn multimodular_requests_route_through_the_verified_lift() {
        // The fractional coefficient marks the ideal lift-profitable, so the
        // request genuinely reaches the multi-modular engine.
        let gens = vec![
            p("x + y - s"),
            p("x - y - d"),
            p("x*y - q"),
            p("x^2 - 1/3*sx"),
        ];
        let order = MonomialOrder::lex(&["x", "y", "s", "d", "q", "sx"]);
        let exact = GroebnerOptions {
            multimodular: false,
            ..GroebnerOptions::default()
        };
        let lifted = GroebnerOptions {
            multimodular: true,
            ..exact.clone()
        };
        let cache = SharedGroebnerCache::new();
        let via_lift = cache.basis(&gens, &order, &lifted);
        let via_exact = cache.basis(&gens, &order, &exact);
        // The verified lift is byte-identical to the exact engine, counters
        // included.
        assert_eq!(via_lift.polys(), via_exact.polys());
        assert_eq!(via_lift.reductions, via_exact.reductions);
        let stats = cache.lift_stats();
        assert_eq!((stats.lift_success, stats.lift_fallback), (1, 0));
        assert!(stats.crt_primes_used >= 1);
        // An iteration-starved run cannot produce a certifiable lift: the
        // engine falls back to (equally starved) exact Buchberger rather
        // than hand out an unverified basis.
        let before = cache.metrics_snapshot();
        let starved = GroebnerOptions {
            max_iterations: 1,
            ..lifted
        };
        let gb = cache.basis(&gens, &order, &starved);
        assert!(!gb.complete);
        let delta = cache.metrics_snapshot().delta_since(&before);
        assert_eq!(
            (
                delta.counter("lift.success"),
                delta.counter("lift.fallback")
            ),
            (0, 1)
        );
        // An all-integer ideal is routed straight to the exact engine by the
        // profitability gate: no image, no fallback — one bypass.
        let (igens, iorder) = mapper_side_relation_ideal();
        let before = cache.metrics_snapshot();
        let gb = cache.basis(&igens, &iorder, &lifted);
        assert!(gb.complete);
        let delta = cache.metrics_snapshot().delta_since(&before);
        assert_eq!(
            (
                delta.counter("lift.success"),
                delta.counter("lift.fallback"),
                delta.counter("lift.bypass"),
            ),
            (0, 0, 1)
        );
        assert_eq!(cache.lift_stats().lift_bypass, 1);
    }

    #[test]
    fn empty_and_zero_generators() {
        let order = MonomialOrder::lex(&["x"]);
        let gb = groebner_basis(&[], &order);
        assert!(gb.polys().is_empty());
        assert!(gb.complete);
        let gb = groebner_basis(&[Poly::zero()], &order);
        assert!(gb.polys().is_empty());
    }

    #[test]
    fn single_generator_is_its_own_basis() {
        let order = MonomialOrder::lex(&["x", "y"]);
        let gb = groebner_basis(&[p("2*x^2 - 2*y")], &order);
        assert_eq!(gb.polys(), vec![p("x^2 - y")]);
    }

    #[test]
    fn textbook_twisted_cubic() {
        // I = <x^2 - y, x^3 - z> under lex x > y > z.
        // Reduced GB: {x^2 - y, x*y - z, x*z - y^2, y^3 - z^2}.
        let order = MonomialOrder::lex(&["x", "y", "z"]);
        let gb = groebner_basis(&[p("x^2 - y"), p("x^3 - z")], &order);
        assert!(gb.complete);
        let expected = [p("x^2 - y"), p("x*y - z"), p("x*z - y^2"), p("y^3 - z^2")];
        assert_eq!(gb.polys().len(), expected.len());
        for e in &expected {
            assert!(
                gb.polys().contains(e),
                "expected {e} in basis {:?}",
                gb.polys().iter().map(|q| q.to_string()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn buchberger_criterion_spolys_reduce_to_zero() {
        let order = MonomialOrder::grlex(&["x", "y"]);
        let gb = groebner_basis(&[p("x^3 - 2*x*y"), p("x^2*y - 2*y^2 + x")], &order);
        assert!(gb.complete);
        for i in 0..gb.polys().len() {
            for j in (i + 1)..gb.polys().len() {
                let s = s_polynomial(&gb.polys()[i], &gb.polys()[j], &order);
                assert!(reduces_to_zero(&s, gb.polys(), &order));
            }
        }
        // The classic reduced basis for this ideal under grlex is
        // {x^2, x*y, y^2 - x/2}; x^2 is in the ideal but x itself is not.
        assert!(gb.contains(&p("x^2")));
        assert!(!gb.contains(&p("x")));
    }

    #[test]
    fn membership_is_exact_with_complete_basis() {
        let order = MonomialOrder::lex(&["x", "y"]);
        let g1 = p("x^2 + y^2 - 1");
        let g2 = p("x - y");
        let gb = groebner_basis(&[g1.clone(), g2.clone()], &order);
        assert!(gb.complete);
        // A random combination is a member.
        let member = g1.mul(&p("x*y + 3")).add(&g2.mul(&p("y^2 - x")));
        assert!(gb.contains(&member));
        assert_eq!(gb.membership(&member), Membership::In);
        // x alone is not in this ideal.
        assert!(!gb.contains(&p("x")));
        assert_eq!(gb.membership(&p("x")), Membership::NotIn);
    }

    #[test]
    fn membership_on_truncated_basis_is_three_valued() {
        let order = MonomialOrder::lex(&["x", "y", "z"]);
        let gens = [p("x^2 - y"), p("x^3 - z"), p("y^3 - z^2 + x")];
        let opts = GroebnerOptions {
            max_iterations: 1,
            ..Default::default()
        };
        let gb = buchberger(&gens, &order, &opts);
        assert!(!gb.complete);
        // A generator still reduces to zero: In is sound on a partial basis.
        assert_eq!(gb.membership(&gens[0]), Membership::In);
        assert!(gb.contains(&gens[0]));
        // A probe with a fresh variable `w` can never reduce to zero (no
        // basis leading monomial divides a `w` term), so the non-zero normal
        // form is guaranteed — and on a truncated basis it must read as
        // Unknown, never NotIn.
        let probe = p("w + x^2");
        assert!(!gb.reduce(&probe).is_zero());
        assert_eq!(gb.membership(&probe), Membership::Unknown);
        assert!(!gb.contains(&probe), "contains stays conservative");
    }

    #[test]
    fn generators_reduce_to_zero_modulo_basis() {
        let order = MonomialOrder::grevlex(&["x", "y", "z"]);
        let gens = [p("x*y - z^2"), p("y^2 - x*z"), p("x^2 - y*z")];
        let gb = groebner_basis(&gens, &order);
        for g in &gens {
            assert!(gb.contains(g));
        }
    }

    #[test]
    fn reduced_basis_is_canonical_for_the_ideal() {
        // Two different generating sets of the same ideal give the same
        // reduced basis.
        let order = MonomialOrder::lex(&["x", "y"]);
        let a = groebner_basis(&[p("x - y"), p("y^2 - 1")], &order);
        let b = groebner_basis(&[p("x - y"), p("y^2 - 1"), p("x*y^2 - x + x - y")], &order);
        assert_eq!(a.polys(), b.polys());
    }

    #[test]
    fn iteration_bound_reports_incomplete() {
        let order = MonomialOrder::lex(&["x", "y", "z"]);
        let opts = GroebnerOptions {
            max_iterations: 1,
            ..Default::default()
        };
        let gb = buchberger(
            &[p("x^2 - y"), p("x^3 - z"), p("y^3 - z^2 + x")],
            &order,
            &opts,
        );
        assert!(!gb.complete);
        assert!(gb.reductions <= 1);
    }

    #[test]
    fn truncated_run_yields_sound_partial_basis() {
        // Regression for the iteration-bound audit: a truncated basis must
        // still be usable for reduction — every element lies in the ideal,
        // so `f - reduce(f)` is always an ideal member and `reduce` is a
        // valid (if non-canonical) rewrite.
        let (gens, order) = mapper_side_relation_ideal();
        let full = groebner_basis(&gens, &order);
        assert!(full.complete);
        for cap in [0, 1, 2, 3] {
            let opts = GroebnerOptions {
                max_iterations: cap,
                ..Default::default()
            };
            let gb = buchberger(&gens, &order, &opts);
            assert!(gb.reductions <= cap);
            for q in gb.polys() {
                assert!(
                    full.contains(q),
                    "truncated basis element {q} escaped the ideal (cap {cap})"
                );
            }
            let f = p("x^3 + x*y + y^2");
            let diff = f.sub(&gb.reduce(&f));
            assert!(
                full.contains(&diff),
                "reduce must subtract an ideal member (cap {cap})"
            );
        }
    }

    #[test]
    fn exhausted_bound_with_only_skippable_pairs_left_is_still_complete() {
        // {x - 1, y - 2} needs zero reductions: the single pair is coprime.
        // Even with max_iterations = 0 the run is complete — criterion skips
        // are free and must not trip the bound.
        let order = MonomialOrder::lex(&["x", "y"]);
        let opts = GroebnerOptions {
            max_iterations: 0,
            ..Default::default()
        };
        let gb = buchberger(&[p("x - 1"), p("y - 2")], &order, &opts);
        assert!(gb.complete);
        assert_eq!(gb.reductions, 0);
        assert_eq!(gb.skipped_coprime, 1);
        assert_eq!(gb.polys(), vec![p("x - 1"), p("y - 2")]);
    }

    #[test]
    fn criteria_do_not_change_result() {
        let order = MonomialOrder::grlex(&["x", "y"]);
        let gens = [p("x^3 - 2*x*y"), p("x^2*y - 2*y^2 + x")];
        let reference = buchberger(&gens, &order, &GroebnerOptions::default());
        for opts in option_combinations() {
            let gb = buchberger(&gens, &order, &opts);
            assert_eq!(gb.polys(), reference.polys(), "options {opts:?}");
            assert!(gb.complete);
        }
        // Disabling both criteria performs at least as many reductions.
        let without = buchberger(
            &gens,
            &order,
            &GroebnerOptions {
                use_coprime_criterion: false,
                use_chain_criterion: false,
                ..Default::default()
            },
        );
        assert!(without.reductions >= reference.reductions);
    }

    #[test]
    fn chain_criterion_skips_pairs_on_the_twisted_cubic() {
        let order = MonomialOrder::lex(&["x", "y", "z"]);
        let gens = [p("x^2 - y"), p("x^3 - z")];
        let with = buchberger(&gens, &order, &GroebnerOptions::default());
        let without = buchberger(
            &gens,
            &order,
            &GroebnerOptions {
                use_chain_criterion: false,
                ..Default::default()
            },
        );
        assert_eq!(with.polys(), without.polys());
        assert!(with.skipped_chain > 0, "chain criterion never fired");
        assert!(
            with.reductions <= without.reductions,
            "chain criterion must not increase reductions ({} > {})",
            with.reductions,
            without.reductions
        );
    }

    #[test]
    fn engine_never_does_more_reductions_than_the_seed() {
        // Acceptance criterion of the engine rebuild: strictly fewer or equal
        // S-polynomial reductions than the seed engine on the twisted cubic
        // and on the mapper's side-relation ideal.
        let cubic_order = MonomialOrder::lex(&["x", "y", "z"]);
        let cubic = [p("x^2 - y"), p("x^3 - z")];
        let (seed_basis, seed_reductions) = seed_buchberger(&cubic, &cubic_order);
        let gb = groebner_basis(&cubic, &cubic_order);
        assert_eq!(gb.polys(), seed_basis);
        assert!(
            gb.reductions <= seed_reductions,
            "twisted cubic: {} > seed {}",
            gb.reductions,
            seed_reductions
        );

        let (gens, order) = mapper_side_relation_ideal();
        let (seed_basis, seed_reductions) = seed_buchberger(&gens, &order);
        let gb = groebner_basis(&gens, &order);
        assert_eq!(gb.polys(), seed_basis);
        assert!(
            gb.reductions <= seed_reductions,
            "mapper ideal: {} > seed {}",
            gb.reductions,
            seed_reductions
        );
    }

    #[test]
    fn sugar_tiebreak_preserves_the_reduced_basis() {
        let (gens, order) = mapper_side_relation_ideal();
        let plain = buchberger(&gens, &order, &GroebnerOptions::default());
        let sugared = buchberger(
            &gens,
            &order,
            &GroebnerOptions {
                use_sugar_tiebreak: true,
                ..Default::default()
            },
        );
        assert_eq!(plain.polys(), sugared.polys());
        assert!(sugared.complete);
    }

    #[test]
    fn cache_memoizes_identical_requests() {
        let cache = SharedGroebnerCache::new();
        assert!(cache.is_empty());
        let order = MonomialOrder::lex(&["x", "y"]);
        let gens = [p("x^2 + y^2 - 1"), p("x - y")];
        let opts = GroebnerOptions::default();
        let a = cache.basis(&gens, &order, &opts);
        let b = cache.basis(&gens, &order, &opts);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (1, 1, 1));
        // A different order is a different computation.
        let c = cache.basis(&gens, &MonomialOrder::grlex(&["x", "y"]), &opts);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (1, 2, 2));
        // Different options are a different key, too.
        cache.basis(
            &gens,
            &order,
            &GroebnerOptions {
                use_chain_criterion: false,
                ..Default::default()
            },
        );
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (1, 3, 3));
        assert_eq!(cache.evictions(), 0);
    }

    #[test]
    fn cache_evicts_oldest_insertion_first() {
        // One shard, two slots: inserting a third distinct key must evict the
        // *first* inserted key (FIFO), not the least recently used one.
        let cache = SharedGroebnerCache::with_config(CacheConfig {
            shards: 1,
            capacity: 2,
            ..CacheConfig::default()
        });
        assert_eq!(cache.capacity(), 2);
        let order = MonomialOrder::lex(&["x", "y"]);
        let opts = GroebnerOptions::default();
        let k1 = [p("x - 1")];
        let k2 = [p("y - 2")];
        let k3 = [p("x*y - 3")];
        cache.basis(&k1, &order, &opts);
        cache.basis(&k2, &order, &opts);
        // Touch k1 again (a hit): FIFO eviction must still pick k1.
        cache.basis(&k1, &order, &opts);
        assert_eq!((cache.len(), cache.evictions()), (2, 0));
        cache.basis(&k3, &order, &opts);
        assert_eq!((cache.len(), cache.evictions()), (2, 1));
        // k2 and k3 still hit; k1 was evicted and is recomputed (a miss).
        let (hits_before, misses_before) = (cache.hits(), cache.misses());
        cache.basis(&k2, &order, &opts);
        cache.basis(&k3, &order, &opts);
        assert_eq!(cache.hits(), hits_before + 2);
        cache.basis(&k1, &order, &opts);
        assert_eq!(cache.misses(), misses_before + 1);
    }

    #[test]
    fn cache_capacity_stays_bounded_under_churn() {
        let cache = SharedGroebnerCache::with_config(CacheConfig {
            shards: 2,
            capacity: 4,
            ..CacheConfig::default()
        });
        let order = MonomialOrder::lex(&["x"]);
        let opts = GroebnerOptions::default();
        for i in 1..40_i64 {
            let gens = [p("x").scale(&symmap_numeric::Rational::integer(i))];
            cache.basis(&gens, &order, &opts);
        }
        assert!(
            cache.len() <= cache.capacity(),
            "cache grew past its bound: {} > {}",
            cache.len(),
            cache.capacity()
        );
        assert!(cache.evictions() > 0);
        let stats = cache.shard_stats();
        assert_eq!(stats.len(), 2);
        let (hits, misses): (usize, usize) = (
            stats.iter().map(|s| s.hits).sum(),
            stats.iter().map(|s| s.misses).sum(),
        );
        assert_eq!((hits, misses), (cache.hits(), cache.misses()));
    }

    #[test]
    fn cache_is_shared_and_consistent_across_threads() {
        use std::thread;
        let cache = Arc::new(SharedGroebnerCache::new());
        let order = MonomialOrder::lex(&["x", "y", "z"]);
        let opts = GroebnerOptions::default();
        let reference = groebner_basis(&[p("x^2 - y"), p("x^3 - z")], &order);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let order = order.clone();
                let opts = opts.clone();
                thread::spawn(move || {
                    let mut out = Vec::new();
                    for _ in 0..8 {
                        out.push(cache.basis(&[p("x^2 - y"), p("x^3 - z")], &order, &opts));
                    }
                    out
                })
            })
            .collect();
        for handle in handles {
            for gb in handle.join().expect("cache thread panicked") {
                assert_eq!(gb.polys(), reference.polys());
            }
        }
        // 32 lookups total; every one either hit or computed.
        assert_eq!(cache.hits() + cache.misses(), 32);
        assert!(cache.misses() >= 1);
        assert!(cache.len() == 1, "racing threads must retain one entry");
    }

    #[test]
    fn ring_local_path_matches_unringed_oracle_on_late_interned_vars() {
        // Inflate the interner, then build the mapper ideal's shape over
        // fresh (high-index) names: the ring path must agree with the
        // global-coordinate oracle byte for byte — polys, counters, flags.
        for i in 0..300 {
            Var::new(&format!("gb_oracle_filler_{i}"));
        }
        let names = ["gbo_x", "gbo_y", "gbo_s", "gbo_d", "gbo_q", "gbo_sx"];
        let v: Vec<Poly> = names.iter().map(|n| Poly::var(Var::new(n))).collect();
        let gens = vec![
            v[0].add(&v[1]).sub(&v[2]),
            v[0].sub(&v[1]).sub(&v[3]),
            v[0].mul(&v[1]).sub(&v[4]),
            v[0].mul(&v[0]).sub(&v[5]),
        ];
        let order = MonomialOrder::Lex(names.iter().map(|n| Var::new(n)).collect());
        for opts in option_combinations() {
            let ringed = buchberger(&gens, &order, &opts);
            let unringed = buchberger_unringed(&gens, &order, &opts);
            assert_eq!(ringed.polys(), unringed.polys(), "options {opts:?}");
            assert_eq!(ringed.reductions, unringed.reductions);
            assert_eq!(ringed.skipped_coprime, unringed.skipped_coprime);
            assert_eq!(ringed.skipped_chain, unringed.skipped_chain);
            assert_eq!(ringed.complete, unringed.complete);
        }
        // The reduce path agrees too (ring built over basis + target).
        let gb = groebner_basis(&gens, &order);
        let probe = v[0].mul(&v[0]).sub(&v[1].mul(&v[1]));
        assert_eq!(
            gb.reduce(&probe),
            normal_form(&probe, gb.polys(), &gb.order)
        );
        assert_eq!(gb.membership(&gens[2]), Membership::In);
    }

    #[test]
    fn cache_shares_alpha_equivalent_ideals() {
        let cache = SharedGroebnerCache::new();
        let opts = GroebnerOptions::default();
        // Twisted cubic over two disjoint, test-local variable name sets,
        // interned here in matching relative order: α-sharing keys on the
        // ring-local canonical form, whose local index assignment follows
        // interner-index order — fresh names make that order a property of
        // this test, not of which concurrently running test happened to
        // intern the workspace-wide `x`/`y`/`z` first.
        let names_a = ["acia_x", "acia_y", "acia_z"];
        let (ax, ay, az) = (
            Poly::var(Var::new(names_a[0])),
            Poly::var(Var::new(names_a[1])),
            Poly::var(Var::new(names_a[2])),
        );
        let a = [ax.mul(&ax).sub(&ay), ax.mul(&ax).mul(&ax).sub(&az)];
        let order_a = MonomialOrder::Lex(names_a.iter().map(|n| Var::new(n)).collect());
        let names_b = ["alpha_u", "alpha_v", "alpha_w"];
        let (u, v, w) = (
            Poly::var(Var::new(names_b[0])),
            Poly::var(Var::new(names_b[1])),
            Poly::var(Var::new(names_b[2])),
        );
        let b = [u.mul(&u).sub(&v), u.mul(&u).mul(&u).sub(&w)];
        let order_b = MonomialOrder::Lex(names_b.iter().map(|n| Var::new(n)).collect());

        let gb_a = cache.basis(&a, &order_a, &opts);
        assert_eq!(
            (
                cache.hits(),
                cache.misses(),
                cache.alpha_hits(),
                cache.alpha_misses()
            ),
            (0, 1, 0, 1)
        );
        // α-equivalent request: new global key, shared core computation.
        let gb_b = cache.basis(&b, &order_b, &opts);
        assert_eq!(
            (
                cache.hits(),
                cache.misses(),
                cache.alpha_hits(),
                cache.alpha_misses()
            ),
            (0, 2, 1, 1)
        );
        assert_eq!(cache.alpha_len(), 1);
        assert_eq!(cache.len(), 2, "both global keys stay resident");
        // The shared core globalizes into each ring correctly: the renamed
        // basis is the renamed image of the original (4 elements each), and
        // membership works in each coordinate system.
        assert_eq!(gb_a.polys().len(), gb_b.polys().len());
        assert!(gb_a.contains(&ay.mul(&ay).mul(&ay).sub(&az.mul(&az))));
        assert!(gb_b.contains(&v.mul(&v).mul(&v).sub(&w.mul(&w))));
        // A repeat of either request is a plain global hit — no α traffic.
        cache.basis(&b, &order_b, &opts);
        assert_eq!(
            (cache.hits(), cache.alpha_hits(), cache.alpha_misses()),
            (1, 1, 1)
        );
        // An order listing an extra variable *outside* the ideal's ring is
        // the same canonical form: α-hit, not a recomputation.
        let order_a_padded = MonomialOrder::lex(&["acia_x", "acia_y", "acia_z", "alpha_pad"]);
        let gb_pad = cache.basis(&a, &order_a_padded, &opts);
        assert_eq!(
            (cache.misses(), cache.alpha_hits(), cache.alpha_misses()),
            (3, 2, 1)
        );
        assert_eq!(gb_pad.polys(), gb_a.polys());
        let stats_sum: usize = cache.alpha_shard_stats().iter().map(|s| s.hits).sum();
        assert_eq!(stats_sum, cache.alpha_hits());
        assert_eq!(cache.alpha_evictions(), 0);
    }

    #[test]
    fn alpha_layer_stays_bounded_under_churn() {
        let cache = SharedGroebnerCache::with_config(CacheConfig {
            shards: 2,
            capacity: 4,
            ..CacheConfig::default()
        });
        let order = MonomialOrder::lex(&["x"]);
        let opts = GroebnerOptions::default();
        for i in 1..40_i64 {
            // Distinct constants → distinct local keys (constants survive
            // localization verbatim), so the α-layer churns like the global
            // layer and must respect the same bound.
            let gens = [p("x").add(&Poly::integer(i))];
            cache.basis(&gens, &order, &opts);
        }
        assert!(cache.alpha_len() <= cache.capacity());
        assert!(cache.alpha_evictions() > 0);
    }

    #[test]
    fn shard_deltas_come_from_the_metrics_registry() {
        // The bespoke `CacheShardStats::delta_since` is gone; shard activity
        // windows are computed through the shared registry snapshot instead.
        let cache = SharedGroebnerCache::new();
        let order = MonomialOrder::lex(&["x", "y"]);
        let opts = GroebnerOptions::default();
        let gens = [p("x^2 - y")];
        cache.basis(&gens, &order, &opts);
        let before = cache.metrics_snapshot();
        cache.basis(&gens, &order, &opts); // pure hit
        let delta = cache.metrics_snapshot().delta_since(&before);
        assert_eq!(delta.sum_matching("cache.shard.", ".hits"), 1);
        assert_eq!(delta.sum_matching("cache.shard.", ".misses"), 0);
        // Gauges report the current level, not a flow: len survives the delta.
        let len_total: i64 = delta
            .gauges
            .iter()
            .filter(|(n, _)| n.starts_with("cache.shard.") && n.ends_with(".len"))
            .map(|(_, v)| *v)
            .sum();
        assert_eq!(len_total as usize, cache.len());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Differential test against the seed engine: on random small ideals
        /// (2–4 generators, ≤ 3 variables) the rebuilt engine must produce a
        /// byte-identical reduced basis under every order and every
        /// criterion/tiebreak combination — the reduced Gröbner basis is a
        /// canonical object, so any divergence is an engine bug.
        #[test]
        fn prop_reduced_basis_matches_seed_engine(
            gens in proptest::collection::vec(
                proptest::collection::vec((0u32..3, 0u32..3, 0u32..3, -3i64..4), 1..4),
                2..5,
            ),
        ) {
            use crate::var::Var;
            use symmap_numeric::Rational;

            let polys: Vec<Poly> = gens
                .iter()
                .map(|terms| {
                    Poly::from_terms(terms.iter().map(|&(ex, ey, ez, c)| {
                        (
                            Monomial::from_pairs(&[
                                (Var::new("x"), ex),
                                (Var::new("y"), ey),
                                (Var::new("z"), ez),
                            ]),
                            Rational::integer(c),
                        )
                    }))
                })
                .collect();
            for order in [
                MonomialOrder::lex(&["x", "y", "z"]),
                MonomialOrder::grlex(&["x", "y", "z"]),
                MonomialOrder::grevlex(&["x", "y", "z"]),
            ] {
                let (seed_basis, _) = seed_buchberger(&polys, &order);
                for opts in option_combinations() {
                    let gb = buchberger(&polys, &order, &opts);
                    prop_assume!(gb.complete);
                    prop_assert_eq!(
                        &gb.polys(),
                        &seed_basis,
                        "order {:?}, options {:?}",
                        order,
                        opts
                    );
                }
            }
        }
    }
}
