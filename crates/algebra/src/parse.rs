//! A small recursive-descent parser for polynomial expressions.
//!
//! The grammar is the subset of arithmetic expressions the paper's examples
//! use (Maple-style input without the assignment syntax):
//!
//! ```text
//! expr    := term (('+' | '-') term)*
//! term    := factor (('*' | '/') factor)*     // '/' only by constants
//! factor  := base ('^' integer)?
//! base    := number | identifier | '(' expr ')' | '-' factor
//! ```
//!
//! Products are expanded, so the parsed [`Poly`] is in canonical form.

use symmap_numeric::Rational;

use crate::error::AlgebraError;
use crate::poly::Poly;
use crate::var::Var;

/// Parses a polynomial expression; see the module documentation for the grammar.
///
/// # Errors
///
/// Returns [`AlgebraError::Parse`] for malformed input and
/// [`AlgebraError::NotPolynomial`] for division by a non-constant.
pub fn parse_polynomial(input: &str) -> Result<Poly, AlgebraError> {
    let tokens = tokenize(input)?;
    let mut parser = Parser {
        input,
        tokens,
        pos: 0,
    };
    let poly = parser.expr()?;
    if parser.pos != parser.tokens.len() {
        return Err(parser.error("unexpected trailing input"));
    }
    Ok(poly)
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Number(Rational),
    Ident(String),
    Plus,
    Minus,
    Star,
    Slash,
    Caret,
    LParen,
    RParen,
}

fn tokenize(input: &str) -> Result<Vec<Token>, AlgebraError> {
    let mut tokens = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '-' => {
                tokens.push(Token::Minus);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '/' => {
                tokens.push(Token::Slash);
                i += 1;
            }
            '^' => {
                tokens.push(Token::Caret);
                i += 1;
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            '0'..='9' | '.' => {
                let start = i;
                while i < bytes.len() && ((bytes[i] as char).is_ascii_digit() || bytes[i] == b'.') {
                    i += 1;
                }
                let lit = &input[start..i];
                let value: Rational = lit.parse().map_err(|e| AlgebraError::Parse {
                    input: input.to_string(),
                    message: format!("bad number `{lit}`: {e}"),
                })?;
                tokens.push(Token::Number(value));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                tokens.push(Token::Ident(input[start..i].to_string()));
            }
            other => {
                return Err(AlgebraError::Parse {
                    input: input.to_string(),
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    Ok(tokens)
}

struct Parser<'a> {
    input: &'a str,
    tokens: Vec<Token>,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> AlgebraError {
        AlgebraError::Parse {
            input: self.input.to_string(),
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expr(&mut self) -> Result<Poly, AlgebraError> {
        let mut acc = self.term()?;
        while let Some(tok) = self.peek() {
            match tok {
                Token::Plus => {
                    self.bump();
                    acc = acc.add(&self.term()?);
                }
                Token::Minus => {
                    self.bump();
                    acc = acc.sub(&self.term()?);
                }
                _ => break,
            }
        }
        Ok(acc)
    }

    fn term(&mut self) -> Result<Poly, AlgebraError> {
        let mut acc = self.factor()?;
        while let Some(tok) = self.peek() {
            match tok {
                Token::Star => {
                    self.bump();
                    acc = acc.mul(&self.factor()?);
                }
                Token::Slash => {
                    self.bump();
                    let divisor = self.factor()?;
                    match divisor.as_constant() {
                        Some(c) if !c.is_zero() => {
                            acc = acc.scale(&c.recip()?);
                        }
                        Some(_) => {
                            return Err(AlgebraError::Numeric(
                                symmap_numeric::NumericError::DivisionByZero,
                            ))
                        }
                        None => {
                            return Err(AlgebraError::NotPolynomial(format!(
                                "division by non-constant `{divisor}`"
                            )))
                        }
                    }
                }
                _ => break,
            }
        }
        Ok(acc)
    }

    fn factor(&mut self) -> Result<Poly, AlgebraError> {
        let base = self.base()?;
        if let Some(Token::Caret) = self.peek() {
            self.bump();
            match self.bump() {
                Some(Token::Number(n)) if n.is_integer() && !n.is_negative() => {
                    let exp = n.numer().to_i64().map_err(AlgebraError::from)?;
                    if exp > u32::MAX as i64 {
                        return Err(AlgebraError::ExponentTooLarge(exp as u64));
                    }
                    return base.pow(exp as u32);
                }
                _ => return Err(self.error("exponent must be a non-negative integer")),
            }
        }
        Ok(base)
    }

    fn base(&mut self) -> Result<Poly, AlgebraError> {
        match self.bump() {
            Some(Token::Number(n)) => Ok(Poly::constant(n)),
            Some(Token::Ident(name)) => Ok(Poly::var(Var::new(&name))),
            Some(Token::LParen) => {
                let inner = self.expr()?;
                match self.bump() {
                    Some(Token::RParen) => Ok(inner),
                    _ => Err(self.error("expected closing parenthesis")),
                }
            }
            Some(Token::Minus) => Ok(self.factor()?.neg()),
            Some(Token::Plus) => self.factor(),
            _ => Err(self.error("expected a number, variable or parenthesized expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_sums_and_products() {
        assert_eq!(parse_polynomial("x + 1").unwrap().num_terms(), 2);
        assert_eq!(parse_polynomial("x*y*z").unwrap().total_degree(), 3);
        assert_eq!(parse_polynomial("2 + 3").unwrap(), Poly::integer(5));
    }

    #[test]
    fn parses_powers_and_parentheses() {
        let p = parse_polynomial("(x + y)^2").unwrap();
        assert_eq!(p, parse_polynomial("x^2 + 2*x*y + y^2").unwrap());
        let q = parse_polynomial("x^2*(x^14 + x^15 + 1)").unwrap();
        assert_eq!(q, parse_polynomial("x^16 + x^17 + x^2").unwrap());
    }

    #[test]
    fn parses_unary_minus_and_rationals() {
        assert_eq!(parse_polynomial("-x").unwrap(), Poly::var_named("x").neg());
        assert_eq!(
            parse_polynomial("-(x - 1)").unwrap(),
            parse_polynomial("1 - x").unwrap()
        );
        assert_eq!(
            parse_polynomial("x/2 + 0.25").unwrap(),
            parse_polynomial("2*x/4 + 1/4").unwrap()
        );
        assert_eq!(parse_polynomial("+x").unwrap(), Poly::var_named("x"));
    }

    #[test]
    fn division_by_constant_only() {
        assert!(parse_polynomial("x / y").is_err());
        assert!(parse_polynomial("x / 0").is_err());
        assert_eq!(
            parse_polynomial("(4*x + 2)/2").unwrap(),
            parse_polynomial("2*x + 1").unwrap()
        );
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_polynomial("x +").is_err());
        assert!(parse_polynomial("(x").is_err());
        assert!(parse_polynomial("x^y").is_err());
        assert!(parse_polynomial("x^(-2)").is_err());
        assert!(parse_polynomial("x $ y").is_err());
        assert!(parse_polynomial("x 3").is_err());
        assert!(parse_polynomial("").is_err());
    }

    #[test]
    fn identifiers_with_underscores_and_digits() {
        let p = parse_polynomial("y_0 + y_1*cos_1").unwrap();
        assert_eq!(p.vars().len(), 3);
    }

    #[test]
    fn implicit_whitespace_handling() {
        assert_eq!(
            parse_polynomial("  x ^ 2\t+ 2 * x + 1 ").unwrap(),
            parse_polynomial("(x+1)^2").unwrap()
        );
    }
}
