//! Multi-divisor polynomial division (normal-form reduction).
//!
//! Given a target polynomial `f` and a list of divisors `g1..gk`, the division
//! algorithm writes `f = q1*g1 + ... + qk*gk + r` where no term of the
//! remainder `r` is divisible by any leading monomial of the divisors. When
//! the divisors form a Gröbner basis the remainder is canonical — this is the
//! "simplification modulo a set of polynomials" at the heart of the paper's
//! mapping algorithm.

use symmap_numeric::Rational;

use crate::coeff::{normal_form_in, CPoly, DivisorView, RationalField};
use crate::monomial::Monomial;
use crate::ordering::MonomialOrder;
use crate::poly::Poly;
use crate::ring::Ring;

/// The result of dividing a polynomial by a list of divisors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Division {
    /// One quotient per divisor, in the same order as the divisor list.
    pub quotients: Vec<Poly>,
    /// The remainder; no term is divisible by any divisor's leading monomial.
    pub remainder: Poly,
}

impl Division {
    /// Reconstructs `Σ qi*gi + r`, which must equal the original dividend.
    pub fn reconstruct(&self, divisors: &[Poly]) -> Poly {
        let mut acc = self.remainder.clone();
        for (q, g) in self.quotients.iter().zip(divisors) {
            acc = acc.add(&q.mul(g));
        }
        acc
    }
}

/// A nonzero divisor with its leading term resolved **once** under a fixed
/// order, plus a variable-support fingerprint of the leading monomial.
///
/// `leading_monomial` is a full term scan; the division loop and Buchberger's
/// pair bookkeeping consult a divisor's leading term for every term of every
/// dividend, so the Gröbner engine stores its basis as prepared divisors and
/// never rescans. The `mask` (see [`Monomial::var_mask`]) rejects most
/// non-dividing divisors with one AND before the exact divisibility test.
#[derive(Debug, Clone)]
pub struct PreparedDivisor {
    /// The divisor polynomial (nonzero).
    pub poly: Poly,
    /// Cached leading monomial of `poly` under the preparation order.
    pub lm: Monomial,
    /// Cached leading coefficient of `poly`.
    pub lc: Rational,
    /// Variable-support fingerprint of `lm`.
    pub mask: u64,
}

impl PreparedDivisor {
    /// Prepares `poly` for repeated division under `order`; `None` when the
    /// polynomial is zero (a zero divisor is always skipped anyway).
    pub fn new(poly: Poly, order: &MonomialOrder) -> Option<Self> {
        let (lm, lc) = poly.leading_term(order)?;
        let mask = lm.var_mask();
        Some(PreparedDivisor { poly, lm, lc, mask })
    }
}

/// Lets the field-generic division loop in [`crate::coeff`] read a ℚ
/// prepared divisor in place — the `Poly` term vector doubles as the generic
/// `(Monomial, Rational)` term slice, so the hot path pays no conversion.
impl DivisorView<RationalField> for PreparedDivisor {
    fn lm(&self) -> &Monomial {
        &self.lm
    }
    fn lc(&self) -> &Rational {
        &self.lc
    }
    fn mask(&self) -> u64 {
        self.mask
    }
    fn terms(&self) -> &[(Monomial, Rational)] {
        self.poly.sorted_terms()
    }
}

/// Divides `f` by the list of `divisors` under the given monomial `order`.
///
/// Zero divisors are skipped (their quotient stays zero). The classic
/// multivariate division algorithm from Cox–Little–O'Shea is used: repeatedly
/// cancel the leading term of the running dividend against the first divisor
/// whose leading monomial divides it; terms that cannot be cancelled move to
/// the remainder.
pub fn divide(f: &Poly, divisors: &[Poly], order: &MonomialOrder) -> Division {
    let mut quotients = vec![Poly::zero(); divisors.len()];
    let mut remainder = Poly::zero();
    let mut p = f.clone();

    let leading: Vec<Option<(Monomial, Rational, u64)>> = divisors
        .iter()
        .map(|g| {
            g.leading_term(order)
                .map(|(m, c)| (m.clone(), c, m.var_mask()))
        })
        .collect();

    while let Some((lm_p, lc_p)) = p.leading_term(order) {
        let t_mask = lm_p.var_mask();
        let mut divided = false;
        for (i, lt) in leading.iter().enumerate() {
            let Some((lm_g, lc_g, mask_g)) = lt else {
                continue;
            };
            if mask_g & !t_mask != 0 {
                continue;
            }
            if let Some(m_quot) = lm_p.div(lm_g) {
                let c_quot = &lc_p / lc_g;
                quotients[i].add_term(&m_quot, &c_quot);
                p.sub_scaled(&divisors[i], &m_quot, &c_quot);
                divided = true;
                break;
            }
        }
        if !divided {
            remainder.add_term(&lm_p, &lc_p);
            p.add_term(&lm_p, &-lc_p);
        }
    }
    Division {
        quotients,
        remainder,
    }
}

/// Returns only the remainder of [`divide`] — the *normal form* of `f` modulo
/// the divisor set.
///
/// Runs in **ring-local coordinates**: a [`Ring`] spanning the divisors and
/// the dividend is built once, everything is localized, the division loop
/// runs over dense `0..n` indices (with exact dense support masks for rings
/// of ≤ 64 variables), and the remainder is globalized on the way out —
/// byte-identical to dividing in global coordinates, because localization
/// preserves every order comparison and divisibility test. When the ring
/// coincides with the interner prefix the conversion is skipped.
///
/// [`divide`] itself stays in global coordinates (callers want the
/// quotients against *their* divisor polynomials); remainder-only callers —
/// the Gröbner engine, [`crate::groebner::GroebnerBasis::reduce`], the
/// mapper — should come through here.
pub fn normal_form(f: &Poly, divisors: &[Poly], order: &MonomialOrder) -> Poly {
    let ring = Ring::spanning(divisors.iter().chain(std::iter::once(f)));
    if ring.is_identity() {
        return divide(f, divisors, order).remainder;
    }
    let lorder = order.localized(&ring);
    let prepared: Vec<PreparedDivisor> = divisors
        .iter()
        .filter_map(|g| PreparedDivisor::new(ring.localize_poly(g), &lorder))
        .collect();
    let lf = ring.localize_poly(f);
    ring.globalize_poly(&prepared_normal_form(&lf, &prepared, &lorder, None))
}

/// Normal form of `f` modulo already-prepared divisors — the Gröbner engine's
/// hot path. `skip` excludes one divisor by index (used by auto-reduction to
/// reduce a basis element modulo *the others* without cloning the rest of the
/// basis).
///
/// Chooses the same divisor at every step as [`divide`] (the mask check only
/// skips divisors whose leading monomial provably cannot divide the current
/// term), so the remainder is byte-identical to `divide(..).remainder`.
///
/// Since PR 6 the loop itself lives in [`crate::coeff::normal_form_in`],
/// shared with the ℤ/p fast path; this is its ℚ instantiation, reading the
/// prepared divisors in place through [`DivisorView`] (no conversion) and
/// moving the dividend's term vector in and out (no re-sort).
pub fn prepared_normal_form(
    f: &Poly,
    divisors: &[PreparedDivisor],
    order: &MonomialOrder,
    skip: Option<usize>,
) -> Poly {
    let p = CPoly::from_sorted_terms(f.sorted_terms().to_vec());
    let r = normal_form_in(&RationalField, p, divisors, order, skip);
    Poly::from_sorted_terms_unchecked(r.into_terms())
}

/// Returns `true` when `f` reduces to zero modulo the divisors, i.e. `f` lies
/// in the ideal generated by them **provided the divisors are a Gröbner
/// basis**.
pub fn reduces_to_zero(f: &Poly, divisors: &[Poly], order: &MonomialOrder) -> bool {
    normal_form(f, divisors, order).is_zero()
}

/// The S-polynomial of `f` and `g`: the combination that cancels both leading
/// terms. Returns the zero polynomial when either input is zero.
pub fn s_polynomial(f: &Poly, g: &Poly, order: &MonomialOrder) -> Poly {
    let (Some((lm_f, lc_f)), Some((lm_g, lc_g))) = (f.leading_term(order), g.leading_term(order))
    else {
        return Poly::zero();
    };
    let lcm = lm_f.lcm(&lm_g);
    let mf = lcm.div(&lm_f).expect("lcm divisible by lm(f)");
    let mg = lcm.div(&lm_g).expect("lcm divisible by lm(g)");
    let lhs = f.mul_term(&mf, &lc_f.recip().expect("nonzero leading coefficient"));
    let rhs = g.mul_term(&mg, &lc_g.recip().expect("nonzero leading coefficient"));
    lhs.sub(&rhs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn p(s: &str) -> Poly {
        Poly::parse(s).unwrap()
    }

    #[test]
    fn univariate_division_matches_schoolbook() {
        // (x^3 - 1) / (x - 1) = x^2 + x + 1 remainder 0.
        let order = MonomialOrder::lex(&["x"]);
        let d = divide(&p("x^3 - 1"), &[p("x - 1")], &order);
        assert_eq!(d.quotients[0], p("x^2 + x + 1"));
        assert!(d.remainder.is_zero());
    }

    #[test]
    fn division_with_remainder() {
        let order = MonomialOrder::lex(&["x"]);
        let d = divide(&p("x^2 + 1"), &[p("x - 1")], &order);
        assert_eq!(d.quotients[0], p("x + 1"));
        assert_eq!(d.remainder, p("2"));
        assert_eq!(d.reconstruct(&[p("x - 1")]), p("x^2 + 1"));
    }

    #[test]
    fn textbook_multivariate_example() {
        // Cox–Little–O'Shea example: divide x^2*y + x*y^2 + y^2 by
        // [x*y - 1, y^2 - 1] under lex x > y.
        let order = MonomialOrder::lex(&["x", "y"]);
        let divisors = [p("x*y - 1"), p("y^2 - 1")];
        let d = divide(&p("x^2*y + x*y^2 + y^2"), &divisors, &order);
        assert_eq!(d.quotients[0], p("x + y"));
        assert_eq!(d.quotients[1], p("1"));
        assert_eq!(d.remainder, p("x + y + 1"));
        assert_eq!(d.reconstruct(&divisors), p("x^2*y + x*y^2 + y^2"));
    }

    #[test]
    fn remainder_terms_not_divisible_by_leading_monomials() {
        let order = MonomialOrder::grlex(&["x", "y"]);
        let divisors = [p("x^2 - y"), p("x*y - 1")];
        let d = divide(&p("x^3 + x^2*y^2 + y^3 + x + 1"), &divisors, &order);
        let lms: Vec<Monomial> = divisors
            .iter()
            .map(|g| g.leading_monomial(&order).unwrap())
            .collect();
        for (m, _) in d.remainder.iter() {
            for lm in &lms {
                assert!(!lm.divides(m), "remainder term {m} divisible by {lm}");
            }
        }
        assert_eq!(d.reconstruct(&divisors), p("x^3 + x^2*y^2 + y^3 + x + 1"));
    }

    #[test]
    fn paper_side_relation_reduction() {
        // The paper's simplify example, done directly with division:
        // S = x + x^3*y^2 - 2*x*y^3 reduced by x^2 - 2*y - p under lex
        // x > y > p gives x + x*y^2*p.
        let order = MonomialOrder::lex(&["x", "y", "p"]);
        let nf = normal_form(&p("x + x^3*y^2 - 2*x*y^3"), &[p("x^2 - 2*y - p")], &order);
        assert_eq!(nf, p("x + x*y^2*p"));
    }

    #[test]
    fn zero_divisors_are_skipped() {
        let order = MonomialOrder::lex(&["x"]);
        let d = divide(&p("x^2"), &[Poly::zero(), p("x")], &order);
        assert!(d.quotients[0].is_zero());
        assert_eq!(d.quotients[1], p("x"));
        assert!(d.remainder.is_zero());
    }

    #[test]
    fn dividing_zero_gives_zero() {
        let order = MonomialOrder::lex(&["x"]);
        let d = divide(&Poly::zero(), &[p("x - 1")], &order);
        assert!(d.remainder.is_zero());
        assert!(d.quotients[0].is_zero());
    }

    #[test]
    fn prepared_normal_form_matches_divide_remainder() {
        let order = MonomialOrder::grlex(&["x", "y"]);
        let divisors = [p("x^2 - y"), Poly::zero(), p("x*y - 1")];
        let f = p("x^3 + x^2*y^2 + y^3 + x + 1");
        let prepared: Vec<PreparedDivisor> = divisors
            .iter()
            .filter_map(|g| PreparedDivisor::new(g.clone(), &order))
            .collect();
        assert_eq!(prepared.len(), 2, "zero divisors are dropped");
        assert_eq!(
            prepared_normal_form(&f, &prepared, &order, None),
            divide(&f, &divisors, &order).remainder
        );
        assert_eq!(
            normal_form(&f, &divisors, &order),
            divide(&f, &divisors, &order).remainder
        );
    }

    #[test]
    fn prepared_normal_form_skip_excludes_one_divisor() {
        let order = MonomialOrder::lex(&["x", "y"]);
        let prepared: Vec<PreparedDivisor> = [p("x - y"), p("y^2 - 1")]
            .into_iter()
            .filter_map(|g| PreparedDivisor::new(g, &order))
            .collect();
        let f = p("x*y^2");
        // Skipping the first divisor reduces only modulo y^2 - 1.
        assert_eq!(
            prepared_normal_form(&f, &prepared, &order, Some(0)),
            normal_form(&f, &[p("y^2 - 1")], &order)
        );
        // No skip uses both.
        assert_eq!(
            prepared_normal_form(&f, &prepared, &order, None),
            normal_form(&f, &[p("x - y"), p("y^2 - 1")], &order)
        );
    }

    #[test]
    fn s_polynomial_cancels_leading_terms() {
        let order = MonomialOrder::grlex(&["x", "y"]);
        let f = p("x^3*y^2 - x^2*y^3 + x");
        let g = p("3*x^4*y + y^2");
        let s = s_polynomial(&f, &g, &order);
        // Classic CLO example: S = -x^3*y^3 + x^2 - y^3/3
        assert_eq!(s, p("-x^3*y^3 + x^2 - y^3/3"));
        assert!(s_polynomial(&Poly::zero(), &g, &order).is_zero());
    }

    #[test]
    fn reduces_to_zero_detects_ideal_membership_with_groebner_divisors() {
        // {x - 1, y - 2} is already a Gröbner basis; (x-1)*(y-2)+(y-2) is in the ideal.
        let order = MonomialOrder::lex(&["x", "y"]);
        let basis = [p("x - 1"), p("y - 2")];
        let member = p("(x - 1)*(y - 2) + y - 2");
        assert!(reduces_to_zero(&member, &basis, &order));
        assert!(!reduces_to_zero(&p("x*y"), &basis, &order));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn prop_division_reconstructs(
            a in -4_i64..4, b in -4_i64..4, c in -4_i64..4, e in 1_u32..4,
        ) {
            let order = MonomialOrder::grlex(&["x", "y"]);
            let f = Poly::parse(&format!("{a}*x^{e}*y + {b}*x + {c}")).unwrap();
            let divisors = [Poly::parse("x^2 - y").unwrap(), Poly::parse("x*y - 1").unwrap()];
            let d = divide(&f, &divisors, &order);
            prop_assert_eq!(d.reconstruct(&divisors), f);
        }

        #[test]
        fn prop_members_of_principal_ideal_reduce_to_zero(
            a in -4_i64..4, b in -4_i64..4, e in 0_u32..3,
        ) {
            let order = MonomialOrder::lex(&["x", "y"]);
            let g = Poly::parse("x^2 + y - 1").unwrap();
            let multiplier = Poly::parse(&format!("{a}*x^{e} + {b}*y")).unwrap();
            let member = g.mul(&multiplier);
            prop_assert!(reduces_to_zero(&member, &[g], &order));
        }
    }
}
