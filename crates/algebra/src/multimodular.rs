//! Multi-modular Gröbner engine: mod-p computation as the primary path,
//! with a CRT + rational-reconstruction lift verified over ℚ.
//!
//! The exact-ℚ Buchberger run pays for coefficient growth; the identical
//! run over ℤ/p does not (the `modular_prefilter` bench measured 423× on
//! the katsura-3 coefficient-growth regime). This module makes the cheap
//! run *authoritative* instead of advisory:
//!
//! 1. **Images.** Compute the reduced Gröbner basis of the localized
//!    generators modulo successive primes of the deterministic
//!    [`PrimeIterator`] sequence, reusing the field-generic engine
//!    ([`crate::coeff`]) and the strict generator localization of
//!    [`crate::modular`] (primes dividing a denominator or a leading
//!    coefficient are discarded on the spot).
//! 2. **Vote.** Group images by *skeleton* — the full per-element monomial
//!    support, which refines the leading-monomial set — and take the
//!    majority group, earliest-image first on ties. An unlucky prime that
//!    slipped past localization (its basis has a different shape) is
//!    outvoted as soon as two lucky primes agree.
//! 3. **Lift.** CRT-combine each coefficient's residues across the
//!    agreeing images into ℤ/(p₁⋯pₖ) and rationally reconstruct
//!    ([`symmap_numeric::crt`], the standard `|num|, den < √(M/2)` box).
//! 4. **Verify.** A reconstruction that exists is still only a guess until
//!    checked over ℚ: the candidate must be structurally a reduced monic
//!    basis, every S-polynomial must reduce to zero against it
//!    (Buchberger's criterion — it is then a Gröbner basis of the ideal
//!    it generates), and every input generator must reduce to zero (the
//!    input ideal is contained in it). Failure adds the next prime and
//!    retries; budget exhaustion returns `None` and the caller falls back
//!    to the exact engine, so a wrong basis can never escape.
//!
//! Determinism: the prime sequence, the vote and the reconstruction are
//! pure functions of the (ring-local) generators and options, so the
//! lifted basis is byte-identical across runs, threads and cache shards —
//! the `multimodular_differential` suite pins it byte-identical to the
//! exact path.

use symmap_numeric::{crt_combine, rational_reconstruct, Fp64, PrimeIterator, Rational};
use symmap_trace::{trace_event, trace_span};

use crate::coeff::{
    buchberger_core_in, normal_form_in, CPoly, CPrepared, CoeffField, RationalField,
};
use crate::groebner::GroebnerOptions;
use crate::modular::{localize_generator, MAX_PRIME_ROTATIONS};
use crate::monomial::Monomial;
use crate::ordering::MonomialOrder;
use crate::poly::Poly;

/// How many *accepted* prime images [`multimodular_basis`] will compute
/// before giving up on the lift. Coefficients that survive reduction are
/// rarely wider than a few words, so the working budget is generous; the
/// proptests drive the capped-budget path explicitly.
pub const DEFAULT_PRIME_BUDGET: usize = 16;

/// A verified lifted basis plus the counters of the mod-p run it came from.
///
/// The counters are taken from the earliest agreeing image: every image in
/// the majority group ran the same pair-selection sequence on the same
/// skeleton, and the differential tests pin them equal to the exact run's.
#[derive(Debug, Clone)]
pub struct MultimodularBasis {
    /// The reduced monic basis over ℚ, sorted descending by leading
    /// monomial — byte-identical to the exact engine's output.
    pub polys: Vec<Poly>,
    /// S-polynomial reductions the mod-p run performed.
    pub reductions: usize,
    /// Pairs discarded by the coprime (first) criterion.
    pub skipped_coprime: usize,
    /// Pairs discarded by the chain (second) criterion.
    pub skipped_chain: usize,
}

/// What a multi-modular attempt did, whether or not it produced a basis.
/// The caller surfaces these through the cache/engine counters.
#[derive(Debug, Clone)]
pub struct LiftOutcome {
    /// The verified basis; `None` means the caller must run the exact
    /// engine (the fallback is part of the contract, not an error).
    pub basis: Option<MultimodularBasis>,
    /// Reconstruction/verification attempts that failed before success (or
    /// before the budget ran out).
    pub retries: usize,
    /// Prime images actually computed (accepted by localization).
    pub primes_used: usize,
    /// Primes discarded as unlucky: rejected at localization time, plus
    /// images outvoted by the majority skeleton when a lift succeeded.
    pub discarded_primes: usize,
}

/// One prime's reduced basis, with coefficients out of Montgomery form.
struct PrimeImage {
    prime: u64,
    /// Term vectors of the reduced basis, descending-canonical sorted,
    /// coefficients as plain residues in `[1, p)`.
    polys: Vec<Vec<(Monomial, u64)>>,
    complete: bool,
    reductions: usize,
    skipped_coprime: usize,
    skipped_chain: usize,
}

impl PrimeImage {
    fn compute(
        prime: u64,
        generators: &[&Poly],
        order: &MonomialOrder,
        options: &GroebnerOptions,
    ) -> Option<PrimeImage> {
        let field = Fp64::new(prime);
        let mut lgens = Vec::with_capacity(generators.len());
        for g in generators {
            lgens.push(localize_generator(&field, g, order).ok()?);
        }
        let core = buchberger_core_in(&field, &lgens, order, options);
        let polys = core
            .polys
            .into_iter()
            .map(|p| {
                p.into_terms()
                    .into_iter()
                    .map(|(m, c)| (m, field.from_montgomery(c)))
                    .collect()
            })
            .collect();
        Some(PrimeImage {
            prime,
            polys,
            complete: core.complete,
            reductions: core.reductions,
            skipped_coprime: core.skipped_coprime,
            skipped_chain: core.skipped_chain,
        })
    }

    /// Same skeleton ⇔ same number of elements, each with the same monomial
    /// support in the same order. Agreement is what makes coefficient-wise
    /// CRT meaningful.
    fn same_skeleton(&self, other: &PrimeImage) -> bool {
        self.polys.len() == other.polys.len()
            && self.polys.iter().zip(&other.polys).all(|(a, b)| {
                a.len() == b.len() && a.iter().zip(b).all(|((ma, _), (mb, _))| ma == mb)
            })
    }
}

/// Indices of the images in the largest skeleton-agreement group. Groups
/// are formed in first-seen order and ties keep the earlier group, so the
/// vote is a deterministic function of the image sequence.
fn majority_indices(images: &[PrimeImage]) -> Vec<usize> {
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for (i, img) in images.iter().enumerate() {
        match groups.iter_mut().find(|g| images[g[0]].same_skeleton(img)) {
            Some(g) => g.push(i),
            None => groups.push(vec![i]),
        }
    }
    let mut best = 0;
    for (gi, g) in groups.iter().enumerate().skip(1) {
        if g.len() > groups[best].len() {
            best = gi;
        }
    }
    groups.swap_remove(best)
}

/// CRT-combines and rationally reconstructs every coefficient across the
/// agreeing images. `None` when some coefficient has no representative in
/// the `√(M/2)` box yet — the signal to add another prime.
fn reconstruct(images: &[PrimeImage], indices: &[usize]) -> Option<Vec<Poly>> {
    let lead = &images[indices[0]];
    let mut out = Vec::with_capacity(lead.polys.len());
    for (pi, terms) in lead.polys.iter().enumerate() {
        let mut poly_terms = Vec::with_capacity(terms.len());
        for (ti, (m, _)) in terms.iter().enumerate() {
            let residues: Vec<(u64, u64)> = indices
                .iter()
                .map(|&ii| (images[ii].polys[pi][ti].1, images[ii].prime))
                .collect();
            let (combined, modulus) = crt_combine(&residues);
            let (num, den) = rational_reconstruct(&combined, &modulus)?;
            let c = Rational::from_bigints(num, den);
            if c.is_zero() {
                // A skeleton term is nonzero in every agreeing image, so a
                // zero reconstruction means the box is still too small.
                return None;
            }
            poly_terms.push((m.clone(), c));
        }
        out.push(Poly::from_sorted_terms_unchecked(poly_terms));
    }
    Some(out)
}

/// The ℚ-side verification making the lift trustworthy: the candidate must
/// be structurally a reduced monic staircase, a Gröbner basis of the ideal
/// it generates (every non-coprime S-polynomial reduces to zero —
/// Buchberger's criterion; coprime pairs reduce by his first criterion),
/// and contain the input ideal (every generator reduces to zero). All
/// arithmetic is exact, so a candidate that passes can be adopted wherever
/// the exact reduced basis of the generated ideal would be.
fn verify(candidate: &[Poly], generators: &[&Poly], order: &MonomialOrder) -> bool {
    let field = RationalField;
    let mut prepared: Vec<CPrepared<RationalField>> = Vec::with_capacity(candidate.len());
    for p in candidate {
        let cp = CPoly::from_sorted_terms(p.sorted_terms().to_vec());
        let Some(d) = CPrepared::new(cp, order) else {
            return false;
        };
        if d.lc != Rational::one() {
            return false;
        }
        prepared.push(d);
    }
    // Reduced-basis structure: strictly descending leading monomials, and no
    // term of any element divisible by another element's leading monomial.
    for w in prepared.windows(2) {
        if order.cmp(&w[0].lm, &w[1].lm) != std::cmp::Ordering::Greater {
            return false;
        }
    }
    for (i, d) in prepared.iter().enumerate() {
        for (m, _) in d.poly.terms() {
            if prepared
                .iter()
                .enumerate()
                .any(|(j, e)| j != i && e.lm.divides(m))
            {
                return false;
            }
        }
    }
    for g in generators {
        let cg = CPoly::from_sorted_terms(g.sorted_terms().to_vec());
        if !normal_form_in(&field, cg, &prepared, order, None).is_zero() {
            return false;
        }
    }
    for i in 0..prepared.len() {
        for j in (i + 1)..prepared.len() {
            let (f, g) = (&prepared[i], &prepared[j]);
            if f.lm.is_coprime_with(&g.lm) {
                continue;
            }
            let lcm = f.lm.lcm(&g.lm);
            let mf = lcm.div(&f.lm).expect("lcm divisible by lm(f)");
            let mg = lcm.div(&g.lm).expect("lcm divisible by lm(g)");
            let mut s = f.poly.mul_term(&field, &mf, &field.inv(&f.lc));
            let c = field.inv(&g.lc);
            s.sub_scaled(&field, g.poly.terms(), &mg, &c);
            if !normal_form_in(&field, s, &prepared, order, None).is_zero() {
                return false;
            }
        }
    }
    true
}

/// Multi-modular reduced Gröbner basis over the production prime sequence.
/// See [`multimodular_basis_with_primes`] for the mechanics; this entry
/// point fixes the deterministic [`PrimeIterator`] stream and the
/// [`DEFAULT_PRIME_BUDGET`].
pub fn multimodular_basis(
    generators: &[Poly],
    order: &MonomialOrder,
    options: &GroebnerOptions,
) -> LiftOutcome {
    multimodular_basis_with_primes(
        generators,
        order,
        options,
        PrimeIterator::new(),
        DEFAULT_PRIME_BUDGET,
    )
}

/// Multi-modular basis over an explicit prime stream and image budget —
/// the injectable core, used by the unlucky-prime and capped-budget tests.
///
/// `max_images` bounds the number of *accepted* images; localization
/// rejections additionally consume at most [`MAX_PRIME_ROTATIONS`] extra
/// draws, mirroring the prefilter's rotation bound. A `None` basis in the
/// returned [`LiftOutcome`] means "fall back to the exact engine".
pub fn multimodular_basis_with_primes(
    generators: &[Poly],
    order: &MonomialOrder,
    options: &GroebnerOptions,
    primes: impl IntoIterator<Item = u64>,
    max_images: usize,
) -> LiftOutcome {
    let gens: Vec<&Poly> = generators.iter().filter(|g| !g.is_zero()).collect();
    if gens.is_empty() {
        return LiftOutcome {
            basis: Some(MultimodularBasis {
                polys: Vec::new(),
                reductions: 0,
                skipped_coprime: 0,
                skipped_chain: 0,
            }),
            retries: 0,
            primes_used: 0,
            discarded_primes: 0,
        };
    }
    let mut primes = primes.into_iter();
    let mut images: Vec<PrimeImage> = Vec::new();
    let mut discarded = 0_usize;
    let mut retries = 0_usize;
    let mut draws = 0_usize;
    while images.len() < max_images && draws < max_images + MAX_PRIME_ROTATIONS {
        let Some(prime) = primes.next() else { break };
        draws += 1;
        // The whole prime sequence, vote and reconstruction are pure
        // functions of the (ring-local) generators and options, so every
        // event below is deterministic and may live in the compute stream.
        trace_span!(begin "mm.image", prime = prime);
        let image = PrimeImage::compute(prime, &gens, order, options);
        match &image {
            Some(img) => trace_span!(
                end "mm.image",
                prime = prime,
                accepted = 1u64,
                reductions = img.reductions,
                complete = img.complete as usize,
            ),
            None => trace_span!(end "mm.image", prime = prime, accepted = 0u64),
        }
        let Some(image) = image else {
            discarded += 1;
            trace_event!("mm.prime.discard", prime = prime);
            continue;
        };
        if !image.complete {
            // An iteration-bounded run has no lift: a truncated basis is not
            // a Gröbner basis, so verification could never pass. The exact
            // engine owns the incomplete-basis contract.
            trace_event!("mm.fallback", incomplete = 1u64, prime = prime);
            return LiftOutcome {
                basis: None,
                retries,
                primes_used: images.len() + 1,
                discarded_primes: discarded,
            };
        }
        images.push(image);
        let majority = majority_indices(&images);
        trace_event!("mm.vote", images = images.len(), majority = majority.len());
        trace_span!(begin "mm.reconstruct", primes = majority.len());
        let reconstructed = reconstruct(&images, &majority);
        trace_span!(end "mm.reconstruct", ok = reconstructed.is_some() as usize);
        if let Some(polys) = reconstructed {
            trace_span!(begin "mm.verify", polys = polys.len());
            let verified = verify(&polys, &gens, order);
            trace_span!(end "mm.verify", ok = verified as usize);
            if verified {
                let lead = &images[majority[0]];
                let outvoted = images.len() - majority.len();
                trace_event!(
                    "mm.lift.success",
                    primes = images.len(),
                    outvoted = outvoted,
                    retries = retries,
                );
                return LiftOutcome {
                    basis: Some(MultimodularBasis {
                        polys,
                        reductions: lead.reductions,
                        skipped_coprime: lead.skipped_coprime,
                        skipped_chain: lead.skipped_chain,
                    }),
                    retries,
                    primes_used: images.len(),
                    discarded_primes: discarded + outvoted,
                };
            }
        }
        retries += 1;
    }
    trace_event!(
        "mm.fallback",
        budget_exhausted = 1u64,
        images = images.len(),
        discarded = discarded,
    );
    LiftOutcome {
        basis: None,
        retries,
        primes_used: images.len(),
        discarded_primes: discarded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Poly {
        Poly::parse(s).unwrap()
    }

    /// Exact engine with the multimodular flag forced off — the oracle.
    fn exact_options() -> GroebnerOptions {
        GroebnerOptions {
            multimodular: false,
            ..GroebnerOptions::default()
        }
    }

    #[test]
    fn lifts_the_circle_system_byte_identically() {
        let gens = [p("x^2 + y^2 + z^2 - 1"), p("x*y - z"), p("x - y + z^2")];
        let order = MonomialOrder::grevlex(&["x", "y", "z"]);
        let options = exact_options();
        let exact = crate::groebner::buchberger(&gens, &order, &options);
        let lift = multimodular_basis(&gens, &order, &options);
        let basis = lift.basis.expect("lift succeeds on a clean system");
        assert_eq!(format!("{:?}", basis.polys), format!("{:?}", exact.polys()));
        assert_eq!(basis.reductions, exact.reductions);
        assert_eq!(lift.retries, 0);
        assert!(lift.primes_used >= 1);
        assert_eq!(lift.discarded_primes, 0);
    }

    #[test]
    fn empty_and_zero_ideals_lift_trivially() {
        let order = MonomialOrder::lex(&["x"]);
        let options = exact_options();
        for gens in [vec![], vec![Poly::zero()]] {
            let lift = multimodular_basis(&gens, &order, &options);
            let basis = lift.basis.expect("trivial ideal lifts");
            assert!(basis.polys.is_empty());
            assert_eq!(lift.primes_used, 0);
        }
    }

    #[test]
    fn incomplete_runs_refuse_to_lift() {
        let gens = [p("x^2 + y^2 + z^2 - 1"), p("x*y - z"), p("x - y + z^2")];
        let order = MonomialOrder::grevlex(&["x", "y", "z"]);
        let options = GroebnerOptions {
            max_iterations: 1,
            ..exact_options()
        };
        let lift = multimodular_basis(&gens, &order, &options);
        assert!(lift.basis.is_none());
    }

    #[test]
    fn verify_rejects_a_strictly_larger_ideal() {
        // G = {x} passes Buchberger trivially and reduces x² to zero, but it
        // is not the reduced basis of ⟨x²⟩; the structural checks alone
        // cannot catch this (it IS a reduced basis — of a larger ideal), so
        // this documents that such a candidate only passes when *every*
        // agreeing image voted for its skeleton, which no actual mod-p image
        // of x² does. Here we check the verifier itself accepts it as a
        // consistent reduced basis containing the ideal…
        let order = MonomialOrder::lex(&["x"]);
        let gens = [p("x^2")];
        let gen_refs: Vec<&Poly> = gens.iter().collect();
        assert!(verify(&[p("x")], &gen_refs, &order));
        // …while the real pipeline reconstructs the true basis, because the
        // skeleton comes from genuine mod-p reduced bases.
        let lift = multimodular_basis(&gens, &order, &exact_options());
        let basis = lift.basis.unwrap();
        assert_eq!(
            format!("{:?}", basis.polys),
            format!("{:?}", vec![p("x^2")])
        );
    }

    #[test]
    fn verify_rejects_non_monic_non_reduced_and_non_basis_candidates() {
        let order = MonomialOrder::lex(&["x", "y"]);
        let gens = [p("x^2 - y"), p("x*y - 1")];
        let gen_refs: Vec<&Poly> = gens.iter().collect();
        // Not monic.
        assert!(!verify(&[p("2*x")], &gen_refs, &order));
        // Contains a zero polynomial.
        assert!(!verify(&[Poly::zero()], &gen_refs, &order));
        // Generators do not reduce to zero.
        assert!(!verify(&[p("y^3 - 1")], &gen_refs, &order));
        // Not inter-reduced (x divides x², same staircase column).
        assert!(!verify(&[p("x^2 - y"), p("x")], &gen_refs, &order));
        // The generators themselves are not a Gröbner basis here (their
        // S-polynomial does not reduce to zero), so verify must refuse even
        // though every generator trivially reduces.
        assert!(!verify(&[p("x^2 - y"), p("x*y - 1")], &gen_refs, &order));
    }

    #[test]
    fn capped_budget_returns_fallback_not_a_wrong_basis() {
        // Coefficients of the reduced basis exceed √(p/2) for a single
        // 62-bit prime? No — they are tiny here; force failure instead with
        // an empty prime stream and with a stream of one unlucky prime.
        let gens = [p("x^2 - y")];
        let order = MonomialOrder::lex(&["x", "y"]);
        let options = exact_options();
        let lift = multimodular_basis_with_primes(&gens, &order, &options, std::iter::empty(), 1);
        assert!(lift.basis.is_none());
        assert_eq!(lift.primes_used, 0);
    }
}
