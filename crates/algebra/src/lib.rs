//! # symmap-algebra
//!
//! A from-scratch symbolic computer algebra engine providing exactly the
//! manipulations the DAC 2002 library-mapping methodology obtains from Maple V:
//!
//! * multivariate polynomial arithmetic over exact rationals ([`poly`]) —
//!   flat sorted term vectors over packed dense-exponent monomials
//!   ([`monomial`]) with merge-based add/sub/cancellation and heap-merge
//!   multiplication (see `DESIGN.md` §4 for the representation),
//! * monomial orderings including elimination orders ([`ordering`]),
//!   compared by allocation-free slice loops,
//! * ring-local monomial coordinates ([`ring`]) — every Gröbner/normal-form
//!   computation runs over dense per-ideal variable indices, so its cost
//!   scales with the ideal's variable count, never with how many symbols the
//!   process-wide interner holds,
//! * multi-divisor polynomial division / normal forms ([`division`]),
//! * a generic coefficient layer ([`coeff`]) — one Buchberger engine and one
//!   division loop parameterized over the coefficient field, instantiated by
//!   ℚ and by ℤ/p,
//! * Buchberger's algorithm for Gröbner bases ([`groebner`]),
//! * a modular (ℤ/p) Gröbner fast path ([`modular`]) — the sound
//!   membership prefilter used by the mapper's shared cache,
//! * invariant polynomial fingerprints ([`fingerprint`]) — support masks,
//!   degree signatures and ℤ/p evaluation hashes giving conservative O(1)
//!   "cannot be equal / cannot divide / disjoint support" answers before any
//!   exact arithmetic runs,
//! * a multi-modular engine ([`multimodular`]) — reduced bases computed
//!   mod a deterministic prime sequence, CRT-combined, rationally
//!   reconstructed and *verified* over ℚ, making the mod-p run the primary
//!   compute path with an exact fallback,
//! * **simplification modulo a set of side relations** ([`simplify`]) — the
//!   core primitive of the library-mapping algorithm,
//! * factorization, expansion and Horner (nested) forms ([`factor`], [`horner`]),
//! * multivariate substitution and variable elimination ([`subst`], [`eliminate`]),
//! * symbolic expression trees with tree-height reduction ([`expr`]).
//!
//! ## Example: the paper's `simplify` example
//!
//! ```
//! use symmap_algebra::poly::Poly;
//! use symmap_algebra::simplify::{simplify_modulo, SideRelations};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let s = Poly::parse("x + x^3*y^2 - 2*x*y^3")?;
//! let mut sr = SideRelations::new();
//! sr.push("p", Poly::parse("x^2 - 2*y")?)?;
//! let reduced = simplify_modulo(&s, &sr, &["x", "y", "p"])?;
//! assert_eq!(reduced, Poly::parse("x + y^2*x*p")?);
//! # Ok(())
//! # }
//! ```

#![deny(rustdoc::broken_intra_doc_links)]

pub mod coeff;
pub mod division;
pub mod eliminate;
pub mod error;
pub mod expr;
pub mod factor;
pub mod fingerprint;
pub mod groebner;
pub mod horner;
pub mod modular;
pub mod monomial;
pub mod multimodular;
pub mod ordering;
pub mod parse;
pub mod poly;
pub mod ring;
pub mod simplify;
pub mod subst;
pub mod var;

pub use error::AlgebraError;
pub use monomial::Monomial;
pub use ordering::MonomialOrder;
pub use poly::Poly;
pub use ring::Ring;
pub use var::{Var, VarSet};
