//! Differential tests of the modular (ℤ/p) Gröbner path against the exact
//! ℚ path: on the bench-budget ideals, across every `GroebnerOptions`
//! combination and the first primes of the deterministic rotation sequence,
//! the mod-p reduced basis must expose the same leading-monomial set as the
//! exact basis, and exact ideal membership must transfer to a mod-p zero
//! (the one-directional certificate the cache's prefilter relies on).

use proptest::prelude::*;
use symmap_algebra::groebner::{buchberger, CacheConfig, GroebnerOptions, SharedGroebnerCache};
use symmap_algebra::modular::{FpBasis, UnluckyPrime};
use symmap_algebra::ordering::MonomialOrder;
use symmap_algebra::poly::Poly;
use symmap_algebra::simplify::{simplify_modulo_cached, SideRelations};
use symmap_algebra::Monomial;
use symmap_numeric::{PrimeIterator, Rational};

fn p(s: &str) -> Poly {
    Poly::parse(s).unwrap()
}

/// The three bench-budget ideals (`crates/bench/src/budgets.rs`), inlined so
/// this suite does not depend on the bench crate.
fn budget_ideals() -> Vec<(&'static str, Vec<Poly>, MonomialOrder)> {
    vec![
        (
            "twisted-cubic",
            vec![p("x^2 - y"), p("x^3 - z")],
            MonomialOrder::lex(&["x", "y", "z"]),
        ),
        (
            "mapper-side-relations",
            vec![p("x + y - s"), p("x - y - d"), p("x*y - q"), p("x^2 - sx")],
            MonomialOrder::lex(&["x", "y", "s", "d", "q", "sx"]),
        ),
        (
            "circle-system",
            vec![p("x^2 + y^2 + z^2 - 1"), p("x*y - z"), p("x - y + z^2")],
            MonomialOrder::grevlex(&["x", "y", "z"]),
        ),
    ]
}

/// All 8 ablation combinations of the Buchberger criteria/tiebreak.
fn option_combinations() -> Vec<GroebnerOptions> {
    let mut combos = Vec::new();
    for coprime in [true, false] {
        for chain in [true, false] {
            for sugar in [true, false] {
                combos.push(GroebnerOptions {
                    use_coprime_criterion: coprime,
                    use_chain_criterion: chain,
                    use_sugar_tiebreak: sugar,
                    ..Default::default()
                });
            }
        }
    }
    combos
}

fn first_primes(n: usize) -> Vec<u64> {
    PrimeIterator::new().take(n).collect()
}

#[test]
fn modp_basis_matches_exact_leading_monomials_across_options_and_primes() {
    let primes = first_primes(3);
    for (name, gens, order) in budget_ideals() {
        for options in option_combinations() {
            let exact = buchberger(&gens, &order, &options);
            assert!(exact.complete, "{name}: exact run must complete");
            let exact_lms: Vec<Monomial> = exact
                .polys()
                .iter()
                .map(|g| g.leading_monomial(&order).unwrap())
                .collect();
            for &prime in &primes {
                let fp = FpBasis::with_prime(prime, &gens, &order, &options)
                    .unwrap_or_else(|e| panic!("{name}: prime {prime} unlucky: {e:?}"));
                assert!(fp.complete, "{name} mod {prime}");
                assert_eq!(
                    fp.leading_monomials(),
                    exact_lms,
                    "{name} mod {prime}: leading-monomial sets differ"
                );
                // Membership transfers: every exact basis element is in the
                // ideal, so its image must reduce to zero mod p.
                for g in exact.polys() {
                    assert_eq!(fp.reduces_to_zero(g), Some(true), "{name} mod {prime}");
                }
                // The probe's reject direction on an obvious non-member.
                assert_eq!(
                    fp.reduces_to_zero(&p("x + 1")),
                    Some(false),
                    "{name} mod {prime}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// ℚ `normal_form == 0` ⟹ mod-p `normal_form == 0`: random integer
    /// combinations `Σ hᵢ·gᵢ` are exact members with p-integral cofactors,
    /// so the certificate must transfer at every prime and option set.
    #[test]
    fn prop_exact_members_reduce_to_zero_mod_p(
        ideal_idx in 0usize..3,
        options_idx in 0usize..8,
        prime_idx in 0usize..3,
        coeffs in proptest::collection::vec(-4i64..=4, 12..13),
    ) {
        let (name, gens, order) = budget_ideals().swap_remove(ideal_idx);
        let options = option_combinations().swap_remove(options_idx);
        let prime = first_primes(3)[prime_idx];

        // hᵢ drawn from a small multiplier pool with proptest coefficients.
        let multipliers = [p("1"), p("x"), p("y"), p("x*y - 2")];
        let mut member = Poly::zero();
        for (k, &c) in coeffs.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let g = &gens[k % gens.len()];
            let h = &multipliers[k % multipliers.len()];
            member = member.add(&g.mul(h).scale(&Rational::from(c)));
        }

        let exact = buchberger(&gens, &order, &options);
        prop_assert!(exact.reduce(&member).is_zero(), "{} member not reduced", name);
        let fp = FpBasis::with_prime(prime, &gens, &order, &options)
            .unwrap_or_else(|e| panic!("{name}: prime {prime} unlucky: {e:?}"));
        prop_assert_eq!(fp.reduces_to_zero(&member), Some(true));
    }
}

/// Unlucky-prime regression at the simplify level: a side relation whose
/// coefficient denominator is the seed prime forces a deterministic rotation,
/// and the simplified result is identical with the prefilter on and off.
#[test]
fn unlucky_prime_rotation_leaves_simplify_output_unchanged() {
    let primes = first_primes(2);
    let mut sr = SideRelations::new();
    // body = x^2 - (1/p) — the seed prime divides the denominator.
    let body = p("x^2").add(&Poly::from_terms([(
        Monomial::one(),
        -Rational::new(1, primes[0] as i64),
    )]));
    sr.push("s", body).unwrap();
    let target = p("x^4 + x^2 + 1");
    let order = ["x", "s"];
    let options = GroebnerOptions::default();

    let plain_cache = SharedGroebnerCache::new();
    let plain = simplify_modulo_cached(&target, &sr, &order, &options, &plain_cache).unwrap();

    let modular_cache = SharedGroebnerCache::with_config(CacheConfig {
        modular_prefilter: true,
        ..CacheConfig::default()
    });
    let filtered = simplify_modulo_cached(&target, &sr, &order, &options, &modular_cache).unwrap();

    assert_eq!(plain.result, filtered.result);
    assert_eq!(plain.complete, filtered.complete);
    assert_eq!(plain.reductions, filtered.reductions);
    // The probe rotated past exactly the one unlucky seed prime.
    let stats = modular_cache.fp_probe_stats();
    assert_eq!(stats.unlucky_primes, 1);
    // And the exact-layer activity is identical to the plain cache's.
    assert_eq!(
        (plain_cache.hits(), plain_cache.misses()),
        (modular_cache.hits(), modular_cache.misses())
    );
}

/// The rotation sequence itself is deterministic: the same unlucky ideal
/// always lands on the same fallback prime.
#[test]
fn unlucky_prime_rotation_is_deterministic() {
    let primes = first_primes(3);
    let order = MonomialOrder::lex(&["x", "y"]);
    let options = GroebnerOptions::default();
    // Denominator unlucky for the first TWO primes: rotate twice.
    let den = Rational::new(1, primes[0] as i64) * Rational::new(1, primes[1] as i64);
    let gens = [p("x^2 - y").add(&Poly::from_terms([(Monomial::one(), den)]))];
    assert_eq!(
        FpBasis::with_prime(primes[0], &gens, &order, &options).unwrap_err(),
        UnluckyPrime::Denominator
    );
    assert_eq!(
        FpBasis::with_prime(primes[1], &gens, &order, &options).unwrap_err(),
        UnluckyPrime::Denominator
    );
    for _ in 0..3 {
        let fp = FpBasis::compute(&gens, &order, &options).unwrap();
        assert_eq!(fp.rotations, 2);
        assert_eq!(fp.prime(), primes[2]);
    }
}
