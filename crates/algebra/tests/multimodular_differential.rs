//! Differential tests of the multi-modular (CRT + rational reconstruction)
//! Gröbner path against the exact ℚ path: on the bench-budget ideals —
//! including wide α-renamed copies whose variable names stress the
//! interner/ring boundary — and across every `GroebnerOptions` combination,
//! the verified lift must be **byte-identical** to the exact engine,
//! counters included. The injection tests then prove the failure handling:
//! an unlucky prime planted at the front of the stream is outvoted and the
//! lift still lands on the exact basis, and a starved prime budget produces
//! a verified fallback, never a wrong basis.

use proptest::prelude::*;
use symmap_algebra::groebner::{buchberger, GroebnerOptions};
use symmap_algebra::multimodular::{multimodular_basis, multimodular_basis_with_primes};
use symmap_algebra::ordering::MonomialOrder;
use symmap_algebra::poly::Poly;
use symmap_numeric::PrimeIterator;

fn p(s: &str) -> Poly {
    Poly::parse(s).unwrap()
}

/// The three bench-budget ideals (`crates/bench/src/budgets.rs`) plus wide
/// α-renamed copies of two of them: the same ideal shapes under long, late
/// interner names, so the lift is exercised on ring-localized coordinates
/// that differ from the global ones.
fn budget_ideals() -> Vec<(&'static str, Vec<Poly>, MonomialOrder)> {
    vec![
        (
            "twisted-cubic",
            vec![p("x^2 - y"), p("x^3 - z")],
            MonomialOrder::lex(&["x", "y", "z"]),
        ),
        (
            "mapper-side-relations",
            vec![p("x + y - s"), p("x - y - d"), p("x*y - q"), p("x^2 - sx")],
            MonomialOrder::lex(&["x", "y", "s", "d", "q", "sx"]),
        ),
        (
            "circle-system",
            vec![p("x^2 + y^2 + z^2 - 1"), p("x*y - z"), p("x - y + z^2")],
            MonomialOrder::grevlex(&["x", "y", "z"]),
        ),
        (
            "twisted-cubic-wide",
            vec![
                p("mm_wide_var_x0^2 - mm_wide_var_y1"),
                p("mm_wide_var_x0^3 - mm_wide_var_z2"),
            ],
            MonomialOrder::lex(&["mm_wide_var_x0", "mm_wide_var_y1", "mm_wide_var_z2"]),
        ),
        (
            "circle-system-wide",
            vec![
                p("mm_wide_var_a^2 + mm_wide_var_b^2 + mm_wide_var_c^2 - 1"),
                p("mm_wide_var_a*mm_wide_var_b - mm_wide_var_c"),
                p("mm_wide_var_a - mm_wide_var_b + mm_wide_var_c^2"),
            ],
            MonomialOrder::grevlex(&["mm_wide_var_a", "mm_wide_var_b", "mm_wide_var_c"]),
        ),
    ]
}

/// All 8 ablation combinations of the Buchberger criteria/tiebreak, with the
/// multimodular flag pinned off so the oracle side is always the exact
/// engine regardless of `SYMMAP_TEST_MULTIMODULAR`.
fn option_combinations() -> Vec<GroebnerOptions> {
    let mut combos = Vec::new();
    for coprime in [true, false] {
        for chain in [true, false] {
            for sugar in [true, false] {
                combos.push(GroebnerOptions {
                    use_coprime_criterion: coprime,
                    use_chain_criterion: chain,
                    use_sugar_tiebreak: sugar,
                    multimodular: false,
                    ..Default::default()
                });
            }
        }
    }
    combos
}

#[test]
fn lift_is_byte_identical_to_exact_across_ideals_and_options() {
    for (name, gens, order) in budget_ideals() {
        for options in option_combinations() {
            let exact = buchberger(&gens, &order, &options);
            assert!(exact.complete, "{name}: exact run must complete");
            let lift = multimodular_basis(&gens, &order, &options);
            let basis = lift
                .basis
                .unwrap_or_else(|| panic!("{name}: lift fell back on a clean system"));
            // Byte identity: same Debug rendering of the polynomial vectors
            // (coefficients, monomials, ordering — everything).
            assert_eq!(
                format!("{:?}", basis.polys),
                format!("{:?}", exact.polys()),
                "{name}: lifted basis differs from exact"
            );
            // The counters the mapper's budgets consume must match too.
            assert_eq!(basis.reductions, exact.reductions, "{name}");
            assert_eq!(basis.skipped_coprime, exact.skipped_coprime, "{name}");
            assert_eq!(basis.skipped_chain, exact.skipped_chain, "{name}");
        }
    }
}

/// An unlucky prime planted at the *front* of the stream: mod 3 the tail
/// term of `x^2 - 3*y` vanishes, so the first image has a different
/// skeleton, reconstructs to a candidate that fails ℚ-verification, and is
/// eventually outvoted by the two good primes behind it. The lift must
/// recover the exact basis and report the discard.
#[test]
fn unlucky_leading_prime_is_outvoted_and_the_lift_recovers() {
    let gens = [p("x^2 - 3*y"), p("y^2 - 1")];
    let order = MonomialOrder::lex(&["x", "y"]);
    let options = option_combinations().remove(0);
    let exact = buchberger(&gens, &order, &options);
    assert!(exact.complete);

    let mut primes = vec![3_u64];
    primes.extend(PrimeIterator::new().take(2));
    let outcome = multimodular_basis_with_primes(&gens, &order, &options, primes, 3);
    let basis = outcome
        .basis
        .expect("majority vote must recover from one unlucky prime");
    assert_eq!(
        format!("{:?}", basis.polys),
        format!("{:?}", exact.polys()),
        "recovered basis differs from exact"
    );
    // The bad image was outvoted (counted discarded), and its candidate
    // failed verification at least once before the majority flipped.
    assert!(outcome.discarded_primes >= 1);
    assert!(outcome.retries >= 1);
    assert_eq!(outcome.primes_used, 3);
}

/// A localization-rejecting prime (denominator divisible by the planted
/// prime) is skipped by rotation, exactly like the prefilter's rotation
/// path, and the lift proceeds on the remaining primes.
#[test]
fn localization_rejected_prime_is_rotated_past() {
    let gens = [p("x^2 - 1/3*y"), p("y^2 - 1")];
    let order = MonomialOrder::lex(&["x", "y"]);
    let options = option_combinations().remove(0);
    let exact = buchberger(&gens, &order, &options);

    let mut primes = vec![3_u64];
    primes.extend(PrimeIterator::new().take(2));
    let outcome = multimodular_basis_with_primes(&gens, &order, &options, primes, 2);
    let basis = outcome.basis.expect("rotation must recover");
    assert_eq!(format!("{:?}", basis.polys), format!("{:?}", exact.polys()));
    assert!(outcome.discarded_primes >= 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Starved prime budgets (one image from a possibly tiny prime) either
    /// produce the exact basis or a verified fallback (`None`) — never a
    /// wrong basis. This is the verification gate's contract: soundness
    /// does not depend on having enough primes.
    #[test]
    fn prop_capped_prime_budget_falls_back_but_never_lies(
        ideal_idx in 0usize..5,
        options_idx in 0usize..8,
        prime_idx in 0usize..6,
    ) {
        let (name, gens, order) = budget_ideals().swap_remove(ideal_idx);
        let options = option_combinations().swap_remove(options_idx);
        // Small primes make single-image reconstruction fail its bounds
        // (forcing the fallback); the production primes let it succeed.
        let prime = [3_u64, 5, 7, 11, 101][..5]
            .get(prime_idx)
            .copied()
            .unwrap_or_else(|| PrimeIterator::new().next().unwrap());
        let outcome = multimodular_basis_with_primes(&gens, &order, &options, [prime], 1);
        if let Some(basis) = outcome.basis {
            let exact = buchberger(&gens, &order, &options);
            prop_assert_eq!(
                format!("{:?}", basis.polys),
                format!("{:?}", exact.polys()),
                "{}: a certified single-prime lift must be the exact basis", name
            );
        }
        // `None` is always acceptable: the caller runs the exact engine.
    }
}
