//! Differential proof of the algebra-substrate refactor.
//!
//! The packed-monomial / vec-backed-polynomial / small-rational substrate
//! must be **behaviorally byte-identical** to the representation it replaced
//! (`BTreeMap<Var, u32>` monomials, `BTreeMap<Monomial, Rational>` term maps,
//! always-`BigInt` rationals). This test keeps a verbatim port of the old
//! representation as the oracle — sparse map monomials, the old
//! rank/exponent-vector order comparisons, map-backed polynomials with
//! per-term `add_term` arithmetic, and `BigInt`-pair coefficients — and
//! checks, over random inputs:
//!
//! * monomial-order comparisons (all four orders) agree pairwise,
//! * add / sub / mul / scalar ops produce identical polynomials,
//! * multi-divisor normal forms are identical under lex, grlex and grevlex,
//! * reduced Gröbner bases are byte-identical under all three orders
//!   (the reduced basis is canonical, so any divergence is a substrate bug),
//! * `simplify_modulo` results are identical, and
//! * variable discovery order (`Poly::vars`) matches the old iteration
//!   order, because default variable orders in `simplify`/`eliminate` are
//!   built from it.

use std::cmp::Ordering;
use std::collections::BTreeMap;

use proptest::prelude::*;
use symmap_algebra::monomial::Monomial;
use symmap_algebra::ordering::MonomialOrder;
use symmap_algebra::poly::Poly;
use symmap_algebra::simplify::{simplify_modulo, SideRelations};
use symmap_algebra::var::{Var, VarSet};
use symmap_numeric::{BigInt, Rational};

/// Verbatim port of the pre-refactor substrate (the oracle).
mod reference {
    use super::*;

    /// Old-style rational: always a reduced `BigInt` pair with positive
    /// denominator.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct RefRational {
        pub num: BigInt,
        pub den: BigInt,
    }

    impl RefRational {
        pub fn new(num: BigInt, den: BigInt) -> Self {
            assert!(!den.is_zero());
            let mut r = RefRational { num, den };
            r.normalize();
            r
        }

        pub fn integer(n: i64) -> Self {
            RefRational::new(BigInt::from(n), BigInt::one())
        }

        pub fn ratio(n: i64, d: i64) -> Self {
            RefRational::new(BigInt::from(n), BigInt::from(d))
        }

        pub fn zero() -> Self {
            RefRational::integer(0)
        }

        pub fn is_zero(&self) -> bool {
            self.num.is_zero()
        }

        fn normalize(&mut self) {
            if self.num.is_zero() {
                self.den = BigInt::one();
                return;
            }
            if self.den.is_negative() {
                self.num = -self.num.clone();
                self.den = -self.den.clone();
            }
            let g = self.num.gcd(&self.den);
            if !g.is_one() {
                self.num = &self.num / &g;
                self.den = &self.den / &g;
            }
        }

        pub fn add(&self, o: &RefRational) -> RefRational {
            RefRational::new(
                &(&self.num * &o.den) + &(&o.num * &self.den),
                &self.den * &o.den,
            )
        }

        pub fn neg(&self) -> RefRational {
            RefRational {
                num: -self.num.clone(),
                den: self.den.clone(),
            }
        }

        pub fn mul(&self, o: &RefRational) -> RefRational {
            RefRational::new(&self.num * &o.num, &self.den * &o.den)
        }

        pub fn div(&self, o: &RefRational) -> RefRational {
            assert!(!o.is_zero());
            RefRational::new(&self.num * &o.den, &self.den * &o.num)
        }

        pub fn recip(&self) -> RefRational {
            assert!(!self.is_zero());
            RefRational::new(self.den.clone(), self.num.clone())
        }
    }

    /// Old-style sparse monomial: sorted map from variable to exponent.
    /// `Ord` is the derived map order the old storage keyed terms by.
    #[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
    pub struct RefMonomial {
        pub exps: BTreeMap<Var, u32>,
    }

    impl RefMonomial {
        pub fn one() -> Self {
            RefMonomial {
                exps: BTreeMap::new(),
            }
        }

        pub fn from_pairs(pairs: &[(Var, u32)]) -> Self {
            let mut m = RefMonomial::one();
            for &(v, e) in pairs {
                if e > 0 {
                    *m.exps.entry(v).or_insert(0) += e;
                }
            }
            m
        }

        pub fn total_degree(&self) -> u32 {
            self.exps.values().sum()
        }

        pub fn degree_of(&self, v: Var) -> u32 {
            self.exps.get(&v).copied().unwrap_or(0)
        }

        pub fn iter(&self) -> impl Iterator<Item = (Var, u32)> + '_ {
            self.exps.iter().map(|(&v, &e)| (v, e))
        }

        pub fn mul(&self, other: &RefMonomial) -> RefMonomial {
            let mut exps = self.exps.clone();
            for (&v, &e) in &other.exps {
                *exps.entry(v).or_insert(0) += e;
            }
            RefMonomial { exps }
        }

        pub fn divides(&self, other: &RefMonomial) -> bool {
            self.exps.iter().all(|(v, &e)| other.degree_of(*v) >= e)
        }

        pub fn div(&self, other: &RefMonomial) -> Option<RefMonomial> {
            if !other.divides(self) {
                return None;
            }
            let mut exps = BTreeMap::new();
            for (&v, &e) in &self.exps {
                let d = e - other.degree_of(v);
                if d > 0 {
                    exps.insert(v, d);
                }
            }
            Some(RefMonomial { exps })
        }

        pub fn lcm(&self, other: &RefMonomial) -> RefMonomial {
            let mut exps = self.exps.clone();
            for (&v, &e) in &other.exps {
                let cur = exps.entry(v).or_insert(0);
                *cur = (*cur).max(e);
            }
            RefMonomial { exps }
        }

        pub fn is_coprime_with(&self, other: &RefMonomial) -> bool {
            self.exps.keys().all(|v| other.degree_of(*v) == 0)
        }
    }

    /// Verbatim port of the old `MonomialOrder` comparison logic
    /// (per-comparison exponent-vector construction and all).
    #[derive(Debug, Clone)]
    pub enum RefOrder {
        Lex(VarSet),
        GrLex(VarSet),
        GrevLex(VarSet),
        Elimination(VarSet, usize),
    }

    impl RefOrder {
        pub fn vars(&self) -> &VarSet {
            match self {
                RefOrder::Lex(v)
                | RefOrder::GrLex(v)
                | RefOrder::GrevLex(v)
                | RefOrder::Elimination(v, _) => v,
            }
        }

        fn rank(&self, v: Var) -> (usize, u32) {
            match self.vars().position(v) {
                Some(p) => (p, 0),
                None => (usize::MAX, v.index()),
            }
        }

        fn exponent_vector(&self, m: &RefMonomial) -> Vec<(usize, u32, u32)> {
            let mut v: Vec<(usize, u32, u32)> = m
                .iter()
                .map(|(var, e)| {
                    let (r, tie) = self.rank(var);
                    (r, tie, e)
                })
                .collect();
            v.sort();
            v
        }

        fn lex_cmp(&self, a: &RefMonomial, b: &RefMonomial) -> Ordering {
            let va = self.exponent_vector(a);
            let vb = self.exponent_vector(b);
            let mut ia = va.iter().peekable();
            let mut ib = vb.iter().peekable();
            loop {
                match (ia.peek(), ib.peek()) {
                    (None, None) => return Ordering::Equal,
                    (Some(_), None) => return Ordering::Greater,
                    (None, Some(_)) => return Ordering::Less,
                    (Some(&&(ra, ta, ea)), Some(&&(rb, tb, eb))) => match (ra, ta).cmp(&(rb, tb)) {
                        Ordering::Less => return Ordering::Greater,
                        Ordering::Greater => return Ordering::Less,
                        Ordering::Equal => match ea.cmp(&eb) {
                            Ordering::Equal => {
                                ia.next();
                                ib.next();
                            }
                            o => return o,
                        },
                    },
                }
            }
        }

        fn grevlex_cmp(&self, a: &RefMonomial, b: &RefMonomial) -> Ordering {
            match a.total_degree().cmp(&b.total_degree()) {
                Ordering::Equal => {}
                o => return o,
            }
            let va = self.exponent_vector(a);
            let vb = self.exponent_vector(b);
            let mut ia = va.iter().rev().peekable();
            let mut ib = vb.iter().rev().peekable();
            loop {
                match (ia.peek(), ib.peek()) {
                    (None, None) => return Ordering::Equal,
                    (Some(_), None) => return Ordering::Less,
                    (None, Some(_)) => return Ordering::Greater,
                    (Some(&&(ra, ta, ea)), Some(&&(rb, tb, eb))) => match (ra, ta).cmp(&(rb, tb)) {
                        Ordering::Greater => return Ordering::Less,
                        Ordering::Less => return Ordering::Greater,
                        Ordering::Equal => match ea.cmp(&eb) {
                            Ordering::Equal => {
                                ia.next();
                                ib.next();
                            }
                            Ordering::Greater => return Ordering::Less,
                            Ordering::Less => return Ordering::Greater,
                        },
                    },
                }
            }
        }

        fn block_degree(&self, m: &RefMonomial, k: usize) -> u32 {
            self.vars().iter().take(k).map(|v| m.degree_of(v)).sum()
        }

        pub fn cmp(&self, a: &RefMonomial, b: &RefMonomial) -> Ordering {
            match self {
                RefOrder::Lex(_) => self.lex_cmp(a, b),
                RefOrder::GrLex(_) => match a.total_degree().cmp(&b.total_degree()) {
                    Ordering::Equal => self.lex_cmp(a, b),
                    o => o,
                },
                RefOrder::GrevLex(_) => self.grevlex_cmp(a, b),
                RefOrder::Elimination(_, k) => {
                    match self.block_degree(a, *k).cmp(&self.block_degree(b, *k)) {
                        Ordering::Equal => self.grevlex_cmp(a, b),
                        o => o,
                    }
                }
            }
        }
    }

    /// Old-style polynomial: canonical `BTreeMap` from monomial to non-zero
    /// coefficient.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct RefPoly {
        pub terms: BTreeMap<RefMonomial, RefRational>,
    }

    impl RefPoly {
        pub fn zero() -> Self {
            RefPoly {
                terms: BTreeMap::new(),
            }
        }

        pub fn is_zero(&self) -> bool {
            self.terms.is_empty()
        }

        pub fn from_terms<I: IntoIterator<Item = (RefMonomial, RefRational)>>(iter: I) -> Self {
            let mut p = RefPoly::zero();
            for (m, c) in iter {
                p.add_term(&m, &c);
            }
            p
        }

        pub fn add_term(&mut self, m: &RefMonomial, c: &RefRational) {
            if c.is_zero() {
                return;
            }
            let entry = self
                .terms
                .entry(m.clone())
                .or_insert_with(RefRational::zero);
            *entry = entry.add(c);
            if entry.is_zero() {
                self.terms.remove(m);
            }
        }

        pub fn add(&self, other: &RefPoly) -> RefPoly {
            let mut out = self.clone();
            for (m, c) in &other.terms {
                out.add_term(m, c);
            }
            out
        }

        pub fn sub(&self, other: &RefPoly) -> RefPoly {
            let mut out = self.clone();
            for (m, c) in &other.terms {
                out.add_term(m, &c.neg());
            }
            out
        }

        pub fn mul(&self, other: &RefPoly) -> RefPoly {
            let mut out = RefPoly::zero();
            for (m, c) in &self.terms {
                for (m2, c2) in &other.terms {
                    out.add_term(&m.mul(m2), &c.mul(c2));
                }
            }
            out
        }

        pub fn mul_term(&self, m: &RefMonomial, c: &RefRational) -> RefPoly {
            if c.is_zero() {
                return RefPoly::zero();
            }
            RefPoly {
                terms: self
                    .terms
                    .iter()
                    .map(|(mm, k)| (mm.mul(m), k.mul(c)))
                    .collect(),
            }
        }

        pub fn sub_scaled(&mut self, g: &RefPoly, m: &RefMonomial, c: &RefRational) {
            if c.is_zero() {
                return;
            }
            for (mg, cg) in &g.terms {
                self.add_term(&mg.mul(m), &cg.mul(c).neg());
            }
        }

        pub fn scale(&self, c: &RefRational) -> RefPoly {
            if c.is_zero() {
                return RefPoly::zero();
            }
            RefPoly {
                terms: self
                    .terms
                    .iter()
                    .map(|(m, k)| (m.clone(), k.mul(c)))
                    .collect(),
            }
        }

        pub fn leading_term(&self, order: &RefOrder) -> Option<(RefMonomial, RefRational)> {
            let mut best: Option<&RefMonomial> = None;
            for m in self.terms.keys() {
                best = match best {
                    None => Some(m),
                    Some(b) => {
                        if order.cmp(m, b) == Ordering::Greater {
                            Some(m)
                        } else {
                            Some(b)
                        }
                    }
                };
            }
            best.map(|m| (m.clone(), self.terms[m].clone()))
        }

        pub fn monic(&self, order: &RefOrder) -> RefPoly {
            match self.leading_term(order) {
                None => RefPoly::zero(),
                Some((_, c)) => self.scale(&c.recip()),
            }
        }

        /// Old `Poly::vars`: first-seen discovery over ascending map keys.
        pub fn vars(&self) -> VarSet {
            let mut s = VarSet::new();
            for m in self.terms.keys() {
                for (v, _) in m.iter() {
                    s.push(v);
                }
            }
            s
        }
    }

    /// Old multi-divisor division (remainder only).
    pub fn normal_form(f: &RefPoly, divisors: &[RefPoly], order: &RefOrder) -> RefPoly {
        let mut remainder = RefPoly::zero();
        let mut p = f.clone();
        let leading: Vec<Option<(RefMonomial, RefRational)>> =
            divisors.iter().map(|g| g.leading_term(order)).collect();
        while let Some((lm_p, lc_p)) = p.leading_term(order) {
            let mut divided = false;
            for (i, lt) in leading.iter().enumerate() {
                let Some((lm_g, lc_g)) = lt else {
                    continue;
                };
                if let Some(m_quot) = lm_p.div(lm_g) {
                    let c_quot = lc_p.div(lc_g);
                    p.sub_scaled(&divisors[i], &m_quot, &c_quot);
                    divided = true;
                    break;
                }
            }
            if !divided {
                remainder.add_term(&lm_p, &lc_p);
                p.add_term(&lm_p, &lc_p.neg());
            }
        }
        remainder
    }

    fn s_polynomial(f: &RefPoly, g: &RefPoly, order: &RefOrder) -> RefPoly {
        let (Some((lm_f, lc_f)), Some((lm_g, lc_g))) =
            (f.leading_term(order), g.leading_term(order))
        else {
            return RefPoly::zero();
        };
        let lcm = lm_f.lcm(&lm_g);
        let mf = lcm.div(&lm_f).expect("lcm divisible");
        let mg = lcm.div(&lm_g).expect("lcm divisible");
        let lhs = f.mul_term(&mf, &lc_f.recip());
        let rhs = g.mul_term(&mg, &lc_g.recip());
        lhs.sub(&rhs)
    }

    /// The seed Buchberger (normal selection by linear scan, coprime
    /// criterion only) plus the old clone-heavy auto-reduction — enough to
    /// produce the canonical reduced basis, which is what the differential
    /// compares.
    pub fn reduced_groebner_basis(generators: &[RefPoly], order: &RefOrder) -> Vec<RefPoly> {
        let mut basis: Vec<RefPoly> = generators
            .iter()
            .filter(|g| !g.is_zero())
            .map(|g| g.monic(order))
            .collect();
        if basis.is_empty() {
            return Vec::new();
        }
        let lcm_of = |basis: &[RefPoly], i: usize, j: usize| {
            basis[i]
                .leading_term(order)
                .unwrap()
                .0
                .lcm(&basis[j].leading_term(order).unwrap().0)
        };
        let mut pairs: Vec<(usize, usize, RefMonomial)> = Vec::new();
        for i in 0..basis.len() {
            for j in (i + 1)..basis.len() {
                let lcm = lcm_of(&basis, i, j);
                pairs.push((i, j, lcm));
            }
        }
        let mut reductions = 0;
        while !pairs.is_empty() {
            if reductions >= 10_000 {
                break;
            }
            let selected = pairs
                .iter()
                .enumerate()
                .min_by(|(_, (_, _, la)), (_, (_, _, lb))| order.cmp(la, lb))
                .map(|(idx, _)| idx)
                .unwrap();
            let (i, j, _) = pairs.swap_remove(selected);
            let lm_i = basis[i].leading_term(order).unwrap().0;
            let lm_j = basis[j].leading_term(order).unwrap().0;
            if lm_i.is_coprime_with(&lm_j) {
                continue;
            }
            let s = s_polynomial(&basis[i], &basis[j], order);
            let r = normal_form(&s, &basis, order);
            reductions += 1;
            if !r.is_zero() {
                let r = r.monic(order);
                let new_index = basis.len();
                basis.push(r);
                for k in 0..new_index {
                    let lcm = lcm_of(&basis, k, new_index);
                    pairs.push((k, new_index, lcm));
                }
            }
        }
        let mut keep = vec![true; basis.len()];
        for i in 0..basis.len() {
            if !keep[i] {
                continue;
            }
            let lm_i = basis[i].leading_term(order).unwrap().0;
            for j in 0..basis.len() {
                if i == j || !keep[j] {
                    continue;
                }
                let lm_j = basis[j].leading_term(order).unwrap().0;
                if lm_j.divides(&lm_i) && (lm_i != lm_j || j < i) {
                    keep[i] = false;
                    break;
                }
            }
        }
        let basis: Vec<RefPoly> = basis
            .into_iter()
            .zip(keep)
            .filter_map(|(q, k)| if k { Some(q) } else { None })
            .collect();
        let mut reduced = Vec::with_capacity(basis.len());
        for i in 0..basis.len() {
            let others: Vec<RefPoly> = basis
                .iter()
                .enumerate()
                .filter_map(|(j, q)| if j != i { Some(q.clone()) } else { None })
                .collect();
            let r = normal_form(&basis[i], &others, order);
            if !r.is_zero() {
                reduced.push(r.monic(order));
            }
        }
        reduced.sort_by(|a, b| {
            let la = a.leading_term(order).unwrap().0;
            let lb = b.leading_term(order).unwrap().0;
            order.cmp(&lb, &la)
        });
        reduced
    }
}

use reference::{RefMonomial, RefOrder, RefPoly, RefRational};

/// A randomly generated term: exponents for (x, y, z) plus a rational
/// coefficient `n/d`.
type RawTerm = (u32, u32, u32, i64, i64);
/// A randomly generated polynomial as raw terms.
type RawPoly = Vec<RawTerm>;

fn vars3() -> (Var, Var, Var) {
    (Var::new("x"), Var::new("y"), Var::new("z"))
}

fn build_new(raw: &RawPoly) -> Poly {
    let (x, y, z) = vars3();
    Poly::from_terms(raw.iter().map(|&(ex, ey, ez, n, d)| {
        (
            Monomial::from_pairs(&[(x, ex), (y, ey), (z, ez)]),
            Rational::new(n, d.max(1)),
        )
    }))
}

fn build_ref(raw: &RawPoly) -> RefPoly {
    let (x, y, z) = vars3();
    RefPoly::from_terms(raw.iter().map(|&(ex, ey, ez, n, d)| {
        (
            RefMonomial::from_pairs(&[(x, ex), (y, ey), (z, ez)]),
            RefRational::ratio(n, d.max(1)),
        )
    }))
}

/// Converts an oracle polynomial into the new representation for comparison.
fn ref_to_new(p: &RefPoly) -> Poly {
    Poly::from_terms(p.terms.iter().map(|(m, c)| {
        (
            Monomial::from_pairs(&m.iter().collect::<Vec<_>>()),
            Rational::from_bigints(c.num.clone(), c.den.clone()),
        )
    }))
}

fn new_mono(raw: &(u32, u32, u32)) -> Monomial {
    let (x, y, z) = vars3();
    Monomial::from_pairs(&[(x, raw.0), (y, raw.1), (z, raw.2)])
}

fn ref_mono(raw: &(u32, u32, u32)) -> RefMonomial {
    let (x, y, z) = vars3();
    RefMonomial::from_pairs(&[(x, raw.0), (y, raw.1), (z, raw.2)])
}

fn order_pairs() -> Vec<(MonomialOrder, RefOrder)> {
    let names = ["x", "y", "z"];
    let set = VarSet::from_names(&names);
    vec![
        (MonomialOrder::lex(&names), RefOrder::Lex(set.clone())),
        (MonomialOrder::grlex(&names), RefOrder::GrLex(set.clone())),
        (
            MonomialOrder::grevlex(&names),
            RefOrder::GrevLex(set.clone()),
        ),
        (
            MonomialOrder::Elimination(set.clone(), 1),
            RefOrder::Elimination(set, 1),
        ),
    ]
}

/// Orders whose precedence list is deliberately *partial* (y unlisted), so
/// the unlisted-variable ranking paths are compared too.
fn partial_order_pairs() -> Vec<(MonomialOrder, RefOrder)> {
    let names = ["z", "x"];
    let set = VarSet::from_names(&names);
    vec![
        (MonomialOrder::lex(&names), RefOrder::Lex(set.clone())),
        (MonomialOrder::grlex(&names), RefOrder::GrLex(set.clone())),
        (
            MonomialOrder::grevlex(&names),
            RefOrder::GrevLex(set.clone()),
        ),
        (
            MonomialOrder::Elimination(set.clone(), 1),
            RefOrder::Elimination(set, 1),
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Every monomial-order comparison agrees with the old implementation,
    /// including orders whose precedence list omits a variable.
    #[test]
    fn prop_order_comparisons_match_reference(
        a in (0u32..5, 0u32..5, 0u32..5),
        b in (0u32..5, 0u32..5, 0u32..5),
    ) {
        let (na, nb) = (new_mono(&a), new_mono(&b));
        let (ra, rb) = (ref_mono(&a), ref_mono(&b));
        for (new_order, ref_order) in order_pairs().into_iter().chain(partial_order_pairs()) {
            prop_assert_eq!(
                new_order.cmp(&na, &nb),
                ref_order.cmp(&ra, &rb),
                "order {:?} on {} vs {}", new_order, na, nb
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Ring arithmetic is identical term-for-term and coefficient-for-
    /// coefficient.
    #[test]
    fn prop_arithmetic_matches_reference(
        raw_a in proptest::collection::vec((0u32..4, 0u32..4, 0u32..4, -9i64..10, 1i64..5), 0..6),
        raw_b in proptest::collection::vec((0u32..4, 0u32..4, 0u32..4, -9i64..10, 1i64..5), 0..6),
    ) {
        let (a, b) = (build_new(&raw_a), build_new(&raw_b));
        let (ra, rb) = (build_ref(&raw_a), build_ref(&raw_b));
        prop_assert_eq!(a.add(&b), ref_to_new(&ra.add(&rb)));
        prop_assert_eq!(a.sub(&b), ref_to_new(&ra.sub(&rb)));
        prop_assert_eq!(a.mul(&b), ref_to_new(&ra.mul(&rb)));
        // Variable discovery order must replay the old map iteration.
        prop_assert_eq!(a.vars(), ra.vars());
        prop_assert_eq!(a.mul(&b).vars(), ra.mul(&rb).vars());
    }

    /// Multi-divisor normal forms are identical under all three orders.
    #[test]
    fn prop_normal_form_matches_reference(
        raw_f in proptest::collection::vec((0u32..4, 0u32..4, 0u32..4, -6i64..7, 1i64..4), 1..6),
        raw_g1 in proptest::collection::vec((0u32..3, 0u32..3, 0u32..3, -4i64..5, 1i64..3), 1..4),
        raw_g2 in proptest::collection::vec((0u32..3, 0u32..3, 0u32..3, -4i64..5, 1i64..3), 1..4),
    ) {
        let f = build_new(&raw_f);
        let divisors = [build_new(&raw_g1), build_new(&raw_g2)];
        let rf = build_ref(&raw_f);
        let ref_divisors = [build_ref(&raw_g1), build_ref(&raw_g2)];
        for (new_order, ref_order) in order_pairs() {
            let got = symmap_algebra::division::normal_form(&f, &divisors, &new_order);
            let expected = reference::normal_form(&rf, &ref_divisors, &ref_order);
            prop_assert_eq!(got, ref_to_new(&expected), "order {:?}", new_order);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Reduced Gröbner bases are byte-identical to the oracle engine under
    /// lex, grlex and grevlex — the reduced basis is canonical for the
    /// ideal+order, so any divergence is a substrate bug.
    #[test]
    fn prop_reduced_basis_matches_reference(
        gens in proptest::collection::vec(
            proptest::collection::vec((0u32..3, 0u32..3, 0u32..3, -3i64..4, 1i64..3), 1..4),
            2..5,
        ),
    ) {
        let new_gens: Vec<Poly> = gens.iter().map(build_new).collect();
        let ref_gens: Vec<RefPoly> = gens.iter().map(build_ref).collect();
        for (new_order, ref_order) in order_pairs().into_iter().take(3) {
            let gb = symmap_algebra::groebner::groebner_basis(&new_gens, &new_order);
            prop_assume!(gb.complete);
            let expected: Vec<Poly> = reference::reduced_groebner_basis(&ref_gens, &ref_order)
                .iter()
                .map(ref_to_new)
                .collect();
            prop_assert_eq!(&gb.polys(), &expected, "order {:?}", new_order);
        }
    }
}

/// `simplify_modulo` — the paper's §3.3 primitive — agrees with the oracle
/// pipeline (reference Gröbner basis + reference normal form under the same
/// lex order) on the paper's own examples and on a small random sweep.
#[test]
fn simplify_modulo_matches_reference_pipeline() {
    /// One case: target, `(symbol, body)` side relations, variable order.
    type Case = (
        &'static str,
        Vec<(&'static str, &'static str)>,
        Vec<&'static str>,
    );
    let cases: Vec<Case> = vec![
        (
            "x + x^3*y^2 - 2*x*y^3",
            vec![("p", "x^2 - 2*y")],
            vec!["x", "y", "p"],
        ),
        (
            "x^2 + 2*x*y + y^2",
            vec![("s", "x + y")],
            vec!["x", "y", "s"],
        ),
        (
            "x^2 - y^2 + x*y",
            vec![("s", "x + y"), ("d", "x - y"), ("q", "x*y")],
            vec!["x", "y", "s", "d", "q"],
        ),
        (
            "x^4 - y^4 + x^2*y^2",
            vec![("s", "x + y"), ("d", "x - y"), ("q", "x*y"), ("sx", "x^2")],
            vec!["x", "y", "s", "d", "q", "sx"],
        ),
    ];
    for (target, relations, var_order) in cases {
        let t = Poly::parse(target).unwrap();
        let mut sr = SideRelations::new();
        for (sym, body) in &relations {
            sr.push(sym, Poly::parse(body).unwrap()).unwrap();
        }
        let got = simplify_modulo(&t, &sr, &var_order).unwrap();

        // Oracle pipeline under the same effective lex order.
        let order_set = VarSet::from_names(&var_order);
        let ref_order = RefOrder::Lex(order_set);
        let to_ref = |p: &Poly| {
            RefPoly::from_terms(p.iter().map(|(m, c)| {
                (
                    RefMonomial::from_pairs(&m.iter().collect::<Vec<_>>()),
                    RefRational::new(c.numer(), c.denom()),
                )
            }))
        };
        let ref_gens: Vec<RefPoly> = relations
            .iter()
            .map(|(sym, body)| {
                let body = Poly::parse(body).unwrap();
                let gen = body.sub(&Poly::var_named(sym));
                to_ref(&gen)
            })
            .collect();
        let ref_basis = reference::reduced_groebner_basis(&ref_gens, &ref_order);
        let expected = reference::normal_form(&to_ref(&t), &ref_basis, &ref_order);
        assert_eq!(got, ref_to_new(&expected), "target {target}");
    }
}

/// Pin the representation-independence claim the docs make: reduction counts
/// of the engine are a function of the algorithm, not the term storage, so
/// the refactor must leave the canonical workloads' counts untouched.
#[test]
fn reduction_counts_unchanged_by_representation() {
    let p = |s: &str| Poly::parse(s).unwrap();
    let cubic = symmap_algebra::groebner::groebner_basis(
        &[p("x^2 - y"), p("x^3 - z")],
        &MonomialOrder::lex(&["x", "y", "z"]),
    );
    assert!(cubic.complete);
    assert_eq!(cubic.reductions, 5, "twisted cubic reduction count drifted");

    let mut sr = SideRelations::new();
    sr.push("s", p("x + y")).unwrap();
    sr.push("d", p("x - y")).unwrap();
    sr.push("q", p("x*y")).unwrap();
    sr.push("sx", p("x^2")).unwrap();
    let mapper = symmap_algebra::groebner::groebner_basis(
        &sr.generators(),
        &MonomialOrder::lex(&["x", "y", "s", "d", "q", "sx"]),
    );
    assert!(mapper.complete);
    assert_eq!(mapper.reductions, 7, "mapper ideal reduction count drifted");
}
