//! `trace_export` — runs the 11-kernel MP3 mapping batch with tracing on
//! and writes the two observability artifacts:
//!
//! * `<dir>/mp3_batch.trace.json` — chrome://tracing trace-event JSON
//!   (load in Perfetto / `chrome://tracing`),
//! * `<dir>/mp3_batch.metrics.json` — the batch's metrics-registry delta.
//!
//! `<dir>` is the first CLI argument, default `target/trace`. CI runs this
//! after the test passes and uploads both files as build artifacts, so every
//! PR has an inspectable trace of the canonical batch. The export is
//! validated before writing (the same schema check the trace-determinism
//! suite pins), so a malformed trace fails the run instead of shipping.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

use symmap_bench::mp3_kernel_jobs;
use symmap_engine::{EngineConfig, MapperConfig, MappingEngine};
use symmap_libchar::catalog;
use symmap_platform::machine::Badge4;
use symmap_trace::{to_chrome_json, validate_chrome_trace};

fn main() -> ExitCode {
    let dir = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/trace"));

    let badge = Badge4::new();
    let library = Arc::new(catalog::full_catalog(&badge));
    let jobs = mp3_kernel_jobs(&library, &MapperConfig::default());
    let engine = MappingEngine::new(EngineConfig {
        trace: true,
        ..EngineConfig::default()
    });
    let result = engine.run(&jobs);
    let mapped = result.outcomes.iter().filter(|o| o.is_ok()).count();
    let trace = result.trace.expect("tracing was enabled");

    let chrome = to_chrome_json(&trace);
    let events = match validate_chrome_trace(&chrome) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("trace_export: chrome trace failed validation: {e}");
            return ExitCode::FAILURE;
        }
    };
    let metrics = result.stats.metrics.to_json();

    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("trace_export: cannot create {}: {e}", dir.display());
        return ExitCode::FAILURE;
    }
    let trace_path = dir.join("mp3_batch.trace.json");
    let metrics_path = dir.join("mp3_batch.metrics.json");
    for (path, contents) in [(&trace_path, &chrome), (&metrics_path, &metrics)] {
        if let Err(e) = std::fs::write(path, contents) {
            eprintln!("trace_export: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }

    println!(
        "trace_export: {mapped}/{} kernels mapped at {} workers",
        jobs.len(),
        result.stats.workers
    );
    println!(
        "trace_export: {events} chrome events ({} deterministic, {} sched) -> {}",
        trace.deterministic_event_count(),
        trace.sched.len(),
        trace_path.display()
    );
    println!(
        "trace_export: metrics snapshot -> {}",
        metrics_path.display()
    );
    ExitCode::SUCCESS
}
