//! `perfgate` — the CI perf-regression gate over `BENCH.json`.
//!
//! For every benchmark in the accumulated trajectory, compares the **latest**
//! entry against the **best (fastest) prior** entry recorded on matching
//! hardware and fails (exit code 1) when the latest wall clock regressed by
//! more than the threshold (default 1.5×, override with the first CLI
//! argument or `SYMMAP_PERFGATE_THRESHOLD`).
//!
//! Rules that keep the gate honest rather than noisy:
//!
//! * Only entries whose `hw_threads` matches the latest entry's are
//!   comparable — wall clocks from different machines are never judged
//!   against each other. (This is why schema 2 made `hw_threads` a
//!   structured field; in CI, runner entries appended by the quick benches
//!   are gated against committed entries from the same class of machine and
//!   silently skipped otherwise.)
//! * Legacy entries without `hw_threads` are never used for comparison.
//! * A benchmark with no comparable prior entry passes with a note — the
//!   first recording of a new bench (or a new machine) establishes the
//!   baseline that future runs are gated on.
//!
//! Run after the `SYMMAP_QUICK=1` benches have appended the current run's
//! entries:
//!
//! ```text
//! cargo run -p symmap-bench --release --bin perfgate
//! ```

use std::collections::BTreeMap;
use std::process::ExitCode;

use symmap_bench::quickbench::{self, QuickEntry};

/// Maximum allowed `latest / best_prior` wall-clock ratio.
const DEFAULT_THRESHOLD: f64 = 1.5;

fn threshold() -> f64 {
    std::env::args()
        .nth(1)
        .or_else(|| std::env::var("SYMMAP_PERFGATE_THRESHOLD").ok())
        .and_then(|v| v.trim().parse().ok())
        .filter(|t: &f64| t.is_finite() && *t > 0.0)
        .unwrap_or(DEFAULT_THRESHOLD)
}

/// One gated comparison: the latest entry of a bench vs its best prior.
struct Verdict {
    bench: String,
    latest_ns: u128,
    prior: Option<(u128, Option<u32>)>,
    ratio: Option<f64>,
    regressed: bool,
}

/// Benches excluded from gating: the `wide_interner` pre-ring entries
/// measure the deliberately pathological global-coordinate oracle (kept only
/// to document the blowup the ring layer removed) with a coarse sample count
/// — recording them is the point, gating them would fail CI over a
/// non-shipping path.
fn exempt(bench: &str) -> bool {
    bench.ends_with("/pre-ring")
}

/// Gates every bench in `entries` (file order = chronological order).
fn gate(entries: &[QuickEntry], threshold: f64) -> Vec<Verdict> {
    let mut by_bench: BTreeMap<&str, Vec<&QuickEntry>> = BTreeMap::new();
    for e in entries {
        if !exempt(&e.bench) {
            by_bench.entry(&e.bench).or_default().push(e);
        }
    }
    by_bench
        .into_iter()
        .map(|(bench, history)| {
            let latest = *history.last().expect("group is nonempty");
            let comparable =
                |e: &&&QuickEntry| e.hw_threads.is_some() && e.hw_threads == latest.hw_threads;
            let best_prior = history[..history.len() - 1]
                .iter()
                .filter(comparable)
                .min_by_key(|e| e.wall_ns);
            let ratio = best_prior.map(|best| latest.wall_ns as f64 / best.wall_ns.max(1) as f64);
            Verdict {
                bench: bench.to_string(),
                latest_ns: latest.wall_ns,
                prior: best_prior.map(|b| (b.wall_ns, b.pr)),
                ratio,
                regressed: ratio.is_some_and(|r| r > threshold),
            }
        })
        .collect()
}

fn main() -> ExitCode {
    let threshold = threshold();
    let entries = quickbench::read_entries();
    if entries.is_empty() {
        println!(
            "perfgate: no entries in {} — nothing to gate",
            quickbench::bench_json_path().display()
        );
        return ExitCode::SUCCESS;
    }
    let verdicts = gate(&entries, threshold);

    println!(
        "perfgate: {} benches, threshold {threshold:.2}x ({})",
        verdicts.len(),
        quickbench::bench_json_path().display()
    );
    println!(
        "{:<48} {:>12} {:>12} {:>7}  verdict",
        "bench", "latest ns", "best prior", "ratio"
    );
    let mut failures = 0usize;
    for v in &verdicts {
        match (v.prior, v.ratio) {
            (Some((prior_ns, prior_pr)), Some(ratio)) => {
                let verdict = if v.regressed { "REGRESSED" } else { "ok" };
                let pr = prior_pr.map_or(String::new(), |p| format!(" (pr {p})"));
                println!(
                    "{:<48} {:>12} {:>12} {:>6.2}x  {verdict}{pr}",
                    v.bench, v.latest_ns, prior_ns, ratio
                );
                if v.regressed {
                    failures += 1;
                }
            }
            _ => println!(
                "{:<48} {:>12} {:>12} {:>7}  no comparable prior (baseline established)",
                v.bench, v.latest_ns, "-", "-"
            ),
        }
    }
    let gated = verdicts.iter().filter(|v| v.prior.is_some()).count();
    if failures > 0 {
        eprintln!(
            "perfgate: {failures} bench(es) regressed beyond {threshold:.2}x \
             against their best same-hardware prior"
        );
        return ExitCode::FAILURE;
    }
    println!(
        "perfgate: {gated} bench(es) gated, {} established a baseline, \
         no regression beyond {threshold:.2}x",
        verdicts.len() - gated
    );
    if gated == 0 {
        // Be loud about vacuous runs: on a machine class with no committed
        // same-hw_threads history (e.g. a CI runner gating against a
        // trajectory recorded elsewhere) every bench passes by definition.
        // The gate's teeth live on machines matching the committed
        // trajectory's hardware class — where the entries are recorded.
        println!(
            "perfgate: WARNING — no bench had a comparable prior; this run \
             only established baselines and gated nothing"
        );
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(bench: &str, wall_ns: u128, hw: Option<u32>) -> QuickEntry {
        QuickEntry {
            bench: bench.into(),
            wall_ns,
            reductions: None,
            pr: Some(5),
            hw_threads: hw,
            note: String::new(),
        }
    }

    #[test]
    fn regression_beyond_threshold_fails_and_within_passes() {
        let entries = vec![
            e("a", 1000, Some(1)),
            e("a", 1400, Some(1)), // 1.4x vs best prior 1000: ok
            e("b", 1000, Some(1)),
            e("b", 1600, Some(1)), // 1.6x: regressed
        ];
        let verdicts = gate(&entries, 1.5);
        assert_eq!(verdicts.len(), 2);
        assert!(!verdicts[0].regressed);
        assert!(verdicts[1].regressed);
    }

    #[test]
    fn best_prior_is_the_fastest_not_the_most_recent() {
        // Latest 1400 vs priors [1000, 2000]: ratio against 1000 → 1.4x ok;
        // against the most recent (2000) it would wrongly pass any speedup.
        let entries = vec![
            e("a", 1000, Some(1)),
            e("a", 2000, Some(1)),
            e("a", 1400, Some(1)),
        ];
        let verdicts = gate(&entries, 1.5);
        assert_eq!(verdicts[0].prior.unwrap().0, 1000);
        assert!(!verdicts[0].regressed);
        let strict = gate(&entries, 1.3);
        assert!(
            strict[0].regressed,
            "1.4x vs best prior breaches a 1.3x gate"
        );
    }

    #[test]
    fn pre_ring_oracle_entries_are_exempt_from_gating() {
        let entries = vec![
            e("wide_interner/twisted-cubic/pre-ring", 1000, Some(1)),
            e("wide_interner/twisted-cubic/pre-ring", 9000, Some(1)), // 9x: ignored
            e("wide_interner/twisted-cubic/ring-local", 1000, Some(1)),
        ];
        let verdicts = gate(&entries, 1.5);
        assert_eq!(verdicts.len(), 1, "pre-ring entries must not be gated");
        assert_eq!(verdicts[0].bench, "wide_interner/twisted-cubic/ring-local");
    }

    #[test]
    fn hardware_mismatch_is_not_compared() {
        let entries = vec![
            e("a", 100, Some(4)),  // fast 4-thread machine
            e("a", 1000, Some(1)), // latest, slow 1-thread machine
        ];
        let verdicts = gate(&entries, 1.5);
        assert!(verdicts[0].prior.is_none(), "cross-hardware comparison");
        assert!(!verdicts[0].regressed);
        // Legacy entries without hw_threads are never used either.
        let legacy = vec![e("a", 100, None), e("a", 1000, None)];
        let verdicts = gate(&legacy, 1.5);
        assert!(verdicts[0].prior.is_none());
    }
}
