//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run -p symmap-bench --bin tables --release            # everything
//! cargo run -p symmap-bench --bin tables --release -- table6  # one artifact
//! ```
//!
//! Valid artifact names: `table1`, `eq1`, `maple`, `table3`, `table4`,
//! `table5`, `table6`, `figure1`, `dvfs`.

use symmap_bench::{table6_versions, FULL_STREAM_FRAMES};
use symmap_core::report;
use symmap_platform::machine::Badge4;

fn main() {
    let which: Vec<String> = std::env::args().skip(1).collect();
    let all = which.is_empty();
    let wants = |name: &str| all || which.iter().any(|w| w == name);
    let badge = Badge4::new();

    if wants("figure1") {
        println!("{}", report::render_figure1(&badge));
    }
    if wants("table1") {
        println!("{}", report::render_table1(&badge));
    }
    if wants("eq1") {
        println!("{}", report::render_eq1());
    }
    if wants("maple") {
        println!("{}", report::render_maple_examples());
    }

    let needs_versions =
        wants("table3") || wants("table4") || wants("table5") || wants("table6") || wants("dvfs");
    if !needs_versions {
        return;
    }

    let frames = if std::env::var("SYMMAP_QUICK").is_ok() {
        symmap_bench::QUICK_STREAM_FRAMES
    } else {
        FULL_STREAM_FRAMES
    };
    eprintln!("measuring {} code versions over {frames} frames ...", 7);
    let versions = table6_versions(&badge, frames);

    if wants("table3") {
        println!(
            "{}",
            report::render_profile("Table 3. Original MP3 Profile", &versions[0])
        );
    }
    if wants("table4") {
        println!(
            "{}",
            report::render_profile("Table 4. MP3 Profile after LM & IH mapping", &versions[3])
        );
    }
    if wants("table5") {
        println!(
            "{}",
            report::render_profile(
                "Table 5. MP3 Profile after LM & IH & IPP mapping",
                &versions[5]
            )
        );
        for line in &versions[5].mapping_summary {
            println!("  mapped: {line}");
        }
        println!();
    }
    if wants("table6") {
        println!("{}", report::render_table6(&versions));
    }
    if wants("dvfs") {
        println!("{}", report::render_dvfs(&versions[5], frames, &badge));
    }
}
