//! Machine-readable perf records for the quick-mode bench runs.
//!
//! `SYMMAP_QUICK=1` bench runs are deterministic regression guards, but until
//! now their wall-clock numbers scrolled past and vanished. This module
//! appends one JSON entry per benchmark to `BENCH.json` at the workspace root
//! so the perf trajectory accumulates across PRs: every entry records the
//! benchmark name, the measured wall clock, the exact S-polynomial reduction
//! count where one exists (reduction counts are representation-independent,
//! so they anchor wall-clock entries from different machines), and a
//! free-text note (`SYMMAP_BENCH_NOTE`) identifying the run.
//!
//! The file is self-describing and append-only:
//!
//! ```json
//! {
//!   "schema": 1,
//!   "entries": [
//!     {"bench": "groebner_engine/mapper-side-relations", "wall_ns": 1234, "reductions": 7, "note": "PR3 baseline"}
//!   ]
//! }
//! ```
//!
//! The merger only has to re-read a file this module itself wrote, so the
//! parser is deliberately line-oriented rather than a general JSON reader.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

/// One benchmark measurement destined for `BENCH.json`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuickEntry {
    /// Benchmark identifier, e.g. `poly_arith/mul`.
    pub bench: String,
    /// Median wall clock of one iteration, in nanoseconds.
    pub wall_ns: u128,
    /// Exact S-polynomial reduction count, when the workload has one.
    pub reductions: Option<u64>,
    /// Free-text provenance (from `SYMMAP_BENCH_NOTE`), e.g. `"PR3 baseline"`.
    pub note: String,
}

impl QuickEntry {
    fn to_json_line(&self) -> String {
        let mut s = String::new();
        write!(
            s,
            "    {{\"bench\": \"{}\", \"wall_ns\": {}",
            escape(&self.bench),
            self.wall_ns
        )
        .expect("writing to String cannot fail");
        if let Some(r) = self.reductions {
            write!(s, ", \"reductions\": {r}").expect("writing to String cannot fail");
        }
        write!(s, ", \"note\": \"{}\"}}", escape(&self.note)).expect("write to String");
        s
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' | '\\' => {
                out.push('\\');
                out.push(c);
            }
            // All control characters must be escaped for valid JSON, not
            // just newline — notes come from an env var.
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// The provenance note for this run, from `SYMMAP_BENCH_NOTE` (empty when
/// unset).
pub fn run_note() -> String {
    std::env::var("SYMMAP_BENCH_NOTE").unwrap_or_default()
}

/// Path of `BENCH.json` at the workspace root.
pub fn bench_json_path() -> PathBuf {
    // crates/bench -> crates -> workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("bench crate lives two levels below the workspace root")
        .join("BENCH.json")
}

/// Appends entries to `BENCH.json`, preserving every previously recorded
/// entry (the file is the accumulating perf trajectory).
pub fn append_entries(new_entries: &[QuickEntry]) {
    let path = bench_json_path();
    let mut lines: Vec<String> = Vec::new();
    if let Ok(existing) = std::fs::read_to_string(&path) {
        for line in existing.lines() {
            let t = line.trim_start();
            if t.starts_with("{\"bench\"") {
                lines.push(t.trim_end_matches(',').to_string());
            }
        }
    }
    for e in new_entries {
        lines.push(e.to_json_line().trim_start().to_string());
    }
    let mut out = String::from("{\n  \"schema\": 1,\n  \"entries\": [\n");
    for (i, l) in lines.iter().enumerate() {
        let sep = if i + 1 == lines.len() { "" } else { "," };
        writeln!(out, "    {l}{sep}").expect("writing to String cannot fail");
    }
    out.push_str("  ]\n}\n");
    std::fs::write(&path, out).expect("BENCH.json must be writable");
}

/// Median per-iteration wall clock of `f`, in nanoseconds.
///
/// Runs `samples` timed batches of `iters` calls each after a small warm-up
/// and reports the median batch divided by `iters` — robust against one-off
/// scheduler noise without needing a statistics dependency.
pub fn measure_ns<F: FnMut()>(iters: u32, samples: usize, mut f: F) -> u128 {
    for _ in 0..iters.min(3) {
        f();
    }
    let mut batches: Vec<u128> = Vec::with_capacity(samples.max(1));
    for _ in 0..samples.max(1) {
        let start = Instant::now();
        for _ in 0..iters.max(1) {
            f();
        }
        batches.push(start.elapsed().as_nanos());
    }
    batches.sort_unstable();
    batches[batches.len() / 2] / iters.max(1) as u128
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_line_shape() {
        let e = QuickEntry {
            bench: "poly_arith/mul".into(),
            wall_ns: 42,
            reductions: Some(7),
            note: "unit \"test\"".into(),
        };
        let line = e.to_json_line();
        assert!(line.contains("\"bench\": \"poly_arith/mul\""));
        assert!(line.contains("\"wall_ns\": 42"));
        assert!(line.contains("\"reductions\": 7"));
        assert!(line.contains("unit \\\"test\\\""));
        let no_red = QuickEntry {
            reductions: None,
            ..e
        };
        assert!(!no_red.to_json_line().contains("reductions"));
        // Control characters are escaped so the file stays valid JSON.
        assert_eq!(escape("a\tb\r\nc"), "a\\u0009b\\u000d\\u000ac");
    }

    #[test]
    fn measure_returns_positive_for_nontrivial_work() {
        let ns = measure_ns(4, 3, || {
            let v: Vec<u64> = (0..512).collect();
            assert_eq!(criterion::black_box(v).len(), 512);
        });
        assert!(ns > 0);
    }

    #[test]
    fn bench_json_path_is_at_workspace_root() {
        let p = bench_json_path();
        assert!(p.ends_with("BENCH.json"));
        assert!(p.parent().unwrap().join("Cargo.toml").exists());
    }
}
