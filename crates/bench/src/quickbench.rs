//! Machine-readable perf records for the quick-mode bench runs.
//!
//! `SYMMAP_QUICK=1` bench runs are deterministic regression guards, but until
//! now their wall-clock numbers scrolled past and vanished. This module
//! appends one JSON entry per benchmark to `BENCH.json` at the workspace root
//! so the perf trajectory accumulates across PRs: every entry records the
//! benchmark name, the measured wall clock, the exact S-polynomial reduction
//! count where one exists (reduction counts are representation-independent,
//! so they anchor wall-clock entries from different machines), and a
//! free-text note (`SYMMAP_BENCH_NOTE`) identifying the run.
//!
//! The file is self-describing and append-only (schema 2 adds structured
//! `pr` and `hw_threads` fields — the PR that recorded the entry and the
//! hardware thread count of the recording machine — which used to be stuffed
//! unparseably into the free-text note):
//!
//! ```json
//! {
//!   "schema": 2,
//!   "entries": [
//!     {"bench": "groebner_engine/mapper-side-relations", "wall_ns": 1234, "reductions": 7, "pr": 3, "hw_threads": 1, "note": "baseline"}
//!   ]
//! }
//! ```
//!
//! The merger and the `perfgate` regression gate only have to re-read a file
//! this module itself wrote, so the parser is deliberately line-oriented
//! rather than a general JSON reader.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

/// The PR recorded into fresh entries when `SYMMAP_BENCH_PR` is unset.
/// Bump alongside each perf-relevant PR so `perfgate` and readers can group
/// the trajectory without parsing notes.
pub const CURRENT_PR: u32 = 10;

/// One benchmark measurement destined for `BENCH.json`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuickEntry {
    /// Benchmark identifier, e.g. `poly_arith/mul`.
    pub bench: String,
    /// Median wall clock of one iteration, in nanoseconds.
    pub wall_ns: u128,
    /// Exact S-polynomial reduction count, when the workload has one.
    pub reductions: Option<u64>,
    /// The PR this entry was recorded under (schema 2; absent only in
    /// never-migrated legacy lines).
    pub pr: Option<u32>,
    /// Hardware threads of the recording machine (schema 2). `perfgate`
    /// only compares entries whose `hw_threads` match, so numbers from
    /// different machines are never judged against each other.
    pub hw_threads: Option<u32>,
    /// Free-text provenance (from `SYMMAP_BENCH_NOTE`), e.g. `"ci quick"`.
    pub note: String,
}

impl QuickEntry {
    fn to_json_line(&self) -> String {
        let mut s = String::new();
        write!(
            s,
            "    {{\"bench\": \"{}\", \"wall_ns\": {}",
            escape(&self.bench),
            self.wall_ns
        )
        .expect("writing to String cannot fail");
        if let Some(r) = self.reductions {
            write!(s, ", \"reductions\": {r}").expect("writing to String cannot fail");
        }
        if let Some(pr) = self.pr {
            write!(s, ", \"pr\": {pr}").expect("writing to String cannot fail");
        }
        if let Some(hw) = self.hw_threads {
            write!(s, ", \"hw_threads\": {hw}").expect("writing to String cannot fail");
        }
        write!(s, ", \"note\": \"{}\"}}", escape(&self.note)).expect("write to String");
        s
    }
}

/// Builds an entry for the current run: `pr` from `SYMMAP_BENCH_PR` (falling
/// back to [`CURRENT_PR`]), `hw_threads` from the running machine, `note`
/// from `SYMMAP_BENCH_NOTE`.
pub fn entry(bench: impl Into<String>, wall_ns: u128, reductions: Option<u64>) -> QuickEntry {
    QuickEntry {
        bench: bench.into(),
        wall_ns,
        reductions,
        pr: Some(pr_for_run()),
        hw_threads: Some(hw_threads()),
        note: run_note(),
    }
}

/// The PR number stamped on this run's entries (`SYMMAP_BENCH_PR` override,
/// else [`CURRENT_PR`]).
pub fn pr_for_run() -> u32 {
    std::env::var("SYMMAP_BENCH_PR")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(CURRENT_PR)
}

/// Hardware thread count of this machine (1 when undetectable).
pub fn hw_threads() -> u32 {
    std::thread::available_parallelism()
        .map(|p| p.get() as u32)
        .unwrap_or(1)
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' | '\\' => {
                out.push('\\');
                out.push(c);
            }
            // All control characters must be escaped for valid JSON, not
            // just newline — notes come from an env var.
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// The provenance note for this run, from `SYMMAP_BENCH_NOTE` (empty when
/// unset).
pub fn run_note() -> String {
    std::env::var("SYMMAP_BENCH_NOTE").unwrap_or_default()
}

/// Path of `BENCH.json` at the workspace root.
pub fn bench_json_path() -> PathBuf {
    // crates/bench -> crates -> workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("bench crate lives two levels below the workspace root")
        .join("BENCH.json")
}

/// Appends entries to `BENCH.json`, preserving every previously recorded
/// entry (the file is the accumulating perf trajectory).
pub fn append_entries(new_entries: &[QuickEntry]) {
    let path = bench_json_path();
    let mut lines: Vec<String> = Vec::new();
    if let Ok(existing) = std::fs::read_to_string(&path) {
        for line in existing.lines() {
            let t = line.trim_start();
            if t.starts_with("{\"bench\"") {
                lines.push(t.trim_end_matches(',').to_string());
            }
        }
    }
    for e in new_entries {
        lines.push(e.to_json_line().trim_start().to_string());
    }
    let mut out = String::from("{\n  \"schema\": 2,\n  \"entries\": [\n");
    for (i, l) in lines.iter().enumerate() {
        let sep = if i + 1 == lines.len() { "" } else { "," };
        writeln!(out, "    {l}{sep}").expect("writing to String cannot fail");
    }
    out.push_str("  ]\n}\n");
    std::fs::write(&path, out).expect("BENCH.json must be writable");
}

/// Extracts a `"key": "string"` field from one machine-written entry line
/// (unescaping the two escapes [`escape`] emits for `"` and `\`; `\uXXXX`
/// control escapes are left verbatim — nothing downstream compares notes).
fn string_field(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\": \"");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => {
                let escaped = chars.next()?;
                if escaped == 'u' {
                    // `\uXXXX` control escapes stay verbatim (escape() only
                    // ever *writes* them; nothing unescapes them), so keep
                    // the backslash rather than swallowing it.
                    out.push('\\');
                }
                out.push(escaped);
            }
            c => out.push(c),
        }
    }
    None
}

/// Extracts a `"key": 123` integer field from one entry line.
fn int_field(line: &str, key: &str) -> Option<u128> {
    let tag = format!("\"{key}\": ");
    let start = line.find(&tag)? + tag.len();
    let digits: String = line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// Parses one `BENCH.json` entry line back into a [`QuickEntry`]. Legacy
/// (schema 1) lines parse with `pr`/`hw_threads` as `None`.
pub fn parse_entry_line(line: &str) -> Option<QuickEntry> {
    Some(QuickEntry {
        bench: string_field(line, "bench")?,
        wall_ns: int_field(line, "wall_ns")?,
        reductions: int_field(line, "reductions").map(|r| r as u64),
        pr: int_field(line, "pr").map(|p| p as u32),
        hw_threads: int_field(line, "hw_threads").map(|h| h as u32),
        note: string_field(line, "note").unwrap_or_default(),
    })
}

/// Reads every recorded entry from `BENCH.json`, in file (chronological)
/// order. Missing file → empty trajectory.
pub fn read_entries() -> Vec<QuickEntry> {
    let Ok(existing) = std::fs::read_to_string(bench_json_path()) else {
        return Vec::new();
    };
    existing
        .lines()
        .filter_map(|line| {
            let t = line.trim_start();
            if t.starts_with("{\"bench\"") {
                parse_entry_line(t)
            } else {
                None
            }
        })
        .collect()
}

/// Median per-iteration wall clock of `f`, in nanoseconds.
///
/// Runs `samples` timed batches of `iters` calls each after a small warm-up
/// and reports the median batch divided by `iters` — robust against one-off
/// scheduler noise without needing a statistics dependency.
pub fn measure_ns<F: FnMut()>(iters: u32, samples: usize, mut f: F) -> u128 {
    for _ in 0..iters.min(3) {
        f();
    }
    let mut batches: Vec<u128> = Vec::with_capacity(samples.max(1));
    for _ in 0..samples.max(1) {
        let start = Instant::now();
        for _ in 0..iters.max(1) {
            f();
        }
        batches.push(start.elapsed().as_nanos());
    }
    batches.sort_unstable();
    batches[batches.len() / 2] / iters.max(1) as u128
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_line_shape() {
        let e = QuickEntry {
            bench: "poly_arith/mul".into(),
            wall_ns: 42,
            reductions: Some(7),
            pr: Some(5),
            hw_threads: Some(4),
            note: "unit \"test\"".into(),
        };
        let line = e.to_json_line();
        assert!(line.contains("\"bench\": \"poly_arith/mul\""));
        assert!(line.contains("\"wall_ns\": 42"));
        assert!(line.contains("\"reductions\": 7"));
        assert!(line.contains("\"pr\": 5"));
        assert!(line.contains("\"hw_threads\": 4"));
        assert!(line.contains("unit \\\"test\\\""));
        let no_red = QuickEntry {
            reductions: None,
            pr: None,
            hw_threads: None,
            ..e.clone()
        };
        let bare = no_red.to_json_line();
        assert!(!bare.contains("reductions"));
        assert!(!bare.contains("\"pr\""));
        assert!(!bare.contains("hw_threads"));
        // Control characters are escaped so the file stays valid JSON.
        assert_eq!(escape("a\tb\r\nc"), "a\\u0009b\\u000d\\u000ac");
        // Writer → parser round trip, structured fields included.
        assert_eq!(parse_entry_line(&line), Some(e));
        assert_eq!(parse_entry_line(&bare), Some(no_red));
    }

    #[test]
    fn entry_builder_stamps_run_metadata() {
        let e = entry("wide_interner/test", 99, Some(5));
        assert_eq!(e.bench, "wide_interner/test");
        assert_eq!(e.wall_ns, 99);
        assert_eq!(e.reductions, Some(5));
        assert!(e.hw_threads.is_some());
        assert!(e.pr.is_some());
    }

    #[test]
    fn legacy_schema1_lines_parse_without_structured_fields() {
        let legacy = r#"{"bench": "groebner_engine/twisted-cubic", "wall_ns": 34495, "reductions": 5, "note": "PR3 pre-refactor baseline"}"#;
        let e = parse_entry_line(legacy).unwrap();
        assert_eq!(e.bench, "groebner_engine/twisted-cubic");
        assert_eq!(e.wall_ns, 34495);
        assert_eq!(e.reductions, Some(5));
        assert_eq!((e.pr, e.hw_threads), (None, None));
        assert_eq!(e.note, "PR3 pre-refactor baseline");
    }

    #[test]
    fn measure_returns_positive_for_nontrivial_work() {
        let ns = measure_ns(4, 3, || {
            let v: Vec<u64> = (0..512).collect();
            assert_eq!(criterion::black_box(v).len(), 512);
        });
        assert!(ns > 0);
    }

    #[test]
    fn bench_json_path_is_at_workspace_root() {
        let p = bench_json_path();
        assert!(p.ends_with("BENCH.json"));
        assert!(p.parent().unwrap().join("Cargo.toml").exists());
    }
}
