//! # symmap-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! DAC 2002 evaluation on the simulated Badge4.
//!
//! Two entry points:
//!
//! * `cargo run -p symmap-bench --bin tables --release` prints the
//!   reproductions of Table 1, Equation 1, the §3.3 Maple examples, Tables
//!   3–6, Figure 1 and the DVFS headroom analysis (pass a table name to print
//!   only one).
//! * `cargo bench` runs the Criterion benchmarks, one per table/figure plus
//!   the four ablations listed in `DESIGN.md`.
//!
//! The helpers here are shared between the benches and the `tables` binary.

#![deny(rustdoc::broken_intra_doc_links)]

pub mod quickbench;

use symmap_core::pipeline::{table6_libraries, CodeVersion, OptimizationPipeline};
use symmap_libchar::catalog;
use symmap_mp3::decoder::KernelSet;
use symmap_platform::machine::Badge4;

/// Number of frames in the measured stream for the quick (bench) runs.
pub const QUICK_STREAM_FRAMES: usize = 4;
/// Number of frames used by the `tables` binary (the paper's stream is about
/// 194 frames: 503.92 s of original decode at 2.59 s per frame).
pub const FULL_STREAM_FRAMES: usize = 194;

/// Builds the pipeline for a named Table 6 configuration.
pub fn pipeline_for(name: &str, badge: &Badge4, frames: usize) -> Option<OptimizationPipeline> {
    table6_libraries(badge)
        .into_iter()
        .find(|(n, _)| n == name)
        .map(|(_, lib)| OptimizationPipeline::new(badge.clone(), lib).with_stream_frames(frames))
}

/// Measures every code version of Table 6 (six mapper-produced versions plus
/// the hand-optimized IPP MP3 reference point).
pub fn table6_versions(badge: &Badge4, frames: usize) -> Vec<CodeVersion> {
    let mut versions = Vec::new();
    for (name, library) in table6_libraries(badge) {
        let pipeline = OptimizationPipeline::new(badge.clone(), library).with_stream_frames(frames);
        if name == "Original" {
            versions.push(pipeline.measure("Original", KernelSet::reference()));
        } else {
            versions.push(pipeline.run(&name));
        }
    }
    let pipeline = OptimizationPipeline::new(badge.clone(), catalog::full_catalog(badge))
        .with_stream_frames(frames);
    versions.push(pipeline.measure("IPP MP3 (hand optimized)", KernelSet::ipp_complete()));
    versions
}

/// Measures a single named version (used by the per-table benches).
pub fn measure_version(name: &str, badge: &Badge4, frames: usize) -> CodeVersion {
    let pipeline = pipeline_for(name, badge, frames).unwrap_or_else(|| {
        OptimizationPipeline::new(badge.clone(), catalog::full_catalog(badge))
            .with_stream_frames(frames)
    });
    if name == "Original" {
        pipeline.measure("Original", KernelSet::reference())
    } else {
        pipeline.run(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_lookup_knows_the_table6_names() {
        let badge = Badge4::new();
        assert!(pipeline_for("Original", &badge, 1).is_some());
        assert!(pipeline_for("IH Library", &badge, 1).is_some());
        assert!(pipeline_for("No Such Version", &badge, 1).is_none());
    }

    #[test]
    fn quick_table6_has_seven_rows_in_order() {
        let badge = Badge4::new();
        let versions = table6_versions(&badge, 1);
        assert_eq!(versions.len(), 7);
        assert_eq!(versions[0].name, "Original");
        assert!(versions.last().unwrap().name.contains("IPP MP3"));
        // Monotone improvement from Original through the best automatic mapping.
        let original = &versions[0];
        let best_auto = &versions[5];
        assert!(best_auto.perf_factor_vs(original) > 50.0);
    }
}
