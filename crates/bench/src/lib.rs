//! # symmap-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! DAC 2002 evaluation on the simulated Badge4.
//!
//! Two entry points:
//!
//! * `cargo run -p symmap-bench --bin tables --release` prints the
//!   reproductions of Table 1, Equation 1, the §3.3 Maple examples, Tables
//!   3–6, Figure 1 and the DVFS headroom analysis (pass a table name to print
//!   only one).
//! * `cargo bench` runs the Criterion benchmarks, one per table/figure plus
//!   the four ablations listed in `DESIGN.md`.
//!
//! The helpers here are shared between the benches and the `tables` binary.

#![deny(rustdoc::broken_intra_doc_links)]

pub mod budgets;
pub mod quickbench;

use std::sync::Arc;

use symmap_core::pipeline::{table6_libraries, CodeVersion, OptimizationPipeline};
use symmap_engine::{EngineConfig, MapJob, MapperConfig, MappingEngine};
use symmap_libchar::catalog;
use symmap_libchar::Library;
use symmap_mp3::decoder::KernelSet;
use symmap_mp3::{imdct, synthesis};
use symmap_platform::machine::Badge4;

/// Number of frames in the measured stream for the quick (bench) runs.
pub const QUICK_STREAM_FRAMES: usize = 4;
/// Number of frames used by the `tables` binary (the paper's stream is about
/// 194 frames: 503.92 s of original decode at 2.59 s per frame).
pub const FULL_STREAM_FRAMES: usize = 194;

/// Builds the pipeline for a named Table 6 configuration.
pub fn pipeline_for(name: &str, badge: &Badge4, frames: usize) -> Option<OptimizationPipeline> {
    table6_libraries(badge)
        .into_iter()
        .find(|(n, _)| n == name)
        .map(|(_, lib)| OptimizationPipeline::new(badge.clone(), lib).with_stream_frames(frames))
}

/// Measures every code version of Table 6 (six mapper-produced versions plus
/// the hand-optimized IPP MP3 reference point).
///
/// The sweep runs through one shared batch engine: every version's mapping
/// batch uses the engine's worker pool, and one shared Gröbner cache answers
/// side-relation lookups across *all* versions (each version's library is a
/// superset of "Original"'s reference elements, so the overlap is large).
/// The versions themselves are measured in order on the calling thread —
/// deliberately *not* a second pool layer: nesting a version-level pool
/// around the engine's per-batch pool would oversubscribe the cores
/// (`workers²` threads) and, worse, run each batch's pre-interning step on a
/// racing outer worker, re-opening exactly the interner side channel the
/// engine closes (DESIGN.md §5). One level of parallelism, deterministic by
/// construction.
pub fn table6_versions(badge: &Badge4, frames: usize) -> Vec<CodeVersion> {
    let engine = MappingEngine::new(EngineConfig::default());
    let mut versions = Vec::new();
    for (name, library) in table6_libraries(badge) {
        let pipeline = OptimizationPipeline::new(badge.clone(), library)
            .with_stream_frames(frames)
            .with_engine(engine.clone());
        if name == "Original" {
            versions.push(pipeline.measure("Original", KernelSet::reference()));
        } else {
            versions.push(pipeline.run(&name));
        }
    }
    let pipeline = OptimizationPipeline::new(badge.clone(), catalog::full_catalog(badge))
        .with_stream_frames(frames);
    versions.push(pipeline.measure("IPP MP3 (hand optimized)", KernelSet::ipp_complete()));
    versions
}

/// The 11-kernel MP3 mapping batch: one [`MapJob`] per mapped decoder kernel
/// line. The six identified stage kernels (dequantize, stereo, antialias,
/// IMDCT line 0, hybrid, synthesis line 0 — exactly what
/// `OptimizationPipeline::map_decoder` maps) plus further IMDCT lines 1–3
/// and synthesis subbands 1–2, each a distinct 16/18-term linear form. This
/// is the workload of the `engine_batch` bench and of the cross-worker
/// determinism test.
pub fn mp3_kernel_jobs(library: &Arc<Library>, config: &MapperConfig) -> Vec<MapJob> {
    let job = |label: String, poly| MapJob::new(label, poly, Arc::clone(library), config.clone());
    let mut jobs = vec![
        job(
            "III_dequantize_sample".into(),
            catalog::dequantizer_polynomial(),
        ),
        job("III_stereo".into(), catalog::stereo_polynomial()),
        job("III_antialias".into(), catalog::antialias_polynomial()),
        job("inv_mdctL".into(), imdct::imdct_polynomial(0, 36)),
        job("III_hybrid".into(), catalog::hybrid_polynomial()),
        job(
            "SubBandSynthesis".into(),
            synthesis::synthesis_polynomial(0),
        ),
    ];
    for line in 1..=3 {
        jobs.push(job(
            format!("inv_mdctL[{line}]"),
            imdct::imdct_polynomial(line, 36),
        ));
    }
    for subband in 1..=2 {
        jobs.push(job(
            format!("SubBandSynthesis[{subband}]"),
            synthesis::synthesis_polynomial(subband),
        ));
    }
    debug_assert_eq!(jobs.len(), 11);
    jobs
}

/// Measures a single named version (used by the per-table benches).
pub fn measure_version(name: &str, badge: &Badge4, frames: usize) -> CodeVersion {
    let pipeline = pipeline_for(name, badge, frames).unwrap_or_else(|| {
        OptimizationPipeline::new(badge.clone(), catalog::full_catalog(badge))
            .with_stream_frames(frames)
    });
    if name == "Original" {
        pipeline.measure("Original", KernelSet::reference())
    } else {
        pipeline.run(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_lookup_knows_the_table6_names() {
        let badge = Badge4::new();
        assert!(pipeline_for("Original", &badge, 1).is_some());
        assert!(pipeline_for("IH Library", &badge, 1).is_some());
        assert!(pipeline_for("No Such Version", &badge, 1).is_none());
    }

    #[test]
    fn quick_table6_has_seven_rows_in_order() {
        let badge = Badge4::new();
        let versions = table6_versions(&badge, 1);
        assert_eq!(versions.len(), 7);
        assert_eq!(versions[0].name, "Original");
        assert!(versions.last().unwrap().name.contains("IPP MP3"));
        // Monotone improvement from Original through the best automatic mapping.
        let original = &versions[0];
        let best_auto = &versions[5];
        assert!(best_auto.perf_factor_vs(original) > 50.0);
    }
}
