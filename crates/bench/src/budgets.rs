//! The shared reduction-budget table for the Gröbner regression guards.
//!
//! The engine's S-polynomial reduction counts are exact and deterministic
//! (no wall clock involved), so fixed budgets make perfect CI regression
//! guards: exceeding one is a real selection/criteria regression, never
//! noise. This module owns the canonical workloads *and* their budgets in
//! one place, so the `groebner_engine` and `engine_batch` benches assert the
//! same table instead of each carrying a private copy.
//!
//! Budgets are the seed engine's deterministic counts (linear-scan queue +
//! coprime criterion only): 7 on the twisted cubic, 11 on the mapper ideal.
//! The rebuilt engine does 5 and 7.

use symmap_algebra::eliminate::{eliminate, Elimination};
use symmap_algebra::groebner::{buchberger, GroebnerBasis, GroebnerOptions};
use symmap_algebra::ordering::MonomialOrder;
use symmap_algebra::poly::Poly;
use symmap_algebra::simplify::SideRelations;

fn p(s: &str) -> Poly {
    Poly::parse(s).expect("budget workload polynomial parses")
}

/// A canonical Gröbner workload, with a fixed reduction budget when it
/// serves as a regression guard (`None` = tracked for display only).
pub struct BudgetedIdeal {
    /// Stable display name (also the BENCH.json bench suffix).
    pub name: &'static str,
    /// Ideal generators.
    pub generators: Vec<Poly>,
    /// Monomial order of the computation.
    pub order: MonomialOrder,
    /// Maximum allowed S-polynomial reductions under default options.
    pub budget: Option<usize>,
}

/// The textbook twisted cubic `<x^2 - y, x^3 - z>` under lex. Budget: the
/// seed engine's 7 reductions.
pub fn twisted_cubic() -> BudgetedIdeal {
    BudgetedIdeal {
        name: "twisted-cubic",
        generators: vec![p("x^2 - y"), p("x^3 - z")],
        order: MonomialOrder::lex(&["x", "y", "z"]),
        budget: Some(7),
    }
}

/// The mapper's 4-relation side-relation ideal (sum/diff/prod/square library
/// elements) — the elimination-style workload that made the seed engine's
/// naive pair ordering hang in PR 1. Budget: the seed engine's 11 reductions.
pub fn mapper_side_relations() -> BudgetedIdeal {
    let mut sr = SideRelations::new();
    sr.push("s", p("x + y")).expect("fresh symbol");
    sr.push("d", p("x - y")).expect("fresh symbol");
    sr.push("q", p("x*y")).expect("fresh symbol");
    sr.push("sx", p("x^2")).expect("fresh symbol");
    BudgetedIdeal {
        name: "mapper-side-relations",
        generators: sr.generators(),
        order: MonomialOrder::lex(&["x", "y", "s", "d", "q", "sx"]),
        budget: Some(11),
    }
}

/// The circle/line/saddle system from the ordering ablation. The current
/// engine needs 2 reductions; the budget leaves headroom for a benign
/// selection-order change without letting a real regression through.
pub fn circle_system() -> BudgetedIdeal {
    BudgetedIdeal {
        name: "circle-system",
        generators: vec![p("x^2 + y^2 + z^2 - 1"), p("x*y - z"), p("x - y + z^2")],
        order: MonomialOrder::grevlex(&["x", "y", "z"]),
        budget: Some(4),
    }
}

/// Every tracked workload, in display order.
pub fn budgeted_ideals() -> Vec<BudgetedIdeal> {
    vec![twisted_cubic(), mapper_side_relations(), circle_system()]
}

/// Asserts one computed basis against its workload's budget (no-op for
/// display-only workloads). Panics with an actionable message on a breach.
pub fn assert_within_budget(ideal: &BudgetedIdeal, gb: &GroebnerBasis) {
    assert!(
        gb.complete,
        "{} hit the iteration bound before completing",
        ideal.name
    );
    if let Some(budget) = ideal.budget {
        assert!(
            gb.reductions <= budget,
            "{} exceeded its reduction budget: {} > {budget}",
            ideal.name,
            gb.reductions
        );
    }
}

/// Computes every budgeted ideal's basis under default options, asserts the
/// budgets, and returns `(name, reductions, budget)` for reporting.
pub fn assert_groebner_budgets() -> Vec<(&'static str, usize, usize)> {
    let mut report = Vec::new();
    for ideal in budgeted_ideals() {
        let gb = buchberger(&ideal.generators, &ideal.order, &GroebnerOptions::default());
        assert_within_budget(&ideal, &gb);
        if let Some(budget) = ideal.budget {
            report.push((ideal.name, gb.reductions, budget));
        }
    }
    report
}

/// Reduction budget for eliminating `x` from the twisted cubic via an
/// elimination order ([`Elimination::reductions`] is the same exact metric;
/// the current engine does 5).
pub const ELIMINATION_TWISTED_CUBIC_BUDGET: usize = 7;

/// Runs the canonical elimination workload, asserts its budget, and returns
/// the [`Elimination`] for further inspection.
pub fn assert_elimination_budget() -> Elimination {
    let ideal = twisted_cubic();
    let result = eliminate(&ideal.generators, &["x"]);
    assert!(result.complete, "elimination hit the iteration bound");
    assert!(
        result.reductions <= ELIMINATION_TWISTED_CUBIC_BUDGET,
        "twisted-cubic elimination exceeded its reduction budget: {} > {}",
        result.reductions,
        ELIMINATION_TWISTED_CUBIC_BUDGET
    );
    assert!(
        !result.eliminated.is_empty(),
        "eliminating x from the twisted cubic must leave the y/z curve"
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_table_holds_on_the_current_engine() {
        let report = assert_groebner_budgets();
        assert_eq!(report.len(), 3);
        // The rebuilt engine's exact counts, pinned so an *improvement* also
        // shows up (update the expectation, not the budget, when it does).
        let by_name: std::collections::HashMap<_, _> =
            report.iter().map(|(n, r, _)| (*n, *r)).collect();
        assert_eq!(by_name["twisted-cubic"], 5);
        assert_eq!(by_name["mapper-side-relations"], 7);
        assert_eq!(by_name["circle-system"], 2);
    }

    #[test]
    fn elimination_budget_holds() {
        let result = assert_elimination_budget();
        assert!(result.reductions <= ELIMINATION_TWISTED_CUBIC_BUDGET);
    }
}
