//! Ablation — side-relation guidance (factor/Horner ordering) on vs. off:
//! nodes explored and wall time of the branch-and-bound search.

use criterion::{criterion_group, criterion_main, Criterion};
use symmap_core::decompose::{Mapper, MapperConfig};
use symmap_libchar::catalog;
use symmap_mp3::synthesis;
use symmap_platform::machine::Badge4;

fn bench(c: &mut Criterion) {
    let badge = Badge4::new();
    let library = catalog::full_catalog(&badge);
    let target = synthesis::synthesis_polynomial(0);
    let guided = Mapper::new(&library, MapperConfig::default());
    let unguided = Mapper::new(
        &library,
        MapperConfig {
            use_guidance: false,
            ..MapperConfig::default()
        },
    );
    c.bench_function("ablation/guidance_on", |b| {
        b.iter(|| guided.map_polynomial(&target).unwrap())
    });
    c.bench_function("ablation/guidance_off", |b| {
        b.iter(|| unguided.map_polynomial(&target).unwrap())
    });
    let on = guided.map_polynomial(&target).unwrap();
    let off = unguided.map_polynomial(&target).unwrap();
    println!(
        "\nguidance ablation: nodes explored {} (guided) vs {} (unguided); same winner: {}\n",
        on.nodes_explored,
        off.nodes_explored,
        on.element_names() == off.element_names()
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
