//! The trace-overhead bench: the 11-kernel MP3 batch with tracing off vs on,
//! gated at trace-on ≤ 1.10× trace-off.
//!
//! The observability layer claims to be near-free: with tracing off every
//! instrumentation site is one relaxed atomic load, and with it on the
//! recording is bounded ring pushes dwarfed by the Gröbner work they
//! annotate. This bench turns that claim into a regression gate. Both sides
//! run the identical cold-cache batch (the trace-determinism suite already
//! pins that outcomes are byte-identical), so the ratio isolates pure
//! recording cost. One remeasure (taking the per-side minimum) absorbs
//! scheduler noise before the gate fails.
//!
//! In `SYMMAP_QUICK=1` mode both wall clocks are appended to `BENCH.json`,
//! where `perfgate` gates them across runs like every other entry.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use symmap_bench::{mp3_kernel_jobs, quickbench};
use symmap_engine::{BatchResult, EngineConfig, MapJob, MapperConfig, MappingEngine};
use symmap_libchar::catalog;
use symmap_platform::machine::Badge4;

/// Maximum allowed trace-on / trace-off wall-clock ratio.
const MAX_OVERHEAD: f64 = 1.10;

/// Runs the batch on a fresh engine (cold cache) so both sides do the full
/// basis workload. Sequential: one worker keeps the comparison free of
/// scheduling variance, which would drown the ≤ 10% budget being measured.
fn run_cold(jobs: &[MapJob], trace: bool) -> BatchResult {
    MappingEngine::new(EngineConfig {
        workers: 1,
        trace,
        ..EngineConfig::default()
    })
    .run(jobs)
}

fn measure_pair(jobs: &[MapJob], samples: usize) -> (u128, u128) {
    let off = quickbench::measure_ns(2, samples, || {
        criterion::black_box(run_cold(jobs, false));
    });
    let on = quickbench::measure_ns(2, samples, || {
        criterion::black_box(run_cold(jobs, true));
    });
    (off, on)
}

fn bench(c: &mut Criterion) {
    let quick = std::env::var("SYMMAP_QUICK").is_ok();
    let badge = Badge4::new();
    let library = Arc::new(catalog::full_catalog(&badge));
    let jobs = mp3_kernel_jobs(&library, &MapperConfig::default());
    assert_eq!(jobs.len(), 11, "the MP3 kernel batch is 11 jobs");

    // Determinism guard first: the traced run maps exactly what the
    // untraced run maps (the full byte-identity contract lives in the
    // trace-determinism suite; this is the bench's own sanity check).
    let untraced = run_cold(&jobs, false);
    let traced = run_cold(&jobs, true);
    assert_eq!(
        format!("{:?}", traced.outcomes),
        format!("{:?}", untraced.outcomes),
        "tracing perturbed the MP3 batch"
    );
    let trace = traced.trace.expect("tracing was enabled");
    assert!(trace.deterministic_event_count() > 0);

    let samples = if quick { 5 } else { 9 };
    let (mut wall_off, mut wall_on) = measure_pair(&jobs, samples);
    let mut ratio = wall_on as f64 / wall_off.max(1) as f64;
    if ratio > MAX_OVERHEAD {
        // One remeasure, keeping each side's minimum: a single descheduling
        // blip on either side should not fail the gate.
        let (off2, on2) = measure_pair(&jobs, samples);
        wall_off = wall_off.min(off2);
        wall_on = wall_on.min(on2);
        ratio = wall_on as f64 / wall_off.max(1) as f64;
    }
    println!(
        "trace_overhead: off {wall_off} ns, on {wall_on} ns, ratio {ratio:.3}x \
         ({} deterministic events per traced batch)",
        trace.deterministic_event_count()
    );
    assert!(
        ratio <= MAX_OVERHEAD,
        "tracing costs {ratio:.3}x on the MP3 batch (budget {MAX_OVERHEAD}x)"
    );

    if quick {
        let note = {
            let base = quickbench::run_note();
            let overhead = format!("trace overhead {ratio:.3}x");
            if base.is_empty() {
                overhead
            } else {
                format!("{base}; {overhead}")
            }
        };
        quickbench::append_entries(&[
            quickbench::QuickEntry {
                note: note.clone(),
                ..quickbench::entry("trace_overhead/mp3-11-kernels/trace-off", wall_off, None)
            },
            quickbench::QuickEntry {
                note,
                ..quickbench::entry("trace_overhead/mp3-11-kernels/trace-on", wall_on, None)
            },
        ]);
        println!(
            "recorded trace_overhead entries to {}",
            quickbench::bench_json_path().display()
        );
        return;
    }

    c.bench_function("trace_overhead/mp3-11-kernels/trace-off", |b| {
        b.iter(|| run_cold(&jobs, false))
    });
    c.bench_function("trace_overhead/mp3-11-kernels/trace-on", |b| {
        b.iter(|| run_cold(&jobs, true))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
