//! Table 6 — performance and energy of every decoder version produced by the
//! mapping flow, plus the hand-optimized IPP MP3 reference point.

use criterion::{criterion_group, criterion_main, Criterion};
use symmap_bench::{table6_versions, QUICK_STREAM_FRAMES};
use symmap_core::report;
use symmap_platform::machine::Badge4;

fn bench(c: &mut Criterion) {
    let badge = Badge4::new();
    c.bench_function("table6/all_versions", |b| {
        b.iter(|| table6_versions(&badge, QUICK_STREAM_FRAMES))
    });
    let versions = table6_versions(&badge, QUICK_STREAM_FRAMES);
    println!("\n{}", report::render_table6(&versions));
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
