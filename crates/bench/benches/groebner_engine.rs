//! The Gröbner hot-path engine bench: reduction counts and wall time of the
//! heap pair queue, the Buchberger criteria and the mapper's basis
//! memoization, on the workloads the mapping algorithm actually runs.
//!
//! Besides timing, this bench is a **deterministic regression guard**: the
//! engine's reduction counts are exact (no wall clock involved), so the run
//! fails — in CI via `SYMMAP_QUICK=1 cargo bench -p symmap-bench --bench
//! groebner_engine` — whenever the twisted cubic or the mapper's
//! side-relation ideal exceeds its fixed reduction budget.

use criterion::{criterion_group, criterion_main, Criterion};
use symmap_algebra::groebner::{buchberger, GroebnerOptions};
use symmap_algebra::ordering::MonomialOrder;
use symmap_algebra::poly::Poly;
use symmap_algebra::simplify::SideRelations;
use symmap_core::decompose::{Mapper, MapperConfig};
use symmap_libchar::{Library, LibraryElement};

fn p(s: &str) -> Poly {
    Poly::parse(s).unwrap()
}

/// The textbook twisted cubic `<x^2 - y, x^3 - z>` under lex.
fn twisted_cubic() -> (&'static str, Vec<Poly>, MonomialOrder) {
    (
        "twisted-cubic",
        vec![p("x^2 - y"), p("x^3 - z")],
        MonomialOrder::lex(&["x", "y", "z"]),
    )
}

/// The mapper's 4-relation side-relation ideal (sum/diff/prod/square library
/// elements) — the elimination-style workload that made the seed engine's
/// naive pair ordering hang in PR 1.
fn mapper_side_relations() -> (&'static str, Vec<Poly>, MonomialOrder) {
    let mut sr = SideRelations::new();
    sr.push("s", p("x + y")).unwrap();
    sr.push("d", p("x - y")).unwrap();
    sr.push("q", p("x*y")).unwrap();
    sr.push("sx", p("x^2")).unwrap();
    (
        "mapper-side-relations",
        sr.generators(),
        MonomialOrder::lex(&["x", "y", "s", "d", "q", "sx"]),
    )
}

/// The circle/line/saddle system from the ordering ablation.
fn circle_system() -> (&'static str, Vec<Poly>, MonomialOrder) {
    (
        "circle-system",
        vec![p("x^2 + y^2 + z^2 - 1"), p("x*y - z"), p("x - y + z^2")],
        MonomialOrder::grevlex(&["x", "y", "z"]),
    )
}

/// Ablation grid: engine configurations whose reduction counts get printed.
fn configurations() -> Vec<(&'static str, GroebnerOptions)> {
    vec![
        ("full", GroebnerOptions::default()),
        (
            "no-chain",
            GroebnerOptions {
                use_chain_criterion: false,
                ..Default::default()
            },
        ),
        (
            "no-coprime",
            GroebnerOptions {
                use_coprime_criterion: false,
                ..Default::default()
            },
        ),
        (
            "no-criteria",
            GroebnerOptions {
                use_coprime_criterion: false,
                use_chain_criterion: false,
                ..Default::default()
            },
        ),
        (
            "sugar",
            GroebnerOptions {
                use_sugar_tiebreak: true,
                ..Default::default()
            },
        ),
    ]
}

/// Fixed reduction budgets for the default engine configuration, set to the
/// seed engine's deterministic counts (linear-scan queue + coprime criterion
/// only): 7 on the twisted cubic, 11 on the mapper ideal. The rebuilt engine
/// does 5 and 7; counts are exactly reproducible, so exceeding a budget is a
/// real selection/criteria regression, not noise.
const TWISTED_CUBIC_BUDGET: usize = 7;
const MAPPER_IDEAL_BUDGET: usize = 11;

fn element(name: &str, symbol: &str, poly: &str, cycles: u64) -> LibraryElement {
    LibraryElement::builder(name, symbol)
        .polynomial(p(poly))
        .cycles(cycles)
        .energy_nj(cycles as f64)
        .accuracy(1e-9)
        .build()
        .unwrap()
}

fn bench(c: &mut Criterion) {
    let quick = std::env::var("SYMMAP_QUICK").is_ok();
    let ideals = [twisted_cubic(), mapper_side_relations(), circle_system()];

    println!("\ngroebner engine — S-polynomial reduction counts");
    println!(
        "{:<24} {:<12} {:>6} {:>10} {:>8} {:>7} {:>6}",
        "ideal", "config", "basis", "reductions", "coprime", "chain", "done"
    );
    for (name, gens, order) in &ideals {
        for (cfg_name, opts) in configurations() {
            let gb = buchberger(gens, order, &opts);
            println!(
                "{name:<24} {cfg_name:<12} {:>6} {:>10} {:>8} {:>7} {:>6}",
                gb.polys.len(),
                gb.reductions,
                gb.skipped_coprime,
                gb.skipped_chain,
                gb.complete
            );
            assert!(gb.complete, "{name}/{cfg_name} hit the iteration bound");
        }
    }

    // The deterministic regression guard (this is what CI quick mode is for).
    let (_, cubic_gens, cubic_order) = twisted_cubic();
    let cubic = buchberger(&cubic_gens, &cubic_order, &GroebnerOptions::default());
    assert!(
        cubic.reductions <= TWISTED_CUBIC_BUDGET,
        "twisted cubic exceeded its reduction budget: {} > {TWISTED_CUBIC_BUDGET}",
        cubic.reductions
    );
    let (_, mapper_gens, mapper_order) = mapper_side_relations();
    let mapper_gb = buchberger(&mapper_gens, &mapper_order, &GroebnerOptions::default());
    assert!(
        mapper_gb.reductions <= MAPPER_IDEAL_BUDGET,
        "mapper side-relation ideal exceeded its reduction budget: {} > {MAPPER_IDEAL_BUDGET}",
        mapper_gb.reductions
    );
    println!(
        "reduction budgets ok: twisted-cubic {}/{TWISTED_CUBIC_BUDGET}, \
         mapper-side-relations {}/{MAPPER_IDEAL_BUDGET}",
        cubic.reductions, mapper_gb.reductions
    );

    // Mapper memoization: identical map_polynomial calls are answered from
    // the basis cache (misses stay flat after the first call).
    let mut lib = Library::new("bench");
    lib.push(element("sum", "s", "x + y", 3));
    lib.push(element("diff", "d", "x - y", 3));
    lib.push(element("prod", "q", "x*y", 5));
    lib.push(element("sq_x", "sx", "x^2", 4));
    let mapper = Mapper::new(&lib, MapperConfig::default());
    let target = p("x^4 - y^4 + x^2*y^2");
    mapper.map_polynomial(&target).unwrap();
    let (_, misses_cold) = mapper.cache_stats();
    mapper.map_polynomial(&target).unwrap();
    let (hits_warm, misses_warm) = mapper.cache_stats();
    println!(
        "mapper memoization: {misses_cold} bases computed cold, repeat run {} hits / {} new bases\n",
        hits_warm,
        misses_warm - misses_cold
    );
    assert_eq!(
        misses_warm, misses_cold,
        "a repeated mapping call recomputed a Gröbner basis"
    );

    if quick {
        // Quick mode still records a wall-clock point per ideal (median of
        // batches, appended to BENCH.json) so the perf trajectory accumulates
        // without a full Criterion run; the reduction count anchors each
        // entry since it is representation-independent and exact.
        use symmap_bench::quickbench::{self, QuickEntry};
        let note = quickbench::run_note();
        let mut entries = Vec::new();
        println!("groebner_engine — quick wall-clock (median of batches)");
        for (name, gens, order) in &ideals {
            let gb = buchberger(gens, order, &GroebnerOptions::default());
            let wall_ns = quickbench::measure_ns(10, 9, || {
                criterion::black_box(buchberger(gens, order, &GroebnerOptions::default()));
            });
            println!("groebner_engine/{name:<24} {wall_ns:>12} ns/iter");
            entries.push(QuickEntry {
                bench: format!("groebner_engine/{name}"),
                wall_ns,
                reductions: Some(gb.reductions as u64),
                note: note.clone(),
            });
        }
        quickbench::append_entries(&entries);
        println!(
            "recorded {} entries to {}\n",
            entries.len(),
            quickbench::bench_json_path().display()
        );
        return;
    }

    for (name, gens, order) in &ideals {
        c.bench_function(&format!("groebner_engine/{name}/full"), |b| {
            b.iter(|| buchberger(gens, order, &GroebnerOptions::default()))
        });
        c.bench_function(&format!("groebner_engine/{name}/no_criteria"), |b| {
            b.iter(|| {
                buchberger(
                    gens,
                    order,
                    &GroebnerOptions {
                        use_coprime_criterion: false,
                        use_chain_criterion: false,
                        ..Default::default()
                    },
                )
            })
        });
    }
    c.bench_function("groebner_engine/mapper_memoized", |b| {
        b.iter(|| mapper.map_polynomial(&target).unwrap())
    });
    c.bench_function("groebner_engine/mapper_cold_cache", |b| {
        b.iter(|| {
            Mapper::new(&lib, MapperConfig::default())
                .map_polynomial(&target)
                .unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
