//! The Gröbner hot-path engine bench: reduction counts and wall time of the
//! heap pair queue, the Buchberger criteria and the mapper's basis
//! memoization, on the workloads the mapping algorithm actually runs.
//!
//! Besides timing, this bench is a **deterministic regression guard**: the
//! engine's reduction counts are exact (no wall clock involved), so the run
//! fails — in CI via `SYMMAP_QUICK=1 cargo bench -p symmap-bench --bench
//! groebner_engine` — whenever the twisted cubic or the mapper's
//! side-relation ideal exceeds its fixed reduction budget.

use criterion::{criterion_group, criterion_main, Criterion};
use symmap_algebra::groebner::{buchberger, GroebnerOptions};
use symmap_algebra::poly::Poly;
use symmap_bench::budgets;
use symmap_core::decompose::{Mapper, MapperConfig};
use symmap_libchar::{Library, LibraryElement};

fn p(s: &str) -> Poly {
    Poly::parse(s).unwrap()
}

/// Ablation grid: engine configurations whose reduction counts get printed.
fn configurations() -> Vec<(&'static str, GroebnerOptions)> {
    vec![
        ("full", GroebnerOptions::default()),
        (
            "no-chain",
            GroebnerOptions {
                use_chain_criterion: false,
                ..Default::default()
            },
        ),
        (
            "no-coprime",
            GroebnerOptions {
                use_coprime_criterion: false,
                ..Default::default()
            },
        ),
        (
            "no-criteria",
            GroebnerOptions {
                use_coprime_criterion: false,
                use_chain_criterion: false,
                ..Default::default()
            },
        ),
        (
            "sugar",
            GroebnerOptions {
                use_sugar_tiebreak: true,
                ..Default::default()
            },
        ),
    ]
}

fn element(name: &str, symbol: &str, poly: &str, cycles: u64) -> LibraryElement {
    LibraryElement::builder(name, symbol)
        .polynomial(p(poly))
        .cycles(cycles)
        .energy_nj(cycles as f64)
        .accuracy(1e-9)
        .build()
        .unwrap()
}

fn bench(c: &mut Criterion) {
    let quick = std::env::var("SYMMAP_QUICK").is_ok();
    let ideals = budgets::budgeted_ideals();

    println!("\ngroebner engine — S-polynomial reduction counts");
    println!(
        "{:<24} {:<12} {:>6} {:>10} {:>8} {:>7} {:>6}",
        "ideal", "config", "basis", "reductions", "coprime", "chain", "done"
    );
    for ideal in &ideals {
        for (cfg_name, opts) in configurations() {
            let gb = buchberger(&ideal.generators, &ideal.order, &opts);
            println!(
                "{:<24} {cfg_name:<12} {:>6} {:>10} {:>8} {:>7} {:>6}",
                ideal.name,
                gb.polys().len(),
                gb.reductions,
                gb.skipped_coprime,
                gb.skipped_chain,
                gb.complete
            );
            assert!(
                gb.complete,
                "{}/{cfg_name} hit the iteration bound",
                ideal.name
            );
        }
    }

    // The deterministic regression guard (this is what CI quick mode is
    // for): the shared budget table from `symmap_bench::budgets`, also
    // asserted by the engine_batch bench.
    for (name, reductions, budget) in budgets::assert_groebner_budgets() {
        println!("reduction budget ok: {name} {reductions}/{budget}");
    }
    let elimination = budgets::assert_elimination_budget();
    println!(
        "elimination budget ok: twisted-cubic-eliminate-x {}/{}",
        elimination.reductions,
        budgets::ELIMINATION_TWISTED_CUBIC_BUDGET
    );

    // Mapper memoization: identical map_polynomial calls are answered from
    // the basis cache (misses stay flat after the first call).
    let mut lib = Library::new("bench");
    lib.push(element("sum", "s", "x + y", 3));
    lib.push(element("diff", "d", "x - y", 3));
    lib.push(element("prod", "q", "x*y", 5));
    lib.push(element("sq_x", "sx", "x^2", 4));
    let mapper = Mapper::new(&lib, MapperConfig::default());
    let target = p("x^4 - y^4 + x^2*y^2");
    mapper.map_polynomial(&target).unwrap();
    let (_, misses_cold) = mapper.cache_stats();
    mapper.map_polynomial(&target).unwrap();
    let (hits_warm, misses_warm) = mapper.cache_stats();
    println!(
        "mapper memoization: {misses_cold} bases computed cold, repeat run {} hits / {} new bases\n",
        hits_warm,
        misses_warm - misses_cold
    );
    assert_eq!(
        misses_warm, misses_cold,
        "a repeated mapping call recomputed a Gröbner basis"
    );

    if quick {
        // Quick mode still records a wall-clock point per ideal (median of
        // batches, appended to BENCH.json) so the perf trajectory accumulates
        // without a full Criterion run; the reduction count anchors each
        // entry since it is representation-independent and exact.
        use symmap_bench::quickbench;
        let mut entries = Vec::new();
        println!("groebner_engine — quick wall-clock (median of batches)");
        for ideal in &ideals {
            let gb = buchberger(&ideal.generators, &ideal.order, &GroebnerOptions::default());
            let wall_ns = quickbench::measure_ns(10, 9, || {
                criterion::black_box(buchberger(
                    &ideal.generators,
                    &ideal.order,
                    &GroebnerOptions::default(),
                ));
            });
            println!("groebner_engine/{:<24} {wall_ns:>12} ns/iter", ideal.name);
            entries.push(quickbench::entry(
                format!("groebner_engine/{}", ideal.name),
                wall_ns,
                Some(gb.reductions as u64),
            ));
        }
        quickbench::append_entries(&entries);
        println!(
            "recorded {} entries to {}\n",
            entries.len(),
            quickbench::bench_json_path().display()
        );
        return;
    }

    for ideal in &ideals {
        c.bench_function(&format!("groebner_engine/{}/full", ideal.name), |b| {
            b.iter(|| buchberger(&ideal.generators, &ideal.order, &GroebnerOptions::default()))
        });
        c.bench_function(
            &format!("groebner_engine/{}/no_criteria", ideal.name),
            |b| {
                b.iter(|| {
                    buchberger(
                        &ideal.generators,
                        &ideal.order,
                        &GroebnerOptions {
                            use_coprime_criterion: false,
                            use_chain_criterion: false,
                            ..Default::default()
                        },
                    )
                })
            },
        );
    }
    c.bench_function("groebner_engine/mapper_memoized", |b| {
        b.iter(|| mapper.map_polynomial(&target).unwrap())
    });
    c.bench_function("groebner_engine/mapper_cold_cache", |b| {
        b.iter(|| {
            Mapper::new(&lib, MapperConfig::default())
                .map_polynomial(&target)
                .unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
