//! Table 1 — execution time of the float/fixed/IPP SubBandSynthesis and IMDCT
//! library elements, characterized on the Badge4 model.

use criterion::{criterion_group, criterion_main, Criterion};
use symmap_core::report;
use symmap_libchar::catalog::{self, names};
use symmap_platform::machine::Badge4;

fn bench(c: &mut Criterion) {
    let badge = Badge4::new();
    c.bench_function("table1/characterize_full_catalog", |b| {
        b.iter(|| catalog::full_catalog(&badge))
    });
    c.bench_function("table1/render", |b| {
        b.iter(|| report::render_table1(&badge))
    });

    // Print the reproduced table once so the bench log carries the artifact.
    let table = report::render_table1(&badge);
    println!("\n{table}");
    let full = catalog::full_catalog(&badge);
    let ratio = |float: &str, other: &str| {
        full.element(float).unwrap().cycles() as f64 / full.element(other).unwrap().cycles() as f64
    };
    println!(
        "subband ratios (paper: 1 / 92 / 479): 1 / {:.0} / {:.0}",
        ratio(names::FLOAT_SUBBAND, names::FIXED_SUBBAND),
        ratio(names::FLOAT_SUBBAND, names::IPP_SUBBAND)
    );
    println!(
        "imdct ratios   (paper: 1 / 27 / 1898): 1 / {:.0} / {:.0}\n",
        ratio(names::FLOAT_IMDCT, names::FIXED_IMDCT),
        ratio(names::FLOAT_IMDCT, names::IPP_IMDCT)
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
