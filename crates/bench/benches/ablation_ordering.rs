//! Ablation — monomial-order sensitivity of the Gröbner/normal-form kernel
//! that powers simplification modulo side relations.

use criterion::{criterion_group, criterion_main, Criterion};
use symmap_algebra::groebner::groebner_basis;
use symmap_algebra::ordering::MonomialOrder;
use symmap_algebra::poly::Poly;

fn generators() -> Vec<Poly> {
    vec![
        Poly::parse("x^2 + y^2 + z^2 - 1").unwrap(),
        Poly::parse("x*y - z").unwrap(),
        Poly::parse("x - y + z^2").unwrap(),
    ]
}

fn bench(c: &mut Criterion) {
    let gens = generators();
    for (name, order) in [
        ("lex", MonomialOrder::lex(&["x", "y", "z"])),
        ("grlex", MonomialOrder::grlex(&["x", "y", "z"])),
        ("grevlex", MonomialOrder::grevlex(&["x", "y", "z"])),
    ] {
        c.bench_function(&format!("ablation/groebner_{name}"), |b| {
            b.iter(|| groebner_basis(&gens, &order))
        });
        let gb = groebner_basis(&gens, &order);
        println!(
            "order {name}: basis size {}, reductions {}, skipped {} coprime / {} chain",
            gb.polys().len(),
            gb.reductions,
            gb.skipped_coprime,
            gb.skipped_chain
        );
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
