//! §4/§5 — real-time headroom of the optimized decoder and the extra energy
//! saving available from frequency/voltage scaling.

use criterion::{criterion_group, criterion_main, Criterion};
use symmap_bench::{measure_version, QUICK_STREAM_FRAMES};
use symmap_core::report;
use symmap_platform::machine::Badge4;

fn bench(c: &mut Criterion) {
    let badge = Badge4::new();
    let version = measure_version("IH + IPP SubBand & IMDCT", &badge, QUICK_STREAM_FRAMES);
    c.bench_function("dvfs/energy_saving_sweep", |b| {
        b.iter(|| {
            badge.dvfs().energy_saving_factor(
                version.frame_profile.total_cycles(),
                symmap_mp3::types::frame_duration_s(),
            )
        })
    });
    println!(
        "\n{}",
        report::render_dvfs(&version, QUICK_STREAM_FRAMES, &badge)
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
