//! The modular-prefilter bench: exact ℚ Buchberger against the mod-p fast
//! path on a genuinely hard side-relation ideal — a dense quadratic
//! katsura-3 system with a fractional constant, under lex. This is the
//! regime the prefilter exists for: the exact run's rational coefficients
//! blow far past the small-fraction fast path (every elimination compounds
//! numerators and denominators), while the ℤ/p run keeps every coefficient
//! in one machine word.
//!
//! Small fractional ideals are deliberately NOT used here: symmap's
//! `Rational` has an inline `i64` fast path, so on the mapper's everyday
//! side relations the exact run is already cheap and the prefilter's win is
//! marginal. The prefilter pays off exactly when coefficient growth kicks
//! in — which is what this ideal forces.
//!
//! Besides timing, this bench is a regression guard on the prefilter's
//! reason to exist: the mod-p basis run must stay at least 5× faster than
//! the exact run on this ideal (asserted in quick mode, where the CI
//! perfgate also records both walls to BENCH.json).

use criterion::{criterion_group, criterion_main, Criterion};
use symmap_algebra::groebner::{buchberger, GroebnerOptions};
use symmap_algebra::modular::FpBasis;
use symmap_algebra::ordering::MonomialOrder;
use symmap_algebra::poly::Poly;
use symmap_numeric::PrimeIterator;

fn p(s: &str) -> Poly {
    Poly::parse(s).unwrap()
}

/// The hard ideal: katsura-3 (dense quadratic relations in four variables)
/// with a fractional constant in the linear relation, under pure lex — the
/// classic coefficient-growth trigger. Exact lex elimination on this system
/// produces rationals with hundreds of digits; mod p the same 46 reductions
/// run entirely in `u64` Montgomery arithmetic.
fn hard_ideal() -> (Vec<Poly>, MonomialOrder) {
    let gens = vec![
        p("u0 + 2*u1 + 2*u2 + 2*u3 - 1/3"),
        p("u0^2 + 2*u1^2 + 2*u2^2 + 2*u3^2 - u0"),
        p("2*u0*u1 + 2*u1*u2 + 2*u2*u3 - u1"),
        p("u1^2 + 2*u0*u2 + 2*u1*u3 - u2"),
    ];
    let order = MonomialOrder::lex(&["u0", "u1", "u2", "u3"]);
    (gens, order)
}

fn bench(c: &mut Criterion) {
    let quick = std::env::var("SYMMAP_QUICK").is_ok();
    let (gens, order) = hard_ideal();
    let options = GroebnerOptions::default();
    let prime = PrimeIterator::new().next().unwrap();

    // Both paths must complete, agree on the basis shape, and the prime must
    // be lucky — otherwise the timing comparison is meaningless.
    let exact = buchberger(&gens, &order, &options);
    assert!(exact.complete);
    let fp = FpBasis::with_prime(prime, &gens, &order, &options)
        .expect("seed prime unlucky for the katsura-3 ideal");
    assert!(fp.complete);
    let exact_lms: Vec<_> = exact
        .polys()
        .iter()
        .map(|g| g.leading_monomial(&order).unwrap())
        .collect();
    assert_eq!(fp.leading_monomials(), exact_lms);

    if quick {
        use symmap_bench::quickbench;
        // The exact run is ~half a second per iteration — sample it thinly;
        // the mod-p run is ~1 ms, so it affords the usual sampling.
        let exact_ns = quickbench::measure_ns(1, 3, || {
            criterion::black_box(buchberger(&gens, &order, &options));
        });
        let modp_ns = quickbench::measure_ns(10, 9, || {
            criterion::black_box(FpBasis::with_prime(prime, &gens, &order, &options).unwrap());
        });
        let ratio = exact_ns as f64 / modp_ns as f64;
        println!("modular_prefilter — katsura-3 lex, fractional constant");
        println!("modular_prefilter/katsura3-lex-exact-q {exact_ns:>12} ns/iter");
        println!("modular_prefilter/katsura3-lex-mod-p   {modp_ns:>12} ns/iter");
        println!("mod-p speedup: {ratio:.1}x (floor 5x)");
        assert!(
            ratio >= 5.0,
            "mod-p basis run only {ratio:.1}x faster than exact (floor is 5x)"
        );
        let entries = vec![
            quickbench::entry(
                "modular_prefilter/katsura3-lex-exact-q",
                exact_ns,
                Some(exact.reductions as u64),
            ),
            quickbench::entry(
                "modular_prefilter/katsura3-lex-mod-p",
                modp_ns,
                Some(fp.reductions as u64),
            ),
        ];
        quickbench::append_entries(&entries);
        println!(
            "recorded {} entries to {}\n",
            entries.len(),
            quickbench::bench_json_path().display()
        );
        return;
    }

    c.bench_function("modular_prefilter/katsura3-lex-exact-q", |b| {
        b.iter(|| buchberger(&gens, &order, &options))
    });
    c.bench_function("modular_prefilter/katsura3-lex-mod-p", |b| {
        b.iter(|| FpBasis::with_prime(prime, &gens, &order, &options).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
