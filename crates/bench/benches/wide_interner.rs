//! The wide-interner scaling bench: proof that algebra cost scales with
//! variables-per-ideal, not interner width.
//!
//! Packed monomials are dense by global interner index, so before the ring
//! layer a symbol interned after 4096 unrelated names forced every monomial
//! touching it to store and scan ~4096 exponent slots — the Gröbner wall
//! clock blew up proportionally to interner population (`DESIGN.md` §4's
//! documented limitation, now closed). This bench stages exactly that
//! profile:
//!
//! 1. **baseline** — the paper's twisted-cubic and mapper-side-relation
//!    ideals over freshly interned (low-index) variables;
//! 2. intern [`FILLER_SYMBOLS`] unused symbols;
//! 3. **wide** — α-equivalent copies of the same ideals over *late-interned*
//!    variables (global indices ≥ 4096), measured through the ring-local
//!    path ([`buchberger`]) and through the kept pre-ring global-coordinate
//!    path ([`buchberger_unringed`]).
//!
//! The gate: the ring-local wall clock on the wide ideals must stay within
//! [`RATIO_GATE`]× of the baseline — the computation is instruction-identical
//! after localization, so only the one-pass ring boundary may differ — while
//! the recorded pre-ring numbers document the proportional blowup the layer
//! removed. All three wall clocks land in `BENCH.json` per ideal.

use criterion::{criterion_group, criterion_main, Criterion};
use symmap_algebra::groebner::{buchberger, buchberger_unringed, GroebnerOptions};
use symmap_algebra::ordering::MonomialOrder;
use symmap_algebra::poly::Poly;
use symmap_algebra::var::{Var, VarSet};
use symmap_bench::quickbench;

/// Unused symbols interned between the baseline and wide phases.
const FILLER_SYMBOLS: usize = 4096;

/// Ring-local wall clock on the wide ideals may exceed the baseline by at
/// most this factor (the acceptance criterion's 1.2×), summed over the
/// benched workload. The only per-call cost the ring layer cannot remove is
/// the one-pass support scan of the wide *input* polynomials (they are
/// global `Poly` values — reading them is proportional to their storage), so
/// the smallest ideal sits nearer the gate than the larger ones; the
/// aggregate is the stable statistic. Per-ideal ratios are printed and
/// recorded either way.
const RATIO_GATE: f64 = 1.2;

/// One staged workload: name, generators, order, and the exact reduction
/// count it must reproduce (the shared budget table's canonical engine
/// counts — 5 for the twisted cubic, 7 for the mapper ideal).
struct StagedIdeal {
    name: &'static str,
    generators: Vec<Poly>,
    order: MonomialOrder,
    expected_reductions: usize,
}

/// Builds α-equivalent copies of the two hot ideals over `prefix`-named
/// variables, so each phase fully controls its variables' interner indices.
fn staged_ideals(prefix: &str) -> Vec<StagedIdeal> {
    let v = |s: &str| Var::new(&format!("{prefix}_{s}"));
    let pv = |s: &str| Poly::var(v(s));
    let (x, y, z) = (pv("x"), pv("y"), pv("z"));
    let cubic = StagedIdeal {
        name: "twisted-cubic",
        generators: vec![x.mul(&x).sub(&y), x.mul(&x).mul(&x).sub(&z)],
        order: MonomialOrder::Lex([v("x"), v("y"), v("z")].into_iter().collect::<VarSet>()),
        expected_reductions: 5,
    };
    let (s, d, q, sx) = (pv("s"), pv("d"), pv("q"), pv("sx"));
    let mapper = StagedIdeal {
        name: "mapper-side-relations",
        generators: vec![
            x.add(&y).sub(&s),
            x.sub(&y).sub(&d),
            x.mul(&y).sub(&q),
            x.mul(&x).sub(&sx),
        ],
        order: MonomialOrder::Lex(
            [v("x"), v("y"), v("s"), v("d"), v("q"), v("sx")]
                .into_iter()
                .collect::<VarSet>(),
        ),
        expected_reductions: 7,
    };
    vec![cubic, mapper]
}

fn ring_wall(ideal: &StagedIdeal, iters: u32, samples: usize) -> u128 {
    quickbench::measure_ns(iters, samples, || {
        criterion::black_box(buchberger(
            &ideal.generators,
            &ideal.order,
            &GroebnerOptions::default(),
        ));
    })
}

fn bench(c: &mut Criterion) {
    let quick = std::env::var("SYMMAP_QUICK").is_ok();

    // Phase 1: baseline over low-index variables (interned before anything
    // else this process touches).
    let narrow = staged_ideals("nar");
    // Phase 2: inflate the interner.
    for i in 0..FILLER_SYMBOLS {
        Var::new(&format!("wide_filler_{i:04}"));
    }
    // Phase 3: α-equivalent ideals over late-interned variables.
    let wide = staged_ideals("wid");
    let min_wide_index = wide[0].order.vars().iter().next().unwrap().index();
    assert!(
        min_wide_index as usize >= FILLER_SYMBOLS,
        "wide variables must be interned after the {FILLER_SYMBOLS} fillers \
         (got index {min_wide_index})"
    );

    // Correctness before timing: both phases reproduce the canonical engine
    // reduction counts and basis sizes — localization changed nothing.
    for (nar, wid) in narrow.iter().zip(&wide) {
        let opts = GroebnerOptions::default();
        let gb_nar = buchberger(&nar.generators, &nar.order, &opts);
        let gb_wid = buchberger(&wid.generators, &wid.order, &opts);
        let gb_pre = buchberger_unringed(&wid.generators, &wid.order, &opts);
        assert!(gb_nar.complete && gb_wid.complete && gb_pre.complete);
        for gb in [&gb_nar, &gb_wid, &gb_pre] {
            assert_eq!(gb.reductions, nar.expected_reductions, "{}", nar.name);
        }
        assert_eq!(gb_nar.polys().len(), gb_wid.polys().len());
        assert_eq!(
            gb_wid.polys(),
            gb_pre.polys(),
            "ring-local path diverged from the global-coordinate oracle"
        );
    }

    // Interleaved measurement (baseline/wide rounds alternate so ambient
    // noise hits both sides equally); the gate compares the per-side minima
    // of the round medians — the most noise-robust stable statistic here —
    // and re-measures once before failing, so only a *sustained* boundary
    // regression (not one noisy-neighbor episode on a shared runner) trips
    // the assert.
    let (iters, samples, rounds) = (20, 7, 5);
    struct Measured {
        name: &'static str,
        reductions: u64,
        base_ns: u128,
        ring_ns: u128,
        pre_ns: u128,
    }
    let measure_all = || -> Vec<Measured> {
        narrow
            .iter()
            .zip(&wide)
            .map(|(nar, wid)| {
                let mut base_ns = u128::MAX;
                let mut ring_ns = u128::MAX;
                for _ in 0..rounds {
                    base_ns = base_ns.min(ring_wall(nar, iters, samples));
                    ring_ns = ring_ns.min(ring_wall(wid, iters, samples));
                }
                // The pre-ring path pays the interner width on every monomial
                // op; a handful of iterations documents the blowup.
                let pre_ns = quickbench::measure_ns(2, 5, || {
                    criterion::black_box(buchberger_unringed(
                        &wid.generators,
                        &wid.order,
                        &GroebnerOptions::default(),
                    ));
                });
                Measured {
                    name: nar.name,
                    reductions: nar.expected_reductions as u64,
                    base_ns,
                    ring_ns,
                    pre_ns,
                }
            })
            .collect()
    };
    let aggregate_of = |measured: &[Measured]| -> f64 {
        let base: u128 = measured.iter().map(|m| m.base_ns).sum();
        let ring: u128 = measured.iter().map(|m| m.ring_ns).sum();
        ring as f64 / base.max(1) as f64
    };

    let mut measured = measure_all();
    let mut aggregate = aggregate_of(&measured);
    if aggregate > RATIO_GATE {
        println!(
            "aggregate {aggregate:.2}x exceeded the {RATIO_GATE}x gate on the first \
             attempt; re-measuring once to rule out ambient noise"
        );
        measured = measure_all();
        aggregate = aggregate_of(&measured);
    }

    println!("\nwide_interner — {FILLER_SYMBOLS} pre-interned symbols");
    println!(
        "{:<24} {:>14} {:>14} {:>8} {:>14}",
        "ideal", "baseline ns", "ring-local ns", "ratio", "pre-ring ns"
    );
    let mut entries = Vec::new();
    for m in &measured {
        let ratio = m.ring_ns as f64 / m.base_ns.max(1) as f64;
        println!(
            "{:<24} {:>14} {:>14} {ratio:>7.2}x {:>14}",
            m.name, m.base_ns, m.ring_ns, m.pre_ns
        );
        let reductions = Some(m.reductions);
        for (suffix, wall_ns) in [
            ("baseline", m.base_ns),
            ("ring-local", m.ring_ns),
            ("pre-ring", m.pre_ns),
        ] {
            entries.push(quickbench::entry(
                format!("wide_interner/{}/{suffix}", m.name),
                wall_ns,
                reductions,
            ));
        }
    }
    println!("aggregate ring-local/baseline ratio: {aggregate:.2}x (gate {RATIO_GATE}x)");
    assert!(
        aggregate <= RATIO_GATE,
        "ring-local Gröbner wall clock on late-interned variables is {aggregate:.2}x \
         the no-preinterned baseline across the workload (gate {RATIO_GATE}x) — \
         the ring boundary regressed"
    );

    if quick {
        quickbench::append_entries(&entries);
        println!(
            "recorded {} entries to {}\n",
            entries.len(),
            quickbench::bench_json_path().display()
        );
        return;
    }

    for ideal in narrow.iter().chain(&wide) {
        let label = if ideal.order.vars().iter().next().unwrap().index() as usize >= FILLER_SYMBOLS
        {
            "wide"
        } else {
            "baseline"
        };
        c.bench_function(&format!("wide_interner/{}/{label}", ideal.name), |b| {
            b.iter(|| buchberger(&ideal.generators, &ideal.order, &GroebnerOptions::default()))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
