//! Ablation — §3.2's claim that larger formulated polynomials (more loop
//! unrolling) improve the chance of matching a complex library element:
//! sweep the unroll depth of a dot-product kernel and map each result.

use criterion::{criterion_group, criterion_main, Criterion};
use symmap_core::decompose::{Mapper, MapperConfig};
use symmap_ir::ast::Function;
use symmap_ir::polyextract::extract_polynomial;
use symmap_libchar::{Library, LibraryElement};

fn kernel(taps: usize) -> Function {
    let params: Vec<String> = (0..taps)
        .flat_map(|k| vec![format!("c_{k}"), format!("y_{k}")])
        .collect();
    let source = format!(
        "dot({}) {{ acc = 0; for (k = 0; k < {taps}; k = k + 1) {{ acc = acc + c[k] * y[k]; }} return acc; }}",
        params.join(", ")
    );
    Function::parse(&source).expect("valid kernel")
}

fn library(taps: usize) -> Library {
    let mut lib = Library::new("dot-library");
    let terms: Vec<String> = (0..taps).map(|k| format!("c_{k}*y_{k}")).collect();
    lib.push(
        LibraryElement::builder("dot_full", "d")
            .polynomial(symmap_algebra::poly::Poly::parse(&terms.join(" + ")).unwrap())
            .cycles(3 * taps as u64)
            .accuracy(1e-9)
            .build()
            .unwrap(),
    );
    lib
}

fn bench(c: &mut Criterion) {
    for taps in [2_usize, 4, 8] {
        let f = kernel(taps);
        let lib = library(taps);
        let mapper = Mapper::new(&lib, MapperConfig::default());
        c.bench_function(&format!("ablation/unroll_{taps}_taps"), |b| {
            b.iter(|| {
                let poly = extract_polynomial(&f).unwrap();
                mapper.map_polynomial(&poly).unwrap()
            })
        });
        let poly = extract_polynomial(&f).unwrap();
        let solution = mapper.map_polynomial(&poly).unwrap();
        println!(
            "unroll depth {taps}: target terms {}, fully mapped: {}",
            poly.num_terms(),
            solution.is_complete()
        );
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
