//! Ablation — branch-and-bound cost pruning on vs. off.

use criterion::{criterion_group, criterion_main, Criterion};
use symmap_core::decompose::{Mapper, MapperConfig};
use symmap_libchar::catalog;
use symmap_mp3::imdct;
use symmap_platform::machine::Badge4;

fn bench(c: &mut Criterion) {
    let badge = Badge4::new();
    let library = catalog::full_catalog(&badge);
    let target = imdct::imdct_polynomial(0, 36);
    let bounded = Mapper::new(&library, MapperConfig::default());
    let unbounded = Mapper::new(
        &library,
        MapperConfig {
            use_bounding: false,
            ..MapperConfig::default()
        },
    );
    c.bench_function("ablation/bounding_on", |b| {
        b.iter(|| bounded.map_polynomial(&target).unwrap())
    });
    c.bench_function("ablation/bounding_off", |b| {
        b.iter(|| unbounded.map_polynomial(&target).unwrap())
    });
    let on = bounded.map_polynomial(&target).unwrap();
    let off = unbounded.map_polynomial(&target).unwrap();
    println!(
        "\nbounding ablation: nodes explored {} (bounded) vs {} (unbounded); same cost: {}\n",
        on.nodes_explored,
        off.nodes_explored,
        on.cost.cycles == off.cost.cycles
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
