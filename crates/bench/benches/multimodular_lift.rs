//! The multi-modular lift bench: the exact ℚ Buchberger run against the
//! full verified lift (mod-p images → CRT → rational reconstruction →
//! ℚ-verification) on the katsura-3 coefficient-growth ideal from the
//! `modular_prefilter` bench.
//!
//! Unlike the prefilter bench — which times a *bare* mod-p basis run and is
//! only an advisory speed ceiling — this one times the whole primary
//! compute path the cache now routes through when
//! `GroebnerOptions::multimodular` is set, verification included, and
//! asserts its output byte-identical to the exact engine's. The regression
//! guard is the lift's reason to exist: at least 5× faster than exact on
//! this ideal (asserted in quick mode, where the CI perfgate also records
//! the walls and the prime count to BENCH.json).

use criterion::{criterion_group, criterion_main, Criterion};
use symmap_algebra::groebner::{buchberger, GroebnerOptions};
use symmap_algebra::multimodular::multimodular_basis;
use symmap_algebra::ordering::MonomialOrder;
use symmap_algebra::poly::Poly;

fn p(s: &str) -> Poly {
    Poly::parse(s).unwrap()
}

/// The katsura-3 hard ideal (see `modular_prefilter.rs` for why): dense
/// quadratics with a fractional constant under pure lex, the classic
/// rational-coefficient-growth trigger the lift is built to bypass.
fn hard_ideal() -> (Vec<Poly>, MonomialOrder) {
    let gens = vec![
        p("u0 + 2*u1 + 2*u2 + 2*u3 - 1/3"),
        p("u0^2 + 2*u1^2 + 2*u2^2 + 2*u3^2 - u0"),
        p("2*u0*u1 + 2*u1*u2 + 2*u2*u3 - u1"),
        p("u1^2 + 2*u0*u2 + 2*u1*u3 - u2"),
    ];
    let order = MonomialOrder::lex(&["u0", "u1", "u2", "u3"]);
    (gens, order)
}

fn bench(c: &mut Criterion) {
    let quick = std::env::var("SYMMAP_QUICK").is_ok();
    let (gens, order) = hard_ideal();
    // Pin the flag off so the "exact" side is the exact engine even when the
    // environment routes defaults through the lift.
    let options = GroebnerOptions {
        multimodular: false,
        ..GroebnerOptions::default()
    };

    // The lift must succeed and be byte-identical — otherwise the timing
    // comparison is between different computations.
    let exact = buchberger(&gens, &order, &options);
    assert!(exact.complete);
    let outcome = multimodular_basis(&gens, &order, &options);
    let lifted = outcome
        .basis
        .as_ref()
        .expect("lift fell back to exact on the katsura-3 ideal");
    assert_eq!(
        format!("{:?}", lifted.polys),
        format!("{:?}", exact.polys()),
        "lifted basis differs from exact"
    );
    assert_eq!(lifted.reductions, exact.reductions);
    let primes_used = outcome.primes_used;

    if quick {
        use symmap_bench::quickbench;
        // The exact run is ~half a second per iteration — sample it thinly;
        // the lift is a few ms and affords the usual sampling.
        let exact_ns = quickbench::measure_ns(1, 3, || {
            criterion::black_box(buchberger(&gens, &order, &options));
        });
        let lift_ns = quickbench::measure_ns(5, 9, || {
            criterion::black_box(multimodular_basis(&gens, &order, &options));
        });
        let ratio = exact_ns as f64 / lift_ns as f64;
        println!("multimodular_lift — katsura-3 lex, fractional constant");
        println!("multimodular_lift/katsura3-lex-exact-q  {exact_ns:>12} ns/iter");
        println!("multimodular_lift/katsura3-lex-lifted   {lift_ns:>12} ns/iter");
        println!("verified lift speedup: {ratio:.1}x (floor 5x), {primes_used} prime image(s)");
        assert!(
            ratio >= 5.0,
            "verified lift only {ratio:.1}x faster than exact (floor is 5x)"
        );
        let entries = vec![
            quickbench::entry(
                "multimodular_lift/katsura3-lex-exact-q",
                exact_ns,
                Some(exact.reductions as u64),
            ),
            quickbench::entry(
                "multimodular_lift/katsura3-lex-lifted",
                lift_ns,
                Some(lifted.reductions as u64),
            ),
            // The prime count rides along as a wall-less trajectory marker:
            // a jump here means the reconstruction started needing more
            // images (coefficient growth, unlucky primes, a vote change).
            quickbench::entry(
                "multimodular_lift/katsura3-lex-primes-used",
                primes_used as u128,
                None,
            ),
        ];
        quickbench::append_entries(&entries);
        println!(
            "recorded {} entries to {}\n",
            entries.len(),
            quickbench::bench_json_path().display()
        );
        return;
    }

    c.bench_function("multimodular_lift/katsura3-lex-exact-q", |b| {
        b.iter(|| buchberger(&gens, &order, &options))
    });
    c.bench_function("multimodular_lift/katsura3-lex-lifted", |b| {
        b.iter(|| multimodular_basis(&gens, &order, &options))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
