//! The thousand-element-library bench: the fingerprint index against the
//! legacy full-library candidate scan on synthetic α-renamed catalogs of
//! ≈256 and ≈1024 elements (`symmap_libchar::synthetic`).
//!
//! The paper maps an 11-kernel decoder against a few dozen library elements,
//! where a linear scan is free. This bench is the scaling story beyond the
//! paper: when the library aggregates many subsystems' catalogs, the
//! per-element scan pays `Poly::vars()` (a sort plus a set build) for every
//! element on every mapping call, while the index answers the same question
//! with one mask test per support-homogeneous shard. Both paths return the
//! same candidates in the same order, so the mapped solutions are
//! byte-identical — asserted here before anything is timed.
//!
//! Quick mode (`SYMMAP_QUICK=1`) additionally enforces the regression floor
//! (index ≥ 5× faster than the legacy scan at ≈1024 elements), appends the
//! measured walls to `BENCH.json`, and writes the prune-rate metrics JSON
//! that CI uploads as an artifact (`target/trace/prune_metrics.json`).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use symmap_algebra::fingerprint::PolyFingerprint;
use symmap_algebra::poly::Poly;
use symmap_bench::mp3_kernel_jobs;
use symmap_engine::{EngineConfig, MapJob, MapperConfig, MappingEngine};
use symmap_libchar::synthetic::synthetic_large_library;
use symmap_libchar::{Library, LibraryElement};
use symmap_platform::machine::Badge4;

/// The two library scales: ≈256 and ≈1024 elements (the 22-element MP3
/// catalog replicated onto 11 and 46 disjoint variable pools).
const SCALES: [(&str, usize); 2] = [("256", 11), ("1024", 46)];

fn config(index: bool) -> MapperConfig {
    MapperConfig {
        use_fingerprint_index: index,
        ..MapperConfig::default()
    }
}

/// The legacy candidate scan, verbatim from the mapper's ablation path:
/// support-intersection via `Poly::vars()` over every element, per call.
fn legacy_scan<'a>(library: &'a Library, target: &Poly) -> Vec<&'a LibraryElement> {
    let tvars = target.vars();
    library
        .iter()
        .filter(|e| e.polynomial().vars().iter().any(|v| tvars.contains(v)))
        .collect()
}

/// Runs the full 11-kernel batch with the index on and off and asserts the
/// outcomes are byte-identical. Returns `(rejected, kept, shards_skipped)`
/// from the index-on run for the prune-metrics artifact.
fn assert_identical_solutions(library: &Arc<Library>) -> (usize, usize, usize) {
    let run = |index: bool| {
        let jobs: Vec<MapJob> = mp3_kernel_jobs(library, &config(index));
        MappingEngine::new(EngineConfig::default()).run(&jobs)
    };
    let on = run(true);
    let off = run(false);
    assert_eq!(
        format!("{:?}", on.outcomes),
        format!("{:?}", off.outcomes),
        "fingerprint index changed the mapped solutions"
    );
    assert!(on.stats.index_kept > 0, "the index kept no candidates");
    assert!(
        on.stats.index_rejected > on.stats.index_kept,
        "a redundant synthetic library should prune more than it keeps"
    );
    (
        on.stats.index_rejected,
        on.stats.index_kept,
        on.stats.index_shards_skipped,
    )
}

/// Writes the prune-rate metrics JSON CI uploads as an artifact. The path
/// is anchored at the workspace root (bench processes run with the package
/// directory as CWD, so a relative path would land under `crates/bench/`).
fn write_prune_metrics(rows: &[(String, usize, usize, usize, usize)]) {
    let root = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("bench crate lives two levels below the workspace root")
        .to_path_buf();
    let dir = root.join("target/trace");
    let dir = dir.as_path();
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("large_library: cannot create {}: {e}", dir.display());
        return;
    }
    let mut json = String::from("{\n  \"schema\": 1,\n  \"libraries\": [\n");
    for (i, (label, elements, rejected, kept, shards_skipped)) in rows.iter().enumerate() {
        let rate = *rejected as f64 / (rejected + kept).max(1) as f64;
        json.push_str(&format!(
            "    {{\"library\": \"{label}\", \"elements\": {elements}, \
             \"rejected\": {rejected}, \"kept\": {kept}, \
             \"shards_skipped\": {shards_skipped}, \"prune_rate\": {rate:.4}}}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = dir.join("prune_metrics.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!("wrote prune metrics to {}", path.display()),
        Err(e) => eprintln!("large_library: cannot write {}: {e}", path.display()),
    }
}

fn bench(c: &mut Criterion) {
    let quick = std::env::var("SYMMAP_QUICK").is_ok();
    let badge = Badge4::new();

    if quick {
        use symmap_bench::quickbench;
        let mut entries = Vec::new();
        let mut prune_rows = Vec::new();
        for (label, groups) in SCALES {
            let library = Arc::new(synthetic_large_library(&badge, groups));
            let (rejected, kept, shards_skipped) = assert_identical_solutions(&library);
            prune_rows.push((
                label.to_string(),
                library.len(),
                rejected,
                kept,
                shards_skipped,
            ));

            let targets: Vec<Poly> = mp3_kernel_jobs(&library, &config(true))
                .into_iter()
                .map(|j| j.target)
                .collect();
            let fps: Vec<PolyFingerprint> = targets.iter().map(PolyFingerprint::of).collect();
            // Warm steady state: the candidate scan runs once per mapping
            // call, so one iteration sweeps all 11 kernels.
            let index_ns = quickbench::measure_ns(20, 9, || {
                for fp in &fps {
                    criterion::black_box(library.candidates(fp));
                }
            });
            // The legacy scan runs hundreds of ms per sweep at the large
            // scale — sample it thinly (the gap to the index is orders of
            // magnitude, so sampling noise cannot flip the verdict).
            let legacy_ns = quickbench::measure_ns(1, 3, || {
                for t in &targets {
                    criterion::black_box(legacy_scan(&library, t));
                }
            });
            let ratio = legacy_ns as f64 / index_ns as f64;
            println!(
                "large_library — {} elements ({} shards): index {index_ns} ns, \
                 legacy {legacy_ns} ns, speedup {ratio:.1}x",
                library.len(),
                library.shards().len(),
            );
            println!(
                "  prune: {rejected} rejected / {kept} kept, {shards_skipped} shards skipped whole"
            );
            if label == "1024" {
                assert!(
                    ratio >= 5.0,
                    "index only {ratio:.1}x faster than the legacy scan at \
                     ≈1024 elements (floor is 5x)"
                );
            }
            entries.push(quickbench::entry(
                format!("large_library/scan-{label}-index"),
                index_ns,
                None,
            ));
            entries.push(quickbench::entry(
                format!("large_library/scan-{label}-legacy"),
                legacy_ns,
                None,
            ));
        }
        quickbench::append_entries(&entries);
        write_prune_metrics(&prune_rows);
        println!(
            "recorded {} entries to {}\n",
            entries.len(),
            quickbench::bench_json_path().display()
        );
        return;
    }

    for (label, groups) in SCALES {
        let library = Arc::new(synthetic_large_library(&badge, groups));
        assert_identical_solutions(&library);
        let targets: Vec<Poly> = mp3_kernel_jobs(&library, &config(true))
            .into_iter()
            .map(|j| j.target)
            .collect();
        let fps: Vec<PolyFingerprint> = targets.iter().map(PolyFingerprint::of).collect();
        c.bench_function(&format!("large_library/scan-{label}-index"), |b| {
            b.iter(|| {
                for fp in &fps {
                    criterion::black_box(library.candidates(fp));
                }
            })
        });
        c.bench_function(&format!("large_library/scan-{label}-legacy"), |b| {
            b.iter(|| {
                for t in &targets {
                    criterion::black_box(legacy_scan(&library, t));
                }
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
