//! Table 3. Original MP3 Profile

use criterion::{criterion_group, criterion_main, Criterion};
use symmap_bench::{measure_version, QUICK_STREAM_FRAMES};
use symmap_core::report;
use symmap_platform::machine::Badge4;

fn bench(c: &mut Criterion) {
    let badge = Badge4::new();
    c.bench_function("table3_original_profile/measure", |b| {
        b.iter(|| measure_version("Original", &badge, QUICK_STREAM_FRAMES))
    });
    let version = measure_version("Original", &badge, QUICK_STREAM_FRAMES);
    println!(
        "\n{}",
        report::render_profile("Table 3. Original MP3 Profile", &version)
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
