//! Raw polynomial-arithmetic bench: the substrate underneath the Gröbner
//! engine (monomial-keyed term storage, rational coefficients, merge-based
//! add/sub, multiplication, multi-divisor reduction).
//!
//! The `groebner_engine` bench measures the *algorithm* (pair selection,
//! criteria, memoization); this one measures the *representation* the
//! algorithm runs on, so a data-layout change shows up here first. In
//! `SYMMAP_QUICK=1` mode every workload is timed with the in-tree
//! median-of-batches sampler and appended to `BENCH.json` (see
//! [`symmap_bench::quickbench`]); without the env var the same workloads run
//! under Criterion.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use symmap_algebra::division::normal_form;
use symmap_algebra::ordering::MonomialOrder;
use symmap_algebra::poly::Poly;
use symmap_bench::quickbench;

fn p(s: &str) -> Poly {
    Poly::parse(s).unwrap()
}

/// Two dense trivariate polynomials with 56 terms each (degree-5 expansions),
/// the "wide addition" workload.
fn add_operands() -> (Poly, Poly) {
    (p("(x + y + z + 1)^5"), p("(x - y + 2*z + 1)^5"))
}

/// Two 20-term operands whose product expands 400 term pairs.
fn mul_operands() -> (Poly, Poly) {
    (p("(x + y + z + 1)^3"), p("(2*x - y + z - 1)^3"))
}

/// A degree-6 dividend over a three-element divisor set under grlex — the
/// shape of a `prepared_normal_form` call inside Buchberger.
fn reduction_workload() -> (Poly, Vec<Poly>, MonomialOrder) {
    (
        p("(x + y + z + 1)^6"),
        vec![p("x^2 - y"), p("x*y - z"), p("z^2 - x")],
        MonomialOrder::grlex(&["x", "y", "z"]),
    )
}

/// Coefficient-growth workload: repeated squaring with non-integer rationals,
/// which exercises the coefficient arithmetic more than the term bookkeeping.
fn coeff_workload() -> Poly {
    p("(x/2 + 3*y/7 - 5/3)^4")
}

/// A named benchmark closure.
type Workload = (&'static str, Box<dyn FnMut()>);

fn workloads() -> Vec<Workload> {
    let (a1, a2) = add_operands();
    let (m1, m2) = mul_operands();
    let (f, divisors, order) = reduction_workload();
    let c = coeff_workload();
    vec![
        (
            "poly_arith/add",
            Box::new(move || {
                black_box(a1.add(&a2));
            }),
        ),
        (
            "poly_arith/mul",
            Box::new(move || {
                black_box(m1.mul(&m2));
            }),
        ),
        (
            "poly_arith/normal_form",
            Box::new(move || {
                black_box(normal_form(&f, &divisors, &order));
            }),
        ),
        (
            "poly_arith/coeff_mul",
            Box::new(move || {
                black_box(c.mul(&c));
            }),
        ),
    ]
}

fn bench(criterion: &mut Criterion) {
    let quick = std::env::var("SYMMAP_QUICK").is_ok();
    if quick {
        let mut entries = Vec::new();
        println!("\npoly_arith — quick wall-clock (median of batches)");
        for (name, mut f) in workloads() {
            let wall_ns = quickbench::measure_ns(20, 9, &mut *f);
            println!("{name:<28} {wall_ns:>12} ns/iter");
            entries.push(quickbench::entry(name, wall_ns, None));
        }
        quickbench::append_entries(&entries);
        println!(
            "recorded {} entries to {}\n",
            entries.len(),
            quickbench::bench_json_path().display()
        );
        return;
    }
    for (name, mut f) in workloads() {
        criterion.bench_function(name, move |b| b.iter(&mut *f));
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
