//! The batch-engine bench: the full 11-kernel MP3 mapping batch at 1 and N
//! workers, with byte-identical-output verification and the shared budget
//! table as the deterministic regression guard.
//!
//! Wall-clock speedup is hardware-dependent (it needs real cores), so the
//! `workers = N ≥ 2×` acceptance assertion only fires when the runner
//! actually has ≥ 4 hardware threads; the determinism assertion — identical
//! `MappingSolution`s at every worker count — fires everywhere, every run.
//! In `SYMMAP_QUICK=1` mode both wall clocks, the speedup and the shared
//! cache's batch counters are appended to `BENCH.json`.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use symmap_bench::{budgets, mp3_kernel_jobs};
use symmap_engine::{BatchResult, EngineConfig, MapperConfig, MappingEngine};
use symmap_libchar::catalog;
use symmap_platform::machine::Badge4;

/// Worker count for the parallel measurement (the acceptance criterion's
/// "N"): 4, or `SYMMAP_TEST_WORKERS` when set.
fn parallel_workers() -> usize {
    EngineConfig::default().workers.max(4)
}

fn engine(workers: usize) -> MappingEngine {
    MappingEngine::new(EngineConfig {
        workers,
        ..EngineConfig::default()
    })
}

/// Runs the batch on a fresh engine (cold cache) so both worker counts do
/// the same basis work and the comparison measures scheduling, not warmup.
fn run_cold(jobs: &[symmap_engine::MapJob], workers: usize) -> BatchResult {
    engine(workers).run(jobs)
}

fn bench(c: &mut Criterion) {
    let quick = std::env::var("SYMMAP_QUICK").is_ok();
    let badge = Badge4::new();
    let library = Arc::new(catalog::full_catalog(&badge));
    let jobs = mp3_kernel_jobs(&library, &MapperConfig::default());
    assert_eq!(jobs.len(), 11, "the MP3 kernel batch is 11 jobs");
    let n = parallel_workers();

    // Deterministic guards first: identical solutions at every worker count,
    // and the shared reduction-budget table (also asserted by the
    // groebner_engine bench — same table, one definition).
    let sequential = run_cold(&jobs, 1);
    for workers in [2, n] {
        let parallel = run_cold(&jobs, workers);
        assert_eq!(
            format!("{:?}", parallel.outcomes),
            format!("{:?}", sequential.outcomes),
            "solutions diverged at {workers} workers"
        );
    }
    for (name, reductions, budget) in budgets::assert_groebner_budgets() {
        println!("engine_batch budget ok: {name} {reductions}/{budget}");
    }
    budgets::assert_elimination_budget();
    println!(
        "engine_batch: 11-kernel batch maps {} kernels ({} cache misses cold)",
        sequential.outcomes.iter().filter(|o| o.is_ok()).count(),
        sequential.stats.cache_misses()
    );

    // Wall-clock: median of batches at workers = 1 and workers = N, cold
    // cache each iteration so every run does the full basis workload.
    let samples = if quick { 5 } else { 9 };
    let wall_1 = symmap_bench::quickbench::measure_ns(2, samples, || {
        criterion::black_box(run_cold(&jobs, 1));
    });
    let wall_n = symmap_bench::quickbench::measure_ns(2, samples, || {
        criterion::black_box(run_cold(&jobs, n));
    });
    let speedup = wall_1 as f64 / wall_n.max(1) as f64;
    let hardware = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    println!(
        "engine_batch: workers=1 {wall_1} ns, workers={n} {wall_n} ns, \
         speedup {speedup:.2}x on {hardware} hardware threads"
    );
    if hardware >= 4 {
        assert!(
            speedup >= 2.0,
            "11-kernel batch at {n} workers must be ≥ 2x faster than sequential \
             on a ≥ 4-core runner (got {speedup:.2}x)"
        );
    }

    if quick {
        use symmap_bench::quickbench;
        let note = quickbench::run_note();
        let stats = &sequential.stats;
        // hw_threads is a structured entry field now; the note keeps only
        // what the schema cannot carry (speedup, worker count, cache deltas).
        let cache_note = format!(
            "speedup {speedup:.2}x @{n}w; cold cache {}h/{}m/{}e/{}a",
            stats.cache_hits(),
            stats.cache_misses(),
            stats.cache_evictions(),
            stats.cache_alpha_hits(),
        );
        let full_note = if note.is_empty() {
            cache_note
        } else {
            format!("{note}; {cache_note}")
        };
        quickbench::append_entries(&[
            quickbench::QuickEntry {
                note: full_note.clone(),
                ..quickbench::entry("engine_batch/mp3-11-kernels/workers-1", wall_1, None)
            },
            quickbench::QuickEntry {
                note: full_note,
                ..quickbench::entry(
                    format!("engine_batch/mp3-11-kernels/workers-{n}"),
                    wall_n,
                    None,
                )
            },
        ]);
        println!(
            "recorded engine_batch entries to {}",
            quickbench::bench_json_path().display()
        );
        return;
    }

    c.bench_function("engine_batch/mp3-11-kernels/workers-1", |b| {
        b.iter(|| run_cold(&jobs, 1))
    });
    c.bench_function(&format!("engine_batch/mp3-11-kernels/workers-{n}"), |b| {
        b.iter(|| run_cold(&jobs, n))
    });
    c.bench_function("engine_batch/mp3-11-kernels/warm-cache", |b| {
        let warm = engine(n);
        warm.run(&jobs);
        b.iter(|| warm.run(&jobs))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
