//! The fingerprint index is a pure pruning layer: switching it on or off,
//! and running the batch on 1 or 4 workers, must render byte-identical
//! outcomes — on the paper's 11-kernel MP3 batch and on the synthetic
//! thousand-element-regime library the index was built for. With the index
//! on, the prune counters must actually move (the fast path is exercised,
//! not silently skipped).

use std::sync::Arc;

use symmap_bench::mp3_kernel_jobs;
use symmap_engine::{EngineConfig, MapJob, MapperConfig, MappingEngine};
use symmap_libchar::catalog;
use symmap_libchar::synthetic::synthetic_large_library;
use symmap_libchar::Library;
use symmap_platform::machine::Badge4;

fn engine(workers: usize) -> MappingEngine {
    MappingEngine::new(EngineConfig {
        workers,
        ..EngineConfig::default()
    })
}

fn config(index: bool) -> MapperConfig {
    MapperConfig {
        use_fingerprint_index: index,
        ..MapperConfig::default()
    }
}

/// Runs `jobs(config)` across the {index on, off} × {1, 4 workers} matrix
/// and asserts all four renders are byte-identical. Returns the prune stats
/// `(rejected, kept, shards_skipped)` of the index-on run for the caller's
/// visibility assertions.
fn assert_index_invisible(jobs: impl Fn(&MapperConfig) -> Vec<MapJob>) -> (usize, usize, usize) {
    let mut renders = Vec::new();
    let mut prune = (0, 0, 0);
    for index in [true, false] {
        for workers in [1, 4] {
            let result = engine(workers).run(&jobs(&config(index)));
            if index {
                prune = (
                    result.stats.index_rejected,
                    result.stats.index_kept,
                    result.stats.index_shards_skipped,
                );
            } else {
                assert_eq!(
                    result.stats.index_rejected + result.stats.index_kept,
                    0,
                    "index counters moved with the index off"
                );
            }
            renders.push(format!("{:?}", result.outcomes));
        }
    }
    assert!(
        renders.iter().all(|r| r == &renders[0]),
        "mapping output depends on the fingerprint index or worker count"
    );
    prune
}

#[test]
fn mp3_batch_is_byte_identical_with_the_index_on_or_off() {
    let badge = Badge4::new();
    let library = Arc::new(catalog::full_catalog(&badge));
    let (rejected, kept, _) = assert_index_invisible(|config| mp3_kernel_jobs(&library, config));
    assert!(kept > 0, "the index kept no candidates on the MP3 batch");
    // The MP3 catalog is support-diverse enough that the scan prunes
    // something for at least one kernel.
    assert!(rejected > 0, "the index pruned nothing on the MP3 batch");
}

#[test]
fn synthetic_large_library_batch_is_byte_identical_with_the_index_on_or_off() {
    let badge = Badge4::new();
    // 8 α-renamed catalog copies ≈ 230 elements: the thousand-element shape
    // at a test-friendly size. The MP3 kernels only touch the base group, so
    // every copy's shards are skippable.
    let library: Arc<Library> = Arc::new(synthetic_large_library(&badge, 8));
    let (rejected, kept, shards_skipped) =
        assert_index_invisible(|config| mp3_kernel_jobs(&library, config));
    assert!(
        kept > 0,
        "the index kept no candidates on the synthetic batch"
    );
    assert!(
        rejected > kept,
        "a 9×-redundant library should prune more than it keeps \
         (rejected {rejected}, kept {kept})"
    );
    assert!(
        shards_skipped > 0,
        "disjoint-support groups should be skipped at shard granularity"
    );
}
