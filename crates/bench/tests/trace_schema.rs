//! Schema pin for the canonical observability artifact: the 11-kernel MP3
//! batch, traced, must export chrome://tracing trace-event JSON that parses,
//! balances, and carries the shapes Perfetto relies on — plus a parseable
//! metrics JSON snapshot. This is the test the `trace_export` binary (whose
//! output CI uploads) leans on: the binary validates with the same function
//! this test pins.

use std::sync::Arc;

use symmap_bench::mp3_kernel_jobs;
use symmap_engine::{EngineConfig, MapperConfig, MappingEngine};
use symmap_libchar::catalog;
use symmap_platform::machine::Badge4;
use symmap_trace::{parse_json, to_chrome_json, validate_chrome_trace, JsonValue};

#[test]
fn mp3_batch_chrome_trace_is_schema_valid() {
    let badge = Badge4::new();
    let library = Arc::new(catalog::full_catalog(&badge));
    let jobs = mp3_kernel_jobs(&library, &MapperConfig::default());
    let engine = MappingEngine::new(EngineConfig {
        trace: true,
        ..EngineConfig::default()
    });
    let result = engine.run(&jobs);
    let trace = result.trace.expect("tracing was enabled");
    assert_eq!(trace.jobs.len(), 11);

    let chrome = to_chrome_json(&trace);
    let events = validate_chrome_trace(&chrome)
        .unwrap_or_else(|e| panic!("MP3 batch chrome trace failed validation: {e}"));
    assert!(events > 0);

    // Pin the trace-event shapes downstream viewers depend on: the document
    // is an object with a traceEvents array whose entries carry name/ph/pid/
    // tid/ts, process-name metadata rows exist for all three tracks, and
    // every job of the batch contributes a complete span pair.
    let doc = parse_json(&chrome).expect("chrome trace parses");
    let rows = doc["traceEvents"].as_array().expect("traceEvents array");
    for row in rows {
        // Metadata rows (`ph: "M"`) name their track and carry no timestamp;
        // every real event row must have one.
        let fields: &[&str] = if row["ph"].as_str() == Some("M") {
            &["name", "ph", "pid", "tid"]
        } else {
            &["name", "ph", "pid", "tid", "ts"]
        };
        for field in fields {
            assert!(
                !matches!(row[*field], JsonValue::Null),
                "trace event missing {field}: {row:?}"
            );
        }
    }
    let process_names: Vec<&str> = rows
        .iter()
        .filter(|r| r["name"].as_str() == Some("process_name"))
        .filter_map(|r| r["args"]["name"].as_str())
        .collect();
    for track in ["jobs", "computes", "sched"] {
        assert!(
            process_names.contains(&track),
            "missing process_name metadata for the {track} track"
        );
    }
    let job_begins = rows
        .iter()
        .filter(|r| r["name"].as_str() == Some("job") && r["ph"].as_str() == Some("B"))
        .count();
    assert_eq!(job_begins, 11, "one job span per MP3 kernel");

    // The metrics snapshot is valid JSON with the three metric families.
    let metrics = result.stats.metrics.to_json();
    let doc = parse_json(&metrics)
        .unwrap_or_else(|e| panic!("metrics snapshot is not valid JSON: {e}\n{metrics}"));
    for family in ["counters", "gauges", "histograms"] {
        assert!(
            doc[family].as_object().is_some(),
            "metrics snapshot missing the {family} object"
        );
    }
    assert!(
        result.stats.metrics.counter("groebner.basis_computations") > 0
            || result
                .stats
                .metrics
                .counters
                .keys()
                .any(|k| k.starts_with("cache.")),
        "the batch recorded cache/groebner activity"
    );
}
