//! Differential proof of the ring-local coordinate layer: on every budgeted
//! workload — and on late-interned (wide-index) copies of them — the
//! ring-local Gröbner path must produce reduced bases **byte-identical** to
//! the pre-ring global-coordinate path (`buchberger_unringed`), with
//! identical reduction counts, criterion skips and completion flags. The
//! reduced Gröbner basis is a canonical object, so any divergence is a ring
//! bug, never a matter of taste.

use symmap_algebra::groebner::{buchberger, buchberger_unringed, GroebnerOptions};
use symmap_algebra::ordering::MonomialOrder;
use symmap_algebra::poly::Poly;
use symmap_algebra::ring::Ring;
use symmap_algebra::var::{Var, VarSet};
use symmap_bench::budgets;

/// Every criterion/tiebreak combination.
fn option_grid() -> Vec<GroebnerOptions> {
    let mut combos = Vec::new();
    for coprime in [true, false] {
        for chain in [true, false] {
            for sugar in [true, false] {
                combos.push(GroebnerOptions {
                    use_coprime_criterion: coprime,
                    use_chain_criterion: chain,
                    use_sugar_tiebreak: sugar,
                    ..Default::default()
                });
            }
        }
    }
    combos
}

fn assert_identical(generators: &[Poly], order: &MonomialOrder, label: &str) {
    for opts in option_grid() {
        let ringed = buchberger(generators, order, &opts);
        let unringed = buchberger_unringed(generators, order, &opts);
        assert_eq!(
            ringed.polys(),
            unringed.polys(),
            "{label}: reduced bases diverged under {opts:?}"
        );
        assert_eq!(ringed.reductions, unringed.reductions, "{label}");
        assert_eq!(ringed.skipped_coprime, unringed.skipped_coprime, "{label}");
        assert_eq!(ringed.skipped_chain, unringed.skipped_chain, "{label}");
        assert_eq!(ringed.complete, unringed.complete, "{label}");
    }
}

#[test]
fn ring_local_bases_are_byte_identical_on_all_budget_ideals() {
    for ideal in budgets::budgeted_ideals() {
        assert_identical(&ideal.generators, &ideal.order, ideal.name);
    }
}

#[test]
fn ring_local_reduce_matches_global_reduce_on_budget_ideals() {
    for ideal in budgets::budgeted_ideals() {
        let gb = buchberger(&ideal.generators, &ideal.order, &GroebnerOptions::default());
        let oracle =
            buchberger_unringed(&ideal.generators, &ideal.order, &GroebnerOptions::default());
        // Reduce each generator (must vanish) and a few perturbed probes.
        for g in &ideal.generators {
            assert!(gb.reduce(g).is_zero(), "{}: generator escaped", ideal.name);
            let probe = g.mul(g).add(&Poly::integer(1));
            assert_eq!(gb.reduce(&probe), oracle.reduce(&probe), "{}", ideal.name);
        }
    }
}

#[test]
fn elimination_runs_ring_locally_and_matches_budget() {
    // `eliminate` goes through the ring-localized `buchberger`; its budget
    // and the eliminated generators must be exactly the canonical ones.
    let result = budgets::assert_elimination_budget();
    assert!(result.complete);
    // The twisted cubic minus x is the (y, z) curve y^3 = z^2.
    assert!(result
        .eliminated
        .iter()
        .any(|p| *p == Poly::parse("y^3 - z^2").unwrap()));
}

#[test]
fn wide_index_copies_of_budget_ideals_stay_byte_identical() {
    // Late-intern a block of symbols, then rebuild every budget ideal over
    // fresh high-index names: the ring path must still agree with the
    // global-coordinate oracle byte for byte — the differential covers the
    // exact profile the ring layer exists for.
    for i in 0..512 {
        Var::new(&format!("ring_diff_filler_{i:03}"));
    }
    for ideal in budgets::budgeted_ideals() {
        // α-rename: every variable of the workload maps to a fresh name.
        let vars: Vec<Var> = {
            let mut all = ideal.order.vars().clone();
            for g in &ideal.generators {
                all = all.union(&g.vars());
            }
            all.iter().collect()
        };
        let renamed: std::collections::BTreeMap<Var, Poly> = vars
            .iter()
            .map(|v| {
                (
                    *v,
                    Poly::var(Var::new(&format!("rngd_{}_{}", ideal.name, v.name()))),
                )
            })
            .collect();
        let wide_gens: Vec<Poly> = ideal
            .generators
            .iter()
            .map(|g| symmap_algebra::subst::substitute_all(g, &renamed).expect("linear rename"))
            .collect();
        let wide_order = match &ideal.order {
            MonomialOrder::Lex(vs) => MonomialOrder::Lex(rename_set(vs, &renamed)),
            MonomialOrder::GrLex(vs) => MonomialOrder::GrLex(rename_set(vs, &renamed)),
            MonomialOrder::GrevLex(vs) => MonomialOrder::GrevLex(rename_set(vs, &renamed)),
            MonomialOrder::Elimination(vs, k) => {
                MonomialOrder::Elimination(rename_set(vs, &renamed), *k)
            }
        };
        let label = format!("{} (wide)", ideal.name);
        assert_identical(&wide_gens, &wide_order, &label);

        // The wide basis must be the α-image of the narrow one: identical
        // ring-local canonical form.
        let narrow = buchberger(&ideal.generators, &ideal.order, &GroebnerOptions::default());
        let wide = buchberger(&wide_gens, &wide_order, &GroebnerOptions::default());
        assert_eq!(narrow.reductions, wide.reductions, "{label}");
        let narrow_ring = Ring::spanning(narrow.polys().iter());
        let wide_ring = Ring::spanning(wide.polys().iter());
        let narrow_local: Vec<Poly> = narrow
            .polys()
            .iter()
            .map(|p| narrow_ring.localize_poly(p))
            .collect();
        let wide_local: Vec<Poly> = wide
            .polys()
            .iter()
            .map(|p| wide_ring.localize_poly(p))
            .collect();
        assert_eq!(narrow_local, wide_local, "{label}: not α-equivalent");
    }
}

fn rename_set(vs: &VarSet, renamed: &std::collections::BTreeMap<Var, Poly>) -> VarSet {
    vs.iter()
        .map(|v| {
            renamed[&v]
                .as_single_variable()
                .expect("renames are single variables")
        })
        .collect()
}
