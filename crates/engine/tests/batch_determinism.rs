//! Property test of the batch engine: for random small job batches over a
//! fixed library, parallel execution is byte-identical to sequential
//! execution, and both match running each job through a standalone `Mapper`
//! one at a time (the historic path).

use std::sync::Arc;

use proptest::prelude::*;
use symmap_algebra::groebner::GroebnerOptions;
use symmap_algebra::monomial::Monomial;
use symmap_algebra::poly::Poly;
use symmap_algebra::var::Var;
use symmap_engine::{EngineConfig, MapJob, Mapper, MapperConfig, MappingEngine};
use symmap_libchar::{Library, LibraryElement};
use symmap_numeric::Rational;

fn library() -> Arc<Library> {
    let mut lib = Library::new("prop");
    for (name, symbol, poly, cycles) in [
        ("sum", "s", "x + y", 3_u64),
        ("diff", "d", "x - y", 3),
        ("prod", "q", "x*y", 5),
        ("sq_x", "sx", "x^2", 4),
        ("sq_z", "sz", "z^2", 4),
    ] {
        lib.push(
            LibraryElement::builder(name, symbol)
                .polynomial(Poly::parse(poly).unwrap())
                .cycles(cycles)
                .energy_nj(cycles as f64)
                .accuracy(1e-9)
                .build()
                .unwrap(),
        );
    }
    Arc::new(lib)
}

/// Builds a target polynomial from raw term tuples (exponents for x, y, z
/// plus a small integer coefficient).
fn target_from_terms(terms: &[(u32, u32, u32, i64)]) -> Poly {
    Poly::from_terms(terms.iter().map(|&(ex, ey, ez, c)| {
        (
            Monomial::from_pairs(&[
                (Var::new("x"), ex),
                (Var::new("y"), ey),
                (Var::new("z"), ez),
            ]),
            Rational::integer(c),
        )
    }))
}

fn engine(workers: usize) -> MappingEngine {
    MappingEngine::new(EngineConfig {
        workers,
        ..EngineConfig::default()
    })
}

/// The multi-modular lift is invisible to mapping output: the same batch,
/// run with `GroebnerOptions::multimodular` off and on and at worker counts
/// 1 and 4, renders byte-identically — and with the flag on, the lift
/// actually engages on the fractional-coefficient targets (its counters
/// move) while the profitability gate bypasses it on the small all-integer
/// ones, rather than either path being silently skipped.
#[test]
fn multimodular_mapping_is_byte_identical_at_any_worker_count() {
    // The profitability gate reads the ideal generators — the library side
    // relations, not the target — so engaging the lift needs a library
    // element with a fractional coefficient (`1/3` here, as in the scaled
    // fixed-point kernels that motivate the lift).
    let library = {
        let mut lib = (*library()).clone();
        lib.push(
            LibraryElement::builder("third_sq", "ts")
                .polynomial(Poly::parse("1/3*x^2").unwrap())
                .cycles(4)
                .energy_nj(4.0)
                .accuracy(1e-9)
                .build()
                .unwrap(),
        );
        Arc::new(lib)
    };
    let targets = [
        "x^2 + 2*x*y + 1/3*y^2",
        "x^2 - y^2 + z^2",
        "x*y + 5/2*x^2 - 3",
        "x^3 - x*y + 4*z^2",
    ];
    let jobs = |multimodular: bool| -> Vec<MapJob> {
        targets
            .iter()
            .enumerate()
            .map(|(i, t)| {
                MapJob::new(
                    format!("mm-{i}"),
                    Poly::parse(t).unwrap(),
                    Arc::clone(&library),
                    MapperConfig {
                        groebner: GroebnerOptions {
                            multimodular,
                            ..GroebnerOptions::default()
                        },
                        ..MapperConfig::default()
                    },
                )
            })
            .collect()
    };
    let mut renders = Vec::new();
    for multimodular in [false, true] {
        for workers in [1, 4] {
            let result = engine(workers).run(&jobs(multimodular));
            if multimodular {
                let engaged = result.stats.lift_success + result.stats.lift_fallback;
                assert!(engaged >= 1, "the lift never engaged at {workers} workers");
                assert!(
                    result.stats.lift_bypass >= 1,
                    "the profitability gate never bypassed at {workers} workers"
                );
            }
            renders.push(format!("{:?}", result.outcomes));
        }
    }
    assert!(
        renders.iter().all(|r| r == &renders[0]),
        "mapping output depends on the multimodular flag or worker count"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn random_batches_map_identically_at_any_worker_count(
        raw_targets in proptest::collection::vec(
            proptest::collection::vec((0u32..4, 0u32..4, 0u32..3, -4i64..5), 1..5),
            1..8,
        ),
    ) {
        let library = library();
        let jobs: Vec<MapJob> = raw_targets
            .iter()
            .enumerate()
            .map(|(i, terms)| {
                MapJob::new(
                    format!("prop-{i}"),
                    target_from_terms(terms),
                    Arc::clone(&library),
                    MapperConfig::default(),
                )
            })
            .collect();

        let sequential = engine(1).run(&jobs);
        let parallel = engine(3).run(&jobs);
        prop_assert_eq!(
            format!("{:?}", parallel.outcomes),
            format!("{:?}", sequential.outcomes)
        );

        // Both must equal the historic path: a standalone Mapper per job
        // (fresh cache, same configuration), run on the calling thread.
        for (job, outcome) in jobs.iter().zip(&sequential.outcomes) {
            let standalone = Mapper::new(&job.library, job.config.clone())
                .map_polynomial(&job.target);
            prop_assert_eq!(
                format!("{:?}", outcome),
                format!("{:?}", &standalone),
                "job {} diverged from the standalone mapper", job.label
            );
        }

        // Solutions that exist are valid rewrites.
        for solution in sequential.solutions() {
            prop_assert!(solution.verify());
        }
    }

    /// Soundness of the fingerprint-index prune: no random target ever loses
    /// a feasible solution (or changes outcome in any observable way) when
    /// the index replaces the legacy full-library scan.
    #[test]
    fn pruning_never_loses_a_feasible_solution(
        raw_targets in proptest::collection::vec(
            proptest::collection::vec((0u32..4, 0u32..4, 0u32..3, -4i64..5), 1..5),
            1..8,
        ),
    ) {
        let library = library();
        for (i, terms) in raw_targets.iter().enumerate() {
            let target = target_from_terms(terms);
            let outcomes: Vec<String> = [true, false]
                .into_iter()
                .map(|index| {
                    let config = MapperConfig {
                        use_fingerprint_index: index,
                        ..MapperConfig::default()
                    };
                    let outcome = Mapper::new(&library, config).map_polynomial(&target);
                    if let Ok(solution) = &outcome {
                        assert!(solution.verify());
                    }
                    format!("{outcome:?}")
                })
                .collect();
            prop_assert_eq!(
                &outcomes[0],
                &outcomes[1],
                "target {} maps differently with the index on", i
            );
        }
    }
}
