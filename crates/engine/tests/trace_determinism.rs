//! The trace-determinism suite: the non-perturbation and byte-identity
//! contracts of the observability layer (DESIGN.md §8).
//!
//! Three claims are pinned here:
//!
//! 1. **Byte-identity across scheduling.** The deterministic transcript
//!    (job streams by index + compute streams by key, sched excluded) is
//!    byte-identical at workers ∈ {1, 2, 4, 8}, with the multi-modular lift
//!    off and on.
//! 2. **Non-perturbation.** Enabling tracing never changes any
//!    `MappingSolution` — pinned on a fixed batch at every worker count and
//!    by a property test over random batches.
//! 3. **Exporter validity.** A traced batch renders to chrome://tracing
//!    trace-event JSON that parses and balances (the schema check Perfetto
//!    relies on), and the batch metrics snapshot renders to parseable JSON.

use std::sync::Arc;

use proptest::prelude::*;
use symmap_algebra::groebner::GroebnerOptions;
use symmap_algebra::monomial::Monomial;
use symmap_algebra::poly::Poly;
use symmap_algebra::var::Var;
use symmap_engine::{EngineConfig, MapJob, MapperConfig, MappingEngine};
use symmap_libchar::{Library, LibraryElement};
use symmap_numeric::Rational;
use symmap_trace::{parse_json, to_chrome_json, validate_chrome_trace};

fn library() -> Arc<Library> {
    let mut lib = Library::new("trace");
    for (name, symbol, poly, cycles) in [
        ("sum", "s", "x + y", 3_u64),
        ("diff", "d", "x - y", 3),
        ("prod", "q", "x*y", 5),
        ("sq_x", "sx", "x^2", 4),
        ("sq_z", "sz", "z^2", 4),
        // Fractional coefficient: keeps the multimodular profitability gate
        // open (the gate reads the ideal generators — all-integer side
        // relations would route every compute to plain exact Buchberger and
        // the lift would record no spans).
        ("third_sq", "ts", "1/3*x^2", 4),
    ] {
        lib.push(
            LibraryElement::builder(name, symbol)
                .polynomial(Poly::parse(poly).unwrap())
                .cycles(cycles)
                .energy_nj(cycles as f64)
                .accuracy(1e-9)
                .build()
                .unwrap(),
        );
    }
    Arc::new(lib)
}

fn batch_jobs(library: &Arc<Library>, multimodular: bool) -> Vec<MapJob> {
    // Job 4 ("u^3 + u") has no candidate elements and fails: the suite
    // covers the error path's trace too, not just successes.
    [
        "x^2 + 2*x*y + y^2",
        "x^2 - y^2 + z^2",
        "x*y + x^2 - 3",
        "x^3 - x*y + 4*z^2",
        "u^3 + u",
        "x^4 - y^4 + x^2*y^2",
    ]
    .iter()
    .enumerate()
    .map(|(i, t)| {
        MapJob::new(
            format!("trace-{i}"),
            Poly::parse(t).unwrap(),
            Arc::clone(library),
            MapperConfig {
                groebner: GroebnerOptions {
                    multimodular,
                    ..GroebnerOptions::default()
                },
                ..MapperConfig::default()
            },
        )
    })
    .collect()
}

fn engine(workers: usize, trace: bool) -> MappingEngine {
    MappingEngine::new(EngineConfig {
        workers,
        trace,
        ..EngineConfig::default()
    })
}

/// Claim 1 + claim 2 on the fixed batch: transcripts byte-identical across
/// worker counts (per multimodular setting), outcomes byte-identical to the
/// untraced run everywhere.
#[test]
fn transcripts_are_byte_identical_across_workers_and_lift_modes() {
    let library = library();
    for multimodular in [false, true] {
        let jobs = batch_jobs(&library, multimodular);
        let untraced = engine(1, false).run(&jobs);
        assert!(untraced.trace.is_none(), "untraced run must carry no trace");
        let mut transcripts = Vec::new();
        for workers in [1, 2, 4, 8] {
            let result = engine(workers, true).run(&jobs);
            assert_eq!(
                format!("{:?}", result.outcomes),
                format!("{:?}", untraced.outcomes),
                "tracing perturbed outcomes at {workers} workers \
                 (multimodular={multimodular})"
            );
            let trace = result.trace.expect("tracing was enabled");
            assert_eq!(trace.jobs.len(), jobs.len());
            assert!(
                trace.deterministic_event_count() > 0,
                "a traced batch must record deterministic events"
            );
            transcripts.push((workers, trace.deterministic_transcript()));
        }
        let (_, reference) = &transcripts[0];
        for (workers, transcript) in &transcripts[1..] {
            assert_eq!(
                transcript, reference,
                "deterministic transcript diverged at {workers} workers \
                 (multimodular={multimodular})"
            );
        }
        // The lift instrumentation actually engaged when requested: its
        // per-prime image spans are in the compute channel.
        if multimodular {
            assert!(
                reference.contains("mm.image"),
                "multimodular batch recorded no lift spans:\n{reference}"
            );
        } else {
            assert!(!reference.contains("mm.image"));
        }
    }
}

/// Claim 3: a traced parallel batch exports valid chrome://tracing JSON
/// (parse + B/E balance per track) and a parseable metrics JSON snapshot,
/// and the sched channel saw the pool's job lifecycle.
#[test]
fn chrome_export_and_metrics_snapshot_are_valid_json() {
    let library = library();
    let jobs = batch_jobs(&library, true);
    let result = engine(4, true).run(&jobs);
    let trace = result.trace.expect("tracing was enabled");

    assert!(
        trace.sched.iter().any(|e| e.name == "pool.start"),
        "the pool's job lifecycle must reach the sched channel"
    );
    assert_eq!(
        trace
            .sched
            .iter()
            .filter(|e| e.name == "pool.finish")
            .count(),
        jobs.len(),
        "every job finishes exactly once"
    );

    let chrome = to_chrome_json(&trace);
    let events = validate_chrome_trace(&chrome)
        .unwrap_or_else(|e| panic!("chrome trace failed schema validation: {e}\n{chrome}"));
    assert!(events > 0, "chrome trace must carry events");

    let metrics = result.stats.metrics.to_json();
    let doc = parse_json(&metrics)
        .unwrap_or_else(|e| panic!("metrics snapshot is not valid JSON: {e}\n{metrics}"));
    assert!(
        doc["counters"].as_object().is_some(),
        "metrics snapshot must expose a counters object"
    );
}

/// Builds a target polynomial from raw term tuples (exponents for x, y, z
/// plus a small integer coefficient).
fn target_from_terms(terms: &[(u32, u32, u32, i64)]) -> Poly {
    Poly::from_terms(terms.iter().map(|&(ex, ey, ez, c)| {
        (
            Monomial::from_pairs(&[
                (Var::new("x"), ex),
                (Var::new("y"), ey),
                (Var::new("z"), ez),
            ]),
            Rational::integer(c),
        )
    }))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Claim 2 at property strength: over random small batches, the traced
    /// engine's outcomes are byte-identical to the untraced engine's, and
    /// the transcript is reproducible run-to-run.
    #[test]
    fn tracing_never_changes_a_mapping_solution(
        raw_targets in proptest::collection::vec(
            proptest::collection::vec((0u32..4, 0u32..4, 0u32..3, -4i64..5), 1..5),
            1..8,
        ),
        workers in 1usize..5,
    ) {
        let library = library();
        let jobs: Vec<MapJob> = raw_targets
            .iter()
            .enumerate()
            .map(|(i, terms)| {
                MapJob::new(
                    format!("prop-{i}"),
                    target_from_terms(terms),
                    Arc::clone(&library),
                    MapperConfig::default(),
                )
            })
            .collect();

        let untraced = engine(workers, false).run(&jobs);
        let traced = engine(workers, true).run(&jobs);
        prop_assert_eq!(
            format!("{:?}", traced.outcomes),
            format!("{:?}", untraced.outcomes),
            "tracing perturbed outcomes at {} workers", workers
        );

        // Same batch, second traced run: the deterministic transcript is a
        // pure function of the batch, so it reproduces byte-for-byte.
        let again = engine(workers, true).run(&jobs);
        prop_assert_eq!(
            again.trace.expect("tracing was enabled").deterministic_transcript(),
            traced.trace.expect("tracing was enabled").deterministic_transcript()
        );
    }
}
