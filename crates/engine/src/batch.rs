//! The [`MappingEngine`]: deterministic parallel execution of mapping jobs.
//!
//! A [`MapJob`] is one library-mapping problem — target polynomial, library,
//! mapper configuration. The engine runs a batch of jobs over the
//! work-stealing pool ([`crate::pool`]) while every worker prices its
//! side-relation subsets through one shared, lock-striped
//! [`SharedGroebnerCache`], and returns the outcomes **by job index** plus an
//! [`EngineStats`] report.
//!
//! # Determinism
//!
//! Each job is a pure function of its `(target, library, config)` inputs, so
//! the outcome vector is byte-identical at any worker count and across
//! repeated runs. Two scheduling-sensitive side channels are closed
//! explicitly:
//!
//! * **Variable interning.** The process-wide [`Var`] interner assigns
//!   indices in first-intern order, and monomials store exponents densely by
//!   that index — so if *worker threads* raced to intern a library's output
//!   symbols, the assignment (and with it `Poly::vars()` discovery order and
//!   the default elimination orders built from it) could vary run to run.
//!   [`MappingEngine::run`] therefore pre-interns every job's output symbols
//!   on the calling thread, in job order, before any worker starts. (Targets
//!   and library polynomials are interned by construction.)
//! * **Cache effects.** Scheduling changes which lookup *computes* a basis
//!   and which one hits, and what the bounded cache evicts — i.e. cache
//!   counters and timing — but a memoized basis is a pure function of its
//!   key, so cached values (and thus solutions) never vary.

use std::sync::Arc;
use std::time::{Duration, Instant};

use symmap_algebra::groebner::{CacheConfig, CacheShardStats, SharedGroebnerCache};
use symmap_algebra::poly::Poly;
use symmap_algebra::var::Var;
use symmap_libchar::Library;
// batch.rs is a D6-exempt engine entry point: it owns the collector
// lifecycle and the pool→sched-channel adapter (see symmap-lint).
use symmap_trace::recorder::{install_job_scope, DEFAULT_STREAM_CAPACITY};
use symmap_trace::sink::WallClock;
use symmap_trace::{BatchTrace, MetricsSnapshot, TraceCollector};

use crate::decompose::{Mapper, MapperConfig};
use crate::error::CoreError;
use crate::mapping::MappingSolution;
use crate::pool;
use crate::pool::SchedObserver;

/// Sizing of the batch engine: worker threads and shared-cache geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads per batch. `1` reproduces the historic sequential
    /// mapper exactly (jobs run in index order on the calling thread); any
    /// other count produces byte-identical output, faster.
    pub workers: usize,
    /// Lock shards of the shared Gröbner cache.
    pub cache_shards: usize,
    /// Bounded capacity (in memoized bases) of the shared Gröbner cache.
    pub cache_capacity: usize,
    /// Enables the cache's modular (ℤ/p) membership prefilter. Advisory in
    /// this phase: mapper output is byte-identical with it on or off — the
    /// probe only adds mod-p telemetry to [`EngineStats`].
    pub modular_prefilter: bool,
    /// Enables structured tracing for the batch: every run collects per-job
    /// and per-compute event streams plus a sched channel, returned as
    /// [`BatchResult::trace`]. Non-perturbing by construction — outcomes are
    /// byte-identical with it on or off (the trace-determinism suite pins
    /// this at every worker count).
    pub trace: bool,
}

impl Default for EngineConfig {
    /// One worker — the sequential path — unless the `SYMMAP_TEST_WORKERS`
    /// environment variable overrides it (CI sets it to 4 so the whole test
    /// suite exercises the parallel path; output is identical either way).
    /// The modular prefilter is off unless `SYMMAP_TEST_MODULAR` enables it
    /// the same way (CI runs the suite a third time with it on), and tracing
    /// is off unless `SYMMAP_TEST_TRACE` enables it (a fifth CI pass).
    fn default() -> Self {
        let cache = CacheConfig::default();
        EngineConfig {
            workers: workers_from_env().unwrap_or(1),
            cache_shards: cache.shards,
            cache_capacity: cache.capacity,
            modular_prefilter: modular_from_env().unwrap_or(false),
            trace: trace_from_env().unwrap_or(false),
        }
    }
}

impl EngineConfig {
    /// The cache geometry part of this configuration.
    pub fn cache_config(&self) -> CacheConfig {
        CacheConfig {
            shards: self.cache_shards,
            capacity: self.cache_capacity,
            modular_prefilter: self.modular_prefilter,
        }
    }
}

fn workers_from_env() -> Option<usize> {
    // lint:allow(D5): this IS the CI switch — worker count never changes
    // mapping output (see the determinism argument in the module docs).
    std::env::var("SYMMAP_TEST_WORKERS")
        .ok()?
        .trim()
        .parse()
        .ok()
        .filter(|&w| w >= 1)
}

fn modular_from_env() -> Option<bool> {
    // lint:allow(D5): this IS the CI switch — the modular prefilter is an
    // advisory cache prefilter and cannot change mapping output.
    match std::env::var("SYMMAP_TEST_MODULAR").ok()?.trim() {
        "" | "0" => Some(false),
        _ => Some(true),
    }
}

fn trace_from_env() -> Option<bool> {
    // lint:allow(D5): this IS the CI switch — tracing is provably
    // non-perturbing (the trace-determinism suite pins outcomes byte-
    // identical with it on or off).
    match std::env::var("SYMMAP_TEST_TRACE").ok()?.trim() {
        "" | "0" => Some(false),
        _ => Some(true),
    }
}

/// One library-mapping problem in a batch.
#[derive(Debug, Clone)]
pub struct MapJob {
    /// Caller's identifier for the job (e.g. the profiled function name);
    /// carried through to make outcomes self-describing.
    pub label: String,
    /// The target polynomial to map.
    pub target: Poly,
    /// The library to map against (shared, not cloned, across jobs).
    pub library: Arc<Library>,
    /// The mapper configuration for this job.
    pub config: MapperConfig,
}

impl MapJob {
    /// Creates a job.
    pub fn new(
        label: impl Into<String>,
        target: Poly,
        library: Arc<Library>,
        config: MapperConfig,
    ) -> Self {
        MapJob {
            label: label.into(),
            target,
            library,
            config,
        }
    }
}

/// What one batch run did: volume, scheduling and cache activity.
///
/// Every cache/probe/lift field below is *derived* from one
/// [`MetricsSnapshot`] delta over the shared registry
/// ([`SharedGroebnerCache::metrics`]) — the named fields are the stable
/// convenience view, [`EngineStats::metrics`] is the full window.
#[derive(Debug, Clone)]
pub struct EngineStats {
    /// Jobs in the batch.
    pub jobs: usize,
    /// Worker threads used (clamped to the job count).
    pub workers: usize,
    /// Jobs executed by a worker other than the one they were dealt to
    /// (scheduling-dependent at `workers > 1`).
    pub steals: usize,
    /// Wall time of the batch, including result collection.
    pub wall: Duration,
    /// Per-shard cache counters over this batch's run (`len` is the shard's
    /// current resident count). The counters are global to the shared cache,
    /// so when several engines share one cache and run batches
    /// *concurrently*, a batch's deltas include the concurrent batches'
    /// activity; with one batch in flight at a time (how every in-repo
    /// consumer runs) they are exactly this batch's.
    pub cache_shards: Vec<CacheShardStats>,
    /// Per-shard counters of the cache's ring-local (α-equivalence) layer
    /// over this batch's run: `hits` are lookups whose global key was new
    /// but whose ring-local canonical form — the same side-relation ideal up
    /// to variable renaming, or up to order entries outside the ideal's ring
    /// — was already memoized, so only a cheap globalization ran instead of
    /// a Buchberger computation.
    pub alpha_shards: Vec<CacheShardStats>,
    /// Modular-prefilter probes during this batch whose target reduced to
    /// zero mod p (membership *likely*; the exact run decides). Zero when
    /// the prefilter is disabled.
    pub fp_hits: usize,
    /// Probes whose target had a nonzero normal form under a complete mod-p
    /// basis (non-membership, confirmed by the exact run in this phase).
    pub fp_rejects: usize,
    /// Unlucky primes rotated past while computing mod-p bases this batch.
    pub unlucky_primes: usize,
    /// Probes answered *certified* from a resident exact basis this batch —
    /// the prefilter reused the already-lifted basis shard instead of
    /// localizing a fresh mod-p image (see
    /// `SharedGroebnerCache::probe_membership_verdict`).
    pub fp_exact_reuse: usize,
    /// Basis computations settled by the verified multi-modular lift this
    /// batch (no exact Buchberger run). Zero unless jobs carried
    /// `GroebnerOptions::multimodular`.
    pub lift_success: usize,
    /// Reconstruction/verification rounds that failed and forced another
    /// prime this batch.
    pub lift_retry: usize,
    /// Basis computations the lift could not certify this batch, answered by
    /// the exact fallback.
    pub lift_fallback: usize,
    /// Mod-p prime images feeding the successful lifts' CRT combines this
    /// batch.
    pub crt_primes_used: usize,
    /// Basis requests the lift-profitability gate routed straight to the
    /// exact engine this batch (small all-integer ideals).
    pub lift_bypass: usize,
    /// Library shards dismissed whole by the fingerprint index's support
    /// test across this batch's candidate scans.
    pub index_shards_skipped: usize,
    /// Elements pruned by the fingerprint index without touching their
    /// polynomials this batch.
    pub index_rejected: usize,
    /// Elements that survived candidate pruning this batch.
    pub index_kept: usize,
    /// The full metrics window this batch's named fields were derived from:
    /// every counter/histogram as a delta over the run, every gauge at its
    /// post-run level. Includes metrics with no named field (e.g. the
    /// `groebner.reductions` histogram and `pool.steals`).
    pub metrics: MetricsSnapshot,
}

impl EngineStats {
    /// Cache lookups answered from the shared cache during this batch.
    pub fn cache_hits(&self) -> usize {
        self.cache_shards.iter().map(|s| s.hits).sum()
    }

    /// Cache lookups that computed a fresh basis during this batch.
    pub fn cache_misses(&self) -> usize {
        self.cache_shards.iter().map(|s| s.misses).sum()
    }

    /// Cache entries evicted by the capacity bound during this batch.
    pub fn cache_evictions(&self) -> usize {
        self.cache_shards.iter().map(|s| s.evictions).sum()
    }

    /// Bases resident in the shared cache after the batch.
    pub fn cache_len(&self) -> usize {
        self.cache_shards.iter().map(|s| s.len).sum()
    }

    /// Global-key misses answered by the ring-local layer during this batch
    /// (an α-equivalent ideal's core basis was reused; see
    /// [`EngineStats::alpha_shards`]).
    pub fn cache_alpha_hits(&self) -> usize {
        self.alpha_shards.iter().map(|s| s.hits).sum()
    }

    /// Ring-local canonical forms that ran the Buchberger core during this
    /// batch — the batch's real basis-computation count.
    pub fn cache_alpha_misses(&self) -> usize {
        self.alpha_shards.iter().map(|s| s.misses).sum()
    }
}

/// Outcomes of a batch, in job order, plus the run's statistics.
#[derive(Debug)]
pub struct BatchResult {
    /// One outcome per job, at the job's index in the submitted batch.
    pub outcomes: Vec<Result<MappingSolution, CoreError>>,
    /// Scheduling and cache statistics of the run.
    pub stats: EngineStats,
    /// The run's trace when [`EngineConfig::trace`] was on: per-job streams
    /// in job-index order, per-compute streams keyed by cache key, and the
    /// (non-deterministic) sched channel. `None` with tracing off.
    pub trace: Option<BatchTrace>,
}

impl BatchResult {
    /// The successful solutions, in job order (failed jobs skipped).
    pub fn solutions(&self) -> impl Iterator<Item = &MappingSolution> + '_ {
        self.outcomes.iter().filter_map(|o| o.as_ref().ok())
    }
}

/// The batch-mapping service: a worker pool plus one shared Gröbner cache.
///
/// Cloning an engine shares its cache (the clone is a second handle onto the
/// same memo, exactly like the former `Rc`-shared pipeline cache — now
/// `Arc`-shared and thread-safe).
#[derive(Debug, Clone)]
pub struct MappingEngine {
    config: EngineConfig,
    cache: Arc<SharedGroebnerCache>,
}

/// Compile-time guard: everything a worker thread touches must cross the
/// spawn boundary.
#[allow(dead_code)]
fn _assert_send_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    fn assert_send<T: Send>() {}
    assert_send_sync::<MappingEngine>();
    assert_send_sync::<MapJob>();
    assert_send_sync::<Mapper>();
    assert_send::<MappingSolution>();
    assert_send::<CoreError>();
}

impl MappingEngine {
    /// Creates an engine with a fresh cache sized by `config`.
    pub fn new(config: EngineConfig) -> Self {
        let cache = Arc::new(SharedGroebnerCache::with_config(config.cache_config()));
        MappingEngine { config, cache }
    }

    /// Creates an engine that shares an existing cache (used to pool bases
    /// across several engines or pipelines; `config`'s cache geometry is
    /// ignored in favour of the cache's own).
    pub fn with_shared_cache(config: EngineConfig, cache: Arc<SharedGroebnerCache>) -> Self {
        MappingEngine { config, cache }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The shared Gröbner cache (counters are cumulative over the engine's
    /// lifetime; [`EngineStats`] reports per-batch deltas).
    pub fn cache(&self) -> &Arc<SharedGroebnerCache> {
        &self.cache
    }

    /// Runs a batch of jobs, returning outcomes by job index.
    ///
    /// Byte-identical output at any [`EngineConfig::workers`] value; see the
    /// module docs for the determinism argument.
    pub fn run(&self, jobs: &[MapJob]) -> BatchResult {
        // lint:allow(D2): stats-only wall clock — feeds EngineStats.wall for
        // reporting and never influences which mapping is produced.
        let start = Instant::now();
        let before = self.cache.metrics_snapshot();
        let steal_counter = self.cache.metrics().counter("pool.steals");

        // Close the interner side channel: intern every output symbol on this
        // thread, in job order, before any worker can race to it. Jobs
        // sharing one library `Arc` (the common batch shape) intern it once —
        // on a thousand-element library the repeat walks would otherwise
        // cost more than the mapping itself.
        let mut seen: Vec<*const Library> = Vec::new();
        for job in jobs {
            let ptr = Arc::as_ptr(&job.library);
            if seen.contains(&ptr) {
                continue;
            }
            seen.push(ptr);
            for element in job.library.iter() {
                Var::new(element.output_symbol());
            }
        }

        // The collector exists only for traced runs; with tracing off every
        // macro site below (and in algebra) is a single relaxed load.
        let collector = self.config.trace.then(|| {
            TraceCollector::with_clock(
                jobs.len(),
                DEFAULT_STREAM_CAPACITY,
                Box::new(WallClock::new()),
            )
        });
        let observer = collector.as_ref().map(|c| PoolTraceAdapter {
            collector: Arc::clone(c),
        });

        let (outcomes, pool_stats) = pool::run_batch_observed(
            jobs.len(),
            self.config.workers,
            |i| {
                let job = &jobs[i];
                // Job-channel scope: every deterministic event a job records
                // (cache requests, compute spans it triggers) files under its
                // job index, so streams merge identically at any worker count.
                let _scope = collector
                    .as_ref()
                    .map(|c| install_job_scope(c, i, &job.label));
                Mapper::with_shared_cache(&job.library, job.config.clone(), Arc::clone(&self.cache))
                    .map_polynomial(&job.target)
            },
            observer.as_ref().map(|o| o as &dyn SchedObserver),
        );
        steal_counter.add(pool_stats.steals as u64);

        let delta = self.cache.metrics_snapshot().delta_since(&before);
        let shard_count = self.cache.shard_count();
        BatchResult {
            outcomes,
            stats: EngineStats {
                jobs: jobs.len(),
                workers: pool_stats.workers,
                steals: pool_stats.steals,
                wall: start.elapsed(),
                cache_shards: shard_deltas(&delta, "cache.shard", shard_count),
                alpha_shards: shard_deltas(&delta, "alpha.shard", shard_count),
                fp_hits: delta.counter("fp.hits") as usize,
                fp_rejects: delta.counter("fp.rejects") as usize,
                unlucky_primes: delta.counter("fp.unlucky_primes") as usize,
                fp_exact_reuse: delta.counter("fp.exact_reuse") as usize,
                lift_success: delta.counter("lift.success") as usize,
                lift_retry: delta.counter("lift.retry") as usize,
                lift_fallback: delta.counter("lift.fallback") as usize,
                crt_primes_used: delta.counter("lift.crt_primes") as usize,
                lift_bypass: delta.counter("lift.bypass") as usize,
                index_shards_skipped: delta.counter("index.shards_skipped") as usize,
                index_rejected: delta.counter("index.rejected") as usize,
                index_kept: delta.counter("index.kept") as usize,
                metrics: delta,
            },
            trace: collector.map(|c| c.finalize()),
        }
    }
}

/// Forwards pool scheduling callbacks onto the trace sched channel. Lives
/// here (not in [`crate::pool`]) so the pool stays free of the trace
/// dependency; which worker ran which job is nondeterministic at
/// `workers > 1`, which is exactly what the sched channel is for.
struct PoolTraceAdapter {
    collector: Arc<TraceCollector>,
}

impl SchedObserver for PoolTraceAdapter {
    fn job_start(&self, worker: usize, index: usize, stolen: bool) {
        self.collector.sched_event(
            Some(worker),
            if stolen { "pool.steal" } else { "pool.start" },
            &[("job", index as u64)],
        );
    }

    fn job_finish(&self, worker: usize, index: usize) {
        self.collector
            .sched_event(Some(worker), "pool.finish", &[("job", index as u64)]);
    }
}

/// Rebuilds the per-shard counter view from the registry delta: counters
/// (`hits`/`misses`/`evictions`) are windowed, `len` is the post-run level
/// (gauges survive `delta_since` at their current value).
fn shard_deltas(delta: &MetricsSnapshot, family: &str, shard_count: usize) -> Vec<CacheShardStats> {
    (0..shard_count)
        .map(|i| CacheShardStats {
            hits: delta.counter(&format!("{family}.{i}.hits")) as usize,
            misses: delta.counter(&format!("{family}.{i}.misses")) as usize,
            evictions: delta.counter(&format!("{family}.{i}.evictions")) as usize,
            len: delta.gauge(&format!("{family}.{i}.len")) as usize,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use symmap_libchar::LibraryElement;

    fn p(s: &str) -> Poly {
        Poly::parse(s).unwrap()
    }

    fn toy_library() -> Arc<Library> {
        let mut lib = Library::new("t");
        for (name, symbol, poly, cycles) in [
            ("sum", "s", "x + y", 3),
            ("diff", "d", "x - y", 3),
            ("prod", "q", "x*y", 5),
            ("sq_x", "sx", "x^2", 4),
        ] {
            lib.push(
                LibraryElement::builder(name, symbol)
                    .polynomial(p(poly))
                    .cycles(cycles)
                    .energy_nj(cycles as f64)
                    .accuracy(1e-9)
                    .build()
                    .unwrap(),
            );
        }
        Arc::new(lib)
    }

    fn toy_jobs(library: &Arc<Library>) -> Vec<MapJob> {
        [
            "x^2 + 2*x*y + y^2",
            "x^2 - y^2",
            "x^2 - y^2 + x*y",
            "x^3*y",
            "u^3 + u",
            "x^4 - y^4 + x^2*y^2",
        ]
        .iter()
        .enumerate()
        .map(|(i, s)| {
            MapJob::new(
                format!("job-{i}"),
                p(s),
                Arc::clone(library),
                MapperConfig::default(),
            )
        })
        .collect()
    }

    fn config(workers: usize) -> EngineConfig {
        EngineConfig {
            workers,
            ..EngineConfig::default()
        }
    }

    #[test]
    fn outcomes_are_indexed_by_job_and_identical_across_worker_counts() {
        let library = toy_library();
        let jobs = toy_jobs(&library);
        let reference = MappingEngine::new(config(1)).run(&jobs);
        // Job 4 has no candidate elements; everything else succeeds.
        assert!(matches!(
            reference.outcomes[4],
            Err(CoreError::NoCandidateElements { .. })
        ));
        assert_eq!(reference.outcomes.len(), jobs.len());
        for workers in [2, 3, 8] {
            let batch = MappingEngine::new(config(workers)).run(&jobs);
            assert_eq!(
                format!("{:?}", batch.outcomes),
                format!("{:?}", reference.outcomes),
                "outcomes diverged at {workers} workers"
            );
        }
    }

    #[test]
    fn batch_reports_stats_and_shares_the_cache_across_jobs() {
        let library = toy_library();
        let jobs = toy_jobs(&library);
        let engine = MappingEngine::new(config(1));
        let batch = engine.run(&jobs);
        assert_eq!(batch.stats.jobs, jobs.len());
        assert_eq!(batch.stats.workers, 1);
        assert_eq!(batch.stats.steals, 0);
        assert!(batch.stats.cache_misses() > 0);
        assert!(
            batch.stats.cache_hits() > 0,
            "jobs over the same library must share side-relation bases"
        );
        assert_eq!(batch.stats.cache_len(), engine.cache().len());
        assert_eq!(batch.stats.cache_shards.len(), engine.cache().shard_count());
        // A repeated batch is answered from the cache: no new bases.
        let again = engine.run(&jobs);
        assert_eq!(again.stats.cache_misses(), 0);
        assert_eq!(
            format!("{:?}", again.outcomes),
            format!("{:?}", batch.outcomes)
        );
    }

    #[test]
    fn solutions_iterator_skips_failures_in_job_order() {
        let library = toy_library();
        let jobs = toy_jobs(&library);
        let batch = MappingEngine::new(config(2)).run(&jobs);
        let labels: Vec<usize> = batch
            .outcomes
            .iter()
            .enumerate()
            .filter(|(_, o)| o.is_ok())
            .map(|(i, _)| i)
            .collect();
        assert_eq!(batch.solutions().count(), labels.len());
        assert_eq!(labels, vec![0, 1, 2, 3, 5]);
        for solution in batch.solutions() {
            assert!(solution.verify());
        }
    }

    #[test]
    fn shared_cache_engines_pool_their_bases() {
        let library = toy_library();
        let jobs = toy_jobs(&library);
        let first = MappingEngine::new(config(1));
        first.run(&jobs);
        let second = MappingEngine::with_shared_cache(config(2), Arc::clone(first.cache()));
        let batch = second.run(&jobs);
        assert_eq!(
            batch.stats.cache_misses(),
            0,
            "second engine recomputed bases the shared cache already holds"
        );
    }

    #[test]
    fn default_config_reads_the_test_workers_env() {
        // Not set in this test process unless CI exported it; both shapes are
        // valid — just assert the parse contract.
        // lint:allow(D5): test asserting the CI-switch parse contract itself.
        match std::env::var("SYMMAP_TEST_WORKERS") {
            Ok(v) => {
                let parsed: usize = v.trim().parse().unwrap_or(1);
                assert_eq!(EngineConfig::default().workers, parsed.max(1));
            }
            Err(_) => assert_eq!(EngineConfig::default().workers, 1),
        }
    }
}
