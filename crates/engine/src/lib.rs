//! # symmap-engine
//!
//! The mapping subsystem as a *batch service*: the `Decompose`
//! branch-and-bound mapper of the DAC 2002 paper's Table 2 ([`decompose`]),
//! its cost model ([`cost`]) and solution type ([`mapping`]), plus the two
//! pieces that let it saturate the hardware:
//!
//! * [`pool`] — a deterministic work-stealing thread pool over
//!   `std::thread` + `parking_lot`: jobs are dealt round-robin to per-worker
//!   deques, idle workers steal from the back of their neighbours' queues,
//!   and results are collected **by job index**, so the output of a batch is
//!   byte-identical at any worker count.
//! * [`batch`] — the [`MappingEngine`]: a queue of [`MapJob`]s (target
//!   polynomial + library + mapper configuration) executed over the pool
//!   while every worker shares one lock-striped, capacity-bounded
//!   [`SharedGroebnerCache`], with an [`EngineStats`] report (jobs, steals,
//!   per-shard cache counters, wall time) per batch.
//!
//! Mapping jobs are pure functions of their inputs — the only thing worker
//! scheduling can change is cache *timing* (which lookup computes and which
//! one hits), never cached *values* — so `workers = 1` reproduces the
//! historic sequential mapper exactly and `workers = N` reproduces it
//! byte-for-byte faster. See `DESIGN.md` §5 for the determinism argument.
//!
//! ```
//! use std::sync::Arc;
//! use symmap_algebra::poly::Poly;
//! use symmap_engine::{EngineConfig, MapJob, MapperConfig, MappingEngine};
//! use symmap_libchar::{Library, LibraryElement};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut library = Library::new("demo");
//! library.push(
//!     LibraryElement::builder("sum", "s")
//!         .polynomial(Poly::parse("x + y")?)
//!         .cycles(4)
//!         .build()?,
//! );
//! let library = Arc::new(library);
//! let engine = MappingEngine::new(EngineConfig {
//!     workers: 2,
//!     ..EngineConfig::default()
//! });
//! let jobs: Vec<MapJob> = ["x^2 + 2*x*y + y^2", "x + y"]
//!     .iter()
//!     .enumerate()
//!     .map(|(i, s)| {
//!         MapJob::new(
//!             format!("job-{i}"),
//!             Poly::parse(s).unwrap(),
//!             Arc::clone(&library),
//!             MapperConfig::default(),
//!         )
//!     })
//!     .collect();
//! let batch = engine.run(&jobs);
//! assert_eq!(batch.outcomes.len(), 2);
//! assert!(batch.outcomes.iter().all(|o| o.is_ok()));
//! # Ok(())
//! # }
//! ```
//!
//! [`SharedGroebnerCache`]: symmap_algebra::groebner::SharedGroebnerCache

#![deny(rustdoc::broken_intra_doc_links)]

pub mod batch;
pub mod cost;
pub mod decompose;
pub mod error;
pub mod mapping;
pub mod pool;

pub use batch::{BatchResult, EngineConfig, EngineStats, MapJob, MappingEngine};
pub use decompose::{Mapper, MapperConfig};
pub use error::CoreError;
pub use mapping::MappingSolution;
