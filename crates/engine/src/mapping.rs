//! Mapping solutions.

use std::fmt;

use symmap_algebra::poly::Poly;
use symmap_algebra::simplify::SideRelations;
use symmap_algebra::var::VarSet;
use symmap_libchar::Library;

use crate::cost::CostEstimate;

/// A solution of the library-mapping problem for one target polynomial.
#[derive(Debug, Clone)]
pub struct MappingSolution {
    /// The original target polynomial (in program variables).
    pub target: Poly,
    /// The rewritten polynomial, expressed in library output symbols plus any
    /// residual program variables the library could not cover.
    pub rewritten: Poly,
    /// Elements used, with the number of invocations attributed to each.
    pub used_elements: Vec<(String, u32)>,
    /// The side relations that produced the rewrite (needed to verify it).
    pub relations: SideRelations,
    /// Estimated cost of the mapped code.
    pub cost: CostEstimate,
    /// Worst-case accuracy estimate (sum of element error bounds).
    pub accuracy: f64,
    /// Number of branch-and-bound nodes explored to find this solution.
    pub nodes_explored: usize,
    /// Whether the Gröbner basis behind `rewritten` ran to completion.
    ///
    /// When `false` the rewrite is still functionally valid ([`verify`]
    /// holds — reduction only ever subtracts ideal members) but not
    /// canonical: a truncated basis may leave program variables in
    /// `rewritten` that a complete basis would have eliminated, so "basis
    /// truncated" must never be read as "not expressible in the library".
    ///
    /// [`verify`]: MappingSolution::verify
    pub basis_complete: bool,
}

impl MappingSolution {
    /// Returns `true` when the solution invokes the named element.
    pub fn uses_element(&self, name: &str) -> bool {
        self.used_elements.iter().any(|(n, _)| n == name)
    }

    /// Names of all elements used.
    pub fn element_names(&self) -> Vec<&str> {
        self.used_elements.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Returns `true` when no program variable is left in the rewritten
    /// polynomial (the target is *fully* covered by library elements and
    /// constants).
    pub fn is_complete(&self) -> bool {
        let symbols: VarSet = self.relations.symbols();
        self.rewritten.vars().iter().all(|v| symbols.contains(v))
    }

    /// Verifies the rewrite: substituting every element's polynomial back for
    /// its output symbol must reproduce the original target exactly.
    pub fn verify(&self) -> bool {
        self.relations.expand_back(&self.rewritten) == self.target
    }

    /// Returns `true` when the accuracy estimate meets `tolerance`.
    pub fn is_accurate_within(&self, tolerance: f64) -> bool {
        self.accuracy <= tolerance
    }

    /// Picks the better of two solutions under the paper's criterion: best
    /// performance among those with sufficient accuracy.
    pub fn better_of(self, other: MappingSolution, tolerance: f64) -> MappingSolution {
        match (
            self.is_accurate_within(tolerance),
            other.is_accurate_within(tolerance),
        ) {
            (true, false) => self,
            (false, true) => other,
            _ => {
                if self.cost.cycles <= other.cost.cycles {
                    self
                } else {
                    other
                }
            }
        }
    }

    /// A human-readable one-line summary.
    pub fn summary(&self, library: &Library) -> String {
        let elements: Vec<String> = self
            .used_elements
            .iter()
            .map(|(n, times)| {
                let src = library
                    .element(n)
                    .map(|e| e.source().to_string())
                    .unwrap_or_else(|| "?".to_string());
                format!("{n}[{src}]x{times}")
            })
            .collect();
        format!(
            "{} -> {} using {} ({} cycles, err {:.1e})",
            self.target,
            self.rewritten,
            if elements.is_empty() {
                "no elements".to_string()
            } else {
                elements.join(", ")
            },
            self.cost.cycles,
            self.accuracy
        )
    }
}

impl fmt::Display for MappingSolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} => {} ({} elements, {} cycles)",
            self.target,
            self.rewritten,
            self.used_elements.len(),
            self.cost.cycles
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_solution() -> MappingSolution {
        let mut relations = SideRelations::new();
        relations.push("s", Poly::parse("x + y").unwrap()).unwrap();
        MappingSolution {
            target: Poly::parse("x^2 + 2*x*y + y^2").unwrap(),
            rewritten: Poly::parse("s^2").unwrap(),
            used_elements: vec![("sum".to_string(), 1)],
            relations,
            cost: CostEstimate {
                cycles: 10,
                energy_nj: 5.0,
            },
            accuracy: 1e-7,
            nodes_explored: 3,
            basis_complete: true,
        }
    }

    #[test]
    fn verify_and_completeness() {
        let s = toy_solution();
        assert!(s.verify());
        assert!(s.is_complete());
        assert!(s.uses_element("sum"));
        assert!(!s.uses_element("other"));
        assert_eq!(s.element_names(), vec!["sum"]);
    }

    #[test]
    fn incomplete_solution_detected() {
        let mut s = toy_solution();
        s.rewritten = Poly::parse("s^2 + z").unwrap();
        assert!(!s.is_complete());
        assert!(!s.verify());
    }

    #[test]
    fn better_of_prefers_accuracy_then_cost() {
        let accurate_slow = MappingSolution {
            cost: CostEstimate {
                cycles: 100,
                energy_nj: 1.0,
            },
            accuracy: 1e-9,
            ..toy_solution()
        };
        let inaccurate_fast = MappingSolution {
            cost: CostEstimate {
                cycles: 1,
                energy_nj: 0.1,
            },
            accuracy: 1.0,
            ..toy_solution()
        };
        let winner = inaccurate_fast
            .clone()
            .better_of(accurate_slow.clone(), 1e-6);
        assert_eq!(winner.cost.cycles, 100);
        // With a loose tolerance the cheaper one wins.
        let winner = inaccurate_fast.better_of(accurate_slow, 10.0);
        assert_eq!(winner.cost.cycles, 1);
    }

    #[test]
    fn display_and_summary() {
        let s = toy_solution();
        assert!(s.to_string().contains("=>"));
        let lib = Library::new("empty");
        assert!(s.summary(&lib).contains("sum"));
    }
}
