//! The `Decompose` branch-and-bound library-mapping algorithm (Table 2).
//!
//! Mapping a target polynomial `S` into a library `L` is treated as
//! *simplifying `S` modulo the side relations* contributed by a subset of
//! library elements. The search explores subsets of elements; at every node
//! it reduces the target modulo the chosen relations, prices the result
//! (element invocations + residual software), and keeps the best solution with
//! sufficient accuracy. Performance is the bounding function that prunes the
//! tree, and the expression-tree manipulations (factorization, Horner form)
//! guide which elements are tried first — exactly the roles the paper assigns
//! them.

use std::sync::Arc;

use symmap_algebra::factor::factor;
use symmap_algebra::fingerprint::PolyFingerprint;
use symmap_algebra::groebner::{GroebnerOptions, SharedGroebnerCache};
use symmap_algebra::horner::horner_form_auto;
use symmap_algebra::poly::Poly;
use symmap_algebra::simplify::{default_var_order, simplify_modulo_cached, SideRelations};
use symmap_algebra::var::VarSet;
use symmap_libchar::{Library, LibraryElement};
use symmap_trace::{trace_event, trace_span};

use crate::batch::EngineConfig;
use crate::cost::{combined_accuracy, CostEstimate, CostEvaluator};
use crate::error::CoreError;
use crate::mapping::MappingSolution;

/// Tuning knobs of the branch-and-bound search.
#[derive(Debug, Clone)]
pub struct MapperConfig {
    /// Maximum number of distinct library elements combined in one solution.
    pub max_depth: usize,
    /// Hard cap on explored nodes (the worst case is exponential, as the
    /// paper notes; the cap keeps the tool interactive).
    pub max_nodes: usize,
    /// Accuracy tolerance: a solution is acceptable when the sum of the used
    /// elements' error bounds stays below this.
    pub accuracy_tolerance: f64,
    /// Enable cost-based pruning (disable only for the ablation benches).
    pub use_bounding: bool,
    /// Enable guidance of the candidate order by factorization/Horner
    /// structure (disable only for the ablation benches).
    pub use_guidance: bool,
    /// Whether residual (unmapped) arithmetic runs in software floating point
    /// (true for the original double-precision code) or fixed point.
    pub float_residual: bool,
    /// Select candidates through the library's fingerprint index (shard mask
    /// tests) instead of scanning every element's polynomial. The surviving
    /// candidate list is identical either way — same elements, same order;
    /// the index only reaches "no shared variable" faster (see `DESIGN.md`
    /// §9). Off only for ablation benches and paranoia suites.
    pub use_fingerprint_index: bool,
    /// Options for the Gröbner-basis computations behind every candidate
    /// pricing (iteration bound, Buchberger criteria, pair-queue tiebreak).
    pub groebner: GroebnerOptions,
    /// Batch-engine sizing (worker threads and shared-cache geometry) used
    /// by consumers that fan mapping jobs out — the optimization pipeline
    /// and [`MappingEngine`](crate::batch::MappingEngine). A single
    /// `map_polynomial` call never spawns threads; `workers` only governs
    /// how many jobs of a *batch* run concurrently.
    pub engine: EngineConfig,
}

impl Default for MapperConfig {
    fn default() -> Self {
        MapperConfig {
            max_depth: 4,
            max_nodes: 20_000,
            accuracy_tolerance: 1e-4,
            use_bounding: true,
            use_guidance: true,
            float_residual: true,
            use_fingerprint_index: true,
            groebner: GroebnerOptions::default(),
            engine: EngineConfig::default(),
        }
    }
}

/// The library mapper.
///
/// Carries a [`SharedGroebnerCache`] memoizing the basis of every
/// side-relation set the search prices: the branch-and-bound explores
/// subsets of library elements, and across targets (or repeated mapping
/// calls) the same subset keeps reappearing — its basis is computed once and
/// shared. The cache is `Arc`-shared and thread-safe, so mappers running on
/// different batch-engine workers pool their bases.
#[derive(Debug, Clone)]
pub struct Mapper {
    library: Library,
    config: MapperConfig,
    evaluator: CostEvaluator,
    cache: Arc<SharedGroebnerCache>,
}

impl Mapper {
    /// Creates a mapper over a characterized library with a fresh basis
    /// cache sized by the configuration's [`EngineConfig`].
    pub fn new(library: &Library, config: MapperConfig) -> Self {
        let cache = Arc::new(SharedGroebnerCache::with_config(
            config.engine.cache_config(),
        ));
        Mapper::with_shared_cache(library, config, cache)
    }

    /// Creates a mapper that shares `cache` with other owners (the
    /// optimization pipeline and the batch engine use this so every
    /// `map_decoder` call — on any worker thread — reuses the bases of
    /// earlier runs).
    pub fn with_shared_cache(
        library: &Library,
        config: MapperConfig,
        cache: Arc<SharedGroebnerCache>,
    ) -> Self {
        Mapper {
            library: library.clone(),
            config,
            evaluator: CostEvaluator::new(),
            cache,
        }
    }

    /// The mapper's configuration.
    pub fn config(&self) -> &MapperConfig {
        &self.config
    }

    /// `(hits, misses)` of the Gröbner-basis memoization layer.
    pub fn cache_stats(&self) -> (usize, usize) {
        (self.cache.hits(), self.cache.misses())
    }

    /// `(α-hits, α-misses)` of the cache's ring-local layer. The search
    /// prices each element subset by building its side-relation ideal and
    /// reducing the target modulo a basis computed in **ring-local
    /// coordinates** (a `Ring` spanning the side relations is built once per
    /// ideal); an α-hit means the subset's ideal was structurally identical
    /// — up to variable renaming, or up to target-only variables in the
    /// default order — to one already priced, so its basis came from the
    /// shared core instead of a fresh Buchberger run. α-misses count the
    /// Buchberger computations that actually ran.
    pub fn cache_alpha_stats(&self) -> (usize, usize) {
        (self.cache.alpha_hits(), self.cache.alpha_misses())
    }

    /// Maps a target polynomial onto the library, returning the best solution
    /// found.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NoCandidateElements`] when no library element
    /// shares a variable with the target, and
    /// [`CoreError::NoAccurateSolution`] when every candidate mapping violates
    /// the accuracy tolerance.
    pub fn map_polynomial(&self, target: &Poly) -> Result<MappingSolution, CoreError> {
        let tfp = PolyFingerprint::of(target);
        let candidates = self.candidates(target, &tfp);
        if candidates.is_empty() {
            return Err(CoreError::NoCandidateElements {
                target: target.to_string(),
            });
        }
        let ordered = self.order_candidates(target, &tfp, candidates);

        let mut best: Option<MappingSolution> = None;
        let mut nodes = 0_usize;
        let mut chosen: Vec<&LibraryElement> = Vec::new();
        // The branch-and-bound within one job is sequential and a pure
        // function of (target, library, config), so every event below is
        // deterministic job-channel material.
        trace_span!(begin "mapper.search", candidates = ordered.len());
        let explored = self.explore(target, &ordered, 0, &mut chosen, &mut best, &mut nodes);
        trace_span!(
            end "mapper.search",
            nodes = nodes,
            found = best.is_some() as usize,
        );
        explored?;

        let mut best = best.ok_or_else(|| CoreError::NoAccurateSolution {
            target: target.to_string(),
            required: self.config.accuracy_tolerance,
        })?;
        best.nodes_explored = nodes;
        Ok(best)
    }

    /// Elements that share at least one variable with the target.
    ///
    /// The indexed path asks the library's shard index, which rejects on
    /// support disjointness only — the one predicate this method has ever
    /// filtered on, now answered per *shard* instead of per element. Both
    /// paths produce the same elements in the same (insertion) order;
    /// `use_fingerprint_index: false` keeps the legacy full scan alive for
    /// ablation. Degree signatures deliberately take no part in rejection
    /// here: a low-degree target can still be mapped through higher-degree
    /// elements whose ideal cancels the excess (see `DESIGN.md` §9 for the
    /// counterexample), so support disjointness is the only sound filter.
    fn candidates(&self, target: &Poly, tfp: &PolyFingerprint) -> Vec<&'_ LibraryElement> {
        if self.config.use_fingerprint_index {
            let scan = self.library.candidates(tfp);
            // Deterministic per-job prune record (a pure function of target
            // and library), plus scheduling-tolerant aggregate counters.
            trace_event!(
                "mapper.candidates",
                shards_skipped = scan.stats.shards_skipped,
                shards_scanned = scan.stats.shards_scanned,
                rejected = scan.stats.rejected,
                kept = scan.stats.kept,
            );
            let metrics = self.cache.metrics();
            metrics
                .counter("index.shards_skipped")
                .add(scan.stats.shards_skipped as u64);
            metrics
                .counter("index.rejected")
                .add(scan.stats.rejected as u64);
            metrics.counter("index.kept").add(scan.stats.kept as u64);
            return scan.elements;
        }
        let tvars = target.vars();
        self.library
            .iter()
            .filter(|e| e.polynomial().vars().iter().any(|v| tvars.contains(v)))
            .collect()
    }

    /// Orders candidates using the symbolic-manipulation guidelines:
    /// elements whose polynomial shows up as a factor of the target (or of
    /// one of its Horner coefficients) are tried first; ties are broken by
    /// ascending cost so cheaper alternatives are reached earlier.
    ///
    /// Fingerprints screen every exact polynomial comparison here: a
    /// `may_equal` miss proves inequality and a `shared_support_count` is the
    /// exact distinct-shared-variable count, so each candidate's score — and
    /// therefore the final order — is identical to the unscreened
    /// computation, element for element.
    fn order_candidates<'a>(
        &self,
        target: &Poly,
        tfp: &PolyFingerprint,
        mut candidates: Vec<&'a LibraryElement>,
    ) -> Vec<&'a LibraryElement> {
        if !self.config.use_guidance {
            candidates.sort_by(|a, b| a.name().cmp(b.name()));
            return candidates;
        }
        let factors = factor(target);
        let factor_fps: Vec<PolyFingerprint> = factors
            .factors
            .iter()
            .map(|(f, _)| PolyFingerprint::of(f))
            .collect();
        let horner = horner_form_auto(target);
        let horner_expanded = horner.expand();
        let horner_fp = PolyFingerprint::of(&horner_expanded);
        let score = |e: &LibraryElement| -> i64 {
            let efp = e.fingerprint();
            let mut s = 0_i64;
            if factor_fps
                .iter()
                .zip(factors.factors.iter())
                .any(|(ffp, (f, _))| ffp.may_equal(efp) && f == e.polynomial())
            {
                s -= 1_000_000;
            }
            if (tfp.may_equal(efp) && e.polynomial() == target)
                || (horner_fp.may_equal(efp) && e.polynomial() == &horner_expanded)
            {
                s -= 2_000_000;
            }
            // Elements covering more of the target's variables first.
            s -= efp.shared_support_count(tfp) as i64 * 1_000;
            s + e.cycles() as i64
        };
        candidates.sort_by_key(|e| score(e));
        candidates
    }

    #[allow(clippy::too_many_arguments)]
    fn explore<'a>(
        &self,
        target: &Poly,
        candidates: &[&'a LibraryElement],
        start: usize,
        chosen: &mut Vec<&'a LibraryElement>,
        best: &mut Option<MappingSolution>,
        nodes: &mut usize,
    ) -> Result<(), CoreError> {
        if *nodes >= self.config.max_nodes {
            return Ok(());
        }
        *nodes += 1;

        let solution = self.evaluate(target, chosen)?;
        let chosen_element_cost: u64 = solution
            .used_elements
            .iter()
            .filter_map(|(n, times)| self.library.element(n).map(|e| e.cycles() * *times as u64))
            .sum();

        let acceptable = solution.is_accurate_within(self.config.accuracy_tolerance);
        let improves = best
            .as_ref()
            .map(|b| solution.cost.better_than(&b.cost))
            .unwrap_or(true);
        // One subset-pricing decision: what the node cost and whether it was
        // adopted as the incumbent.
        trace_event!(
            "mapper.price",
            depth = chosen.len(),
            cycles = solution.cost.cycles,
            acceptable = acceptable as usize,
            adopted = (acceptable && improves) as usize,
        );
        if acceptable && improves {
            *best = Some(solution);
        }

        if chosen.len() >= self.config.max_depth {
            return Ok(());
        }
        // Bounding: the element invocations already selected are a lower bound
        // on any descendant's cost; prune when they cannot beat the incumbent.
        if self.config.use_bounding {
            if let Some(b) = best.as_ref() {
                if chosen_element_cost >= b.cost.cycles {
                    trace_event!(
                        "mapper.prune",
                        depth = chosen.len(),
                        bound = chosen_element_cost,
                        incumbent = b.cost.cycles,
                    );
                    return Ok(());
                }
            }
        }
        for i in start..candidates.len() {
            let candidate = candidates[i];
            // Two alternatives with the same output symbol (e.g. the float,
            // fixed and IPP versions of the same function) are mutually
            // exclusive within one solution.
            if chosen
                .iter()
                .any(|e| e.output_symbol() == candidate.output_symbol())
            {
                continue;
            }
            chosen.push(candidate);
            self.explore(target, candidates, i + 1, chosen, best, nodes)?;
            chosen.pop();
        }
        Ok(())
    }

    /// Prices the mapping induced by a set of chosen elements.
    fn evaluate(
        &self,
        target: &Poly,
        chosen: &[&LibraryElement],
    ) -> Result<MappingSolution, CoreError> {
        let mut relations = SideRelations::new();
        for e in chosen {
            relations
                .push(e.output_symbol(), e.polynomial().clone())
                .map_err(CoreError::from)?;
        }
        let order_names = default_var_order(target, &relations);
        let order_refs: Vec<&str> = order_names.iter().map(String::as_str).collect();
        let simplification = simplify_modulo_cached(
            target,
            &relations,
            &order_refs,
            &self.config.groebner,
            &self.cache,
        )?;
        let rewritten = simplification.result;

        let symbols: VarSet = relations.symbols();
        let mut used_elements: Vec<(String, u32)> = Vec::new();
        for e in chosen {
            let sym = symmap_algebra::var::Var::new(e.output_symbol());
            let occurrences: u32 = rewritten.iter().map(|(m, _)| m.degree_of(sym)).sum();
            if occurrences > 0 {
                used_elements.push((e.name().to_string(), occurrences));
            }
        }

        let mut cost = CostEstimate::zero();
        for (name, times) in &used_elements {
            let unit = self.evaluator.element_cost(&self.library, name);
            cost = cost.add(&CostEstimate {
                cycles: unit.cycles * *times as u64,
                energy_nj: unit.energy_nj * *times as f64,
            });
        }
        cost = cost.add(&self.evaluator.residual_cost(
            &rewritten,
            &symbols,
            self.config.float_residual,
        ));
        let accuracy = combined_accuracy(&self.library, &used_elements);

        Ok(MappingSolution {
            target: target.clone(),
            rewritten,
            used_elements,
            relations,
            cost,
            accuracy,
            nodes_explored: 0,
            basis_complete: simplification.complete,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symmap_libchar::LibraryElement;

    fn element(name: &str, symbol: &str, poly: &str, cycles: u64, accuracy: f64) -> LibraryElement {
        LibraryElement::builder(name, symbol)
            .polynomial(Poly::parse(poly).unwrap())
            .cycles(cycles)
            .energy_nj(cycles as f64)
            .accuracy(accuracy)
            .build()
            .unwrap()
    }

    fn p(s: &str) -> Poly {
        Poly::parse(s).unwrap()
    }

    #[test]
    fn maps_perfect_square_onto_sum_element() {
        let mut lib = Library::new("t");
        lib.push(element("sum", "s", "x + y", 4, 1e-9));
        let mapper = Mapper::new(&lib, MapperConfig::default());
        let sol = mapper.map_polynomial(&p("x^2 + 2*x*y + y^2")).unwrap();
        assert!(sol.uses_element("sum"));
        assert!(sol.verify());
        assert!(sol.is_complete());
        assert_eq!(sol.rewritten, p("s^2"));
    }

    #[test]
    fn picks_cheapest_accurate_alternative() {
        // Three implementations of the same function (like float/fixed/IPP in
        // Table 1): cheapest accurate one must win.
        let mut lib = Library::new("t");
        lib.push(element("impl_float", "f1", "a*b + c", 900, 1e-15));
        lib.push(element("impl_fixed", "f1", "a*b + c", 40, 1e-7));
        lib.push(element("impl_ipp", "f1", "a*b + c", 8, 1e-7));
        let mapper = Mapper::new(&lib, MapperConfig::default());
        let sol = mapper.map_polynomial(&p("a*b + c")).unwrap();
        assert_eq!(sol.element_names(), vec!["impl_ipp"]);
    }

    #[test]
    fn accuracy_tolerance_excludes_sloppy_elements() {
        let mut lib = Library::new("t");
        lib.push(element("sloppy", "f1", "a*b + c", 5, 1e-1));
        lib.push(element("precise", "f1", "a*b + c", 200, 1e-9));
        let mapper = Mapper::new(
            &lib,
            MapperConfig {
                accuracy_tolerance: 1e-6,
                ..MapperConfig::default()
            },
        );
        let sol = mapper.map_polynomial(&p("a*b + c")).unwrap();
        assert_eq!(sol.element_names(), vec!["precise"]);
    }

    #[test]
    fn combines_two_elements() {
        // x^2 - y^2 + x*y maps onto sum*diff + prod.
        let mut lib = Library::new("t");
        lib.push(element("sum", "s", "x + y", 3, 1e-9));
        lib.push(element("diff", "d", "x - y", 3, 1e-9));
        lib.push(element("prod", "q", "x*y", 5, 1e-9));
        let mapper = Mapper::new(&lib, MapperConfig::default());
        let sol = mapper.map_polynomial(&p("x^2 - y^2 + x*y")).unwrap();
        assert!(sol.verify());
        assert!(sol.is_complete(), "rewritten {}", sol.rewritten);
        assert!(sol.used_elements.len() >= 2);
    }

    #[test]
    fn no_candidates_is_an_error() {
        let mut lib = Library::new("t");
        lib.push(element("sum", "s", "a + b", 3, 1e-9));
        let mapper = Mapper::new(&lib, MapperConfig::default());
        let err = mapper.map_polynomial(&p("u^2 + v")).unwrap_err();
        assert!(matches!(err, CoreError::NoCandidateElements { .. }));
    }

    #[test]
    fn residual_left_when_library_only_partially_covers() {
        let mut lib = Library::new("t");
        lib.push(element("sum", "s", "x + y", 3, 1e-9));
        let mapper = Mapper::new(&lib, MapperConfig::default());
        let sol = mapper
            .map_polynomial(&p("x^2 + 2*x*y + y^2 + z^3"))
            .unwrap();
        assert!(sol.uses_element("sum"));
        assert!(!sol.is_complete());
        assert!(sol.verify());
    }

    #[test]
    fn imdct_line_maps_onto_mac_chain() {
        // The paper's earlier work maps IMDCT lines onto MACs; with a MAC-style
        // element (a linear form) the full 4-tap line maps completely.
        let mut lib = Library::new("t");
        lib.push(element(
            "dot4",
            "m",
            "c0*y0 + c1*y1 + c2*y2 + c3*y3",
            12,
            1e-8,
        ));
        let mapper = Mapper::new(&lib, MapperConfig::default());
        let sol = mapper
            .map_polynomial(&p("c0*y0 + c1*y1 + c2*y2 + c3*y3"))
            .unwrap();
        assert_eq!(sol.rewritten, p("m"));
        assert!(sol.is_complete());
    }

    #[test]
    fn bounding_and_guidance_do_not_change_the_winner() {
        let mut lib = Library::new("t");
        lib.push(element("sum", "s", "x + y", 3, 1e-9));
        lib.push(element("diff", "d", "x - y", 3, 1e-9));
        lib.push(element("prod", "q", "x*y", 5, 1e-9));
        lib.push(element("sq_x", "sx", "x^2", 4, 1e-9));
        let target = p("x^2 - y^2");
        let full = Mapper::new(&lib, MapperConfig::default())
            .map_polynomial(&target)
            .unwrap();
        let plain = Mapper::new(
            &lib,
            MapperConfig {
                use_bounding: false,
                use_guidance: false,
                ..MapperConfig::default()
            },
        )
        .map_polynomial(&target)
        .unwrap();
        assert_eq!(full.cost.cycles, plain.cost.cycles);
        // Without pruning/guidance at least as many nodes are explored.
        assert!(plain.nodes_explored >= full.nodes_explored);
    }

    #[test]
    fn memoization_reuses_bases_across_targets() {
        let mut lib = Library::new("t");
        lib.push(element("sum", "s", "x + y", 4, 1e-9));
        lib.push(element("prod", "q", "x*y", 5, 1e-9));
        let mapper = Mapper::new(&lib, MapperConfig::default());
        mapper.map_polynomial(&p("x^2 + 2*x*y + y^2")).unwrap();
        let (hits_first, misses_first) = mapper.cache_stats();
        assert!(misses_first > 0);
        // A second target over the same variables prices the same element
        // subsets, so its side-relation bases come from the cache.
        mapper
            .map_polynomial(&p("x^2 + 2*x*y + y^2 + x*y"))
            .unwrap();
        let (hits_second, misses_second) = mapper.cache_stats();
        assert!(
            hits_second > hits_first,
            "second target produced no cache hits ({hits_first} -> {hits_second})"
        );
        // Mapping the first target again is answered entirely from the cache
        // (the deterministic search re-prices exactly the same subsets).
        mapper.map_polynomial(&p("x^2 + 2*x*y + y^2")).unwrap();
        assert_eq!(mapper.cache_stats().1, misses_second);
    }

    #[test]
    fn alpha_equivalent_side_relations_share_one_core_basis() {
        // Two libraries over disjoint variable/symbol names but identical
        // element shapes, sharing one cache: the second library's subsets
        // are α-equivalent to the first's, so pricing them reuses the
        // ring-local cores (α-hits) instead of rerunning Buchberger.
        let cache = std::sync::Arc::new(SharedGroebnerCache::new());
        let mut lib_a = Library::new("a");
        lib_a.push(element("sum_a", "as1", "ax + ay", 4, 1e-9));
        lib_a.push(element("prod_a", "ap1", "ax*ay", 5, 1e-9));
        let mut lib_b = Library::new("b");
        lib_b.push(element("sum_b", "bs1", "bx + by", 4, 1e-9));
        lib_b.push(element("prod_b", "bp1", "bx*by", 5, 1e-9));

        let mapper_a =
            Mapper::with_shared_cache(&lib_a, MapperConfig::default(), Arc::clone(&cache));
        let sol_a = mapper_a
            .map_polynomial(&p("ax^2 + 2*ax*ay + ay^2"))
            .unwrap();
        let (alpha_hits_a, alpha_misses_a) = mapper_a.cache_alpha_stats();
        assert_eq!(alpha_hits_a, 0, "first library has nothing to α-share");
        assert!(alpha_misses_a > 0);

        let mapper_b =
            Mapper::with_shared_cache(&lib_b, MapperConfig::default(), Arc::clone(&cache));
        let sol_b = mapper_b
            .map_polynomial(&p("bx^2 + 2*bx*by + by^2"))
            .unwrap();
        let (alpha_hits_b, alpha_misses_b) = mapper_b.cache_alpha_stats();
        assert_eq!(
            alpha_misses_b, alpha_misses_a,
            "the renamed search must not run a single new Buchberger core"
        );
        assert!(alpha_hits_b > 0, "renamed subsets produced no α-hits");
        // Same structural solution either way, in each name space.
        assert_eq!(sol_a.rewritten, p("as1^2"));
        assert_eq!(sol_b.rewritten, p("bs1^2"));
        assert!(sol_a.verify() && sol_b.verify());
    }

    #[test]
    fn truncated_groebner_run_is_flagged_but_still_verifies() {
        // prod and sq_x have incomparable, non-coprime leading monomials
        // (x*y vs x^2), so their 2-relation basis needs at least one real
        // S-polynomial reduction: a zero-iteration bound deterministically
        // truncates it. The target x^3*y = (x^2)*(x*y) maps fully onto both
        // elements, making {prod, sq_x} the unique cheapest subset.
        let mut lib = Library::new("t");
        lib.push(element("prod", "q", "x*y", 5, 1e-9));
        lib.push(element("sq_x", "u", "x^2", 4, 1e-9));
        let target = p("x^3*y");
        let full = Mapper::new(&lib, MapperConfig::default())
            .map_polynomial(&target)
            .unwrap();
        assert!(full.basis_complete);
        assert!(full.uses_element("prod") && full.uses_element("sq_x"));
        let truncated = Mapper::new(
            &lib,
            MapperConfig {
                groebner: symmap_algebra::groebner::GroebnerOptions {
                    max_iterations: 0,
                    ..Default::default()
                },
                ..MapperConfig::default()
            },
        )
        .map_polynomial(&target)
        .unwrap();
        // The winner still combines both relations, its basis is truncated,
        // and the solution must say so rather than silently pretending the
        // rewrite is canonical — while remaining a valid rewrite: "basis
        // truncated" is explicitly not "not mappable".
        assert!(truncated.uses_element("prod") && truncated.uses_element("sq_x"));
        assert!(!truncated.basis_complete);
        assert!(truncated.verify(), "truncated rewrite must stay sound");
        assert!(truncated.accuracy <= 1e-4);
    }

    #[test]
    fn fingerprint_index_is_invisible_to_results() {
        // Mixed supports so the index genuinely skips shards, plus
        // equal-polynomial alternatives so the ordering prefilters engage.
        let mut lib = Library::new("t");
        lib.push(element("sum", "s", "x + y", 3, 1e-9));
        lib.push(element("diff", "d", "x - y", 3, 1e-9));
        lib.push(element("prod", "q", "x*y", 5, 1e-9));
        lib.push(element("sq_x", "sx", "x^2", 4, 1e-9));
        lib.push(element("other", "o", "u*w + u^2", 2, 1e-9));
        lib.push(element("sum_ipp", "s", "x + y", 2, 1e-7));
        for target in [
            "x^2 + 2*x*y + y^2",
            "x^2 - y^2 + x*y",
            "x^3*y",
            "u*w + u^2 + x",
            "q^2 + 1",
        ] {
            let t = p(target);
            let on = Mapper::new(&lib, MapperConfig::default()).map_polynomial(&t);
            let off = Mapper::new(
                &lib,
                MapperConfig {
                    use_fingerprint_index: false,
                    ..MapperConfig::default()
                },
            )
            .map_polynomial(&t);
            // Byte-identical outcomes, node counts included: the index must
            // feed the search the exact candidate list the scan did.
            assert_eq!(
                format!("{on:?}"),
                format!("{off:?}"),
                "index changed the outcome for {target}"
            );
        }
    }

    #[test]
    fn candidate_scan_counters_accumulate_on_the_cache_metrics() {
        let mut lib = Library::new("t");
        lib.push(element("sum", "s", "x + y", 3, 1e-9));
        lib.push(element("other", "o", "u*w", 2, 1e-9));
        let mapper = Mapper::new(&lib, MapperConfig::default());
        mapper.map_polynomial(&p("x^2 + 2*x*y + y^2")).unwrap();
        let snapshot = mapper.cache.metrics().snapshot();
        assert_eq!(snapshot.counter("index.kept"), 1);
        assert_eq!(snapshot.counter("index.rejected"), 1);
        assert_eq!(snapshot.counter("index.shards_skipped"), 1);
    }

    #[test]
    fn node_cap_still_returns_a_solution() {
        let mut lib = Library::new("t");
        for i in 0..12 {
            lib.push(element(
                &format!("e{i}"),
                &format!("v{i}"),
                "x + y",
                10 + i,
                1e-9,
            ));
        }
        let mapper = Mapper::new(
            &lib,
            MapperConfig {
                max_nodes: 5,
                ..MapperConfig::default()
            },
        );
        let sol = mapper.map_polynomial(&p("x^2 + 2*x*y + y^2")).unwrap();
        assert!(sol.verify());
        assert!(sol.nodes_explored <= 5);
    }
}
