//! Cost and accuracy bookkeeping for candidate mappings.
//!
//! The branch-and-bound search of Table 2 needs a *bounding function*: the
//! paper uses performance and energy. A candidate mapping's cost is the sum of
//! the costs of the library elements it invokes plus the cost of evaluating
//! whatever residual arithmetic is left in plain multiplies and adds on the
//! target processor.

use symmap_algebra::poly::Poly;
use symmap_algebra::var::VarSet;
use symmap_libchar::Library;
use symmap_platform::cost::{CostModel, InstructionClass};

/// Performance/energy cost of a candidate mapping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostEstimate {
    /// Estimated processor cycles.
    pub cycles: u64,
    /// Estimated energy in nanojoules.
    pub energy_nj: f64,
}

impl CostEstimate {
    /// The zero cost.
    pub fn zero() -> Self {
        CostEstimate {
            cycles: 0,
            energy_nj: 0.0,
        }
    }

    /// Component-wise sum.
    pub fn add(&self, other: &CostEstimate) -> CostEstimate {
        CostEstimate {
            cycles: self.cycles + other.cycles,
            energy_nj: self.energy_nj + other.energy_nj,
        }
    }

    /// Whether this cost is strictly better (fewer cycles) than `other`.
    pub fn better_than(&self, other: &CostEstimate) -> bool {
        self.cycles < other.cycles
    }
}

/// Evaluates candidate mappings: element invocation costs plus residual
/// software cost on the target core.
#[derive(Debug, Clone)]
pub struct CostEvaluator {
    cost_model: CostModel,
    /// Energy charged per cycle of residual software, in nanojoules (derived
    /// from the Badge4 core power at the maximum operating point).
    energy_per_cycle_nj: f64,
}

impl CostEvaluator {
    /// Creates an evaluator for the SA-1110 cost model.
    pub fn new() -> Self {
        CostEvaluator {
            cost_model: CostModel::sa1110(),
            energy_per_cycle_nj: 2.1,
        }
    }

    /// Uses a custom instruction cost model (ablation support).
    pub fn with_cost_model(mut self, cost_model: CostModel) -> Self {
        self.cost_model = cost_model;
        self
    }

    /// Cost of invoking a named library element once.
    pub fn element_cost(&self, library: &Library, name: &str) -> CostEstimate {
        match library.element(name) {
            Some(e) => CostEstimate {
                cycles: e.cycles(),
                energy_nj: e.energy_nj(),
            },
            None => CostEstimate::zero(),
        }
    }

    /// Cost of evaluating a residual polynomial in plain software. Terms made
    /// only of library-output symbols are already paid for by the element
    /// costs; every multiplication/addition over *program* variables is
    /// charged at the software-float rate when `float_residual` is true (the
    /// original code operates on doubles) or at integer MAC rate otherwise.
    pub fn residual_cost(
        &self,
        residual: &Poly,
        symbols: &VarSet,
        float_residual: bool,
    ) -> CostEstimate {
        let mut program_ops: u64 = 0;
        for (m, _) in residual.iter() {
            let program_degree: u32 = m
                .iter()
                .filter(|(v, _)| !symbols.contains(*v))
                .map(|(_, e)| e)
                .sum();
            // One multiply per degree, one add per term, one multiply for a
            // non-trivial coefficient.
            program_ops += program_degree as u64 + 1;
        }
        let per_op = if float_residual {
            self.cost_model.cycles_for(InstructionClass::FloatMulSoft)
                + self.cost_model.cycles_for(InstructionClass::FloatAddSoft)
        } else {
            self.cost_model.cycles_for(InstructionClass::IntMac) * 2
        };
        let cycles = program_ops * per_op;
        CostEstimate {
            cycles,
            energy_nj: cycles as f64 * self.energy_per_cycle_nj,
        }
    }

    /// An optimistic lower bound on the remaining cost of a partial mapping —
    /// used to prune the branch-and-bound tree. Assumes every remaining
    /// program-variable term could be covered by the cheapest library element.
    pub fn lower_bound(&self, residual: &Poly, symbols: &VarSet, cheapest_element: u64) -> u64 {
        let has_program_terms = residual
            .iter()
            .any(|(m, _)| m.iter().any(|(v, _)| !symbols.contains(v)) && !m.is_one());
        if has_program_terms {
            cheapest_element
        } else {
            0
        }
    }
}

impl Default for CostEvaluator {
    fn default() -> Self {
        CostEvaluator::new()
    }
}

/// Combines the accuracy bounds of the elements used by a mapping into a
/// single worst-case estimate (errors add in the worst case).
pub fn combined_accuracy(library: &Library, used: &[(String, u32)]) -> f64 {
    used.iter()
        .map(|(name, times)| {
            library
                .element(name)
                .map(|e| e.accuracy() * *times as f64)
                .unwrap_or(0.0)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use symmap_libchar::LibraryElement;

    fn library() -> Library {
        let mut lib = Library::new("test");
        lib.push(
            LibraryElement::builder("cheap", "c")
                .polynomial(Poly::parse("x + y").unwrap())
                .cycles(4)
                .energy_nj(2.0)
                .accuracy(1e-6)
                .build()
                .unwrap(),
        );
        lib.push(
            LibraryElement::builder("dear", "d")
                .polynomial(Poly::parse("x * y").unwrap())
                .cycles(400)
                .energy_nj(150.0)
                .accuracy(1e-12)
                .build()
                .unwrap(),
        );
        lib
    }

    #[test]
    fn element_cost_lookup() {
        let evaluator = CostEvaluator::new();
        let lib = library();
        assert_eq!(evaluator.element_cost(&lib, "cheap").cycles, 4);
        assert_eq!(evaluator.element_cost(&lib, "missing").cycles, 0);
    }

    #[test]
    fn residual_cost_ignores_symbol_only_terms() {
        let evaluator = CostEvaluator::new();
        let symbols = VarSet::from_names(&["s", "t"]);
        let pure_symbols = Poly::parse("s^2 + s*t").unwrap();
        let mixed = Poly::parse("s^2 + x*y").unwrap();
        let cs = evaluator.residual_cost(&pure_symbols, &symbols, true);
        let cm = evaluator.residual_cost(&mixed, &symbols, true);
        assert!(cm.cycles > cs.cycles);
    }

    #[test]
    fn float_residual_costs_more_than_fixed() {
        let evaluator = CostEvaluator::new();
        let symbols = VarSet::new();
        let p = Poly::parse("x^2*y + 3*x + 1").unwrap();
        let float = evaluator.residual_cost(&p, &symbols, true);
        let fixed = evaluator.residual_cost(&p, &symbols, false);
        assert!(float.cycles > 10 * fixed.cycles);
        assert!(float.energy_nj > fixed.energy_nj);
    }

    #[test]
    fn lower_bound_zero_when_fully_mapped() {
        let evaluator = CostEvaluator::new();
        let symbols = VarSet::from_names(&["s"]);
        assert_eq!(
            evaluator.lower_bound(&Poly::parse("s^2 + 3").unwrap(), &symbols, 100),
            0
        );
        assert_eq!(
            evaluator.lower_bound(&Poly::parse("s + x*y").unwrap(), &symbols, 100),
            100
        );
    }

    #[test]
    fn combined_accuracy_sums_worst_case() {
        let lib = library();
        let acc = combined_accuracy(&lib, &[("cheap".into(), 2), ("dear".into(), 1)]);
        assert!((acc - (2e-6 + 1e-12)).abs() < 1e-18);
        assert_eq!(combined_accuracy(&lib, &[]), 0.0);
    }

    #[test]
    fn cost_estimate_arithmetic() {
        let a = CostEstimate {
            cycles: 10,
            energy_nj: 1.0,
        };
        let b = CostEstimate {
            cycles: 20,
            energy_nj: 2.0,
        };
        assert_eq!(a.add(&b).cycles, 30);
        assert!(a.better_than(&b));
        assert!(!b.better_than(&a));
        assert_eq!(CostEstimate::zero().cycles, 0);
    }
}
