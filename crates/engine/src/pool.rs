//! A deterministic work-stealing thread pool for pure batch jobs.
//!
//! The pool runs `job_count` independent jobs — each a pure function of its
//! index — on `workers` threads and returns the results **indexed by job**,
//! so the output vector is byte-identical no matter how the scheduler
//! interleaves the workers. Determinism comes from three choices:
//!
//! 1. **Static round-robin deal.** Job `i` starts on worker `i % workers`'s
//!    deque; no runtime state influences the initial placement.
//! 2. **Own-front, steal-back.** A worker drains its own deque from the
//!    front (so `workers = 1` degenerates to exact sequential index order on
//!    the calling thread, with no threads spawned and no locks taken), and an
//!    idle worker steals from the *back* of the first non-empty victim in a
//!    fixed scan order — the classic Chase–Lev discipline, here with a mutex
//!    per deque (the vendored `parking_lot`) because batch jobs are orders of
//!    magnitude longer than a lock handshake.
//! 3. **Collection by index.** Workers accumulate `(index, result)` pairs
//!    privately and the pool reassembles the result vector by index, so
//!    completion order never leaks into the output.
//!
//! Which worker runs which job *does* vary run to run at `workers > 1` — only
//! the steal count observes that — but since jobs are pure, the result vector
//! cannot.
//!
//! All jobs exist before the first worker starts and no job enqueues another,
//! so a worker can safely exit once every deque is empty: in-flight jobs on
//! other workers need no help.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

/// What a batch run did: worker count actually used and number of steals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads used (clamped to the job count; 1 means the batch ran
    /// inline on the calling thread).
    pub workers: usize,
    /// Jobs executed by a worker other than the one they were dealt to.
    /// Scheduling-dependent at `workers > 1`; always 0 at `workers = 1`.
    pub steals: usize,
}

/// Scheduling-side observer for a batch run. The pool reports job lifecycle
/// and steal events through this hook; the engine adapts it onto the trace
/// sched channel. Everything reported here is scheduling-dependent by
/// definition — which worker ran which job, what was stolen — so consumers
/// must never let it influence results (the trace layer quarantines it in
/// the non-deterministic channel).
///
/// All methods default to no-ops so an observer can pick the events it
/// cares about. Callbacks run on the worker threads; implementations must
/// be cheap and `Sync`.
pub trait SchedObserver: Sync {
    /// Worker `worker` starts job `index` (`stolen` = it came off another
    /// worker's deque).
    fn job_start(&self, worker: usize, index: usize, stolen: bool) {
        let _ = (worker, index, stolen);
    }
    /// Worker `worker` finished job `index`.
    fn job_finish(&self, worker: usize, index: usize) {
        let _ = (worker, index);
    }
}

/// Runs `job_count` pure jobs on `workers` threads, returning the results in
/// job-index order together with the run's [`PoolStats`].
///
/// `workers` is clamped to `1..=job_count` (an empty batch runs nothing). At
/// `workers = 1` the jobs run in index order on the calling thread — the
/// exact sequential path, with no thread or lock overhead.
///
/// # Panics
///
/// Propagates a panic from any job (the batch's workers are joined first, so
/// no detached thread outlives the call).
pub fn run_batch<T, F>(job_count: usize, workers: usize, job: F) -> (Vec<T>, PoolStats)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_batch_observed(job_count, workers, job, None)
}

/// [`run_batch`] with an optional [`SchedObserver`] receiving job lifecycle
/// and steal events as they happen on the worker threads.
pub fn run_batch_observed<T, F>(
    job_count: usize,
    workers: usize,
    job: F,
    observer: Option<&dyn SchedObserver>,
) -> (Vec<T>, PoolStats)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.max(1).min(job_count.max(1));
    if workers == 1 {
        let results = (0..job_count)
            .map(|i| {
                if let Some(obs) = observer {
                    obs.job_start(0, i, false);
                }
                let out = job(i);
                if let Some(obs) = observer {
                    obs.job_finish(0, i);
                }
                out
            })
            .collect();
        return (
            results,
            PoolStats {
                workers: 1,
                steals: 0,
            },
        );
    }

    // Deal jobs round-robin: worker w owns indices w, w + workers, …
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| Mutex::new((w..job_count).step_by(workers).collect()))
        .collect();
    let steals = AtomicUsize::new(0);

    let per_worker: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let queues = &queues;
                let job = &job;
                let steals = &steals;
                scope.spawn(move || worker_loop(w, queues, job, steals, observer))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("batch worker panicked"))
            .collect()
    });

    let mut slots: Vec<Option<T>> = (0..job_count).map(|_| None).collect();
    for chunk in per_worker {
        for (index, value) in chunk {
            debug_assert!(slots[index].is_none(), "job {index} ran twice");
            slots[index] = Some(value);
        }
    }
    let results = slots
        .into_iter()
        .map(|s| s.expect("every job produces exactly one result"))
        .collect();
    (
        results,
        PoolStats {
            workers,
            steals: steals.into_inner(),
        },
    )
}

fn worker_loop<T, F>(
    me: usize,
    queues: &[Mutex<VecDeque<usize>>],
    job: &F,
    steals: &AtomicUsize,
    observer: Option<&dyn SchedObserver>,
) -> Vec<(usize, T)>
where
    F: Fn(usize) -> T + Sync,
{
    let mut out = Vec::new();
    let run = |index: usize, stolen: bool, out: &mut Vec<(usize, T)>| {
        if let Some(obs) = observer {
            obs.job_start(me, index, stolen);
        }
        out.push((index, job(index)));
        if let Some(obs) = observer {
            obs.job_finish(me, index);
        }
    };
    loop {
        // Own deque first, front to back (preserves the dealt order).
        let own = queues[me].lock().pop_front();
        if let Some(index) = own {
            run(index, false, &mut out);
            continue;
        }
        // Idle: steal from the back of the first non-empty victim, scanning
        // neighbours in a fixed order starting after this worker.
        let mut stolen = None;
        for offset in 1..queues.len() {
            let victim = (me + offset) % queues.len();
            if let Some(index) = queues[victim].lock().pop_back() {
                stolen = Some(index);
                break;
            }
        }
        match stolen {
            Some(index) => {
                steals.fetch_add(1, Ordering::Relaxed);
                run(index, true, &mut out);
            }
            None => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_are_in_job_index_order_at_any_worker_count() {
        for workers in [1, 2, 3, 4, 8, 17] {
            let (results, stats) = run_batch(13, workers, |i| i * i);
            assert_eq!(results, (0..13).map(|i| i * i).collect::<Vec<_>>());
            assert!(stats.workers <= 13);
            assert_eq!(stats.workers, workers.min(13));
        }
    }

    #[test]
    fn empty_batch_and_single_job() {
        let (results, stats) = run_batch(0, 4, |i| i);
        assert!(results.is_empty());
        assert_eq!((stats.workers, stats.steals), (1, 0));
        let (results, _) = run_batch(1, 4, |i| i + 41);
        assert_eq!(results, vec![41]);
    }

    #[test]
    fn sequential_path_runs_on_the_calling_thread_in_order() {
        // lint:allow(D2): test-only probe that the workers==1 path stays on
        // the calling thread; thread identity is asserted, not consumed.
        let caller = std::thread::current().id();
        let order = Mutex::new(Vec::new());
        let (_, stats) = run_batch(5, 1, |i| {
            // lint:allow(D2): same test-only thread-identity assertion.
            assert_eq!(std::thread::current().id(), caller);
            order.lock().push(i);
        });
        assert_eq!(*order.lock(), vec![0, 1, 2, 3, 4]);
        assert_eq!(stats.steals, 0);
    }

    #[test]
    fn every_job_runs_exactly_once_under_contention() {
        let counters: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        let (results, _) = run_batch(64, 4, |i| {
            counters[i].fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(results.len(), 64);
        for (i, c) in counters.iter().enumerate() {
            assert_eq!(
                c.load(Ordering::Relaxed),
                1,
                "job {i} ran a wrong number of times"
            );
        }
    }

    #[test]
    fn imbalanced_batch_steals_work() {
        // Worker 0 owns the one slow job (index 0); the cheap jobs dealt to it
        // (4, 8, …) get stolen by the idle workers, so the steal counter must
        // move. (Scheduling-dependent in *which* jobs are stolen, never in the
        // results.)
        let (results, stats) = run_batch(32, 4, |i| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
            i
        });
        assert_eq!(results, (0..32).collect::<Vec<_>>());
        assert!(
            stats.steals > 0,
            "idle workers never stole from the blocked worker's deque"
        );
    }
}
