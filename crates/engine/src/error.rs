//! Error type of the mapping engine.

use std::fmt;

use symmap_algebra::AlgebraError;

/// Errors produced by target-code identification and library mapping.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The symbolic algebra engine failed (parse error, non-polynomial code, …).
    Algebra(AlgebraError),
    /// The library is empty or contains no element relevant to the target.
    NoCandidateElements { target: String },
    /// No mapping satisfied the accuracy requirement.
    NoAccurateSolution { target: String, required: f64 },
    /// A critical function has no registered polynomial representation.
    UnknownFunction(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Algebra(e) => write!(f, "symbolic algebra error: {e}"),
            CoreError::NoCandidateElements { target } => {
                write!(
                    f,
                    "no library element shares variables with target `{target}`"
                )
            }
            CoreError::NoAccurateSolution { target, required } => write!(
                f,
                "no mapping of `{target}` meets the accuracy requirement {required:e}"
            ),
            CoreError::UnknownFunction(name) => {
                write!(
                    f,
                    "no polynomial representation registered for function `{name}`"
                )
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Algebra(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AlgebraError> for CoreError {
    fn from(e: AlgebraError) -> Self {
        CoreError::Algebra(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = CoreError::UnknownFunction("foo".into());
        assert!(e.to_string().contains("foo"));
        assert!(e.source().is_none());
        let e = CoreError::Algebra(AlgebraError::UnknownVariable("x".into()));
        assert!(e.source().is_some());
        let e = CoreError::NoAccurateSolution {
            target: "x^2".into(),
            required: 1e-6,
        };
        assert!(e.to_string().contains("1e-6"));
    }
}
