//! # symmap-ir
//!
//! A small algorithmic-level ("C-like") intermediate representation with the
//! compiler transformations the paper's target-code-identification step relies
//! on (§3.2): constant propagation and folding, copy propagation, loop
//! unrolling, dead-code elimination — followed by extraction of a polynomial
//! representation from the resulting straight-line arithmetic code.
//!
//! The goal of the transformations is exactly the paper's: *formulate as
//! large polynomials as possible* so that the likelihood of matching a complex
//! library element increases.
//!
//! ```
//! use symmap_ir::ast::Function;
//! use symmap_ir::polyextract::extract_polynomial;
//! use symmap_algebra::poly::Poly;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let f = Function::parse(
//!     "f(x, y) {
//!          t = x + y;
//!          return t * t;
//!      }",
//! )?;
//! let poly = extract_polynomial(&f)?;
//! assert_eq!(poly, Poly::parse("x^2 + 2*x*y + y^2")?);
//! # Ok(())
//! # }
//! ```

#![deny(rustdoc::broken_intra_doc_links)]

pub mod ast;
pub mod polyextract;
pub mod transform;

pub use ast::{Expr, Function, IrError, Stmt};
